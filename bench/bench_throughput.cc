/**
 * @file
 * End-to-end serving throughput of the batched PredictionEngine:
 * blocks/sec over the generated BHive suite (bytes in, predictions
 * out), at 1/2/4/8 worker threads, against the serial
 * bb::analyze + model::predict path — plus the cache-hit serving rate.
 * Results are written to BENCH_throughput.json.
 *
 * Every engine prediction is checked bit-identical to the serial
 * predictor's output (throughput and component values compared by bit
 * pattern, interpretability payload by value); the binary exits
 * non-zero on any mismatch, so this doubles as a regression guard for
 * the engine's correctness contract.
 */
#include "bench_common.h"

#include <thread>

#include "facile/component.h"
#include "facile/predictor.h"

using namespace facile;

int
main()
{
    const auto &suite = bench::evalSuite();
    const uarch::UArch arch = uarch::UArch::SKL;
    const bool loop = true;

    std::vector<engine::Request> batch;
    batch.reserve(suite.size());
    for (const auto &b : suite)
        batch.push_back({b.bytesL, arch, loop, {}});
    const auto nBlocks = static_cast<double>(batch.size());

    bench::BenchReport report("throughput");
    report.scalar("suite_blocks", nBlocks);
    report.scalar("arch", "SKL");
    report.boolean("quick_mode", bench::quickMode());
    report.scalar("hw_threads",
                  static_cast<double>(std::thread::hardware_concurrency()));

    // Serial reference: analyze + predict per block, no engine — in the
    // same serving mode the engine runs (explicit scratch, bound-only
    // payload), so the comparison and the bit-identity oracle are
    // like-for-like.
    model::PredictScratch scratch;
    std::vector<model::Prediction> serial(batch.size());
    const double serialMs = eval::bestOfRunsMs([&] {
        for (std::size_t i = 0; i < batch.size(); ++i)
            serial[i] =
                model::predict(bb::analyze(batch[i].bytes, arch), loop,
                               batch[i].config, scratch);
    });
    const double serialBps = 1000.0 * nBlocks / serialMs;

    std::printf("ENGINE THROUGHPUT: end-to-end blocks/sec, %zu blocks "
                "(TPL, %s)\n",
                batch.size(), uarch::config(arch).abbrev);
    bench::printRule();
    std::printf("%-28s %12s %10s %10s\n", "Configuration", "blocks/s",
                "ms/block", "speedup");
    bench::printRule();
    std::printf("%-28s %12.0f %10.5f %10s\n", "serial (analyze+predict)",
                serialBps, serialMs / nBlocks, "1.00x");
    report.row("serial");
    report.metric("threads", 1);
    report.metric("blocks_per_sec", serialBps);

    bool identical = true;
    double bps4 = 0.0;

    for (int threads : {1, 2, 4, 8}) {
        engine::PredictionEngine::Options opts;
        opts.numThreads = threads;
        opts.cacheEnabled = false; // pure compute scaling
        engine::PredictionEngine eng(opts);

        std::vector<model::Prediction> out;
        const double ms =
            eval::bestOfRunsMs([&] { out = eng.predictBatch(batch); });
        const double bps = 1000.0 * nBlocks / ms;
        if (threads == 4)
            bps4 = bps;

        for (std::size_t i = 0; i < batch.size(); ++i)
            if (!bench::samePrediction(out[i], serial[i])) {
                std::fprintf(stderr,
                             "MISMATCH vs serial at block %zu "
                             "(%d threads)\n",
                             i, threads);
                identical = false;
            }

        char label[64];
        std::snprintf(label, sizeof label, "engine, %d thread%s", threads,
                      threads == 1 ? "" : "s");
        std::printf("%-28s %12.0f %10.5f %9.2fx\n", label, bps,
                    ms / nBlocks, bps / serialBps);
        std::snprintf(label, sizeof label, "engine_%dt", threads);
        report.row(label);
        report.metric("threads", threads);
        report.metric("blocks_per_sec", bps);
    }

    // Default engine configuration (4 workers, caches on): steady-state
    // serving rate of a repeated request stream, answered from the
    // prediction cache.
    double bpsDefault = 0.0;
    {
        engine::PredictionEngine::Options opts;
        opts.numThreads = 4;
        engine::PredictionEngine eng(opts);
        std::vector<model::Prediction> out =
            eng.predictBatch(batch); // cold: fills caches
        const double ms =
            eval::bestOfRunsMs([&] { out = eng.predictBatch(batch); });
        for (std::size_t i = 0; i < batch.size(); ++i)
            if (!bench::samePrediction(out[i], serial[i])) {
                std::fprintf(stderr, "MISMATCH vs serial on cache hit "
                                     "at block %zu\n",
                             i);
                identical = false;
            }
        bpsDefault = 1000.0 * nBlocks / ms;

        // Steady-state hit rate of one more pass (prediction cache).
        engine::BatchStats stats;
        eng.predictBatch(batch, &stats);
        const double hitRate =
            stats.requests
                ? static_cast<double>(stats.predictionCacheHits) /
                      static_cast<double>(stats.requests)
                : 0.0;
        std::printf("%-28s %12.0f %10.5f %9.2fx\n",
                    "engine, 4 threads (cached)", bpsDefault,
                    ms / nBlocks, bpsDefault / serialBps);
        report.row("engine_4t_cached");
        report.metric("threads", 4);
        report.metric("blocks_per_sec", bpsDefault);
        report.metric("cache_hit_rate", hitRate);
    }

    bench::printRule();
    std::printf("bit-identical to serial predict: %s\n",
                identical ? "yes" : "NO");
    std::printf("4-thread compute scaling (cache off): %.2fx on %u "
                "hardware core%s\n",
                bps4 / serialBps, std::thread::hardware_concurrency(),
                std::thread::hardware_concurrency() == 1 ? "" : "s");
    std::printf("4-thread engine, default config, vs serial: %.2fx "
                "(target >= 2x)\n",
                bpsDefault / serialBps);
    report.boolean("bit_identical", identical);
    report.write();
    return identical ? 0 : 1;
}
