/**
 * @file
 * Loopback benchmark of the streaming prediction server: concurrent
 * clients over a Unix-domain socket, end-to-end blocks/sec and
 * per-request latency percentiles, compared against the in-process
 * cached serving rate of the same engine configuration (the last row
 * of bench_throughput).
 *
 * Also demonstrates the two-generation cache eviction: a server whose
 * engine is capacity-bound below the working set keeps a high
 * steady-state hit rate where the old epoch eviction collapsed to
 * near zero.
 *
 * Every wire prediction is checked bit-identical to serial
 * model::predict; the binary exits non-zero on any mismatch. Results
 * are written to BENCH_server.json.
 */
#include "bench_common.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "facile/component.h"
#include "facile/predictor.h"
#include "server/client.h"
#include "server/server.h"
#include "support/stats.h"

using namespace facile;

namespace {

using bench::samePrediction;

std::string
socketPath()
{
    return "/tmp/facile_bench_" + std::to_string(::getpid()) + ".sock";
}

} // namespace

int
main()
{
    const auto &suite = bench::evalSuite();
    const uarch::UArch arch = uarch::UArch::SKL;
    const bool loop = true;
    constexpr int kClients = 4;
    constexpr int kPasses = 10; // per client per timed repeat

    std::vector<engine::Request> batch;
    batch.reserve(suite.size());
    for (const auto &b : suite)
        batch.push_back({b.bytesL, arch, loop, {}});
    const auto nBlocks = static_cast<double>(batch.size());

    bench::BenchReport report("server");
    report.scalar("suite_blocks", nBlocks);
    report.scalar("arch", "SKL");
    report.boolean("quick_mode", bench::quickMode());
    report.scalar("clients", kClients);

    // Serial reference (also the bit-identity oracle), in the serving
    // mode the wire defaults to: explicit scratch, bound-only payload.
    model::PredictScratch scratch;
    std::vector<model::Prediction> serial(batch.size());
    const double serialMs = eval::bestOfRunsMs([&] {
        for (std::size_t i = 0; i < batch.size(); ++i)
            serial[i] =
                model::predict(bb::analyze(batch[i].bytes, arch), loop,
                               batch[i].config, scratch);
    });
    const double serialBps = 1000.0 * nBlocks / serialMs;

    // In-process cached serving rate: the bar the socket server is
    // measured against (same engine configuration, no wire).
    double inprocBps = 0.0;
    {
        engine::PredictionEngine::Options opts;
        opts.numThreads = 4;
        engine::PredictionEngine eng(opts);
        eng.predictBatch(batch); // fill caches
        const double ms =
            eval::bestOfRunsMs([&] { eng.predictBatch(batch); });
        inprocBps = 1000.0 * nBlocks / ms;
    }

    std::printf("SERVER THROUGHPUT: loopback UDS, %d concurrent clients, "
                "%zu-block suite (TPL, %s)\n",
                kClients, batch.size(), uarch::config(arch).abbrev);
    bench::printRule();

    bool identical = true;

    // ---- throughput phase --------------------------------------------------
    engine::PredictionEngine::Options engOpts;
    engOpts.numThreads = 4;
    engine::PredictionEngine serverEngine(engOpts);
    server::ServerOptions sopts;
    sopts.unixPath = socketPath();
    sopts.engine = &serverEngine;
    server::PredictionServer srv(sopts);
    srv.start();

    double serverBps = 0.0;
    {
        // Warm-up pass: fills the engine caches and faults in the path.
        auto warm = server::Client::connectUnix(sopts.unixPath);
        auto out = warm.predictMany(batch);
        for (std::size_t i = 0; i < batch.size(); ++i)
            if (!samePrediction(out[i], serial[i])) {
                std::fprintf(stderr, "MISMATCH vs serial at block %zu\n",
                             i);
                identical = false;
            }

        double bestMs = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            std::atomic<int> errors{0};
            auto t0 = std::chrono::steady_clock::now();
            std::vector<std::thread> clients;
            for (int c = 0; c < kClients; ++c)
                clients.emplace_back([&] {
                    try {
                        auto cl =
                            server::Client::connectUnix(sopts.unixPath);
                        std::vector<model::Prediction> res;
                        for (int p = 0; p < kPasses; ++p) {
                            cl.predictManyInto(batch, res);
                            if (!samePrediction(res.front(),
                                                serial.front()))
                                ++errors;
                        }
                    } catch (const std::exception &e) {
                        std::fprintf(stderr, "client error: %s\n",
                                     e.what());
                        ++errors;
                    }
                });
            for (auto &t : clients)
                t.join();
            auto t1 = std::chrono::steady_clock::now();
            if (errors.load() > 0)
                identical = false;
            bestMs = std::min(
                bestMs, std::chrono::duration<double, std::milli>(t1 - t0)
                            .count());
        }
        serverBps = 1000.0 * nBlocks * kClients * kPasses / bestMs;
    }

    // ---- latency phase -----------------------------------------------------
    double p50 = 0.0, p99 = 0.0;
    {
        auto cl = server::Client::connectUnix(sopts.unixPath);
        constexpr int kProbes = 2000;
        std::vector<double> us;
        us.reserve(kProbes);
        for (int i = 0; i < kProbes; ++i) {
            const auto &r = batch[static_cast<std::size_t>(i) %
                                  batch.size()];
            auto t0 = std::chrono::steady_clock::now();
            auto p = cl.predict(r.bytes, r.arch, r.loop, r.config);
            auto t1 = std::chrono::steady_clock::now();
            us.push_back(
                std::chrono::duration<double, std::micro>(t1 - t0)
                    .count());
            if (!samePrediction(
                    p, serial[static_cast<std::size_t>(i) %
                              batch.size()]))
                identical = false;
        }
        p50 = percentile(us, 50);
        p99 = percentile(us, 99);

        // Explain round trip: the wire flag must yield exactly the
        // eager full-payload prediction.
        {
            const auto &r = batch.front();
            auto p = cl.predict(r.bytes, r.arch, r.loop, r.config,
                                model::Payload::Full);
            auto ref = model::predict(bb::analyze(r.bytes, r.arch),
                                      r.loop, r.config, scratch,
                                      model::Payload::Full);
            if (!samePrediction(p, ref)) {
                std::fprintf(stderr,
                             "MISMATCH on explain round trip\n");
                identical = false;
            }
        }
    }

    server::ServerStats st = srv.stats();
    srv.stop();

    std::printf("%-34s %12s %10s\n", "Configuration", "blocks/s",
                "vs serial");
    bench::printRule();
    std::printf("%-34s %12.0f %9.2fx\n", "serial (analyze+predict)",
                serialBps, 1.0);
    std::printf("%-34s %12.0f %9.2fx\n",
                "in-process engine, cached", inprocBps,
                inprocBps / serialBps);
    std::printf("%-34s %12.0f %9.2fx\n", "server loopback, 4 clients",
                serverBps, serverBps / serialBps);
    bench::printRule();
    std::printf("server vs in-process cached: %.0f%% (target >= 50%%)\n",
                100.0 * serverBps / inprocBps);
    std::printf("round-trip latency: p50 %.1f us, p99 %.1f us\n", p50,
                p99);
    std::printf("server stats: %llu requests, %llu batches "
                "(max %llu/batch), %llu prediction-cache hits\n",
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.batches),
                static_cast<unsigned long long>(st.maxBatch),
                static_cast<unsigned long long>(st.predictionCacheHits));

    // ---- eviction-at-capacity demo ----------------------------------------
    {
        // Engine generation bound (32 * 16 shards = 512) below the
        // 600-block working set: two-generation eviction keeps the set
        // circulating; the old epoch eviction collapsed to ~0% here.
        engine::PredictionEngine::Options tight;
        tight.numThreads = 4;
        tight.maxEntriesPerShard = 32;
        engine::PredictionEngine tightEngine(tight);
        server::ServerOptions topts;
        topts.unixPath = socketPath() + ".tight";
        topts.engine = &tightEngine;
        server::PredictionServer tightSrv(topts);
        tightSrv.start();
        auto cl = server::Client::connectUnix(topts.unixPath);
        for (int p = 0; p < 4; ++p)
            cl.predictMany(batch); // reach steady state
        server::ServerStats before = cl.stats();
        cl.predictMany(batch);
        server::ServerStats after = cl.stats();
        const double hitRate =
            static_cast<double>(after.predictionCacheHits -
                                before.predictionCacheHits) /
            nBlocks;
        std::printf("capacity-bound engine (512-entry generations, "
                    "%zu-block set): steady-state hit rate %.0f%%\n",
                    batch.size(), 100.0 * hitRate);
        report.scalar("capacity_bound_hit_rate", hitRate);
        tightSrv.stop();
    }

    bench::printRule();
    std::printf("bit-identical to serial predict: %s\n",
                identical ? "yes" : "NO");

    report.row("serial");
    report.metric("threads", 1);
    report.metric("blocks_per_sec", serialBps);
    report.row("inprocess_cached_4t");
    report.metric("threads", 4);
    report.metric("blocks_per_sec", inprocBps);
    report.row("server_loopback");
    report.metric("threads", 4);
    report.metric("blocks_per_sec", serverBps);
    report.scalar("p50_us", p50);
    report.scalar("p99_us", p99);
    report.boolean("bit_identical", identical);
    report.write();
    return identical ? 0 : 1;
}
