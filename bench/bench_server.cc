/**
 * @file
 * Loopback benchmark of the streaming prediction server: concurrent
 * clients over a Unix-domain socket, end-to-end blocks/sec and
 * per-request latency percentiles, compared against the in-process
 * cached serving rate of the same engine configuration (the last row
 * of bench_throughput).
 *
 * Also demonstrates the two-generation cache eviction: a server whose
 * engine is capacity-bound below the working set keeps a high
 * steady-state hit rate where the old epoch eviction collapsed to
 * near zero.
 *
 * Every wire prediction is checked bit-identical to serial
 * model::predict; the binary exits non-zero on any mismatch. Results
 * are written to BENCH_server.json.
 */
#include "bench_common.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include "analysis/snapshot.h"
#include "cluster/membership.h"
#include "cluster/router.h"
#include "facile/component.h"
#include "facile/predictor.h"
#include "server/client.h"
#include "server/server.h"
#include "support/stats.h"

using namespace facile;

namespace {

using bench::samePrediction;

/**
 * UDS path candidates, most-preferred first. Sandboxed CI runners may
 * forbid /tmp binds (or mount it noexec/nobind), so the bench retries
 * across $TMPDIR and the working directory instead of aborting the
 * job on the first EACCES/EPERM.
 */
std::vector<std::string>
socketPathCandidates(const char *suffix)
{
    const std::string name =
        "facile_bench_" + std::to_string(::getpid()) + suffix + ".sock";
    std::vector<std::string> candidates;
    candidates.push_back("/tmp/" + name);
    if (const char *tmpdir = std::getenv("TMPDIR"))
        if (*tmpdir)
            candidates.push_back(std::string(tmpdir) + "/" + name);
    candidates.push_back(name); // working directory
    return candidates;
}

/**
 * Start @p srv on the first bindable UDS candidate; falls back to an
 * ephemeral loopback TCP port when every path fails (same protocol,
 * same bit-identity guarantees — only the transport differs). Returns
 * false only when nothing could be bound at all.
 */
bool
startWithFallback(std::unique_ptr<server::PredictionServer> &srv,
                  server::ServerOptions opts, const char *suffix)
{
    for (const std::string &path : socketPathCandidates(suffix)) {
        opts.unixPath = path;
        opts.tcpPort = -1;
        srv = std::make_unique<server::PredictionServer>(opts);
        try {
            srv->start();
            return true;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "note: cannot serve on %s (%s); "
                                 "retrying\n",
                         path.c_str(), e.what());
        }
    }
    opts.unixPath.clear();
    opts.tcpPort = 0; // ephemeral loopback
    srv = std::make_unique<server::PredictionServer>(opts);
    try {
        srv->start();
        std::fprintf(stderr, "note: UDS unavailable; using loopback "
                             "TCP port %d\n",
                     srv->tcpPort());
        return true;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "note: cannot bind any listener (%s)\n",
                     e.what());
        return false;
    }
}

/** Connect to whichever transport startWithFallback ended up on. */
server::Client
connectTo(const server::PredictionServer &srv)
{
    if (!srv.unixPath().empty())
        return server::Client::connectUnix(srv.unixPath());
    return server::Client::connectTcp("127.0.0.1", srv.tcpPort());
}

/** The endpoint a router should dial to reach @p srv. */
cluster::Endpoint
endpointOf(const server::PredictionServer &srv)
{
    if (!srv.unixPath().empty())
        return cluster::parseEndpoint("unix:" + srv.unixPath());
    return cluster::parseEndpoint("127.0.0.1:" +
                                  std::to_string(srv.tcpPort()));
}

/** Start @p router on the first bindable UDS candidate, else TCP. */
bool
startRouterWithFallback(std::unique_ptr<cluster::Router> &router,
                        cluster::RouterOptions opts, const char *suffix)
{
    for (const std::string &path : socketPathCandidates(suffix)) {
        opts.unixPath = path;
        opts.tcpPort = -1;
        router = std::make_unique<cluster::Router>(opts);
        try {
            router->start();
            return true;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "note: cannot route on %s (%s); "
                                 "retrying\n",
                         path.c_str(), e.what());
        }
    }
    opts.unixPath.clear();
    opts.tcpPort = 0;
    router = std::make_unique<cluster::Router>(opts);
    try {
        router->start();
        return true;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "note: cannot bind router listener (%s)\n",
                     e.what());
        return false;
    }
}

server::Client
connectToRouter(const cluster::Router &router)
{
    if (!router.unixPath().empty())
        return server::Client::connectUnix(router.unixPath());
    return server::Client::connectTcp("127.0.0.1", router.tcpPort());
}

} // namespace

int
main()
{
    const auto &suite = bench::evalSuite();
    const uarch::UArch arch = uarch::UArch::SKL;
    const bool loop = true;
    constexpr int kClients = 4;
    constexpr int kPasses = 10; // per client per timed repeat

    std::vector<engine::Request> batch;
    batch.reserve(suite.size());
    for (const auto &b : suite)
        batch.push_back({b.bytesL, arch, loop, {}});
    const auto nBlocks = static_cast<double>(batch.size());

    bench::BenchReport report("server");
    report.scalar("suite_blocks", nBlocks);
    report.scalar("arch", "SKL");
    report.boolean("quick_mode", bench::quickMode());
    report.scalar("clients", kClients);

    // Serial reference (also the bit-identity oracle), in the serving
    // mode the wire defaults to: explicit scratch, bound-only payload.
    model::PredictScratch scratch;
    std::vector<model::Prediction> serial(batch.size());
    const double serialMs = eval::bestOfRunsMs([&] {
        for (std::size_t i = 0; i < batch.size(); ++i)
            serial[i] =
                model::predict(bb::analyze(batch[i].bytes, arch), loop,
                               batch[i].config, scratch);
    });
    const double serialBps = 1000.0 * nBlocks / serialMs;

    // In-process cached serving rate: the bar the socket server is
    // measured against (same engine configuration, no wire).
    double inprocBps = 0.0;
    {
        engine::PredictionEngine::Options opts;
        opts.numThreads = 4;
        engine::PredictionEngine eng(opts);
        eng.predictBatch(batch); // fill caches
        const double ms =
            eval::bestOfRunsMs([&] { eng.predictBatch(batch); });
        inprocBps = 1000.0 * nBlocks / ms;
    }

    std::printf("SERVER THROUGHPUT: loopback UDS, %d concurrent clients, "
                "%zu-block suite (TPL, %s)\n",
                kClients, batch.size(), uarch::config(arch).abbrev);
    bench::printRule();

    bool identical = true;

    // ---- throughput phase --------------------------------------------------
    engine::PredictionEngine::Options engOpts;
    engOpts.numThreads = 4;
    engine::PredictionEngine serverEngine(engOpts);
    server::ServerOptions sopts;
    sopts.engine = &serverEngine;
    // The connection-scaling phase pipelines the whole suite from 256
    // connections at once; keep that burst inside the admission bound
    // so the phase measures throughput, not shedding.
    sopts.maxPending = 1u << 18;
    std::unique_ptr<server::PredictionServer> srvPtr;
    if (!startWithFallback(srvPtr, sopts, "")) {
        // Nothing bindable in this sandbox: report and bow out without
        // failing the job (there is no wire to check bit-identity on).
        std::printf("SKIPPED: no bindable listener in this "
                    "environment\n");
        report.boolean("skipped_no_listener", true);
        report.write();
        return 0;
    }
    server::PredictionServer &srv = *srvPtr;

    double serverBps = 0.0;
    {
        // Warm-up pass: fills the engine caches and faults in the path.
        auto warm = connectTo(srv);
        auto out = warm.predictMany(batch);
        for (std::size_t i = 0; i < batch.size(); ++i)
            if (!samePrediction(out[i], serial[i])) {
                std::fprintf(stderr, "MISMATCH vs serial at block %zu\n",
                             i);
                identical = false;
            }

        double bestMs = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            std::atomic<int> errors{0};
            auto t0 = std::chrono::steady_clock::now();
            std::vector<std::thread> clients;
            for (int c = 0; c < kClients; ++c)
                clients.emplace_back([&] {
                    try {
                        auto cl = connectTo(srv);
                        std::vector<model::Prediction> res;
                        for (int p = 0; p < kPasses; ++p) {
                            cl.predictManyInto(batch, res);
                            if (!samePrediction(res.front(),
                                                serial.front()))
                                ++errors;
                        }
                    } catch (const std::exception &e) {
                        std::fprintf(stderr, "client error: %s\n",
                                     e.what());
                        ++errors;
                    }
                });
            for (auto &t : clients)
                t.join();
            auto t1 = std::chrono::steady_clock::now();
            if (errors.load() > 0)
                identical = false;
            bestMs = std::min(
                bestMs, std::chrono::duration<double, std::milli>(t1 - t0)
                            .count());
        }
        serverBps = 1000.0 * nBlocks * kClients * kPasses / bestMs;
    }

    // ---- latency phase -----------------------------------------------------
    double p50 = 0.0, p99 = 0.0;
    {
        auto cl = connectTo(srv);
        constexpr int kProbes = 2000;
        std::vector<double> us;
        us.reserve(kProbes);
        for (int i = 0; i < kProbes; ++i) {
            const auto &r = batch[static_cast<std::size_t>(i) %
                                  batch.size()];
            auto t0 = std::chrono::steady_clock::now();
            auto p = cl.predict(r.bytes, r.arch, r.loop, r.config);
            auto t1 = std::chrono::steady_clock::now();
            us.push_back(
                std::chrono::duration<double, std::micro>(t1 - t0)
                    .count());
            if (!samePrediction(
                    p, serial[static_cast<std::size_t>(i) %
                              batch.size()]))
                identical = false;
        }
        p50 = percentile(us, 50);
        p99 = percentile(us, 99);

        // Explain round trip: the wire flag must yield exactly the
        // eager full-payload prediction.
        {
            const auto &r = batch.front();
            auto p = cl.predict(r.bytes, r.arch, r.loop, r.config,
                                model::Payload::Full);
            auto ref = model::predict(bb::analyze(r.bytes, r.arch),
                                      r.loop, r.config, scratch,
                                      model::Payload::Full);
            if (!samePrediction(p, ref)) {
                std::fprintf(stderr,
                             "MISMATCH on explain round trip\n");
                identical = false;
            }
        }
    }

    // ---- connection-scaling phase ------------------------------------------
    // Same suite pushed through 256 concurrent connections, one
    // pipelined pass per connection per rep. The server holds all 256
    // on its epoll loops for the whole phase; like any load generator
    // (wrk et al.) the client side multiplexes them over a driver
    // pool — the same kClients threads as the 4-client row, so the
    // offered load is identical and the row isolates what 64x more
    // connections cost, rather than measuring 256 runnable client
    // threads fighting the bench host's scheduler.
    double serverBpsC256 = 0.0;
    constexpr int kManyClients = 256;
    {
        constexpr int kDrivers = kClients;
        static_assert(kManyClients % kDrivers == 0);
        std::vector<server::Client> conns;
        conns.reserve(kManyClients);
        for (int c = 0; c < kManyClients; ++c)
            conns.push_back(connectTo(srv));
        double bestMs = 1e300;
        for (int rep = 0; rep < 3; ++rep) {
            std::atomic<int> errors{0};
            auto t0 = std::chrono::steady_clock::now();
            std::vector<std::thread> drivers;
            for (int d = 0; d < kDrivers; ++d)
                drivers.emplace_back([&, d] {
                    try {
                        std::vector<model::Prediction> res;
                        for (int c = d; c < kManyClients; c += kDrivers) {
                            conns[static_cast<std::size_t>(c)]
                                .predictManyInto(batch, res);
                            if (!samePrediction(res.front(),
                                                serial.front()))
                                ++errors;
                        }
                    } catch (const std::exception &e) {
                        std::fprintf(stderr, "client error: %s\n",
                                     e.what());
                        ++errors;
                    }
                });
            for (auto &t : drivers)
                t.join();
            auto t1 = std::chrono::steady_clock::now();
            if (errors.load() > 0)
                identical = false;
            bestMs = std::min(
                bestMs, std::chrono::duration<double, std::milli>(t1 - t0)
                            .count());
        }
        serverBpsC256 = 1000.0 * nBlocks * kManyClients / bestMs;
    }

    server::ServerStats st = srv.stats();
    srv.stop();

    // ---- cluster scaling phase (facile_lb router) --------------------------
    // N independent backends (one engine each) behind the rendezvous-
    // hash router; the same 4-driver offered load as the single-server
    // row, pushed through the one router socket. Sharding means each
    // backend's caches hold ~1/N of the suite, so the aggregate rate
    // measures the router data plane plus real shard parallelism.
    std::vector<std::pair<int, double>> lbRows;
    {
        const std::vector<int> fleets = bench::quickMode()
                                            ? std::vector<int>{2}
                                            : std::vector<int>{2, 4, 8};
        for (const int nBackends : fleets) {
            std::vector<std::unique_ptr<engine::PredictionEngine>>
                engines;
            std::vector<std::unique_ptr<server::PredictionServer>>
                backends;
            cluster::RouterOptions ro;
            bool ok = true;
            for (int i = 0; i < nBackends && ok; ++i) {
                engine::PredictionEngine::Options eo;
                eo.numThreads = 2;
                engines.push_back(
                    std::make_unique<engine::PredictionEngine>(eo));
                server::ServerOptions bo;
                bo.engine = engines.back().get();
                bo.maxPending = 1u << 18;
                const std::string suffix = "_lb" +
                                           std::to_string(nBackends) +
                                           "_" + std::to_string(i);
                std::unique_ptr<server::PredictionServer> b;
                ok = startWithFallback(b, bo, suffix.c_str());
                if (ok) {
                    ro.backends.push_back(endpointOf(*b));
                    backends.push_back(std::move(b));
                }
            }
            std::unique_ptr<cluster::Router> router;
            const std::string rsuffix =
                "_router" + std::to_string(nBackends);
            if (!ok ||
                !startRouterWithFallback(router, ro, rsuffix.c_str())) {
                std::fprintf(stderr, "note: skipping %d-backend router "
                                     "row (cannot bind)\n",
                             nBackends);
                for (auto &b : backends)
                    b->stop();
                continue;
            }
            {
                auto warm = connectToRouter(*router);
                auto out = warm.predictMany(batch);
                for (std::size_t i = 0; i < batch.size(); ++i)
                    if (!samePrediction(out[i], serial[i])) {
                        std::fprintf(stderr,
                                     "MISMATCH via router at block "
                                     "%zu\n",
                                     i);
                        identical = false;
                    }
            }
            double bestMs = 1e300;
            for (int rep = 0; rep < 3; ++rep) {
                std::atomic<int> errors{0};
                auto t0 = std::chrono::steady_clock::now();
                std::vector<std::thread> clients;
                for (int c = 0; c < kClients; ++c)
                    clients.emplace_back([&] {
                        try {
                            auto cl = connectToRouter(*router);
                            std::vector<model::Prediction> res;
                            for (int p = 0; p < kPasses; ++p) {
                                cl.predictManyInto(batch, res);
                                if (!samePrediction(res.front(),
                                                    serial.front()))
                                    ++errors;
                            }
                        } catch (const std::exception &e) {
                            std::fprintf(stderr, "router client "
                                                 "error: %s\n",
                                         e.what());
                            ++errors;
                        }
                    });
                for (auto &t : clients)
                    t.join();
                auto t1 = std::chrono::steady_clock::now();
                if (errors.load() > 0)
                    identical = false;
                bestMs = std::min(
                    bestMs,
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
            }
            lbRows.emplace_back(nBackends, 1000.0 * nBlocks * kClients *
                                               kPasses / bestMs);
            router->stop();
            for (auto &b : backends)
                b->stop();
        }
    }

    // ---- wire-bootstrap gate -----------------------------------------------
    // A replica bootstrapping from a peer must receive EXACTLY the
    // bytes a local saveSnapshot would have produced, and a fresh
    // engine loaded from the wire image must serve the whole suite
    // from its prediction cache, bit-identically.
    bool wireBootstrapIdentical = true;
    {
        engine::PredictionEngine::Options eo;
        eo.numThreads = 2;
        engine::PredictionEngine bootEngine(eo);
        server::ServerOptions bo;
        bo.engine = &bootEngine;
        std::unique_ptr<server::PredictionServer> bootSrv;
        if (startWithFallback(bootSrv, bo, "_boot")) {
            auto cl = connectTo(*bootSrv);
            cl.predictMany(batch);
            const std::vector<std::uint8_t> wire = cl.fetchSnapshot();
            const std::vector<std::uint8_t> local =
                analysis::saveSnapshotToMemory(
                    {&bootEngine, 1, analysis::SnapshotFormat::V2});
            if (wire != local) {
                std::fprintf(stderr, "wire snapshot differs from local "
                                     "save (%zu vs %zu bytes)\n",
                             wire.size(), local.size());
                wireBootstrapIdentical = false;
            }
            engine::PredictionEngine freshEngine(eo);
            analysis::loadSnapshotFromMemory(wire.data(), wire.size(),
                                             {&freshEngine});
            engine::BatchStats bs;
            auto out = freshEngine.predictBatch(batch, &bs);
            for (std::size_t i = 0; i < batch.size(); ++i)
                if (!samePrediction(out[i], serial[i]))
                    wireBootstrapIdentical = false;
            if (bs.predictionCacheHits != batch.size()) {
                std::fprintf(stderr, "wire-bootstrapped engine served "
                                     "%zu/%zu from cache\n",
                             bs.predictionCacheHits, batch.size());
                wireBootstrapIdentical = false;
            }
            bootSrv->stop();
        }
        if (!wireBootstrapIdentical)
            identical = false;
    }

    std::printf("%-34s %12s %10s\n", "Configuration", "blocks/s",
                "vs serial");
    bench::printRule();
    std::printf("%-34s %12.0f %9.2fx\n", "serial (analyze+predict)",
                serialBps, 1.0);
    std::printf("%-34s %12.0f %9.2fx\n",
                "in-process engine, cached", inprocBps,
                inprocBps / serialBps);
    std::printf("%-34s %12.0f %9.2fx\n", "server loopback, 4 clients",
                serverBps, serverBps / serialBps);
    std::printf("%-34s %12.0f %9.2fx\n", "server loopback, 256 conns",
                serverBpsC256, serverBpsC256 / serialBps);
    for (const auto &[n, bps] : lbRows) {
        char label[48];
        std::snprintf(label, sizeof label, "router, %d backends", n);
        std::printf("%-34s %12.0f %9.2fx\n", label, bps,
                    bps / serialBps);
    }
    bench::printRule();
    std::printf("wire-bootstrap image identical to local save: %s\n",
                wireBootstrapIdentical ? "yes" : "NO");
    std::printf("server vs in-process cached: %.0f%% (target >= 50%%)\n",
                100.0 * serverBps / inprocBps);
    std::printf("round-trip latency: p50 %.1f us, p99 %.1f us\n", p50,
                p99);
    std::printf("server stats: %llu requests, %llu batches "
                "(max %llu/batch), %llu prediction-cache hits\n",
                static_cast<unsigned long long>(st.requests),
                static_cast<unsigned long long>(st.batches),
                static_cast<unsigned long long>(st.maxBatch),
                static_cast<unsigned long long>(st.predictionCacheHits));
    std::printf("event loop: %llu epoll wakeups, %llu short writes, "
                "%llu ring-full rejections\n",
                static_cast<unsigned long long>(st.epollWakeups),
                static_cast<unsigned long long>(st.shortWrites),
                static_cast<unsigned long long>(st.ringFull));

    // ---- eviction-at-capacity demo ----------------------------------------
    {
        // Engine generation bound (32 * 16 shards = 512) below the
        // 600-block working set: two-generation eviction keeps the set
        // circulating; the old epoch eviction collapsed to ~0% here.
        engine::PredictionEngine::Options tight;
        tight.numThreads = 4;
        tight.maxEntriesPerShard = 32;
        engine::PredictionEngine tightEngine(tight);
        server::ServerOptions topts;
        topts.engine = &tightEngine;
        std::unique_ptr<server::PredictionServer> tightSrv;
        if (startWithFallback(tightSrv, topts, "_tight")) {
            auto cl = connectTo(*tightSrv);
            for (int p = 0; p < 4; ++p)
                cl.predictMany(batch); // reach steady state
            server::ServerStats before = cl.stats();
            cl.predictMany(batch);
            server::ServerStats after = cl.stats();
            const double hitRate =
                static_cast<double>(after.predictionCacheHits -
                                    before.predictionCacheHits) /
                nBlocks;
            std::printf("capacity-bound engine (512-entry generations, "
                        "%zu-block set): steady-state hit rate %.0f%%\n",
                        batch.size(), 100.0 * hitRate);
            report.scalar("capacity_bound_hit_rate", hitRate);
            tightSrv->stop();
        }
    }

    bench::printRule();
    std::printf("bit-identical to serial predict: %s\n",
                identical ? "yes" : "NO");

    report.row("serial");
    report.metric("threads", 1);
    report.metric("blocks_per_sec", serialBps);
    report.row("inprocess_cached_4t");
    report.metric("threads", 4);
    report.metric("blocks_per_sec", inprocBps);
    report.row("server_loopback");
    report.metric("threads", 4);
    report.metric("blocks_per_sec", serverBps);
    report.row("server_loopback_c256");
    report.metric("connections", kManyClients);
    report.metric("blocks_per_sec", serverBpsC256);
    for (const auto &[n, bps] : lbRows) {
        report.row("lb_backends_" + std::to_string(n));
        report.metric("backends", n);
        report.metric("blocks_per_sec", bps);
    }
    report.scalar("p50_us", p50);
    report.scalar("p99_us", p99);
    report.boolean("bit_identical", identical);
    report.boolean("wire_bootstrap_identical", wireBootstrapIdentical);
    report.write();
    return identical ? 0 : 1;
}
