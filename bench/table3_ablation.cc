/**
 * @file
 * Reproduces Table 3: influence of Facile's components on prediction
 * accuracy for Rocket Lake, Skylake, and Sandy Bridge — the Simple*
 * substitutions, the "only X" single-component predictors, and the
 * "w/o X" leave-one-out variants, on BHiveU and BHiveL.
 *
 * Cells the paper leaves empty (components unused under a notion) are
 * printed as "-".
 */
#include "bench_common.h"

#include "baselines/predictor_iface.h"

using namespace facile;
using model::Component;
using model::ModelConfig;

namespace {

struct Variant
{
    std::string name;
    ModelConfig config;
    bool runU = true;
    bool runL = true;
};

std::vector<Variant>
variants()
{
    std::vector<Variant> v;
    v.push_back({"Facile", {}, true, true});

    ModelConfig simplePredec;
    simplePredec.simplePredec = true;
    v.push_back({"Facile w/ SimplePredec", simplePredec, true, false});

    ModelConfig simpleDec;
    simpleDec.simpleDec = true;
    v.push_back({"Facile w/ SimpleDec", simpleDec, true, false});

    struct OnlyRow
    {
        Component c;
        bool u, l;
    };
    const OnlyRow onlyRows[] = {
        {Component::Predec, true, false},
        {Component::Dec, true, false},
        {Component::DSB, false, true},
        {Component::LSD, false, true},
        {Component::Issue, true, true},
        {Component::Ports, true, true},
        {Component::Precedence, true, true},
    };
    for (const auto &r : onlyRows)
        v.push_back({"only " + std::string(model::componentName(r.c)),
                     ModelConfig::only(r.c), r.u, r.l});

    // Combination rows of Table 3.
    ModelConfig predecPorts = ModelConfig::only(Component::Predec);
    predecPorts.usePorts = true;
    v.push_back({"only Predec+Ports", predecPorts, true, false});

    ModelConfig precPorts = ModelConfig::only(Component::Precedence);
    precPorts.usePorts = true;
    v.push_back({"only Precedence+Ports", precPorts, true, true});

    const OnlyRow withoutRows[] = {
        {Component::Predec, true, false},
        {Component::Dec, true, false},
        {Component::DSB, false, true},
        {Component::LSD, false, true},
        {Component::Issue, true, true},
        {Component::Ports, true, true},
        {Component::Precedence, true, true},
    };
    for (const auto &r : withoutRows)
        v.push_back({"Facile w/o " +
                         std::string(model::componentName(r.c)),
                     ModelConfig::without(r.c), r.u, r.l});
    return v;
}

} // namespace

int
main()
{
    std::printf("TABLE 3: Influence of components on prediction accuracy\n");
    std::printf("(ground truth: reference simulator; '-' where the paper "
                "leaves cells empty)\n");
    bench::printRule();
    std::printf("%-24s %10s %10s %12s %10s\n", "Predictor", "MAPE(U)",
                "Kendall(U)", "MAPE(L)", "Kendall(L)");

    for (uarch::UArch a :
         {uarch::UArch::RKL, uarch::UArch::SKL, uarch::UArch::SNB}) {
        const auto &suite = bench::archSuite(a);
        bench::printRule();
        std::printf("%s\n", uarch::config(a).name);
        bench::printRule();
        for (const auto &variant : variants()) {
            baselines::FacilePredictor p(variant.config, variant.name);
            std::printf("%-24s", variant.name.c_str());
            if (variant.runU) {
                eval::Accuracy u = eval::evaluate(p, suite, false);
                std::printf(" %9.2f%% %10.4f", u.mape * 100.0, u.kendall);
            } else {
                std::printf(" %10s %10s", "-", "-");
            }
            if (variant.runL) {
                eval::Accuracy l = eval::evaluate(p, suite, true);
                std::printf(" %11.2f%% %10.4f", l.mape * 100.0, l.kendall);
            } else {
                std::printf(" %12s %10s", "-", "-");
            }
            std::printf("\n");
        }
    }
    return 0;
}
