/**
 * @file
 * Reproduces Table 3: influence of Facile's components on prediction
 * accuracy for Rocket Lake, Skylake, and Sandy Bridge — the Simple*
 * substitutions, the "only X" single-component predictors, and the
 * "w/o X" leave-one-out variants, on BHiveU and BHiveL.
 *
 * Cells the paper leaves empty (components unused under a notion) are
 * printed as "-".
 */
#include "bench_common.h"

#include "baselines/predictor_iface.h"
#include "facile/component.h"

using namespace facile;

int
main()
{
    std::printf("TABLE 3: Influence of components on prediction accuracy\n");
    std::printf("(ground truth: reference simulator; '-' where the paper "
                "leaves cells empty)\n");
    bench::printRule();
    std::printf("%-24s %10s %10s %12s %10s\n", "Predictor", "MAPE(U)",
                "Kendall(U)", "MAPE(L)", "Kendall(L)");

    for (uarch::UArch a :
         {uarch::UArch::RKL, uarch::UArch::SKL, uarch::UArch::SNB}) {
        const auto &suite = bench::archSuite(a);
        bench::printRule();
        std::printf("%s\n", uarch::config(a).name);
        bench::printRule();
        // Rows derived from the component registry metadata (names,
        // Simple* substitutes, and per-notion participation) instead of
        // a hand-rolled list.
        for (const auto &variant : model::ablationVariants()) {
            baselines::FacilePredictor p(variant.config, variant.name);
            std::printf("%-24s", variant.name.c_str());
            if (variant.runU) {
                eval::Accuracy u = eval::evaluate(p, suite, false);
                std::printf(" %9.2f%% %10.4f", u.mape * 100.0, u.kendall);
            } else {
                std::printf(" %10s %10s", "-", "-");
            }
            if (variant.runL) {
                eval::Accuracy l = eval::evaluate(p, suite, true);
                std::printf(" %11.2f%% %10.4f", l.mape * 100.0, l.kendall);
            } else {
                std::printf(" %12s %10s", "-", "-");
            }
            std::printf("\n");
        }
    }
    return 0;
}
