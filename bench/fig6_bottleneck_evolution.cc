/**
 * @file
 * Reproduces Figure 6: the evolution of bottlenecks under TPU from
 * Sandy Bridge via Haswell and Cascade Lake to Rocket Lake.
 *
 * For every benchmark the bottleneck component is determined with the
 * paper's front-end-first tie-break (model::bottleneckPriority(); under
 * TPU the DSB/LSD slots are never evaluated); the Sankey diagram is
 * rendered as per-µarch shares plus the three transition matrices
 * between consecutive generations.
 */
#include "bench_common.h"

#include "facile/component.h"

using namespace facile;
using model::Component;

namespace {

constexpr int kNumC = model::kNumComponents;

int
bottleneckOf(const bb::BasicBlock &blk)
{
    // Bound-only path: the bottleneck classification needs no payload.
    return static_cast<int>(
        model::predict(blk, false, {}, model::tlsPredictScratch())
            .primaryBottleneck);
}

} // namespace

int
main()
{
    const uarch::UArch chain[] = {uarch::UArch::SNB, uarch::UArch::HSW,
                                  uarch::UArch::CLX, uarch::UArch::RKL};

    std::printf("FIGURE 6: evolution of bottlenecks under TPU\n");
    std::printf("(share of benchmarks per bottleneck component; "
                "front-end-first tie-break)\n\n");

    // Classify every benchmark on every µarch of the chain.
    std::vector<std::vector<int>> cls; // [arch][benchmark]
    for (uarch::UArch a : chain) {
        const auto &suite = bench::archSuite(a);
        std::vector<int> v;
        v.reserve(suite.blocksU.size());
        for (const auto &blk : suite.blocksU)
            v.push_back(bottleneckOf(blk));
        cls.push_back(std::move(v));
    }
    const std::size_t n = cls[0].size();

    // Shares per µarch.
    std::printf("%-12s", "Bottleneck");
    for (uarch::UArch a : chain)
        std::printf(" %8s", uarch::config(a).abbrev);
    std::printf("\n");
    bench::printRule(48);
    for (int c = 0; c < kNumC; ++c) {
        Component comp = static_cast<Component>(c);
        if (comp == Component::DSB || comp == Component::LSD)
            continue; // not used under TPU
        std::printf("%-12s", model::componentName(comp).data());
        for (std::size_t ai = 0; ai < cls.size(); ++ai) {
            int count = 0;
            for (std::size_t i = 0; i < n; ++i)
                count += cls[ai][i] == c;
            std::printf(" %7.1f%%", 100.0 * count / static_cast<double>(n));
        }
        std::printf("\n");
    }

    // Transition matrices (the Sankey flows).
    for (std::size_t step = 0; step + 1 < cls.size(); ++step) {
        std::printf("\nFlows from %s to %s (%% of all benchmarks):\n",
                    uarch::config(chain[step]).abbrev,
                    uarch::config(chain[step + 1]).abbrev);
        std::printf("%-12s", "from\\to");
        for (int c = 0; c < kNumC; ++c) {
            Component comp = static_cast<Component>(c);
            if (comp == Component::DSB || comp == Component::LSD)
                continue;
            std::printf(" %10s", model::componentName(comp).data());
        }
        std::printf("\n");
        for (int from = 0; from < kNumC; ++from) {
            Component fc = static_cast<Component>(from);
            if (fc == Component::DSB || fc == Component::LSD)
                continue;
            std::printf("%-12s", model::componentName(fc).data());
            for (int to = 0; to < kNumC; ++to) {
                Component tc = static_cast<Component>(to);
                if (tc == Component::DSB || tc == Component::LSD)
                    continue;
                int count = 0;
                for (std::size_t i = 0; i < n; ++i)
                    count += cls[step][i] == from &&
                             cls[step + 1][i] == to;
                std::printf(" %9.1f%%",
                            100.0 * count / static_cast<double>(n));
            }
            std::printf("\n");
        }
    }

    // The paper's headline observation.
    auto share = [&](std::size_t ai, Component c) {
        int count = 0;
        for (std::size_t i = 0; i < n; ++i)
            count += cls[ai][i] == static_cast<int>(c);
        return 100.0 * count / static_cast<double>(n);
    };
    std::printf("\nPredec-bound share: %.1f%% (SNB) -> %.1f%% (RKL); "
                "Ports-bound share: %.1f%% (SNB) -> %.1f%% (RKL)\n",
                share(0, Component::Predec), share(3, Component::Predec),
                share(0, Component::Ports), share(3, Component::Ports));
    return 0;
}
