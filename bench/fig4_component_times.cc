/**
 * @file
 * Reproduces Figure 4: distributions of the execution time of Facile's
 * components under TPU and TPL, including the fixed per-benchmark
 * overhead (parsing + disassembly + annotation).
 *
 * For each component we report mean, median, p90, and max time per
 * benchmark in milliseconds over the suite, measured on Skylake blocks
 * (as in the paper's efficiency experiments).
 */
#include "bench_common.h"

#include <chrono>
#include <functional>

#include "facile/component.h"
#include "support/stats.h"

using namespace facile;
using Clock = std::chrono::steady_clock;

namespace {

struct Row
{
    std::string name;
    std::vector<double> timesMs;
};

void
printRows(const std::vector<Row> &rows)
{
    std::printf("%-12s %10s %10s %10s %10s\n", "Component", "mean(ms)",
                "median", "p90", "max");
    for (const auto &r : rows) {
        auto t = r.timesMs;
        std::printf("%-12s %10.5f %10.5f %10.5f %10.5f\n", r.name.c_str(),
                    mean(t), percentile(t, 50), percentile(t, 90),
                    percentile(t, 100));
    }
}

Row
timeComponent(const std::string &name,
              const std::vector<const std::vector<std::uint8_t> *> &blocks,
              const std::function<double(const bb::BasicBlock &)> &fn)
{
    Row row{name, {}};
    volatile double sink = 0.0;
    for (const auto *bytes : blocks) {
        bb::BasicBlock blk = bb::analyze(*bytes, uarch::UArch::SKL);
        auto t0 = Clock::now();
        sink = sink + fn(blk);
        auto t1 = Clock::now();
        row.timesMs.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    (void)sink;
    return row;
}

} // namespace

int
main()
{
    const auto &suite = bench::evalSuite();

    for (bool loop : {false, true}) {
        std::vector<const std::vector<std::uint8_t> *> blocks;
        for (const auto &b : suite)
            blocks.push_back(loop ? &b.bytesL : &b.bytesU);

        std::printf("FIGURE 4%s: component execution times under %s\n",
                    loop ? "b" : "a", loop ? "TPL" : "TPU");
        bench::printRule();

        std::vector<Row> rows;

        // Overhead: decoding + annotation, i.e. everything before any
        // component prediction runs.
        {
            Row row{"Overhead", {}};
            for (const auto *bytes : blocks) {
                auto t0 = Clock::now();
                bb::BasicBlock blk =
                    bb::analyze(*bytes, uarch::UArch::SKL);
                auto t1 = Clock::now();
                (void)blk;
                row.timesMs.push_back(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count());
            }
            rows.push_back(std::move(row));
        }

        // FACILE: the full prediction (components + combination),
        // through the serving-path cheap mode.
        model::PredictScratch scratch;
        rows.push_back(timeComponent(
            "FACILE", blocks, [&](const bb::BasicBlock &blk) {
                return model::predict(blk, loop, {}, scratch).throughput;
            }));

        // Individual components through the uniform registry
        // interface, timed via bound(). The row set matches the
        // paper's Figure 4: all seven components under TPL (Predec and
        // Dec are timed even though a non-erratum loop would not run
        // them, and LSD is timed on SKL although its registry omits
        // it), DSB/LSD skipped under TPU where no front-end mode uses
        // them.
        for (int c = 0; c < model::kNumComponents; ++c) {
            const model::Component id = static_cast<model::Component>(c);
            if (!loop && (id == model::Component::DSB ||
                          id == model::Component::LSD))
                continue;
            const model::ComponentPredictor &comp = model::component(id);
            rows.push_back(timeComponent(
                std::string(comp.displayName()), blocks,
                [&](const bb::BasicBlock &blk) {
                    const model::PredictContext ctx{
                        blk, uarch::config(blk.arch), loop,
                        model::Payload::None, scratch};
                    return comp.bound(ctx);
                }));
        }

        printRows(rows);
        std::printf("\n");
    }
    return 0;
}
