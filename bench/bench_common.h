/**
 * @file
 * Shared helpers for the table/figure reproduction binaries and the
 * perf benches: the evaluation suite (with a CI quick mode), the
 * bit-identity oracle, and the machine-readable BENCH_<name>.json
 * report writer that populates the repo's perf trajectory.
 */
#ifndef FACILE_BENCH_COMMON_H
#define FACILE_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "eval/harness.h"
#include "facile/predictor.h"

namespace facile::bench {

/**
 * CI quick mode: FACILE_BENCH_QUICK=1 shrinks the suite so perf smoke
 * jobs finish fast. Timings from quick runs are indicative only; the
 * bit-identity exit codes remain authoritative.
 */
inline bool
quickMode()
{
    const char *q = std::getenv("FACILE_BENCH_QUICK");
    return q && *q && std::strcmp(q, "0") != 0;
}

/** The evaluation suite used by every table/figure binary. */
inline const std::vector<bhive::Benchmark> &
evalSuite()
{
    if (quickMode()) {
        // Same generator and seed, fewer benchmarks per category.
        static const std::vector<bhive::Benchmark> quick =
            bhive::generateSuite(20231020, 10);
        return quick;
    }
    return bhive::defaultSuite();
}

/** Prepared (simulated) suite for one µarch, cached per process. */
inline const eval::ArchSuite &
archSuite(uarch::UArch arch)
{
    static std::map<uarch::UArch, eval::ArchSuite> cache;
    auto it = cache.find(arch);
    if (it == cache.end()) {
        std::fprintf(stderr, "[prepare] measuring ground truth for %s...\n",
                     uarch::config(arch).abbrev);
        it = cache.emplace(arch, eval::prepare(arch, evalSuite())).first;
    }
    return it->second;
}

inline void
printRule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Bit-identity oracle (defined once in eval/harness.h). */
using eval::samePrediction;

/**
 * Machine-readable benchmark report, written as BENCH_<name>.json into
 * $FACILE_BENCH_JSON_DIR (default: the current directory) so the
 * repo's perf trajectory can be tracked run over run.
 *
 * Shape: a flat object of scalars plus a "rows" array of measurement
 * rows ({"label": ..., metrics...}), in insertion order. Typical
 * metrics: blocks_per_sec, threads, cache_hit_rate, p50_us, p99_us.
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    void
    scalar(const std::string &key, double value)
    {
        scalars_.push_back({key, Value::number(value)});
    }

    void
    scalar(const std::string &key, const std::string &value)
    {
        scalars_.push_back({key, Value::string(value)});
    }

    void
    boolean(const std::string &key, bool value)
    {
        scalars_.push_back({key, Value::boolean(value)});
    }

    /** Start a measurement row; metric() calls apply to the last row. */
    void
    row(const std::string &label)
    {
        rows_.push_back({label, {}});
    }

    void
    metric(const std::string &key, double value)
    {
        rows_.back().metrics.push_back({key, value});
    }

    /** Write BENCH_<name>.json; returns false (with a note) on error. */
    bool
    write() const
    {
        std::string dir;
        if (const char *d = std::getenv("FACILE_BENCH_JSON_DIR"))
            dir = std::string(d) + "/";
        const std::string path = dir + "BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "note: cannot write %s\n", path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\"", name_.c_str());
        for (const auto &[key, v] : scalars_) {
            std::fprintf(f, ",\n  \"%s\": ", key.c_str());
            printValue(f, v);
        }
        std::fprintf(f, ",\n  \"rows\": [");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(f, "%s\n    {\"label\": \"%s\"",
                         i ? "," : "", rows_[i].label.c_str());
            for (const auto &[key, v] : rows_[i].metrics) {
                std::fprintf(f, ", \"%s\": ", key.c_str());
                printNumber(f, v);
            }
            std::fputc('}', f);
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
        return true;
    }

  private:
    struct Value
    {
        enum class Kind { Number, String, Bool } kind;
        double num = 0.0;
        std::string str;
        bool b = false;

        static Value number(double v) { return {Kind::Number, v, {}, false}; }
        static Value string(std::string v)
        {
            return {Kind::String, 0.0, std::move(v), false};
        }
        static Value boolean(bool v) { return {Kind::Bool, 0.0, {}, v}; }
    };

    static void
    printNumber(std::FILE *f, double v)
    {
        if (std::isnan(v) || std::isinf(v))
            std::fprintf(f, "null");
        else
            std::fprintf(f, "%.10g", v);
    }

    static void
    printValue(std::FILE *f, const Value &v)
    {
        switch (v.kind) {
          case Value::Kind::Number:
            printNumber(f, v.num);
            break;
          case Value::Kind::String:
            std::fprintf(f, "\"%s\"", v.str.c_str());
            break;
          case Value::Kind::Bool:
            std::fprintf(f, v.b ? "true" : "false");
            break;
        }
    }

    struct Row
    {
        std::string label;
        std::vector<std::pair<std::string, double>> metrics;
    };

    std::string name_;
    std::vector<std::pair<std::string, Value>> scalars_;
    std::vector<Row> rows_;
};

} // namespace facile::bench

#endif // FACILE_BENCH_COMMON_H
