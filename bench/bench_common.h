/**
 * @file
 * Shared helpers for the table/figure reproduction binaries.
 */
#ifndef FACILE_BENCH_COMMON_H
#define FACILE_BENCH_COMMON_H

#include <cstdio>
#include <map>
#include <string>

#include "eval/harness.h"

namespace facile::bench {

/** The evaluation suite used by every table/figure binary. */
inline const std::vector<bhive::Benchmark> &
evalSuite()
{
    return bhive::defaultSuite();
}

/** Prepared (simulated) suite for one µarch, cached per process. */
inline const eval::ArchSuite &
archSuite(uarch::UArch arch)
{
    static std::map<uarch::UArch, eval::ArchSuite> cache;
    auto it = cache.find(arch);
    if (it == cache.end()) {
        std::fprintf(stderr, "[prepare] measuring ground truth for %s...\n",
                     uarch::config(arch).abbrev);
        it = cache.emplace(arch, eval::prepare(arch, evalSuite())).first;
    }
    return it->second;
}

inline void
printRule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

} // namespace facile::bench

#endif // FACILE_BENCH_COMMON_H
