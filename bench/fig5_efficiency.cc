/**
 * @file
 * Reproduces Figure 5: time per benchmark of Facile compared to the
 * other predictors, under both throughput notions, with an ASCII
 * log-scale bar chart.
 *
 * The reference simulator plays uiCA's role; the paper's key result to
 * check is the ordering: Facile is orders of magnitude faster than the
 * simulator and clearly faster than every baseline re-implementation.
 */
#include "bench_common.h"

#include <cmath>

#include "baselines/predictor_iface.h"

using namespace facile;

int
main()
{
    const auto &suite = bench::archSuite(uarch::UArch::SKL);

    std::vector<std::unique_ptr<baselines::ThroughputPredictor>> preds;
    preds.push_back(std::make_unique<baselines::FacilePredictor>());
    for (auto &p : baselines::makeBaselines())
        preds.push_back(std::move(p));
    preds.push_back(std::make_unique<baselines::SimulatorPredictor>());

    std::printf("FIGURE 5: efficiency of Facile compared to other tools\n");
    std::printf("(time per benchmark on the Skylake suite; log scale)\n");
    bench::printRule();
    std::printf("%-22s %12s %12s   %s\n", "Predictor", "TPU (ms)",
                "TPL (ms)", "log-scale bar (TPU)");
    bench::printRule();

    double facileU = 0.0, simU = 0.0;
    for (const auto &p : preds) {
        double u = eval::timePerBenchmarkMs(*p, suite, false);
        double l = eval::timePerBenchmarkMs(*p, suite, true);
        if (p->name() == "Facile")
            facileU = u;
        if (p->name() == "uiCA-like (ref. sim)")
            simU = u;
        // Bar: one '#' per factor of ~1.8x above 1 microsecond.
        int bar = static_cast<int>(
            std::max(0.0, std::log(u / 0.001) / std::log(1.8)));
        std::printf("%-22s %12.4f %12.4f   %.*s\n", p->name().c_str(), u, l,
                    bar,
                    "########################################"
                    "########################################");
    }
    bench::printRule();

    std::printf("\nFacile vs reference simulator speedup (TPU): %.0fx\n",
                simU / facileU);

    // End-to-end serving rate through the batch engine (same harness
    // code path as bench_throughput). Caches off: with them on, every
    // timed pass over the identical batch would be a pure cache lookup
    // and overstate prediction throughput by an order of magnitude.
    engine::PredictionEngine::Options eopts;
    eopts.cacheEnabled = false;
    engine::PredictionEngine eng(eopts);
    eval::EngineThroughput et =
        eval::measureEngineThroughput(eng, suite, false);
    std::printf("Batch engine (%d threads, cache off): %.0f blocks/sec "
                "end-to-end\n",
                eng.numThreads(), et.blocksPerSec);
    return 0;
}
