/**
 * @file
 * Reproduces Table 4: the counterfactual speedup obtained when a single
 * pipeline component is made infinitely fast, per microarchitecture,
 * under the TPU notion (paper section 6.4).
 *
 * Speedup is aggregated as total predicted cycles over total idealized
 * cycles across the suite (a throughput-weighted mean, which matches
 * the "overall performance improvement" reading of the paper).
 */
#include "bench_common.h"

#include "facile/component.h"

using namespace facile;
using model::Component;

int
main()
{
    // Columns: the registry components that participate in the TPU
    // notion (DSB and LSD are TPL-only and are skipped, as in the
    // paper), derived from the component metadata.
    std::vector<Component> cols;
    for (int c = 0; c < model::kNumComponents; ++c) {
        const Component comp = static_cast<Component>(c);
        if (model::component(comp).notions().unrolled)
            cols.push_back(comp);
    }

    std::printf("TABLE 4: Speedup when idealizing a single component "
                "(TPU)\n");
    bench::printRule();
    std::printf("%-5s", "");
    for (Component c : cols)
        std::printf(" %10s", model::componentName(c).data());
    std::printf("\n");
    bench::printRule();

    // Table 4 is ordered oldest -> newest; allUArchs() is newest-first.
    // Bound-only predictions suffice: idealized() reads componentValue,
    // which the cheap path fills exactly.
    model::PredictScratch scratch;
    auto order = uarch::allUArchs();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const auto &suite = bench::archSuite(*it);
        double base = 0.0;
        std::vector<double> ideal(cols.size(), 0.0);
        for (const auto &blk : suite.blocksU) {
            model::Prediction p =
                model::predict(blk, false, {}, scratch);
            base += p.throughput;
            for (std::size_t k = 0; k < cols.size(); ++k)
                ideal[k] += p.idealized(cols[k]);
        }
        std::printf("%-5s", uarch::config(*it).abbrev);
        for (std::size_t k = 0; k < cols.size(); ++k)
            std::printf(" %10.2f", ideal[k] > 0 ? base / ideal[k] : 1.0);
        std::printf("\n");
    }
    return 0;
}
