/**
 * @file
 * Reproduces Table 4: the counterfactual speedup obtained when a single
 * pipeline component is made infinitely fast, per microarchitecture,
 * under the TPU notion (paper section 6.4).
 *
 * Speedup is aggregated as total predicted cycles over total idealized
 * cycles across the suite (a throughput-weighted mean, which matches
 * the "overall performance improvement" reading of the paper).
 */
#include "bench_common.h"

using namespace facile;
using model::Component;

int
main()
{
    const Component cols[] = {Component::Predec, Component::Dec,
                              Component::Issue, Component::Ports,
                              Component::Precedence};

    std::printf("TABLE 4: Speedup when idealizing a single component "
                "(TPU)\n");
    bench::printRule();
    std::printf("%-5s", "");
    for (Component c : cols)
        std::printf(" %10s", model::componentName(c).data());
    std::printf("\n");
    bench::printRule();

    // Table 4 is ordered oldest -> newest; allUArchs() is newest-first.
    auto order = uarch::allUArchs();
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const auto &suite = bench::archSuite(*it);
        double base = 0.0;
        double ideal[5] = {};
        for (const auto &blk : suite.blocksU) {
            model::Prediction p = model::predictUnrolled(blk);
            base += p.throughput;
            for (int k = 0; k < 5; ++k)
                ideal[k] += p.idealized(cols[k]);
        }
        std::printf("%-5s", uarch::config(*it).abbrev);
        for (int k = 0; k < 5; ++k)
            std::printf(" %10.2f", ideal[k] > 0 ? base / ideal[k] : 1.0);
        std::printf("\n");
    }
    return 0;
}
