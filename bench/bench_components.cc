/**
 * @file
 * google-benchmark microbenchmarks of every pipeline stage of the
 * library: decoding, annotation, each Facile component, the full
 * predictor under both notions, and the reference simulator. These are
 * the raw numbers behind the Figure 4/5 harnesses and serve as a
 * regression guard for Facile's headline property — speed.
 */
#include <benchmark/benchmark.h>

#include "baselines/predictor_iface.h"
#include "bhive/generator.h"
#include "facile/dec.h"
#include "facile/ports.h"
#include "facile/precedence.h"
#include "facile/predec.h"
#include "facile/simple_components.h"
#include "sim/pipeline.h"

using namespace facile;

namespace {

const std::vector<bhive::Benchmark> &
suite()
{
    static const auto s = bhive::generateSuite(20231020, 12);
    return s;
}

std::vector<bb::BasicBlock>
analyzedBlocks(bool loop)
{
    std::vector<bb::BasicBlock> blocks;
    for (const auto &b : suite())
        blocks.push_back(
            bb::analyze(loop ? b.bytesL : b.bytesU, uarch::UArch::SKL));
    return blocks;
}

void
BM_DecodeAnnotate(benchmark::State &state)
{
    const auto &s = suite();
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            bb::analyze(s[i % s.size()].bytesU, uarch::UArch::SKL));
        ++i;
    }
}
BENCHMARK(BM_DecodeAnnotate);

template <typename Fn>
void
runComponent(benchmark::State &state, bool loop, Fn fn)
{
    auto blocks = analyzedBlocks(loop);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(fn(blocks[i % blocks.size()]));
        ++i;
    }
}

void
BM_Predec(benchmark::State &state)
{
    runComponent(state, false,
                 [](const bb::BasicBlock &b) { return model::predec(b, true); });
}
BENCHMARK(BM_Predec);

void
BM_Dec(benchmark::State &state)
{
    runComponent(state, false,
                 [](const bb::BasicBlock &b) { return model::dec(b); });
}
BENCHMARK(BM_Dec);

void
BM_Ports(benchmark::State &state)
{
    runComponent(state, false, [](const bb::BasicBlock &b) {
        return model::ports(b).throughput;
    });
}
BENCHMARK(BM_Ports);

void
BM_PortsExact(benchmark::State &state)
{
    runComponent(state, false, [](const bb::BasicBlock &b) {
        return model::portsExact(b).throughput;
    });
}
BENCHMARK(BM_PortsExact);

void
BM_Precedence(benchmark::State &state)
{
    runComponent(state, false, [](const bb::BasicBlock &b) {
        return model::precedence(b).throughput;
    });
}
BENCHMARK(BM_Precedence);

void
BM_FacileTpu(benchmark::State &state)
{
    runComponent(state, false, [](const bb::BasicBlock &b) {
        return model::predict(b, false).throughput;
    });
}
BENCHMARK(BM_FacileTpu);

void
BM_FacileTpl(benchmark::State &state)
{
    runComponent(state, true, [](const bb::BasicBlock &b) {
        return model::predict(b, true).throughput;
    });
}
BENCHMARK(BM_FacileTpl);

void
BM_ReferenceSimulator(benchmark::State &state)
{
    runComponent(state, true, [](const bb::BasicBlock &b) {
        return sim::measuredThroughput(b, true);
    });
}
BENCHMARK(BM_ReferenceSimulator)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
