/**
 * @file
 * Cold-path throughput: uncached (analysis-cache-off) blocks/sec —
 * the rate at which the engine handles *never-seen* blocks, which is
 * what caps serving throughput for fresh traffic.
 *
 * Two serial baselines bracket the measurement:
 *
 *   - "fresh" analysis (InternMode::Off): every instruction pays a full
 *     uops::lookup plus a heap-allocated InstrInfo copy — the pre-
 *     interning cold path;
 *   - interned analysis (the default): per-instruction results are
 *     memoized process-wide, so a never-seen *block* reuses the decode
 *     effort of every instruction seen before in any block (the
 *     BHive-style workload regime: a small instruction universe across
 *     millions of distinct blocks).
 *
 * The engine rows run with both engine cache levels disabled at 1/2/4/8
 * worker threads. Every prediction (serial interned and all engine
 * rows) is checked bit-identical to the fresh serial reference; the
 * binary exits non-zero on any mismatch. Results are written to
 * BENCH_coldpath.json.
 */
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "analysis/intern.h"
#include "analysis/snapshot.h"
#include "facile/component.h"
#include "support/stats.h"

using namespace facile;

namespace {

/** Build the TPL/SKL request batch every mode of this bench uses. */
std::vector<engine::Request>
suiteBatch()
{
    const auto &suite = bench::evalSuite();
    std::vector<engine::Request> batch;
    batch.reserve(suite.size());
    for (const auto &b : suite)
        batch.push_back({b.bytesL, uarch::UArch::SKL, true, {}});
    return batch;
}

/** Order- and bit-sensitive digest of a prediction sequence. */
std::uint64_t
predictionDigest(const std::vector<model::Prediction> &preds)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const model::Prediction &p : preds) {
        h = analysis::fnv1a64(
            reinterpret_cast<const std::uint8_t *>(&p.throughput), 8, h);
        h = analysis::fnv1a64(
            reinterpret_cast<const std::uint8_t *>(p.componentValue.data()),
            sizeof(double) * p.componentValue.size(), h);
        const std::uint8_t b =
            static_cast<std::uint8_t>(p.primaryBottleneck);
        h = analysis::fnv1a64(&b, 1, h);
    }
    return h;
}

/**
 * Child mode (--startup-probe SNAPSHOT|-): the fresh-process half of
 * the warm-start measurement. Optionally loads the snapshot, then
 * serves the whole suite once through a caching 1-thread engine — the
 * restarted-server scenario — and prints machine-readable timings plus
 * a bit-exact digest of every prediction.
 */
int
startupProbe(const char *snapshotPath)
{
    const std::vector<engine::Request> batch = suiteBatch();
    engine::PredictionEngine::Options opts;
    opts.numThreads = 1;
    engine::PredictionEngine eng(opts);

    double loadMs = 0.0;
    if (std::strcmp(snapshotPath, "-") != 0) {
        const auto t0 = std::chrono::steady_clock::now();
        analysis::loadSnapshot(snapshotPath, {&eng});
        const auto t1 = std::chrono::steady_clock::now();
        loadMs =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
    }
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<model::Prediction> out = eng.predictBatch(batch);
    const auto t1 = std::chrono::steady_clock::now();
    const double passMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    std::printf("STARTUP %.6f %.6f %016llx\n", loadMs, passMs,
                static_cast<unsigned long long>(predictionDigest(out)));
    return 0;
}

/**
 * Child mode (--startup-probe-loadonly SNAPSHOT): the load-cost half
 * of the v1-vs-v2 format comparison. Times only the snapshot load and
 * the first single-block prediction after it — the quantity the
 * mmap-native v2 format optimizes (O(pages touched) instead of
 * O(records)) — and prints the load mode the loader actually took
 * plus a bit-exact digest of that prediction.
 */
int
startupProbeLoadOnly(const char *snapshotPath)
{
    engine::PredictionEngine::Options opts;
    opts.numThreads = 1;
    engine::PredictionEngine eng(opts);

    const auto t0 = std::chrono::steady_clock::now();
    const analysis::SnapshotStats ss =
        analysis::loadSnapshot(snapshotPath, {&eng});
    const auto t1 = std::chrono::steady_clock::now();
    const double loadMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    // Suite generation is deliberately outside both timed regions.
    const auto &suite = bench::evalSuite();
    std::vector<engine::Request> one{
        {suite.front().bytesL, uarch::UArch::SKL, true, {}}};
    const auto t2 = std::chrono::steady_clock::now();
    const std::vector<model::Prediction> out = eng.predictBatch(one);
    const auto t3 = std::chrono::steady_clock::now();
    const double firstMs =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    std::printf("LOADONLY %.6f %.6f %d %016llx\n", loadMs, firstMs,
                static_cast<int>(ss.loadMode),
                static_cast<unsigned long long>(predictionDigest(out)));
    return 0;
}

/** Run one --startup-probe child and parse its STARTUP line. */
bool
runStartupProbe(const char *argv0, const std::string &snapshotArg,
                double &loadMs, double &passMs, std::uint64_t &digest)
{
    const std::string cmd = std::string("'") + argv0 +
                            "' --startup-probe '" + snapshotArg + "'";
    std::FILE *p = ::popen(cmd.c_str(), "r");
    if (!p)
        return false;
    char line[256];
    bool ok = false;
    while (std::fgets(line, sizeof line, p)) {
        unsigned long long d = 0;
        if (std::sscanf(line, "STARTUP %lf %lf %llx", &loadMs, &passMs,
                        &d) == 3) {
            digest = d;
            ok = true;
        }
    }
    return ::pclose(p) == 0 && ok;
}

/** Run one --startup-probe-loadonly child and parse its LOADONLY line. */
bool
runLoadOnlyProbe(const char *argv0, const std::string &snapshotPath,
                 double &loadMs, double &firstMs, int &loadMode,
                 std::uint64_t &digest)
{
    const std::string cmd = std::string("'") + argv0 +
                            "' --startup-probe-loadonly '" +
                            snapshotPath + "'";
    std::FILE *p = ::popen(cmd.c_str(), "r");
    if (!p)
        return false;
    char line[256];
    bool ok = false;
    while (std::fgets(line, sizeof line, p)) {
        unsigned long long d = 0;
        if (std::sscanf(line, "LOADONLY %lf %lf %d %llx", &loadMs,
                        &firstMs, &loadMode, &d) == 4) {
            digest = d;
            ok = true;
        }
    }
    return ::pclose(p) == 0 && ok;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 3 && std::strcmp(argv[1], "--startup-probe") == 0)
        return startupProbe(argv[2]);
    if (argc >= 3 &&
        std::strcmp(argv[1], "--startup-probe-loadonly") == 0)
        return startupProbeLoadOnly(argv[2]);

    const auto &suite = bench::evalSuite();
    const uarch::UArch arch = uarch::UArch::SKL;
    const bool loop = true;

    std::vector<engine::Request> batch;
    batch.reserve(suite.size());
    for (const auto &b : suite)
        batch.push_back({b.bytesL, arch, loop, {}});
    const auto nBlocks = static_cast<double>(batch.size());

    bench::BenchReport report("coldpath");
    report.scalar("suite_blocks", nBlocks);
    report.scalar("arch", "SKL");
    report.boolean("quick_mode", bench::quickMode());
    report.scalar("hw_threads",
                  static_cast<double>(std::thread::hardware_concurrency()));

    std::printf("COLD-PATH THROUGHPUT: uncached blocks/sec, %zu blocks "
                "(TPL, %s)\n",
                batch.size(), uarch::config(arch).abbrev);
    bench::printRule();
    std::printf("%-34s %12s %10s %10s\n", "Configuration", "blocks/s",
                "ms/block", "speedup");
    bench::printRule();

    // Serial cold paths, measured interleaved (alternating one fresh
    // pass and one interned pass per round, minimum over the rounds
    // for each) so load drift on a shared machine hits both sides
    // equally and the speedup ratio stays meaningful. Both run the
    // serving regime: explicit scratch, Payload::None (bounds and
    // bottleneck classification, no interpretability payload) — the
    // path the engine and server drive for fresh traffic.
    //
    //   fresh    — InternMode::Off: per-instruction decode + lookups
    //              with per-block heap copies, the pre-interning
    //              behavior; also the bit-identity oracle below.
    //   interned — steady-state intern cache (the warm-up pass
    //              populates it), mirroring a server that has seen the
    //              instruction universe but none of the incoming
    //              blocks.
    model::PredictScratch scratch;
    std::vector<model::Prediction> fresh(batch.size());
    std::vector<model::Prediction> interned(batch.size());
    auto freshPass = [&] {
        for (std::size_t i = 0; i < batch.size(); ++i)
            fresh[i] = model::predict(
                bb::analyze(batch[i].bytes, arch, bb::InternMode::Off),
                loop, batch[i].config, scratch);
    };
    auto internedPass = [&] {
        for (std::size_t i = 0; i < batch.size(); ++i)
            interned[i] =
                model::predict(bb::analyze(batch[i].bytes, arch), loop,
                               batch[i].config, scratch);
    };
    double freshMs = 1e300, internedMs = 1e300;
    freshPass();    // warm-up (and first oracle fill)
    internedPass(); // warm-up (populates the intern cache)
    const model::PredictCountersSnapshot countersBefore =
        model::predictCounters();
    for (int round = 0; round < 8; ++round) {
        freshMs = std::min(freshMs, eval::bestOfRunsMs(freshPass, 1, false));
        internedMs =
            std::min(internedMs, eval::bestOfRunsMs(internedPass, 1, false));
    }
    const model::PredictCountersSnapshot countersAfter =
        model::predictCounters();
    const double freshBps = 1000.0 * nBlocks / freshMs;
    std::printf("%-34s %12.0f %10.5f %10s\n", "serial, fresh (pre-PR path)",
                freshBps, freshMs / nBlocks, "1.00x");
    report.row("serial_fresh");
    report.metric("threads", 1);
    report.metric("blocks_per_sec", freshBps);

    bool identical = true;
    auto check = [&](const model::Prediction &p, std::size_t i,
                     const char *what) {
        if (!bench::samePrediction(p, fresh[i])) {
            std::fprintf(stderr, "MISMATCH vs fresh serial at block %zu "
                                 "(%s)\n",
                         i, what);
            identical = false;
        }
    };
    for (std::size_t i = 0; i < batch.size(); ++i)
        check(interned[i], i, "serial interned");
    const double internedBps = 1000.0 * nBlocks / internedMs;
    const double speedup = internedBps / freshBps;
    std::printf("%-34s %12.0f %10.5f %9.2fx\n", "serial, interned",
                internedBps, internedMs / nBlocks, speedup);
    report.row("serial_interned");
    report.metric("threads", 1);
    report.metric("blocks_per_sec", internedBps);

    // The lazy-payload split, machine-readably: the same interned
    // serial pass with Payload::Full (eager criticalChain /
    // contendedPorts / contendingInsts, the pre-refactor behavior of
    // every call) vs the bound-only rate above. Full-payload results
    // are checked for bit-identity against a fresh full-payload pass.
    std::uint64_t fullPredictsDelta = 0;
    {
        std::vector<model::Prediction> freshFull(batch.size());
        std::vector<model::Prediction> full(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i)
            freshFull[i] = model::predict(
                bb::analyze(batch[i].bytes, arch, bb::InternMode::Off),
                loop, batch[i].config, scratch, model::Payload::Full);
        double fullMs = 1e300;
        auto fullPass = [&] {
            for (std::size_t i = 0; i < batch.size(); ++i)
                full[i] = model::predict(bb::analyze(batch[i].bytes, arch),
                                         loop, batch[i].config, scratch,
                                         model::Payload::Full);
        };
        fullPass(); // warm-up
        const model::PredictCountersSnapshot fullBefore =
            model::predictCounters();
        for (int round = 0; round < 4; ++round)
            fullMs = std::min(fullMs,
                              eval::bestOfRunsMs(fullPass, 1, false));
        fullPredictsDelta = model::predictCounters().fullPredicts -
                            fullBefore.fullPredicts;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            if (!bench::samePrediction(full[i], freshFull[i])) {
                std::fprintf(stderr, "MISMATCH full-payload vs fresh "
                                     "full-payload at block %zu\n",
                             i);
                identical = false;
            }
            // The bound-only prediction must agree with the full one on
            // everything but the payload vectors.
            if (std::memcmp(&full[i].throughput, &interned[i].throughput,
                            sizeof(double)) != 0 ||
                full[i].primaryBottleneck != interned[i].primaryBottleneck) {
                std::fprintf(stderr, "MISMATCH bound-only vs full payload "
                                     "at block %zu\n",
                             i);
                identical = false;
            }
        }
        const double fullBps = 1000.0 * nBlocks / fullMs;
        std::printf("%-34s %12.0f %10.5f %9.2fx\n",
                    "serial, interned + full payload", fullBps,
                    fullMs / nBlocks, fullBps / freshBps);
        report.row("serial_interned_full_payload");
        report.metric("threads", 1);
        report.metric("blocks_per_sec", fullBps);
    }

    // Per-block cold latency percentiles on the interned serial path.
    {
        std::vector<double> us;
        us.reserve(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            auto t0 = std::chrono::steady_clock::now();
            model::Prediction p =
                model::predict(bb::analyze(batch[i].bytes, arch), loop,
                               batch[i].config, scratch);
            auto t1 = std::chrono::steady_clock::now();
            check(p, i, "latency probe");
            us.push_back(std::chrono::duration<double, std::micro>(t1 - t0)
                             .count());
        }
        const double p50 = percentile(us, 50);
        const double p99 = percentile(us, 99);
        std::printf("per-block cold latency: p50 %.2f us, p99 %.2f us\n",
                    p50, p99);
        report.scalar("p50_us", p50);
        report.scalar("p99_us", p99);
    }

    // Engine rows: both engine cache levels off, so every block is
    // analyzed and predicted from scratch (modulo interning).
    for (int threads : {1, 2, 4, 8}) {
        engine::PredictionEngine::Options opts;
        opts.numThreads = threads;
        opts.cacheEnabled = false;
        engine::PredictionEngine eng(opts);

        std::vector<model::Prediction> out;
        const double ms =
            eval::bestOfRunsMs([&] { out = eng.predictBatch(batch); });
        const double bps = 1000.0 * nBlocks / ms;
        for (std::size_t i = 0; i < batch.size(); ++i)
            check(out[i], i, "engine uncached");

        char label[64];
        std::snprintf(label, sizeof label, "engine uncached, %d thread%s",
                      threads, threads == 1 ? "" : "s");
        std::printf("%-34s %12.0f %10.5f %9.2fx\n", label, bps,
                    ms / nBlocks, bps / freshBps);
        std::snprintf(label, sizeof label, "engine_uncached_%dt", threads);
        report.row(label);
        report.metric("threads", threads);
        report.metric("blocks_per_sec", bps);
    }

    // Warm-start round: quantify what a persistent snapshot
    // (src/analysis/snapshot.h) buys a *fresh process*. The parent
    // saves its warm state (intern arenas + a 1-thread engine's
    // prediction cache over the suite); two children then each serve
    // the full suite once through a caching engine — one from zero,
    // one from the snapshot — and report wall time plus a bit-exact
    // prediction digest. Matching digests are the cross-process
    // bit-identity gate.
    double saveMs = 0.0, warmSpeedup = 0.0;
    double coldPassMs = 0.0, warmLoadMs = 0.0, warmPassMs = 0.0;
    double snapshotBytes = 0.0;
    bool warmIdentical = false, warmMeasured = false;
    {
        engine::PredictionEngine::Options sopts;
        sopts.numThreads = 1;
        engine::PredictionEngine snapEng(sopts);
        snapEng.predictBatch(batch); // populate the prediction cache
        const std::string path =
            "facile_warmstart_" + std::to_string(::getpid()) + ".snap";
        try {
            const auto t0 = std::chrono::steady_clock::now();
            const analysis::SnapshotStats ss =
                analysis::saveSnapshot(path, {&snapEng});
            const auto t1 = std::chrono::steady_clock::now();
            saveMs = std::chrono::duration<double, std::milli>(t1 - t0)
                         .count();
            snapshotBytes = static_cast<double>(ss.bytes);

            double coldLoadMs = 0.0;
            std::uint64_t coldDigest = 0, warmDigest = 1;
            warmMeasured =
                runStartupProbe(argv[0], "-", coldLoadMs, coldPassMs,
                                coldDigest) &&
                runStartupProbe(argv[0], path, warmLoadMs, warmPassMs,
                                warmDigest);
            if (warmMeasured) {
                warmIdentical = coldDigest == warmDigest;
                warmSpeedup = coldPassMs / (warmLoadMs + warmPassMs);
                std::printf(
                    "warm start (fresh process, %zu-block suite): cold "
                    "%.2f ms vs snapshot load %.2f ms + warm pass "
                    "%.2f ms = %.2fx startup speedup\n",
                    batch.size(), coldPassMs, warmLoadMs, warmPassMs,
                    warmSpeedup);
                std::printf("warm-start bit identity (cold vs warm "
                            "child digests): %s\n",
                            warmIdentical ? "yes" : "NO");
                if (!warmIdentical)
                    identical = false;
            } else {
                std::printf("note: warm-start probe children failed to "
                            "run; skipping the warm-start round\n");
            }
        } catch (const analysis::SnapshotError &e) {
            std::printf("note: %s; skipping the warm-start round\n",
                        e.what());
        }
        std::remove(path.c_str());
    }

    // Intern-cache stats are captured *before* the synthetic-universe
    // round below bloats the arenas, so the reported hit rate keeps
    // describing the timed rounds above.
    const analysis::InternStats st = analysis::InstInterner::statsAllArchs();

    // Snapshot v2 vs v1 load cost, in fresh child processes: v1 pays a
    // record-by-record parse (O(records)); v2 mmaps the image and
    // materializes records on first touch (O(pages touched)). Each
    // format is probed best-of-3 with a load-only child that times the
    // load plus the first single-block prediction, and the two
    // children's first predictions must be bit-identical. A second
    // pair of probes against a synthetically ~100x larger instruction
    // universe (distinct MOV r32,imm32 encodings, SKL only; ~10x in
    // quick mode) checks that the v2 load cost stays roughly flat
    // while v1 scales with the record count.
    double v1LoadMs = 0.0, v2LoadMs = 0.0, v2FirstMs = 0.0;
    double v1Load100Ms = 0.0, v2Load100Ms = 0.0, universeScale = 0.0;
    double v2LoadSpeedup = 0.0;
    bool v2Measured = false, v2Measured100 = false;
    bool v2Sublinear = false, v2FirstIdentical = false;
    {
        const std::string pid = std::to_string(::getpid());
        const std::string pathV1 = "facile_loadprobe_v1_" + pid + ".snap";
        const std::string pathV2 = "facile_loadprobe_v2_" + pid + ".snap";
        // generations=1: plain atomic replace, nothing rotated to clean.
        const analysis::SnapshotOptions v1Opts{
            nullptr, 1, analysis::SnapshotFormat::V1};
        const analysis::SnapshotOptions v2Opts{
            nullptr, 1, analysis::SnapshotFormat::V2};
        auto bestOf = [&](const std::string &snap, double &loadMs,
                          double &firstMs, int &mode,
                          std::uint64_t &digest) {
            loadMs = firstMs = 1e300;
            bool ok = false;
            for (int i = 0; i < 3; ++i) {
                double l = 0.0, f = 0.0;
                if (runLoadOnlyProbe(argv[0], snap, l, f, mode, digest)) {
                    ok = true;
                    loadMs = std::min(loadMs, l);
                    firstMs = std::min(firstMs, f);
                }
            }
            return ok;
        };
        auto recordCount = [&] {
            std::size_t n = 0;
            analysis::InstInterner::forArch(arch).exportRecords(
                [&](const std::uint8_t *, std::size_t,
                    const analysis::InstRecord &) { ++n; });
            return n;
        };
        try {
            analysis::saveSnapshot(pathV1, v1Opts);
            analysis::saveSnapshot(pathV2, v2Opts);
            int v1Mode = 0, v2Mode = 0;
            std::uint64_t v1Digest = 0, v2Digest = 1;
            double v1FirstMs = 0.0;
            v2Measured = bestOf(pathV1, v1LoadMs, v1FirstMs, v1Mode,
                                v1Digest) &&
                         bestOf(pathV2, v2LoadMs, v2FirstMs, v2Mode,
                                v2Digest);
            if (v2Measured) {
                v2FirstIdentical = v1Digest == v2Digest;
                v2LoadSpeedup = v1LoadMs / std::max(v2LoadMs, 1e-3);
                std::printf(
                    "snapshot load (fresh process): v1 parse %.3f ms vs "
                    "v2 mmap %.3f ms + first predict %.3f ms = %.2fx "
                    "load speedup\n",
                    v1LoadMs, v2LoadMs, v2FirstMs, v2LoadSpeedup);
                if (v2Mode !=
                    static_cast<int>(analysis::SnapshotLoadMode::MmapV2))
                    std::printf("note: v2 probe took load mode %d, not "
                                "the mmap path\n",
                                v2Mode);
                if (!v2FirstIdentical) {
                    std::printf("first-predict bit identity (v1 vs v2 "
                                "children): NO\n");
                    identical = false;
                }
            }

            // Grow the universe: distinct 5-byte MOV r32,imm32
            // encodings (0xB8+r, sequential immediates), eight per
            // analyzed block, each a distinct intern key.
            const std::size_t base = recordCount();
            const std::size_t scale = bench::quickMode() ? 10 : 100;
            std::uint32_t imm = 0x10000000;
            std::vector<std::uint8_t> synth;
            for (std::size_t made = 0; made < base * (scale - 1);) {
                synth.clear();
                for (int r = 0; r < 8 && made < base * (scale - 1);
                     ++r, ++made, ++imm) {
                    synth.push_back(static_cast<std::uint8_t>(0xB8 + r));
                    for (int b = 0; b < 4; ++b)
                        synth.push_back(
                            static_cast<std::uint8_t>(imm >> (8 * b)));
                }
                bb::analyze(synth, arch);
            }
            universeScale =
                base ? static_cast<double>(recordCount()) /
                           static_cast<double>(base)
                     : 0.0;

            analysis::saveSnapshot(pathV1, v1Opts);
            analysis::saveSnapshot(pathV2, v2Opts);
            int m1 = 0, m2 = 0;
            std::uint64_t d1 = 0, d2 = 0;
            double f1 = 0.0, f2 = 0.0;
            v2Measured100 = bestOf(pathV1, v1Load100Ms, f1, m1, d1) &&
                            bestOf(pathV2, v2Load100Ms, f2, m2, d2);
            if (v2Measured && v2Measured100) {
                const double v1Growth =
                    v1Load100Ms / std::max(v1LoadMs, 1e-3);
                const double v2Growth =
                    v2Load100Ms / std::max(v2LoadMs, 1e-3);
                // Sublinear gate: scaling the universe ~100x must grow
                // the v2 load cost by well under half of v1's growth
                // factor on the same machine in the same run.
                v2Sublinear = v2Growth < v1Growth / 2.0;
                std::printf(
                    "synthetic %.0fx universe: v1 parse %.3f ms (%.1fx "
                    "growth) vs v2 mmap %.3f ms (%.1fx growth) -> v2 "
                    "load scaling %s\n",
                    universeScale, v1Load100Ms, v1Growth, v2Load100Ms,
                    v2Growth,
                    v2Sublinear ? "sublinear" : "NOT sublinear");
            }
            if (!v2Measured || !v2Measured100)
                std::printf("note: load-only probe children failed; "
                            "skipping the rest of the v1-vs-v2 load "
                            "round\n");
        } catch (const analysis::SnapshotError &e) {
            std::printf("note: %s; skipping the v1-vs-v2 load round\n",
                        e.what());
        }
        std::remove(pathV1.c_str());
        std::remove(pathV2.c_str());
    }
    const double hitRate = st.hitRate();
    bench::printRule();
    std::printf("intern cache: %.1f%% hit rate (%llu hits, %llu distinct "
                "instructions)\n",
                100.0 * hitRate, static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses));

    // Staged-pipeline counters over the timed serial rounds: how often
    // the precedence engines were skipped (self-carried-only dependence
    // graphs) and how the lazy-payload split fell out.
    const std::uint64_t precEvals =
        countersAfter.precedenceEvals - countersBefore.precedenceEvals;
    const std::uint64_t precSkips = countersAfter.precedenceShortCircuits -
                                    countersBefore.precedenceShortCircuits;
    const double precSkipRate =
        precEvals ? static_cast<double>(precSkips) /
                        static_cast<double>(precEvals)
                  : 0.0;
    // Deltas over the measured regions (same pattern as the skip rate):
    // the bound-only count covers the timed serial rounds, the
    // full-payload count the timed full-payload rounds — not cumulative
    // process totals, so restructuring the bench cannot silently skew
    // the checked-in trajectory.
    const std::uint64_t boundPredictsDelta =
        countersAfter.boundPredicts - countersBefore.boundPredicts;
    std::printf("precedence short-circuit: %.1f%% of %llu bound "
                "evaluations skipped the cycle-ratio engines\n",
                100.0 * precSkipRate,
                static_cast<unsigned long long>(precEvals));
    std::printf("lazy payload: %llu bound-only (timed serial rounds) vs "
                "%llu full-payload (timed full rounds) predicts\n",
                static_cast<unsigned long long>(boundPredictsDelta),
                static_cast<unsigned long long>(fullPredictsDelta));
    std::printf("interned vs fresh cold path: %.2fx (target >= 1.5x)\n",
                speedup);
    std::printf("bit-identical to fresh serial predict: %s\n",
                identical ? "yes" : "NO");
    report.scalar("cache_hit_rate", hitRate);
    report.scalar("speedup_vs_fresh", speedup);
    report.scalar("precedence_skip_rate", precSkipRate);
    report.scalar("precedence_evals",
                  static_cast<double>(precEvals));
    report.scalar("bound_only_predicts",
                  static_cast<double>(boundPredictsDelta));
    report.scalar("full_predicts",
                  static_cast<double>(fullPredictsDelta));
    if (warmMeasured) {
        report.scalar("snapshot_save_ms", saveMs);
        report.scalar("snapshot_bytes", snapshotBytes);
        report.scalar("startup_cold_ms", coldPassMs);
        report.scalar("startup_warm_load_ms", warmLoadMs);
        report.scalar("startup_warm_pass_ms", warmPassMs);
        report.scalar("warm_start_speedup", warmSpeedup);
        report.boolean("warm_bit_identical", warmIdentical);
    }
    if (v2Measured) {
        report.scalar("snapshot_v1_parse_load_ms", v1LoadMs);
        report.scalar("snapshot_v2_mmap_load_ms", v2LoadMs);
        report.scalar("snapshot_v2_first_predict_ms", v2FirstMs);
        report.scalar("v2_load_speedup", v2LoadSpeedup);
        report.boolean("v2_load_speedup_met", v2LoadSpeedup >= 5.0);
        report.boolean("v2_first_predict_identical", v2FirstIdentical);
    }
    if (v2Measured && v2Measured100) {
        report.scalar("universe_scale", universeScale);
        report.scalar("snapshot_v1_load_100x_ms", v1Load100Ms);
        report.scalar("snapshot_v2_load_100x_ms", v2Load100Ms);
        report.boolean("v2_load_sublinear", v2Sublinear);
        report.row("snapshot_load_100x");
        report.metric("v1_parse_ms", v1Load100Ms);
        report.metric("v2_mmap_ms", v2Load100Ms);
    }
    report.boolean("bit_identical", identical);
    report.boolean("speedup_target_met", speedup >= 1.5);
    report.write();

    return identical ? 0 : 1;
}
