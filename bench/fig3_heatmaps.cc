/**
 * @file
 * Reproduces Figure 3: heat maps relating measured and predicted
 * throughput for BHiveL benchmarks with measured throughput below 10
 * cycles on Rocket Lake, for Facile, the reference simulator (uiCA's
 * role), llvm-mca-like, and CQA-like.
 *
 * Rendered as ASCII density plots (log-shaded); the paper's key
 * observations to check: Facile and the simulator concentrate on the
 * diagonal, llvm-mca and CQA scatter below it (optimistic predictions
 * appear under the diagonal).
 */
#include "bench_common.h"

#include "baselines/predictor_iface.h"

using namespace facile;

int
main()
{
    const auto &suite = bench::archSuite(uarch::UArch::RKL);

    std::vector<std::unique_ptr<baselines::ThroughputPredictor>> preds;
    preds.push_back(std::make_unique<baselines::FacilePredictor>());
    preds.push_back(std::make_unique<baselines::SimulatorPredictor>());
    preds.push_back(baselines::makeBaseline("llvm-mca-like"));
    preds.push_back(baselines::makeBaseline("CQA-like"));

    std::printf("FIGURE 3: measured vs predicted throughput, BHiveL on "
                "Rocket Lake (TP < 10 cycles)\n\n");

    for (const auto &p : preds) {
        auto predictions = eval::runPredictor(*p, suite, true);
        // Filter to measured < 10 as in the paper.
        std::vector<double> m, q;
        for (std::size_t i = 0; i < predictions.size(); ++i) {
            if (suite.measuredL[i] < 10.0) {
                m.push_back(suite.measuredL[i]);
                q.push_back(predictions[i]);
            }
        }
        auto grid = eval::heatmap(m, q, 10.0, 20);

        // Diagonal concentration statistic for the caption.
        int onDiag = 0;
        for (std::size_t i = 0; i < m.size(); ++i)
            onDiag += std::abs(m[i] - q[i]) <= 0.25;
        std::printf("--- %s (%zu blocks, %.1f%% within 0.25 cycles of the "
                    "diagonal) ---\n",
                    p->name().c_str(), m.size(),
                    m.empty() ? 0.0 : 100.0 * onDiag / m.size());
        std::printf("%s\n", eval::renderHeatmap(grid, 10.0).c_str());
    }
    return 0;
}
