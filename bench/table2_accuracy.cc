/**
 * @file
 * Reproduces Table 1 (microarchitecture roster) and Table 2 (MAPE and
 * Kendall's tau of all predictors on BHiveU and BHiveL, per µarch).
 *
 * Ground truth is the reference cycle-level simulator (the row labeled
 * "uiCA-like (ref. sim)" — the measurement substitute in this
 * reproduction, hence its zero error by construction; see DESIGN.md).
 */
#include "bench_common.h"

#include "baselines/predictor_iface.h"

using namespace facile;

int
main()
{
    std::printf("TABLE 1: Microarchitectures used for the evaluation\n");
    bench::printRule();
    std::printf("%-14s %-6s %-9s %s\n", "uArch", "Abbr.", "Released",
                "Modeled configuration");
    for (uarch::UArch a : uarch::allUArchs()) {
        const auto &c = uarch::config(a);
        std::printf("%-14s %-6s %-9d issue=%d dec=%d dsb=%d idq=%d "
                    "lsd=%s jcc=%s ports=%d\n",
                    c.name, c.abbrev, c.year, c.issueWidth, c.nDecoders,
                    c.dsbWidth, c.idqWidth, c.lsdEnabled ? "on" : "off",
                    c.jccErratum ? "yes" : "no", c.nPorts);
    }
    std::printf("\n");

    std::printf("TABLE 2: Comparison of predictors on BHiveU and BHiveL\n");
    std::printf("(%zu benchmarks per notion; ground truth: reference "
                "simulator)\n",
                bench::evalSuite().size());
    bench::printRule();
    std::printf("%-5s %-22s %10s %10s %12s %10s\n", "uArch", "Predictor",
                "MAPE(U)", "Kendall(U)", "MAPE(L)", "Kendall(L)");
    bench::printRule();

    std::size_t mapeSkippedTotal = 0;
    for (uarch::UArch a : uarch::allUArchs()) {
        const auto &suite = bench::archSuite(a);

        std::vector<std::unique_ptr<baselines::ThroughputPredictor>> preds;
        preds.push_back(std::make_unique<baselines::FacilePredictor>());
        preds.push_back(std::make_unique<baselines::SimulatorPredictor>());
        for (auto &p : baselines::makeBaselines())
            preds.push_back(std::move(p));

        for (const auto &p : preds) {
            eval::Accuracy u = eval::evaluate(*p, suite, false);
            eval::Accuracy l = eval::evaluate(*p, suite, true);
            mapeSkippedTotal += u.mapeSkipped + l.mapeSkipped;
            std::printf("%-5s %-22s %9.2f%% %10.4f %11.2f%% %10.4f\n",
                        uarch::config(a).abbrev, p->name().c_str(),
                        u.mape * 100.0, u.kendall, l.mape * 100.0,
                        l.kendall);
        }
        bench::printRule();
    }
    if (mapeSkippedTotal > 0)
        std::printf("note: %zu (measured, predicted) pairs had zero "
                    "measured throughput and were excluded from MAPE\n",
                    mapeSkippedTotal);
    return 0;
}
