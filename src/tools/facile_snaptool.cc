/**
 * @file
 * facile_snaptool — offline snapshot surgery (src/tools/README.md).
 *
 * Works on both snapshot formats through the format-independent
 * SnapshotModel (analysis/snapshot.h): the v1 streaming image and the
 * mmap-native sectioned v2 image are parsed to the same logical model,
 * and every mutating subcommand rebuilds a deterministic image from
 * that model, so convert round trips are bit-identical by
 * construction.
 *
 * Subcommands:
 *   dump <file> [--hex]                    layout + per-arch stats
 *   verify <file>...                       deep validation, CI-friendly
 *   diff <a> <b>                           logical comparison
 *   convert <in> --to v1|v2 [--out P] [--dry-run]
 *   merge <out> <in>... [--to v1|v2] [--dry-run]
 *   compact <in> [--out P] [--drop-predictions] [--dry-run]
 *
 * Exit codes: 0 success (verify: all valid; diff: identical),
 * 1 semantic failure (invalid image, diff mismatch, merge conflict),
 * 2 usage / IO error. Output files are written through the same
 * atomic temp-file + rename path the snapshot saver uses, so an
 * interrupted tool run never tears an existing file.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/intern.h"
#include "analysis/snapshot.h"
#include "corpus/sections.h"
#include "uarch/config.h"

namespace {

using facile::analysis::SnapshotError;
using facile::analysis::SnapshotFormat;
using facile::analysis::SnapshotModel;

/** Command-line misuse (bad flags, missing operands): exit 2. */
class UsageError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** File IO failure outside an image's own validity: exit 2. */
class IoError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw IoError("cannot open " + path);
    std::fseek(f, 0, SEEK_END);
    const long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> buf(len > 0 ? static_cast<std::size_t>(len)
                                          : 0);
    if (!buf.empty() &&
        std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
        std::fclose(f);
        throw IoError("cannot read " + path);
    }
    std::fclose(f);
    return buf;
}

/** Atomic replace via the snapshot saver's temp + rename discipline. */
void
writeAtomic(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    try {
        facile::corpus::AtomicFileWriter w(path, "snaptool", 1);
        if (!bytes.empty())
            w.write(bytes.data(), bytes.size());
        w.commit();
    } catch (const facile::corpus::SectionError &e) {
        throw IoError(e.what());
    }
}

const char *
archName(std::uint32_t archWord)
{
    const auto &all = facile::uarch::allUArchs();
    if (archWord >= all.size())
        return "?";
    return facile::uarch::config(all[archWord]).abbrev;
}

const char *
formatName(SnapshotFormat f)
{
    return f == SnapshotFormat::V2 ? "v2" : "v1";
}

SnapshotFormat
parseFormat(const std::string &s)
{
    if (s == "v1" || s == "1")
        return SnapshotFormat::V1;
    if (s == "v2" || s == "2")
        return SnapshotFormat::V2;
    throw UsageError("unknown format '" + s + "' (expected v1 or v2)");
}

// ---- canonical model (merge / compact) -------------------------------------
//
// The set/union layer itself lives in the library
// (analysis::SnapshotModelSet) — it doubles as the cluster-mode
// replica-convergence primitive, so the tool and the ConvergenceLoop
// merge identically by construction.

using ModelSet = facile::analysis::SnapshotModelSet;
using ArchSet = ModelSet::ArchSet;

// ---- subcommands -----------------------------------------------------------

int
cmdDump(const std::vector<std::string> &args)
{
    bool hex = false;
    std::string path;
    for (const std::string &a : args) {
        if (a == "--hex")
            hex = true;
        else if (!path.empty())
            throw UsageError("dump takes one file");
        else
            path = a;
    }
    if (path.empty())
        throw UsageError("dump: missing file operand");

    const std::vector<std::uint8_t> img = slurp(path);
    const SnapshotFormat fmt =
        facile::analysis::snapshotImageFormat(img.data(), img.size());
    const facile::analysis::SnapshotStats st =
        facile::analysis::validateSnapshot(img.data(), img.size());
    std::printf("file:        %s\n", path.c_str());
    std::printf("format:      %s (version %u)\n", formatName(fmt),
                st.formatVersion);
    std::printf("bytes:       %zu\n", img.size());
    std::printf("records:     %zu\n", st.records);
    std::printf("fused pairs: %zu\n", st.fusedPairs);
    std::printf("predictions: %zu\n", st.predictions);

    const SnapshotModel m =
        facile::analysis::parseSnapshotModel(img.data(), img.size());
    for (const SnapshotModel::Arch &a : m.arches)
        std::printf("  arch %-4s records %-6zu pairs %zu\n",
                    archName(a.arch), a.records.size(),
                    a.fusedPairs.size());

    if (fmt == SnapshotFormat::V2) {
        std::uint32_t count = 0;
        std::memcpy(&count, img.data() + 20, 4);
        const auto table = facile::corpus::decodeSectionTable(
            img.data() + 64, img.size() - 64, count, img.size());
        std::printf("sections:    %u\n", count);
        for (const facile::corpus::SectionEntry &e : table) {
            static const char *kTypes[] = {"?", "records", "pairs",
                                           "predictions"};
            std::printf("  %-11s tag %-4s offset %-10llu length %-10llu "
                        "items %-6llu hash %016llx\n",
                        e.type < 4 ? kTypes[e.type] : "?",
                        e.type == 3 ? "-" : archName(e.tag),
                        static_cast<unsigned long long>(e.offset),
                        static_cast<unsigned long long>(e.length),
                        static_cast<unsigned long long>(e.itemCount),
                        static_cast<unsigned long long>(e.hash));
        }
    }

    if (hex) {
        const std::size_t n = std::min<std::size_t>(
            img.size(), fmt == SnapshotFormat::V2 ? 64 : 32);
        std::printf("header hex:\n");
        for (std::size_t i = 0; i < n; i += 16) {
            std::printf("  %04zx ", i);
            for (std::size_t j = i; j < std::min(i + 16, n); ++j)
                std::printf(" %02x", img[j]);
            std::printf("\n");
        }
    }
    return 0;
}

int
cmdVerify(const std::vector<std::string> &args)
{
    if (args.empty())
        throw UsageError("verify: missing file operand");
    int bad = 0;
    for (const std::string &path : args) {
        try {
            const std::vector<std::uint8_t> img = slurp(path);
            const facile::analysis::SnapshotStats st =
                facile::analysis::validateSnapshot(img.data(),
                                                   img.size());
            std::printf("OK   %s  %s, %zu records, %zu pairs, "
                        "%zu predictions\n",
                        path.c_str(),
                        formatName(facile::analysis::snapshotImageFormat(
                            img.data(), img.size())),
                        st.records, st.fusedPairs, st.predictions);
        } catch (const std::exception &e) {
            std::printf("FAIL %s  %s\n", path.c_str(), e.what());
            ++bad;
        }
    }
    return bad ? 1 : 0;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    if (args.size() != 2)
        throw UsageError("diff takes exactly two files");
    const std::vector<std::uint8_t> ia = slurp(args[0]);
    const std::vector<std::uint8_t> ib = slurp(args[1]);
    ModelSet sa, sb;
    sa.accumulate(facile::analysis::parseSnapshotModel(ia.data(),
                                                       ia.size()),
                  args[0]);
    sb.accumulate(facile::analysis::parseSnapshotModel(ib.data(),
                                                       ib.size()),
                  args[1]);

    std::size_t differences = 0;
    auto report = [&](const char *what, std::size_t n, const char *dir) {
        if (n == 0)
            return;
        differences += n;
        std::printf("%s: %zu %s\n", what, n, dir);
    };

    std::set<std::uint32_t> archWords;
    for (const auto &[w, _] : sa.arches)
        archWords.insert(w);
    for (const auto &[w, _] : sb.arches)
        archWords.insert(w);
    for (std::uint32_t w : archWords) {
        const ArchSet empty;
        const ArchSet &a = sa.arches.count(w) ? sa.arches[w] : empty;
        const ArchSet &b = sb.arches.count(w) ? sb.arches[w] : empty;
        std::size_t onlyA = 0, onlyB = 0, changed = 0;
        for (const auto &[key, enc] : a.records) {
            auto it = b.records.find(key);
            if (it == b.records.end())
                ++onlyA;
            else if (it->second.first != enc.first)
                ++changed;
        }
        for (const auto &[key, enc] : b.records)
            if (!a.records.count(key))
                ++onlyB;
        std::size_t pairsOnlyA = 0, pairsOnlyB = 0;
        for (const auto &p : a.pairs)
            pairsOnlyA += !b.pairs.count(p);
        for (const auto &p : b.pairs)
            pairsOnlyB += !a.pairs.count(p);
        if (onlyA + onlyB + changed + pairsOnlyA + pairsOnlyB) {
            std::printf("arch %s:\n", archName(w));
            report("  records", onlyA, "only in A");
            report("  records", onlyB, "only in B");
            report("  records", changed, "changed");
            report("  pairs", pairsOnlyA, "only in A");
            report("  pairs", pairsOnlyB, "only in B");
        }
    }

    std::size_t pOnlyA = 0, pOnlyB = 0, pChanged = 0;
    for (const auto &[key, payload] : sa.predictions) {
        auto it = sb.predictions.find(key);
        if (it == sb.predictions.end())
            ++pOnlyA;
        else if (it->second != payload)
            ++pChanged;
    }
    for (const auto &[key, _] : sb.predictions)
        if (!sa.predictions.count(key))
            ++pOnlyB;
    report("predictions", pOnlyA, "only in A");
    report("predictions", pOnlyB, "only in B");
    report("predictions", pChanged, "changed");

    if (differences == 0) {
        std::printf("identical: %zu records, %zu predictions\n",
                    [&] {
                        std::size_t n = 0;
                        for (const auto &[_, a] : sa.arches)
                            n += a.records.size();
                        return n;
                    }(),
                    sa.predictions.size());
        return 0;
    }
    return 1;
}

/** Shared tail of convert/merge/compact: stats line + guarded write. */
int
emitImage(const std::vector<std::uint8_t> &img, const std::string &out,
          SnapshotFormat fmt, bool dryRun)
{
    const facile::analysis::SnapshotStats st =
        facile::analysis::validateSnapshot(img.data(), img.size());
    std::printf("%s%s: %s, %zu bytes, %zu records, %zu pairs, "
                "%zu predictions\n",
                dryRun ? "would write " : "wrote ", out.c_str(),
                formatName(fmt), img.size(), st.records, st.fusedPairs,
                st.predictions);
    if (!dryRun)
        writeAtomic(out, img);
    return 0;
}

int
cmdConvert(const std::vector<std::string> &args)
{
    std::string in, out, to;
    bool dryRun = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--to" && i + 1 < args.size())
            to = args[++i];
        else if (args[i] == "--out" && i + 1 < args.size())
            out = args[++i];
        else if (args[i] == "--dry-run")
            dryRun = true;
        else if (!in.empty())
            throw UsageError("convert takes one input file");
        else
            in = args[i];
    }
    if (in.empty() || to.empty())
        throw UsageError("convert <in> --to v1|v2 [--out P] [--dry-run]");
    const SnapshotFormat fmt = parseFormat(to);
    if (out.empty())
        out = in + "." + formatName(fmt);

    const std::vector<std::uint8_t> img = slurp(in);
    const SnapshotModel m =
        facile::analysis::parseSnapshotModel(img.data(), img.size());
    return emitImage(facile::analysis::buildSnapshotImage(m, fmt), out,
                     fmt, dryRun);
}

int
cmdMerge(const std::vector<std::string> &args)
{
    std::string out, to = "v2";
    std::vector<std::string> inputs;
    bool dryRun = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--to" && i + 1 < args.size())
            to = args[++i];
        else if (args[i] == "--dry-run")
            dryRun = true;
        else if (out.empty())
            out = args[i];
        else
            inputs.push_back(args[i]);
    }
    if (out.empty() || inputs.empty())
        throw UsageError("merge <out> <in>... [--to v1|v2] [--dry-run]");

    ModelSet set;
    for (const std::string &in : inputs) {
        const std::vector<std::uint8_t> img = slurp(in);
        set.accumulate(facile::analysis::parseSnapshotModel(img.data(),
                                                            img.size()),
                       in);
    }
    const SnapshotFormat fmt = parseFormat(to);
    return emitImage(
        facile::analysis::buildSnapshotImage(set.canonical(), fmt), out,
        fmt, dryRun);
}

int
cmdCompact(const std::vector<std::string> &args)
{
    std::string in, out;
    bool dropPredictions = false, dryRun = false;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--out" && i + 1 < args.size())
            out = args[++i];
        else if (args[i] == "--drop-predictions")
            dropPredictions = true;
        else if (args[i] == "--dry-run")
            dryRun = true;
        else if (!in.empty())
            throw UsageError("compact takes one input file");
        else
            in = args[i];
    }
    if (in.empty())
        throw UsageError(
            "compact <in> [--out P] [--drop-predictions] [--dry-run]");
    if (out.empty())
        out = in;

    const std::vector<std::uint8_t> img = slurp(in);
    const SnapshotFormat fmt =
        facile::analysis::snapshotImageFormat(img.data(), img.size());
    ModelSet set;
    set.accumulate(facile::analysis::parseSnapshotModel(img.data(),
                                                        img.size()),
                   in);
    if (dropPredictions) {
        set.hasPredictions = false;
        set.predictions.clear();
    }
    const std::vector<std::uint8_t> rebuilt =
        facile::analysis::buildSnapshotImage(set.canonical(), fmt);
    std::printf("compact %s: %zu -> %zu bytes\n", in.c_str(), img.size(),
                rebuilt.size());
    return emitImage(rebuilt, out, fmt, dryRun);
}

int
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: facile_snaptool <command> [args]\n"
        "  dump <file> [--hex]            show layout and stats\n"
        "  verify <file>...               validate deeply; exit 0/1\n"
        "  diff <a> <b>                   compare contents; exit 0/1\n"
        "  convert <in> --to v1|v2 [--out P] [--dry-run]\n"
        "  merge <out> <in>... [--to v1|v2] [--dry-run]\n"
        "  compact <in> [--out P] [--drop-predictions] [--dry-run]\n");
    return to == stdout ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(stderr);
    const std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "dump")
            return cmdDump(args);
        if (cmd == "verify")
            return cmdVerify(args);
        if (cmd == "diff")
            return cmdDiff(args);
        if (cmd == "convert")
            return cmdConvert(args);
        if (cmd == "merge")
            return cmdMerge(args);
        if (cmd == "compact")
            return cmdCompact(args);
        if (cmd == "help" || cmd == "--help" || cmd == "-h")
            return usage(stdout);
        std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
        return usage(stderr);
    } catch (const UsageError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const IoError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    } catch (const SnapshotError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
