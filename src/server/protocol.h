/**
 * @file
 * Wire protocol of the prediction server: a small framed binary format
 * shared by the server, the client library, and the load generator.
 *
 * Every frame is a fixed-size little-endian header followed by a
 * length-prefixed payload, so a reader can always stay in sync: it
 * reads the header, then exactly `len` payload bytes, regardless of
 * whether it understands the op. Doubles travel as raw IEEE-754 bit
 * patterns, which is what makes the server's responses bit-identical
 * to serial model::predict() — no text round-trip, no rounding.
 *
 * Request frame (16-byte header + len payload bytes):
 *
 *   offset 0   u64  id       client-chosen; echoed in the response
 *   offset 8   u8   op       1=PREDICT  2=STATS  3=PING  4=SNAPSHOT
 *                            (admin; see "SNAPSHOT subops" below:
 *                            persist a warm-start snapshot to the
 *                            operator-configured snapshotPath, or
 *                            stream the live image to the caller)
 *                            5=HEALTH (readiness probe: payload is one
 *                            u8, 1=READY 2=DRAINING; a router shards
 *                            traffic away from draining replicas)
 *   offset 9   u8   arch     uarch::UArch value (PREDICT only)
 *   offset 10  u8   flags    bit 0: loop (TPL vs TPU); bit 1: explain
 *                            (build the interpretability payload —
 *                            criticalChain / contendedPorts /
 *                            contendingInsts; without it the server
 *                            serves the cheap bound-only path and the
 *                            payload counts in the response are 0)
 *   offset 11  u8   reserved must be 0
 *   offset 12  u16  config   model::ModelConfig::packBits()
 *   offset 14  u16  len      payload length; PREDICT: the raw block
 *                            bytes (<= kMaxBlockBytes), others: 0
 *
 * Response frame (12-byte header + len payload bytes):
 *
 *   offset 0   u64  id       echo of the request id
 *   offset 8   u8   status   0=OK  1=BAD_REQUEST (unknown op, bad
 *                            arch, oversized block)  2=OVERLOADED
 *                            (load shed: admission queue full or the
 *                            connection's in-flight quota exceeded;
 *                            the request was valid — back off, retry)
 *                            3=DRAINING (the server is shutting down
 *                            gracefully: it no longer accepts PREDICT
 *                            work but still answers control ops; retry
 *                            against another replica or after backoff)
 *   offset 9   u8   op       echo of the request op
 *   offset 10  u16  len      payload length
 *
 * PREDICT response payload (72 bytes + variable tail):
 *
 *   u64  throughput bits          u64  componentValue bits x 7
 *   u8   primaryBottleneck        u8   nBottlenecks
 *   u16  nCriticalChain           u16  nContendingInsts
 *   u16  contendedPorts
 *   u8   bottlenecks[nBottlenecks]
 *   i32  criticalChain[nCriticalChain]
 *   i32  contendingInsts[nContendingInsts]
 *
 * STATS response payload: ServerStats as kStatsFields (27) u64 fields
 * in declaration order. The payload is append-only — decoders accept
 * any whole-u64 payload of at least kStatsFieldsV1 (15) fields, so
 * mixed-version client/server pairs interoperate. PING response
 * payload: empty. HEALTH response payload: one u8 readiness state
 * (decoders must tolerate longer payloads — append-only, like STATS).
 *
 * SNAPSHOT subops (the first request-payload byte; an empty payload
 * means SAVE for compatibility with pre-cluster clients):
 *
 *   0 = SAVE   persist a warm-start snapshot — intern arenas +
 *              prediction cache — to the operator-configured
 *              snapshotPath; answers BAD_REQUEST when no path is
 *              configured or the save fails. The path is never taken
 *              from the wire.
 *   1 = FETCH  stream the live snapshot image (always format v2) to
 *              the caller: the response is a SEQUENCE of frames, all
 *              carrying the request id, op SNAPSHOT, status OK, each
 *              with a chunk payload
 *
 *                  u64 totalBytes   image size, same in every chunk
 *                  u64 offset       byte offset of this chunk's data
 *                  data             <= len - 16 image bytes, in order
 *
 *              The stream is complete when offset + data length ==
 *              totalBytes (a zero-byte image is one data-less chunk).
 *              This is how a new replica bootstraps: fetch a peer's
 *              image, validate, land it on disk, and warm-start
 *              bit-identically through the normal mmap load path.
 *              Servers that predate the subop answer BAD_REQUEST —
 *              callers fall back to a cold start.
 *
 *   Other subop values answer BAD_REQUEST.
 *
 * A malformed-but-well-framed block (decode error) is NOT a protocol
 * error: it follows the engine's crash protocol and yields status OK
 * with a default prediction (throughput 0).
 */
#ifndef FACILE_SERVER_PROTOCOL_H
#define FACILE_SERVER_PROTOCOL_H

#include <bit>
#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "engine/engine.h"
#include "facile/predictor.h"

namespace facile::server {

static_assert(std::endian::native == std::endian::little,
              "the wire protocol and its memcpy codec assume a "
              "little-endian host");

enum class Op : std::uint8_t {
    Predict = 1,
    Stats = 2,
    Ping = 3,
    Snapshot = 4,
    Health = 5,
};

enum class Status : std::uint8_t {
    Ok = 0,
    BadRequest = 1,
    /**
     * Explicit backpressure: the server is shedding this request
     * because a resource limit was hit (admission queue full, or the
     * connection's in-flight quota exceeded). The connection stays
     * usable — the client should back off and retry; nothing about
     * the request itself was wrong.
     */
    Overloaded = 2,
    /**
     * Graceful shutdown in progress: the server is flushing in-flight
     * batches and no longer takes PREDICT work (control ops still
     * answer). Like Overloaded this says nothing was wrong with the
     * request — retry elsewhere or after backoff.
     */
    Draining = 3,
};

/** HEALTH response payload values (first u8). */
enum class HealthState : std::uint8_t {
    Unknown = 0,
    Ready = 1,
    Draining = 2,
};

/**
 * Typed protocol fault (mirrors analysis::SnapshotError): the peer
 * spoke the wire format wrong or rejected a request — as opposed to a
 * transport fault (TransportError below). status() carries the wire
 * status for rejections (Status::Overloaded and Status::Draining mean
 * "back off and retry"); locally detected faults (malformed payload,
 * id mismatch) report Status::Ok there since no wire status was
 * involved.
 */
class ProtocolError : public std::runtime_error
{
  public:
    explicit ProtocolError(const std::string &what,
                           Status status = Status::Ok)
        : std::runtime_error("protocol: " + what), status_(status)
    {}

    Status status() const { return status_; }

    /**
     * Retryable-vs-fatal taxonomy for self-healing clients: a shed
     * (Overloaded/Draining) is the server explicitly asking for a
     * retry after backoff; everything else — BadRequest, malformed
     * payloads, id mismatches — will fail the same way again and must
     * surface to the caller.
     */
    bool retryable() const
    {
        return status_ == Status::Overloaded || status_ == Status::Draining;
    }

  private:
    Status status_;
};

/**
 * Typed transport fault: the connection itself failed (reset, refused,
 * unexpected EOF, poll timeout) rather than the protocol being spoken
 * wrong. Always retryable after a reconnect — PREDICT is pure, so a
 * self-healing client may replay in-flight requests on a fresh
 * connection (ResilientClient does exactly that).
 */
class TransportError : public std::runtime_error
{
  public:
    explicit TransportError(const std::string &what)
        : std::runtime_error("transport: " + what)
    {}
};

/** Request flag bits (the u8 at offset 10). */
inline constexpr std::uint8_t kFlagLoop = 1u << 0;
inline constexpr std::uint8_t kFlagExplain = 1u << 1;

/** SNAPSHOT request subops (first payload byte; empty payload = SAVE). */
inline constexpr std::uint8_t kSnapshotSubopSave = 0;
inline constexpr std::uint8_t kSnapshotSubopFetch = 1;

inline constexpr std::size_t kRequestHeaderSize = 16;
inline constexpr std::size_t kResponseHeaderSize = 12;

/** Fixed prefix of a SNAPSHOT-fetch chunk payload (totalBytes, offset). */
inline constexpr std::size_t kSnapshotChunkHeaderSize = 16;

/** Image bytes per SNAPSHOT-fetch chunk (payload len is a u16). */
inline constexpr std::size_t kSnapshotChunkBytes =
    65535 - kSnapshotChunkHeaderSize;

/** Upper bound on block bytes per request (BHive blocks are ~10-60). */
inline constexpr std::size_t kMaxBlockBytes = 4096;

/** Parsed request frame header. */
struct RequestHeader
{
    std::uint64_t id = 0;
    std::uint8_t op = 0;
    std::uint8_t arch = 0;
    std::uint8_t flags = 0;
    std::uint16_t config = 0;
    std::uint16_t len = 0;
};

/** Parsed response frame header. */
struct ResponseHeader
{
    std::uint64_t id = 0;
    std::uint8_t status = 0;
    std::uint8_t op = 0;
    std::uint16_t len = 0;
};

/** Counters reported by the STATS op (all monotonic except open/uptime). */
struct ServerStats
{
    std::uint64_t requests = 0;        ///< frames received, any op
    std::uint64_t predictions = 0;     ///< PREDICT responses sent
    std::uint64_t batches = 0;         ///< engine batch submissions
    std::uint64_t maxBatch = 0;        ///< largest admission batch so far
    std::uint64_t analysisCacheHits = 0;
    std::uint64_t predictionCacheHits = 0;
    std::uint64_t analyzed = 0;

    // Resource-limit counters (ServerOptions quotas; zero in healthy
    // steady state — any growth here means load shedding happened).
    std::uint64_t overloadedQueue = 0; ///< OVERLOADED: admission queue full
    std::uint64_t overloadedConn = 0;  ///< OVERLOADED: in-flight quota hit
    std::uint64_t readTimeouts = 0;    ///< conns closed by read deadline
    std::uint64_t quotaClosed = 0;     ///< conns closed: buffered-byte quota
    std::uint64_t connectionsShed = 0; ///< conns refused at accept (cap)

    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsOpen = 0;
    std::uint64_t uptimeMs = 0;

    // Event-loop data-plane counters (appended in PR 7; the STATS
    // payload is append-only so older peers still decode the prefix).
    std::uint64_t epollWakeups = 0; ///< epoll_wait returns, all io loops
    std::uint64_t shortWrites = 0;  ///< partial writev: EPOLLOUT resume
    std::uint64_t ringFull = 0;     ///< admission-ring capacity rejections

    // Fault-tolerance counters (appended in PR 8). The first two are
    // client-side: a server always reports 0 there, and
    // ResilientClient::stats() fills in its own reconnect/retry tallies
    // so one struct describes the whole path end to end.
    std::uint64_t reconnects = 0;        ///< client: successful reconnects
    std::uint64_t retriedRequests = 0;   ///< client: requests re-sent
    std::uint64_t drainSheds = 0;        ///< PREDICTs answered DRAINING
    std::uint64_t snapshotFallbacks = 0; ///< warm-start generations skipped

    // Appended in PR 9 (mmap-native snapshot v2).
    /**
     * How the warm-start snapshot was brought in, as the numeric
     * value of analysis::SnapshotLoadMode: 0 none/cold, 1 v1 parse,
     * 2 eager v2 parse, 3 v2 mmap bind (O(pages-touched) start).
     */
    std::uint64_t snapshotLoadMode = 0;

    // Cluster-mode counters (appended in PR 10). routedPredicts and
    // backendFailovers are router-side: a backend server always
    // reports 0 there and facile_lb fills them in, mirroring how
    // ResilientClient owns reconnects/retriedRequests. The convergence
    // counter is likewise owned by the replica's ConvergenceLoop.
    std::uint64_t snapshotFetchesServed = 0; ///< SNAPSHOT FETCH streams
    std::uint64_t routedPredicts = 0;        ///< router: PREDICTs forwarded
    std::uint64_t backendFailovers = 0;      ///< router: in-flight replays
    std::uint64_t convergenceMerges = 0;     ///< replica: union folds done
};

/**
 * Number of u64 fields in the STATS response payload. The payload is
 * append-only: kStatsFieldsV1 is the thread-per-connection era field
 * count, and decodeStatsPayload accepts any whole-u64 payload of at
 * least that many fields (missing trailing fields read 0, unknown
 * extras are ignored), so client and server can be upgraded
 * independently.
 */
inline constexpr std::size_t kStatsFields = 27;
inline constexpr std::size_t kStatsFieldsV1 = 15;

// ---- little-endian append/read helpers ------------------------------------
// Encoders write through a raw cursor into pre-grown buffer space: the
// serving hot path appends hundreds of frames per batch, and per-byte
// push_back bounds-checking is measurable there.

/** Extend @p buf by @p n bytes and return a cursor to the new space. */
inline std::uint8_t *
growBuf(std::vector<std::uint8_t> &buf, std::size_t n)
{
    const std::size_t old = buf.size();
    buf.resize(old + n);
    return buf.data() + old;
}

inline void
putU16(std::uint8_t *&p, std::uint16_t v)
{
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
}

inline void
putU32(std::uint8_t *&p, std::uint32_t v)
{
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
}

inline void
putU64(std::uint8_t *&p, std::uint64_t v)
{
    std::memcpy(p, &v, sizeof v);
    p += sizeof v;
}

inline std::uint16_t
getU16(const std::uint8_t *p)
{
    std::uint16_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

// ---- frame codec ----------------------------------------------------------

/** Append a PREDICT request frame for @p req with client id @p id. */
void appendPredictRequest(std::vector<std::uint8_t> &buf, std::uint64_t id,
                          const engine::Request &req);

/** Append a payload-less request frame (STATS, PING). */
void appendControlRequest(std::vector<std::uint8_t> &buf, std::uint64_t id,
                          Op op);

/** Append a SNAPSHOT request carrying the FETCH subop byte. */
void appendSnapshotFetchRequest(std::vector<std::uint8_t> &buf,
                                std::uint64_t id);

/** Parse a request header from kRequestHeaderSize bytes. */
RequestHeader parseRequestHeader(const std::uint8_t *p);

/** Parse a response header from kResponseHeaderSize bytes. */
ResponseHeader parseResponseHeader(const std::uint8_t *p);

/**
 * Append a complete response frame (header + payload) for a
 * prediction. The payload encodes every model::Prediction field, bits
 * preserved.
 */
void appendPredictResponse(std::vector<std::uint8_t> &buf, std::uint64_t id,
                           const model::Prediction &pred);

/** Append an error / control-op response frame. */
void appendStatusResponse(std::vector<std::uint8_t> &buf, std::uint64_t id,
                          Op op, Status status);

/** Append a STATS response frame. */
void appendStatsResponse(std::vector<std::uint8_t> &buf, std::uint64_t id,
                         const ServerStats &stats);

/** Append a HEALTH response frame (payload: one readiness u8). */
void appendHealthResponse(std::vector<std::uint8_t> &buf, std::uint64_t id,
                          HealthState state);

/**
 * Append the complete SNAPSHOT-fetch response stream for @p image:
 * one chunk frame per kSnapshotChunkBytes, all carrying @p id (a
 * zero-byte image yields a single data-less chunk, so the stream end
 * is always detectable).
 */
void appendSnapshotStream(std::vector<std::uint8_t> &buf, std::uint64_t id,
                          const std::uint8_t *image, std::size_t size);

/** One decoded SNAPSHOT-fetch chunk; data points into the payload. */
struct SnapshotChunk
{
    std::uint64_t totalBytes = 0;
    std::uint64_t offset = 0;
    const std::uint8_t *data = nullptr;
    std::size_t len = 0;
};

/**
 * Decode one SNAPSHOT-fetch chunk payload. nullopt when the payload is
 * shorter than the chunk header or internally inconsistent (offset or
 * data extending past totalBytes).
 */
std::optional<SnapshotChunk> decodeSnapshotChunk(const std::uint8_t *p,
                                                 std::size_t len);

/**
 * Decode a HEALTH response payload. Tolerates future append-only
 * extensions (extra trailing bytes); nullopt only on an empty payload.
 */
std::optional<HealthState> decodeHealthPayload(const std::uint8_t *p,
                                               std::size_t len);

/**
 * Decode a PREDICT response payload back into a Prediction. Returns
 * nullopt if the payload is truncated or inconsistent.
 */
std::optional<model::Prediction>
decodePredictPayload(const std::uint8_t *p, std::size_t len);

/**
 * As decodePredictPayload, but decodes into @p out, reusing its
 * vector capacities — the allocation-free path for clients that keep
 * a result buffer across batches. Returns false (out unspecified) on
 * a malformed payload.
 */
bool decodePredictInto(const std::uint8_t *p, std::size_t len,
                       model::Prediction &out);

/** Decode a STATS response payload. */
std::optional<ServerStats> decodeStatsPayload(const std::uint8_t *p,
                                              std::size_t len);

} // namespace facile::server

#endif // FACILE_SERVER_PROTOCOL_H
