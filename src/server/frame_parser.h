/**
 * @file
 * Incremental request-frame parser, factored out of the server's
 * per-connection reader so the one piece of code that consumes raw
 * untrusted bytes is connection-free: unit-testable byte-at-a-time and
 * split-across-reads, and drivable by the fuzz_protocol libFuzzer
 * harness without sockets or threads.
 *
 * The parser owns the receive buffer. feed() appends whatever the
 * transport delivered; next() yields complete frames in order. Framing
 * follows protocol.h exactly: a frame is kRequestHeaderSize bytes of
 * header plus header.len payload bytes, regardless of whether the op
 * or arch is meaningful — semantic validation is the caller's job, the
 * parser only guarantees it never desyncs and never reads out of
 * bounds.
 *
 * Resource bound: the only way a peer can make the parser buffer
 * grow without yielding frames is a partial frame, so feed() enforces
 * a cap on buffered-unparsed bytes (Options::maxBuffered). The largest
 * legal frame is kRequestHeaderSize + 65535 (len is a u16); anything
 * still buffered beyond the cap after draining is a protocol abuse and
 * feed() reports it so the connection can be closed.
 */
#ifndef FACILE_SERVER_FRAME_PARSER_H
#define FACILE_SERVER_FRAME_PARSER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "server/protocol.h"

namespace facile::server {

/**
 * One complete request frame. The payload view points into the
 * parser's buffer and stays valid until the next feed() call.
 */
struct FrameView
{
    RequestHeader header;
    const std::uint8_t *payload = nullptr; ///< header.len bytes
};

class FrameParser
{
  public:
    struct Options
    {
        /**
         * Cap on buffered-unparsed bytes. Must exceed the largest
         * legal frame (kRequestHeaderSize + 65535) or well-formed
         * traffic could be rejected; the default leaves generous room
         * for a full frame plus a transport read chunk.
         */
        std::size_t maxBuffered = kDefaultMaxBuffered;
    };

    static constexpr std::size_t kDefaultMaxBuffered = 1u << 20; // 1 MiB

    FrameParser() = default;
    explicit FrameParser(Options opts) : opts_(opts) {}

    /**
     * Buffer @p n transport bytes. Returns false — without buffering —
     * when the unparsed backlog would exceed Options::maxBuffered;
     * the caller should treat that as abuse and close the connection
     * (the parser itself stays consistent and reusable).
     */
    bool
    feed(const std::uint8_t *data, std::size_t n)
    {
        // Compact before growing so payload views handed out by
        // next() stay valid between a drain and the following feed.
        if (parsed_ == buf_.size()) {
            buf_.clear();
            parsed_ = 0;
        } else if (parsed_ > kCompactThreshold) {
            buf_.erase(buf_.begin(),
                       buf_.begin() + static_cast<std::ptrdiff_t>(parsed_));
            parsed_ = 0;
        }
        if (buf_.size() - parsed_ + n > opts_.maxBuffered)
            return false;
        buf_.insert(buf_.end(), data, data + n);
        return true;
    }

    /**
     * Parse the next complete frame into @p out. Returns false when
     * more bytes are needed (partial header or partial payload).
     */
    bool
    next(FrameView &out)
    {
        if (buf_.size() - parsed_ < kRequestHeaderSize)
            return false;
        RequestHeader h = parseRequestHeader(buf_.data() + parsed_);
        const std::size_t frame = kRequestHeaderSize + h.len;
        if (buf_.size() - parsed_ < frame)
            return false;
        out.header = h;
        out.payload = buf_.data() + parsed_ + kRequestHeaderSize;
        parsed_ += frame;
        return true;
    }

    /** Unparsed bytes currently buffered. */
    std::size_t
    buffered() const
    {
        return buf_.size() - parsed_;
    }

    /**
     * True when the buffer holds the beginning of an incomplete frame.
     * Only meaningful after next() has returned false (i.e. after the
     * caller drained every complete frame) — that is exactly when the
     * reader decides whether a read deadline applies.
     */
    bool
    midFrame() const
    {
        return buffered() > 0;
    }

  private:
    /** Reclaim the consumed prefix once it outgrows one read chunk. */
    static constexpr std::size_t kCompactThreshold = 64 * 1024;

    Options opts_;
    std::vector<std::uint8_t> buf_;
    std::size_t parsed_ = 0; ///< consumed prefix of buf_
};

} // namespace facile::server

#endif // FACILE_SERVER_FRAME_PARSER_H
