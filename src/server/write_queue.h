/**
 * @file
 * Per-connection writer state machine for the event-driven server:
 * scatter-gather (writev-style) response flushing over a nonblocking
 * socket, with partial-write resume.
 *
 * The collector serializes a batch's responses into per-(worker,
 * connection) buffers; a connection's flush must then push several
 * buffers plus possibly a leftover tail from the previous flush in as
 * few syscalls as possible, without copying in the common case. The
 * WriteQueue does exactly that:
 *
 *   - writeGather(fd, extra, n) sends queued segments followed by the
 *     caller's iovecs in one ::sendmsg (the iovec form of writev,
 *     used for MSG_NOSIGNAL), looping until everything went out, the
 *     socket would block, or the peer is gone;
 *   - whatever of the caller's buffers did NOT reach the socket is
 *     copied into the queue — copy-on-partial: a drained flush copies
 *     nothing, and a short write buffers only the unsent tail;
 *   - the next flush (an EPOLLOUT wakeup, or the next batch) resumes
 *     from the queued tail, so response byte order is preserved across
 *     arbitrary partial-write interleavings.
 *
 * The class is socket-agnostic and lock-free by itself (the server
 * guards each connection's instance with its write mutex); it is
 * unit-tested against tiny-SO_SNDBUF socketpairs in
 * tests/test_write_queue.cc, byte-for-byte.
 */
#ifndef FACILE_SERVER_WRITE_QUEUE_H
#define FACILE_SERVER_WRITE_QUEUE_H

#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <vector>

#include "testing/fault.h"

namespace facile::server {

class WriteQueue
{
  public:
    enum class Result {
        Drained,  ///< everything (queue + extras) reached the socket
        Blocked,  ///< short write: the unsent tail is queued, arm EPOLLOUT
        PeerGone, ///< write error (EPIPE/ECONNRESET/...): close the conn
    };

    /** Gather-capacity per sendmsg call (well under IOV_MAX). */
    static constexpr std::size_t kMaxIov = 64;

    /**
     * Flush queued segments, then @p extra[0..nExtra): one sendmsg per
     * kMaxIov iovecs until done or the socket blocks. On a short
     * write the unsent remainder of @p extra is appended to the queue
     * (the caller's buffers are never retained by reference). Never
     * blocks on a nonblocking fd.
     */
    Result
    writeGather(int fd, const iovec *extra, std::size_t nExtra)
    {
        std::size_t extraOff = 0; // fully-sent prefix of extra[]
        std::size_t extraByteOff = 0; // sent bytes of extra[extraOff]
        for (;;) {
            iovec iov[kMaxIov];
            std::size_t n = 0;
            // Queued tail first: order across flushes is response order.
            std::size_t off = headOff_;
            for (auto it = queue_.begin();
                 it != queue_.end() && n < kMaxIov; ++it) {
                iov[n].iov_base =
                    const_cast<std::uint8_t *>(it->data() + off);
                iov[n].iov_len = it->size() - off;
                off = 0;
                ++n;
            }
            for (std::size_t i = extraOff; i < nExtra && n < kMaxIov;
                 ++i) {
                const std::size_t skip =
                    i == extraOff ? extraByteOff : 0;
                if (extra[i].iov_len <= skip)
                    continue; // empty (or fully-sent) buffer
                iov[n].iov_base =
                    static_cast<std::uint8_t *>(extra[i].iov_base) + skip;
                iov[n].iov_len = extra[i].iov_len - skip;
                ++n;
            }
            if (n == 0)
                return Result::Drained;

            msghdr msg{};
            msg.msg_iov = iov;
            msg.msg_iovlen = n;
            int fiErr = 0;
            if constexpr (testing::kFaultInjection) {
                std::size_t total = 0;
                for (std::size_t i = 0; i < n; ++i)
                    total += iov[i].iov_len;
                const auto fa = testing::faultPoint("wq.sendmsg", total);
                fiErr = fa.err;
                if (!fiErr && fa.clamp < total) {
                    // Short-write injection: trim the gather list so the
                    // kernel genuinely accepts at most `clamp` bytes and
                    // the partial-write resume machinery runs for real.
                    std::size_t budget = std::max<std::size_t>(1, fa.clamp);
                    std::size_t m = 0;
                    while (m < n && budget > 0) {
                        iov[m].iov_len = std::min(iov[m].iov_len, budget);
                        budget -= iov[m].iov_len;
                        ++m;
                    }
                    msg.msg_iovlen = m;
                }
            }
            ssize_t sent;
            if (fiErr) {
                errno = fiErr;
                sent = -1;
            } else {
                sent = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
            }
            if (sent < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) {
                    stashTail(extra, nExtra, extraOff, extraByteOff);
                    return Result::Blocked;
                }
                return Result::PeerGone;
            }
            consume(static_cast<std::size_t>(sent), extra, nExtra,
                    extraOff, extraByteOff);
            // Loop: either more than kMaxIov segments were pending, or
            // the kernel took a partial chunk and may take more.
            if (queue_.empty() && extraOff >= nExtra)
                return Result::Drained;
        }
    }

    /** Flush only what is already queued (the EPOLLOUT resume path). */
    Result
    flush(int fd)
    {
        return writeGather(fd, nullptr, 0);
    }

    /** Bytes waiting for the socket to accept them. */
    std::size_t
    bytesQueued() const
    {
        std::size_t total = 0;
        for (const auto &seg : queue_)
            total += seg.size();
        return total - headOff_;
    }

    bool empty() const { return queue_.empty(); }

  private:
    /** Account @p sent bytes: queue first, then the extra iovecs. */
    void
    consume(std::size_t sent, const iovec *extra, std::size_t nExtra,
            std::size_t &extraOff, std::size_t &extraByteOff)
    {
        while (sent > 0 && !queue_.empty()) {
            const std::size_t avail = queue_.front().size() - headOff_;
            if (sent < avail) {
                headOff_ += sent;
                return;
            }
            sent -= avail;
            headOff_ = 0;
            queue_.pop_front();
        }
        while (sent > 0 && extraOff < nExtra) {
            const std::size_t avail =
                extra[extraOff].iov_len - extraByteOff;
            if (sent < avail) {
                extraByteOff += sent;
                return;
            }
            sent -= avail;
            extraByteOff = 0;
            ++extraOff;
        }
        // Skip empty extras so the Drained check sees extraOff==nExtra.
        while (extraOff < nExtra && extra[extraOff].iov_len == 0)
            ++extraOff;
    }

    /** Copy the unsent remainder of the extras into the queue. */
    void
    stashTail(const iovec *extra, std::size_t nExtra,
              std::size_t extraOff, std::size_t extraByteOff)
    {
        for (std::size_t i = extraOff; i < nExtra; ++i) {
            const std::size_t skip = i == extraOff ? extraByteOff : 0;
            if (extra[i].iov_len <= skip)
                continue;
            const auto *base =
                static_cast<const std::uint8_t *>(extra[i].iov_base);
            queue_.emplace_back(base + skip,
                                base + extra[i].iov_len);
        }
    }

    std::deque<std::vector<std::uint8_t>> queue_;
    std::size_t headOff_ = 0; ///< sent prefix of queue_.front()
};

} // namespace facile::server

#endif // FACILE_SERVER_WRITE_QUEUE_H
