/**
 * @file
 * Tiny POSIX socket helpers shared by the server and the client
 * library. Kept header-only and internal to facile::server — this is
 * plumbing for protocol.h framing, not a general networking layer.
 */
#ifndef FACILE_SERVER_NET_UTIL_H
#define FACILE_SERVER_NET_UTIL_H

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

#include "testing/fault.h"

namespace facile::server {

/**
 * send() the whole buffer, retrying on EINTR and suppressing SIGPIPE;
 * false on any other error (peer gone).
 */
inline bool
sendAll(int fd, const std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        ssize_t n;
        const auto fa = testing::faultPoint("net.send", len);
        if (fa.err) {
            errno = fa.err;
            n = -1;
        } else {
            n = ::send(fd, data, std::min(len, fa.clamp), MSG_NOSIGNAL);
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += static_cast<std::size_t>(n);
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

[[noreturn]] inline void
throwErrno(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

/** Put @p fd in nonblocking mode; false on fcntl failure. */
inline bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Drain a nonblocking eventfd/pipe wakeup (ignores emptiness). */
inline void
drainWakeFd(int fd)
{
    std::uint64_t v;
    for (;;) {
        ssize_t n;
        const auto fa = testing::faultPoint("net.wake_read", sizeof v);
        if (fa.err) {
            errno = fa.err;
            n = -1;
        } else {
            n = ::read(fd, &v, sizeof v);
        }
        if (n > 0)
            continue;
        // A signal between the eventfd becoming readable and the read
        // would otherwise leave the counter set and the next epoll_wait
        // spinning on a level-triggered wakeup that never drains.
        if (n < 0 && errno == EINTR)
            continue;
        return;
    }
}

/**
 * Bump a nonblocking eventfd, retrying on EINTR: a lost wakeup here
 * means the target loop sleeps a full sweep interval (or until the
 * next unrelated event) with work already queued for it. EAGAIN means
 * the counter is already non-zero — the wakeup is pending, nothing to
 * do. Any other error is ignored by design (shutdown races close the
 * fd under us; the sweeps bound the damage).
 */
inline void
signalWakeFd(int fd)
{
    const std::uint64_t one = 1;
    for (;;) {
        ssize_t n;
        const auto fa = testing::faultPoint("net.wake_write", sizeof one);
        if (fa.err) {
            errno = fa.err;
            n = -1;
        } else {
            n = ::write(fd, &one, sizeof one);
        }
        if (n >= 0 || errno != EINTR)
            return;
    }
}

} // namespace facile::server

#endif // FACILE_SERVER_NET_UTIL_H
