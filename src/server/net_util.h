/**
 * @file
 * Tiny POSIX socket helpers shared by the server and the client
 * library. Kept header-only and internal to facile::server — this is
 * plumbing for protocol.h framing, not a general networking layer.
 */
#ifndef FACILE_SERVER_NET_UTIL_H
#define FACILE_SERVER_NET_UTIL_H

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>

namespace facile::server {

/**
 * send() the whole buffer, retrying on EINTR and suppressing SIGPIPE;
 * false on any other error (peer gone).
 */
inline bool
sendAll(int fd, const std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += static_cast<std::size_t>(n);
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

[[noreturn]] inline void
throwErrno(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

/** Put @p fd in nonblocking mode; false on fcntl failure. */
inline bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Drain a nonblocking eventfd/pipe wakeup (ignores emptiness). */
inline void
drainWakeFd(int fd)
{
    std::uint64_t v;
    while (::read(fd, &v, sizeof v) > 0) {
    }
}

} // namespace facile::server

#endif // FACILE_SERVER_NET_UTIL_H
