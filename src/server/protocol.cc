#include "server/protocol.h"

namespace facile::server {

namespace {

std::uint64_t
doubleBits(double d)
{
    std::uint64_t v;
    std::memcpy(&v, &d, sizeof v);
    return v;
}

double
bitsDouble(std::uint64_t v)
{
    double d;
    std::memcpy(&d, &v, sizeof d);
    return d;
}

} // namespace

void
appendPredictRequest(std::vector<std::uint8_t> &buf, std::uint64_t id,
                     const engine::Request &req)
{
    std::uint8_t *p =
        growBuf(buf, kRequestHeaderSize + req.bytes.size());
    putU64(p, id);
    *p++ = static_cast<std::uint8_t>(Op::Predict);
    *p++ = static_cast<std::uint8_t>(req.arch);
    *p++ = static_cast<std::uint8_t>(
        (req.loop ? kFlagLoop : 0) |
        (req.payload == model::Payload::Full ? kFlagExplain : 0));
    *p++ = 0; // reserved
    putU16(p, req.config.packBits());
    putU16(p, static_cast<std::uint16_t>(req.bytes.size()));
    if (!req.bytes.empty())
        std::memcpy(p, req.bytes.data(), req.bytes.size());
}

void
appendControlRequest(std::vector<std::uint8_t> &buf, std::uint64_t id, Op op)
{
    std::uint8_t *p = growBuf(buf, kRequestHeaderSize);
    putU64(p, id);
    *p++ = static_cast<std::uint8_t>(op);
    *p++ = 0; // arch
    *p++ = 0; // flags
    *p++ = 0; // reserved
    putU16(p, 0); // config
    putU16(p, 0); // len
}

void
appendSnapshotFetchRequest(std::vector<std::uint8_t> &buf, std::uint64_t id)
{
    std::uint8_t *p = growBuf(buf, kRequestHeaderSize + 1);
    putU64(p, id);
    *p++ = static_cast<std::uint8_t>(Op::Snapshot);
    *p++ = 0;     // arch
    *p++ = 0;     // flags
    *p++ = 0;     // reserved
    putU16(p, 0); // config
    putU16(p, 1); // len: one subop byte
    *p = kSnapshotSubopFetch;
}

RequestHeader
parseRequestHeader(const std::uint8_t *p)
{
    RequestHeader h;
    h.id = getU64(p);
    h.op = p[8];
    h.arch = p[9];
    h.flags = p[10];
    h.config = getU16(p + 12);
    h.len = getU16(p + 14);
    return h;
}

ResponseHeader
parseResponseHeader(const std::uint8_t *p)
{
    ResponseHeader h;
    h.id = getU64(p);
    h.status = p[8];
    h.op = p[9];
    h.len = getU16(p + 10);
    return h;
}

void
appendPredictResponse(std::vector<std::uint8_t> &buf, std::uint64_t id,
                      const model::Prediction &pred)
{
    const std::size_t payload =
        72 + pred.bottlenecks.size() + 4 * pred.criticalChain.size() +
        4 * pred.contendingInsts.size();
    std::uint8_t *p = growBuf(buf, kResponseHeaderSize + payload);

    putU64(p, id);
    *p++ = static_cast<std::uint8_t>(Status::Ok);
    *p++ = static_cast<std::uint8_t>(Op::Predict);
    putU16(p, static_cast<std::uint16_t>(payload));

    putU64(p, doubleBits(pred.throughput));
    for (double v : pred.componentValue)
        putU64(p, doubleBits(v));
    *p++ = static_cast<std::uint8_t>(pred.primaryBottleneck);
    *p++ = static_cast<std::uint8_t>(pred.bottlenecks.size());
    putU16(p, static_cast<std::uint16_t>(pred.criticalChain.size()));
    putU16(p, static_cast<std::uint16_t>(pred.contendingInsts.size()));
    putU16(p, pred.contendedPorts);
    for (model::Component c : pred.bottlenecks)
        *p++ = static_cast<std::uint8_t>(c);
    for (int i : pred.criticalChain)
        putU32(p, static_cast<std::uint32_t>(i));
    for (int i : pred.contendingInsts)
        putU32(p, static_cast<std::uint32_t>(i));
}

void
appendStatusResponse(std::vector<std::uint8_t> &buf, std::uint64_t id, Op op,
                     Status status)
{
    std::uint8_t *p = growBuf(buf, kResponseHeaderSize);
    putU64(p, id);
    *p++ = static_cast<std::uint8_t>(status);
    *p++ = static_cast<std::uint8_t>(op);
    putU16(p, 0);
}

void
appendStatsResponse(std::vector<std::uint8_t> &buf, std::uint64_t id,
                    const ServerStats &stats)
{
    std::uint8_t *p = growBuf(buf, kResponseHeaderSize + kStatsFields * 8);
    putU64(p, id);
    *p++ = static_cast<std::uint8_t>(Status::Ok);
    *p++ = static_cast<std::uint8_t>(Op::Stats);
    putU16(p, kStatsFields * 8);
    putU64(p, stats.requests);
    putU64(p, stats.predictions);
    putU64(p, stats.batches);
    putU64(p, stats.maxBatch);
    putU64(p, stats.analysisCacheHits);
    putU64(p, stats.predictionCacheHits);
    putU64(p, stats.analyzed);
    putU64(p, stats.overloadedQueue);
    putU64(p, stats.overloadedConn);
    putU64(p, stats.readTimeouts);
    putU64(p, stats.quotaClosed);
    putU64(p, stats.connectionsShed);
    putU64(p, stats.connectionsAccepted);
    putU64(p, stats.connectionsOpen);
    putU64(p, stats.uptimeMs);
    putU64(p, stats.epollWakeups);
    putU64(p, stats.shortWrites);
    putU64(p, stats.ringFull);
    putU64(p, stats.reconnects);
    putU64(p, stats.retriedRequests);
    putU64(p, stats.drainSheds);
    putU64(p, stats.snapshotFallbacks);
    putU64(p, stats.snapshotLoadMode);
    putU64(p, stats.snapshotFetchesServed);
    putU64(p, stats.routedPredicts);
    putU64(p, stats.backendFailovers);
    putU64(p, stats.convergenceMerges);
}

void
appendHealthResponse(std::vector<std::uint8_t> &buf, std::uint64_t id,
                     HealthState state)
{
    std::uint8_t *p = growBuf(buf, kResponseHeaderSize + 1);
    putU64(p, id);
    *p++ = static_cast<std::uint8_t>(Status::Ok);
    *p++ = static_cast<std::uint8_t>(Op::Health);
    putU16(p, 1);
    *p = static_cast<std::uint8_t>(state);
}

void
appendSnapshotStream(std::vector<std::uint8_t> &buf, std::uint64_t id,
                     const std::uint8_t *image, std::size_t size)
{
    std::size_t offset = 0;
    do {
        const std::size_t n = std::min(kSnapshotChunkBytes, size - offset);
        std::uint8_t *p = growBuf(
            buf, kResponseHeaderSize + kSnapshotChunkHeaderSize + n);
        putU64(p, id);
        *p++ = static_cast<std::uint8_t>(Status::Ok);
        *p++ = static_cast<std::uint8_t>(Op::Snapshot);
        putU16(p,
               static_cast<std::uint16_t>(kSnapshotChunkHeaderSize + n));
        putU64(p, size);
        putU64(p, offset);
        if (n > 0)
            std::memcpy(p, image + offset, n);
        offset += n;
    } while (offset < size);
}

std::optional<SnapshotChunk>
decodeSnapshotChunk(const std::uint8_t *p, std::size_t len)
{
    if (len < kSnapshotChunkHeaderSize)
        return std::nullopt;
    SnapshotChunk c;
    c.totalBytes = getU64(p);
    c.offset = getU64(p + 8);
    c.data = p + kSnapshotChunkHeaderSize;
    c.len = len - kSnapshotChunkHeaderSize;
    if (c.offset > c.totalBytes || c.len > c.totalBytes - c.offset)
        return std::nullopt;
    return c;
}

std::optional<HealthState>
decodeHealthPayload(const std::uint8_t *p, std::size_t len)
{
    if (len < 1)
        return std::nullopt;
    switch (p[0]) {
    case static_cast<std::uint8_t>(HealthState::Ready):
        return HealthState::Ready;
    case static_cast<std::uint8_t>(HealthState::Draining):
        return HealthState::Draining;
    default:
        // Forward compatibility: a state this build doesn't know is
        // still a well-formed answer, not a protocol error.
        return HealthState::Unknown;
    }
}

bool
decodePredictInto(const std::uint8_t *p, std::size_t len,
                  model::Prediction &out)
{
    if (len < 72)
        return false;
    out.throughput = bitsDouble(getU64(p));
    for (int c = 0; c < model::kNumComponents; ++c)
        out.componentValue[static_cast<std::size_t>(c)] =
            bitsDouble(getU64(p + 8 + 8 * c));
    const std::uint8_t primary = p[64];
    const std::size_t nBottlenecks = p[65];
    const std::size_t nChain = getU16(p + 66);
    const std::size_t nContending = getU16(p + 68);
    out.contendedPorts = getU16(p + 70);
    if (primary >= static_cast<std::uint8_t>(model::kNumComponents))
        return false;
    out.primaryBottleneck = static_cast<model::Component>(primary);
    if (len != 72 + nBottlenecks + 4 * nChain + 4 * nContending)
        return false;

    const std::uint8_t *q = p + 72;
    out.bottlenecks.resize(nBottlenecks);
    for (std::size_t i = 0; i < nBottlenecks; ++i) {
        if (q[i] >= static_cast<std::uint8_t>(model::kNumComponents))
            return false;
        out.bottlenecks[i] = static_cast<model::Component>(q[i]);
    }
    q += nBottlenecks;
    out.criticalChain.resize(nChain);
    for (std::size_t i = 0; i < nChain; ++i)
        out.criticalChain[i] = static_cast<int>(getU32(q + 4 * i));
    q += 4 * nChain;
    out.contendingInsts.resize(nContending);
    for (std::size_t i = 0; i < nContending; ++i)
        out.contendingInsts[i] = static_cast<int>(getU32(q + 4 * i));
    return true;
}

std::optional<model::Prediction>
decodePredictPayload(const std::uint8_t *p, std::size_t len)
{
    model::Prediction pred;
    if (!decodePredictInto(p, len, pred))
        return std::nullopt;
    return pred;
}

std::optional<ServerStats>
decodeStatsPayload(const std::uint8_t *p, std::size_t len)
{
    // Append-only payload: require at least the v1 fields and a whole
    // number of u64s; trailing fields a newer server added beyond what
    // this build knows are ignored, and fields this build knows that
    // an older server did not send stay 0.
    if (len < kStatsFieldsV1 * 8 || len % 8 != 0)
        return std::nullopt;
    const std::size_t fields = len / 8;
    ServerStats s;
    s.requests = getU64(p);
    s.predictions = getU64(p + 8);
    s.batches = getU64(p + 16);
    s.maxBatch = getU64(p + 24);
    s.analysisCacheHits = getU64(p + 32);
    s.predictionCacheHits = getU64(p + 40);
    s.analyzed = getU64(p + 48);
    s.overloadedQueue = getU64(p + 56);
    s.overloadedConn = getU64(p + 64);
    s.readTimeouts = getU64(p + 72);
    s.quotaClosed = getU64(p + 80);
    s.connectionsShed = getU64(p + 88);
    s.connectionsAccepted = getU64(p + 96);
    s.connectionsOpen = getU64(p + 104);
    s.uptimeMs = getU64(p + 112);
    if (fields > 15)
        s.epollWakeups = getU64(p + 120);
    if (fields > 16)
        s.shortWrites = getU64(p + 128);
    if (fields > 17)
        s.ringFull = getU64(p + 136);
    if (fields > 18)
        s.reconnects = getU64(p + 144);
    if (fields > 19)
        s.retriedRequests = getU64(p + 152);
    if (fields > 20)
        s.drainSheds = getU64(p + 160);
    if (fields > 21)
        s.snapshotFallbacks = getU64(p + 168);
    if (fields > 22)
        s.snapshotLoadMode = getU64(p + 176);
    if (fields > 23)
        s.snapshotFetchesServed = getU64(p + 184);
    if (fields > 24)
        s.routedPredicts = getU64(p + 192);
    if (fields > 25)
        s.backendFailovers = getU64(p + 200);
    if (fields > 26)
        s.convergenceMerges = getU64(p + 208);
    return s;
}

} // namespace facile::server
