/**
 * @file
 * Client library for the prediction server: a pipelining connection
 * speaking the protocol.h wire format. The API is synchronous (every
 * call runs to completion), but the socket underneath is nonblocking:
 * when a pipelined write fills the send buffer, the client drains any
 * responses the server has already produced while waiting for
 * writability. Without that interleave, a deep pipeline deadlocks
 * against any finite-buffered peer — both sides blocked writing, both
 * socket buffers full, nobody reading.
 *
 * One Client owns one socket and is NOT thread-safe; use one Client
 * per thread (the server multiplexes any number of connections). The
 * predictMany() path is the intended high-throughput API: it writes a
 * whole window of request frames in one syscall and matches the
 * responses back by id, so a single connection can keep the server's
 * admission batcher fed.
 */
#ifndef FACILE_SERVER_CLIENT_H
#define FACILE_SERVER_CLIENT_H

#include <cstdint>
#include <string>
#include <vector>

#include "server/protocol.h"

namespace facile::server {

class Client
{
  public:
    /** Connect to a TCP endpoint (dotted-quad host). Throws on failure. */
    static Client connectTcp(const std::string &host, int port);

    /** Connect to a Unix-domain socket path. Throws on failure. */
    static Client connectUnix(const std::string &path);

    ~Client();
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /**
     * Predict one block; one round trip. Bit-identical to serial
     * model::predict(bb::analyze(bytes, arch), loop, config, scratch,
     * payload). The default asks for the cheap bound-only prediction;
     * pass model::Payload::Full to have the server build the
     * interpretability payload (wire flag bit 1).
     *
     * Error contract (predictMany/stats/ping/snapshot/health follow
     * it too): protocol faults — a rejected status (BadRequest,
     * Overloaded, Draining), a malformed or mismatched response —
     * throw ProtocolError, with the wire status attached for
     * rejections so callers can treat Overloaded/Draining as
     * retryable backpressure (ProtocolError::retryable()); transport
     * faults (connect failure, connection loss, poll errors) throw
     * TransportError. ResilientClient wraps this class and turns both
     * retryable classes into automatic reconnect/backoff/replay.
     */
    model::Prediction
    predict(const std::vector<std::uint8_t> &bytes, uarch::UArch arch,
            bool loop, const model::ModelConfig &config = {},
            model::Payload payload = model::Payload::None);

    /**
     * Predict a batch, pipelined: all request frames are written
     * before any response is read (in windows of kPipelineWindow to
     * bound buffering). out[i] corresponds to reqs[i].
     */
    std::vector<model::Prediction>
    predictMany(const std::vector<engine::Request> &reqs);

    /**
     * As predictMany, but decodes into @p out, reusing each element's
     * vector capacities — allocation-free in steady state for callers
     * that keep the result buffer across batches (load generators,
     * polling loops).
     */
    void predictManyInto(const std::vector<engine::Request> &reqs,
                         std::vector<model::Prediction> &out);

    /** Fetch the server's counters (the STATS op). */
    ServerStats stats();

    /** Health check; throws if the server does not answer. */
    void ping();

    /**
     * Readiness probe (the HEALTH admin frame): Ready in normal
     * operation, Draining once graceful shutdown began — a router
     * shards new traffic away from draining replicas. Unknown for a
     * state this client build does not recognize.
     */
    HealthState health();

    /**
     * Ask the server to persist a warm-start snapshot to its
     * operator-configured path (the SNAPSHOT admin frame). Returns
     * false when the server has no path configured or the save failed.
     */
    bool snapshot();

    /**
     * Fetch the server's live universe as a v2 snapshot image (the
     * SNAPSHOT-fetch subop): the chunk stream is reassembled and the
     * whole image returned, ready for analysis::loadSnapshotFromMemory
     * or an AtomicFileWriter spill to disk for the mmap warm-start
     * path. The image digests identically to a local v2 save of the
     * same server state. Throws ProtocolError against servers too old
     * to know the subop (they answer BadRequest).
     */
    std::vector<std::uint8_t> fetchSnapshot();

    /** Requests in flight per window of predictMany(). */
    static constexpr std::size_t kPipelineWindow = 4096;

  private:
    explicit Client(int fd);

    /**
     * Read one complete response frame. @p payload points into the
     * receive buffer and stays valid only until the next call.
     */
    ResponseHeader readResponse(const std::uint8_t *&payload);

    /**
     * Send the whole buffer on the nonblocking socket. While the send
     * buffer is full, readable response bytes are drained into inbuf_
     * (see the file comment on the pipelining deadlock).
     */
    void writeAll(const std::uint8_t *data, std::size_t len);

    /**
     * Move everything currently readable into inbuf_ without blocking.
     * Returns false once the peer has closed the connection.
     */
    bool drainSocket();

    /** Reclaim inbuf_'s consumed prefix once it outgrows a read chunk. */
    static constexpr std::size_t kCompactThreshold = 64 * 1024;

    int fd_ = -1;
    std::uint64_t nextId_ = 1;
    std::vector<std::uint8_t> inbuf_; ///< unparsed bytes from the socket
    std::size_t parsed_ = 0;          ///< consumed prefix of inbuf_
};

} // namespace facile::server

#endif // FACILE_SERVER_CLIENT_H
