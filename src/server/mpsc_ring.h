/**
 * @file
 * Bounded lock-free MPSC ring: the admission path between the epoll
 * reader loops (N producers) and the batch collector (one consumer).
 *
 * This replaces the mutex-guarded admission vector of the
 * thread-per-connection server: producers hand off parsed PREDICT
 * requests without ever blocking each other or the consumer, so a
 * reader loop never stalls on admission while another loop (or the
 * collector draining a batch) holds a lock. The ring is a Vyukov-style
 * bounded queue — per-cell sequence numbers instead of a global lock:
 *
 *   - tryPush: producers claim a slot with one fetch_add on the tail,
 *     then publish the element by bumping the cell's sequence number
 *     (release). Multiple producers are safe; a full ring fails the
 *     push without side effects.
 *   - tryPop: the single consumer reads the head cell's sequence
 *     number (acquire), moves the element out, and recycles the cell
 *     for the producers one lap later.
 *
 * The acquire/release pair on each cell's sequence is the
 * happens-before edge that makes the moved element's heap contents
 * (request bytes, shared_ptr control block) visible to the consumer —
 * there is no other synchronization on the hot path.
 *
 * Capacity is fixed at construction and rounded up to a power of two.
 * The ring stores elements by value and never allocates after
 * construction; a full ring is the backpressure signal (the server
 * answers OVERLOADED). Waking a sleeping consumer is out of scope —
 * the server pairs the ring with an eventfd.
 */
#ifndef FACILE_SERVER_MPSC_RING_H
#define FACILE_SERVER_MPSC_RING_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace facile::server {

template <typename T> class MpscRing
{
  public:
    /** @p capacity is rounded up to a power of two (minimum 2). */
    explicit MpscRing(std::size_t capacity)
        : mask_(roundUpPow2(capacity) - 1),
          cells_(std::make_unique<Cell[]>(mask_ + 1))
    {
        for (std::size_t i = 0; i <= mask_; ++i)
            cells_[i].seq.store(i, std::memory_order_relaxed);
    }

    MpscRing(const MpscRing &) = delete;
    MpscRing &operator=(const MpscRing &) = delete;

    /** Slots in the ring (the rounded-up capacity). */
    std::size_t capacity() const { return mask_ + 1; }

    /**
     * Enqueue by move. Returns false when the ring is full (the
     * element is left untouched). Safe from any number of threads.
     */
    bool
    tryPush(T &&v)
    {
        std::size_t pos = tail_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.seq.load(std::memory_order_acquire);
            const std::intptr_t dif =
                static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                if (tail_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    cell.value = std::move(v);
                    cell.seq.store(pos + 1, std::memory_order_release);
                    return true;
                }
                // CAS failure reloaded pos; retry with the new slot.
            } else if (dif < 0) {
                // The cell is still occupied by an element from one
                // lap ago: the ring is full.
                return false;
            } else {
                pos = tail_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Dequeue into @p out. Returns false when the ring is empty.
     * Single consumer only.
     */
    bool
    tryPop(T &out)
    {
        Cell &cell = cells_[head_ & mask_];
        const std::size_t seq = cell.seq.load(std::memory_order_acquire);
        const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                  static_cast<std::intptr_t>(head_ + 1);
        if (dif < 0)
            return false; // not yet published
        out = std::move(cell.value);
        cell.value = T{}; // drop heap payloads promptly
        cell.seq.store(head_ + mask_ + 1, std::memory_order_release);
        ++head_;
        return true;
    }

    /**
     * Approximate occupancy (produced minus consumed); exact when no
     * push is concurrently mid-flight. For stats, not for gating.
     */
    std::size_t
    sizeApprox() const
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        return t >= head_ ? t - head_ : 0;
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> seq{0};
        T value{};
    };

    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 2;
        while (p < n)
            p <<= 1;
        return p;
    }

    const std::size_t mask_;
    std::unique_ptr<Cell[]> cells_;

    /** Producer cursor (shared); consumer cursor (consumer-only). */
    alignas(64) std::atomic<std::size_t> tail_{0};
    alignas(64) std::size_t head_ = 0;
};

} // namespace facile::server

#endif // FACILE_SERVER_MPSC_RING_H
