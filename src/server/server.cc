#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/snapshot.h"
#include "server/frame_parser.h"
#include "server/net_util.h"
#include "uarch/config.h"

namespace facile::server {

struct PredictionServer::Impl
{
    /** One accepted connection. */
    struct Conn
    {
        std::atomic<int> fd{-1};
        std::atomic<bool> open{true};

        /**
         * Set by the reader thread as its very last action. The
         * reaper joins only exited readers: open==false alone can
         * mean a collector-side write failure on a reader that is
         * still running — and possibly about to take connMu for a
         * STATS snapshot, which would deadlock a join under connMu.
         */
        std::atomic<bool> readerExited{false};
        std::mutex writeMu;
        std::thread reader;

        /**
         * PREDICT requests admitted but not yet answered, gating the
         * per-connection in-flight quota. Incremented by the reader
         * at admission, decremented by engine workers as responses
         * are serialized — both sides relaxed; the quota is a bound,
         * not a synchronization point.
         */
        std::atomic<std::size_t> inflight{0};

        /** Frame-atomic buffered write; false once the peer is gone. */
        bool
        write(const std::vector<std::uint8_t> &buf)
        {
            std::lock_guard<std::mutex> lock(writeMu);
            int f = fd.load();
            if (f < 0 || !open.load())
                return false;
            if (!sendAll(f, buf.data(), buf.size())) {
                open.store(false);
                // Unblock the reader thread promptly so the reaper can
                // join it even if the peer never sends EOF.
                ::shutdown(f, SHUT_RDWR);
                return false;
            }
            return true;
        }
    };

    /** One admitted PREDICT request awaiting batch submission. */
    struct Pending
    {
        std::shared_ptr<Conn> conn;
        std::uint64_t id = 0;
        engine::Request req;
    };

    ServerOptions opts;
    engine::PredictionEngine *engine = nullptr;

    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    std::chrono::steady_clock::time_point startTime;

    int tcpFd = -1;
    int unixFd = -1;
    int boundTcpPort = -1;
    std::thread tcpAccept, unixAccept;

    mutable std::mutex connMu;
    std::vector<std::shared_ptr<Conn>> conns;

    std::mutex queueMu;
    std::condition_variable queueCv;
    std::vector<Pending> pending;
    std::thread collector;

    std::atomic<std::uint64_t> requestCount{0}; ///< per-frame hot path
    mutable std::mutex statsMu;
    ServerStats counters; ///< batch-grained; derived fields on read

    std::mutex snapshotMu; ///< serializes concurrent snapshot saves

    explicit Impl(ServerOptions o)
        : opts(std::move(o)),
          engine(opts.engine ? opts.engine
                             : &engine::PredictionEngine::shared())
    {}

    // ---- listeners --------------------------------------------------------

    int
    listenTcp()
    {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            throwErrno("socket(AF_INET)");
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts.tcpPort));
        if (::inet_pton(AF_INET, opts.tcpHost.c_str(), &addr.sin_addr) !=
            1) {
            ::close(fd);
            throw std::runtime_error("bad tcpHost: " + opts.tcpHost);
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
                0 ||
            ::listen(fd, 64) < 0) {
            int e = errno;
            ::close(fd);
            errno = e;
            throwErrno("bind/listen tcp " + opts.tcpHost);
        }
        sockaddr_in bound{};
        socklen_t blen = sizeof bound;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &blen) == 0)
            boundTcpPort = ntohs(bound.sin_port);
        return fd;
    }

    int
    listenUnix()
    {
        sockaddr_un addr{};
        if (opts.unixPath.size() >= sizeof addr.sun_path)
            throw std::runtime_error("unix path too long: " +
                                     opts.unixPath);
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            throwErrno("socket(AF_UNIX)");
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.unixPath.c_str(),
                     sizeof addr.sun_path - 1);
        ::unlink(opts.unixPath.c_str()); // stale socket from a crash
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
                0 ||
            ::listen(fd, 64) < 0) {
            int e = errno;
            ::close(fd);
            errno = e;
            throwErrno("bind/listen unix " + opts.unixPath);
        }
        return fd;
    }

    void
    acceptLoop(int listenFd, bool tcp)
    {
        while (!stopping.load()) {
            int fd = ::accept(listenFd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                break; // listener closed by stop()
            }
            if (tcp) {
                int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof one);
            }
            auto conn = std::make_shared<Conn>();
            conn->fd.store(fd);
            bool shed = false;
            {
                // Cap check, reader start, and publication share one
                // connMu hold: the reader must start BEFORE the conn
                // is visible to the other transport's accept thread
                // (a concurrent reap's joinable() check would race a
                // move-assignment of conn->reader), and the cap must
                // be judged against the post-reap connection count.
                std::lock_guard<std::mutex> lock(connMu);
                reapClosedLocked();
                if (opts.maxConnections > 0 &&
                    conns.size() >= opts.maxConnections) {
                    shed = true;
                } else {
                    conn->reader =
                        std::thread([this, conn] { readerLoop(conn); });
                    conns.push_back(conn);
                }
            }
            std::lock_guard<std::mutex> lock(statsMu);
            if (shed) {
                // Accept-time shedding: no protocol exchange happened
                // yet, so there is no id to answer OVERLOADED on —
                // the close IS the backpressure signal.
                ::close(fd);
                conn->fd.store(-1);
                ++counters.connectionsShed;
            } else {
                ++counters.connectionsAccepted;
            }
        }
    }

    /** Join and drop connections whose reader has exited; holds connMu. */
    void
    reapClosedLocked()
    {
        for (auto it = conns.begin(); it != conns.end();) {
            Conn &c = **it;
            // readerExited (not open) gates the join: an exited reader
            // can no longer take connMu, so joining it under connMu is
            // safe — and the join returns promptly.
            if (c.readerExited.load() && c.reader.joinable()) {
                c.reader.join();
                std::lock_guard<std::mutex> lock(c.writeMu);
                int f = c.fd.exchange(-1);
                if (f >= 0)
                    ::close(f);
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
    }

    // ---- per-connection reader -------------------------------------------

    void
    readerLoop(const std::shared_ptr<Conn> &conn)
    {
        FrameParser parser({opts.maxBufferedPerConn});
        std::vector<std::uint8_t> chunk(64 * 1024);
        std::vector<Pending> admitted;
        std::vector<std::uint8_t> reply;

        // Read-deadline state (slowloris defense). The clock resets
        // only when a frame completes or the buffer drains clean; a
        // peer dripping header bytes — or one that never sends a
        // complete first frame after connecting — gets closed after
        // readTimeoutMs no matter how often its bytes arrive.
        // SO_RCVTIMEO bounds each recv() so a silent peer is noticed
        // without a watchdog thread.
        const bool deadline = opts.readTimeoutMs > 0;
        if (deadline) {
            timeval tv{};
            tv.tv_sec = opts.readTimeoutMs / 1000;
            tv.tv_usec =
                static_cast<suseconds_t>(opts.readTimeoutMs % 1000) *
                1000;
            ::setsockopt(conn->fd.load(), SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof tv);
        }
        bool seenFrame = false;
        auto lastProgress = std::chrono::steady_clock::now();

        for (;;) {
            ssize_t n = ::recv(conn->fd.load(), chunk.data(),
                               chunk.size(), 0);
            if (n < 0 && errno == EINTR)
                continue;
            const bool timedOut =
                n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
            if (n <= 0 && !timedOut)
                break; // EOF, error, or shutdown() from stop()
            if (n > 0 && !parser.feed(chunk.data(),
                                      static_cast<std::size_t>(n))) {
                // Buffered-unparsed byte quota exceeded. Well-formed
                // traffic cannot get here (frames drain as they
                // complete), so treat it as abuse and drop the
                // connection.
                bump(&ServerStats::quotaClosed);
                break;
            }

            admitted.clear();
            reply.clear();
            std::size_t frames = 0;
            FrameView f;
            while (parser.next(f)) {
                handleFrame(conn, f.header, f.payload, admitted, reply);
                ++frames;
            }

            if (deadline) {
                const auto now = std::chrono::steady_clock::now();
                if (frames > 0)
                    seenFrame = true;
                if (seenFrame && (frames > 0 || !parser.midFrame())) {
                    lastProgress = now;
                } else if (now - lastProgress >=
                           std::chrono::milliseconds(
                               opts.readTimeoutMs)) {
                    // Mid-frame stall, or a handshake that never
                    // produced a first frame. Nothing is parsed but
                    // unanswerable, so dropping the fd loses no
                    // admitted work (frames==0 on this path).
                    bump(&ServerStats::readTimeouts);
                    break;
                }
            }

            // Control responses first (cheap, keeps health checks
            // responsive), then hand the whole admitted chunk to the
            // collector under one lock — bounded by maxPending, with
            // the overflow answered OVERLOADED right here instead of
            // buffering without limit.
            if (!reply.empty())
                conn->write(reply);
            if (!admitted.empty()) {
                std::size_t accepted = admitted.size();
                {
                    std::lock_guard<std::mutex> lock(queueMu);
                    if (opts.maxPending > 0) {
                        const std::size_t space =
                            opts.maxPending > pending.size()
                                ? opts.maxPending - pending.size()
                                : 0;
                        accepted = std::min(accepted, space);
                    }
                    pending.insert(
                        pending.end(),
                        std::make_move_iterator(admitted.begin()),
                        std::make_move_iterator(admitted.begin() +
                                                static_cast<
                                                    std::ptrdiff_t>(
                                                    accepted)));
                }
                if (accepted > 0)
                    queueCv.notify_one();
                if (accepted < admitted.size()) {
                    reply.clear();
                    for (std::size_t i = accepted; i < admitted.size();
                         ++i) {
                        appendStatusResponse(reply, admitted[i].id,
                                             Op::Predict,
                                             Status::Overloaded);
                        conn->inflight.fetch_sub(
                            1, std::memory_order_relaxed);
                    }
                    {
                        std::lock_guard<std::mutex> lock(statsMu);
                        counters.overloadedQueue +=
                            admitted.size() - accepted;
                    }
                    conn->write(reply);
                }
            }
            if (!conn->open.load())
                break;
        }
        conn->open.store(false);
        // The reaper (next accept) or stop() owns the close(); shutdown
        // here so a shed peer sees EOF immediately — otherwise a
        // deadline- or quota-dropped connection would linger half-open
        // until another client happens to connect.
        const int f = conn->fd.load();
        if (f >= 0)
            ::shutdown(f, SHUT_RDWR);
        conn->readerExited.store(true);
    }

    /** Increment one ServerStats counter under statsMu (cold paths). */
    void
    bump(std::uint64_t ServerStats::*field)
    {
        std::lock_guard<std::mutex> lock(statsMu);
        ++(counters.*field);
    }

    void
    handleFrame(const std::shared_ptr<Conn> &conn, const RequestHeader &h,
                const std::uint8_t *payload, std::vector<Pending> &admitted,
                std::vector<std::uint8_t> &reply)
    {
        requestCount.fetch_add(1, std::memory_order_relaxed);
        switch (static_cast<Op>(h.op)) {
          case Op::Ping:
            appendStatusResponse(reply, h.id, Op::Ping, Status::Ok);
            return;
          case Op::Stats:
            appendStatsResponse(reply, h.id, snapshotStats());
            return;
          case Op::Snapshot:
            // Admin frame: path is operator-configured, never wire-
            // supplied. The save runs on this reader thread — it
            // serializes under snapshotMu and other connections keep
            // serving through the collector meanwhile.
            appendStatusResponse(reply, h.id, Op::Snapshot,
                                 saveSnapshotNow() ? Status::Ok
                                                   : Status::BadRequest);
            return;
          case Op::Predict: {
            if (h.arch >= uarch::allUArchs().size() ||
                h.len > kMaxBlockBytes) {
                appendStatusResponse(reply, h.id, Op::Predict,
                                     Status::BadRequest);
                return;
            }
            if (opts.maxInFlightPerConn > 0 &&
                conn->inflight.load(std::memory_order_relaxed) >=
                    opts.maxInFlightPerConn) {
                // Per-connection backpressure: this peer already has
                // a full quota of unanswered predictions; shedding
                // here keeps one greedy pipeline from monopolizing
                // the admission queue.
                bump(&ServerStats::overloadedConn);
                appendStatusResponse(reply, h.id, Op::Predict,
                                     Status::Overloaded);
                return;
            }
            conn->inflight.fetch_add(1, std::memory_order_relaxed);
            Pending p;
            p.conn = conn;
            p.id = h.id;
            p.req.bytes.assign(payload, payload + h.len);
            p.req.arch = static_cast<uarch::UArch>(h.arch);
            p.req.loop = (h.flags & kFlagLoop) != 0;
            p.req.payload = (h.flags & kFlagExplain)
                                ? model::Payload::Full
                                : model::Payload::None;
            p.req.config = model::ModelConfig::fromBits(h.config);
            admitted.push_back(std::move(p));
            return;
          }
          default:
            appendStatusResponse(reply, h.id, static_cast<Op>(h.op),
                                 Status::BadRequest);
            return;
        }
    }

    // ---- admission batching ----------------------------------------------

    /** Per-worker response staging: worker w owns workerBufs[w]. */
    struct ConnBuf
    {
        std::shared_ptr<Conn> conn;
        std::vector<std::uint8_t> buf;
    };

    void
    collectorLoop()
    {
        std::vector<Pending> batch;
        std::vector<engine::Request> reqs;
        std::vector<std::size_t> order; // batch index in submission order
        std::vector<std::vector<ConnBuf>> workerBufs(
            static_cast<std::size_t>(engine->numThreads()));

        for (;;) {
            {
                std::unique_lock<std::mutex> lock(queueMu);
                queueCv.wait(lock, [&] {
                    return stopping.load() || !pending.empty();
                });
                if (pending.empty() && stopping.load())
                    return;
                // Admission window: wait for stragglers of the burst,
                // close early when maxBatch are pending.
                if (opts.batchWindowUs > 0 &&
                    pending.size() < opts.maxBatch)
                    queueCv.wait_for(
                        lock,
                        std::chrono::microseconds(opts.batchWindowUs),
                        [&] {
                            return stopping.load() ||
                                   pending.size() >= opts.maxBatch;
                        });
                batch.clear();
                std::swap(batch, pending);
            }
            submitBatch(batch, reqs, order, workerBufs);
        }
    }

    void
    submitBatch(std::vector<Pending> &batch,
                std::vector<engine::Request> &reqs,
                std::vector<std::size_t> &order,
                std::vector<std::vector<ConnBuf>> &workerBufs)
    {
        // Group requests per arch (stable counting sort) so one engine
        // fan-out walks each arch's cache shards and uop tables
        // contiguously. Single-arch batches — the common production
        // shape — skip the permutation entirely.
        constexpr std::size_t kArches = 256; // arch is a wire byte
        std::size_t cnt[kArches + 1] = {};
        for (const Pending &p : batch)
            ++cnt[static_cast<std::size_t>(p.req.arch) + 1];
        const bool singleArch =
            cnt[static_cast<std::size_t>(batch.front().req.arch) + 1] ==
            batch.size();

        order.clear();
        if (singleArch) {
            for (std::size_t i = 0; i < batch.size(); ++i)
                order.push_back(i);
        } else {
            for (std::size_t a = 1; a <= kArches; ++a)
                cnt[a] += cnt[a - 1];
            order.resize(batch.size());
            for (std::size_t i = 0; i < batch.size(); ++i)
                order[cnt[static_cast<std::size_t>(
                    batch[i].req.arch)]++] = i;
        }

        reqs.clear();
        reqs.reserve(order.size());
        for (std::size_t i : order)
            reqs.push_back(std::move(batch[i].req));

        // Zero-copy serving: each engine worker serializes predictions
        // straight from the cache into its own per-connection staging
        // buffer (no Prediction copies, no locks between workers), and
        // every non-empty buffer is flushed with one write afterwards.
        // Responses are matched by id, so the worker interleaving is
        // invisible to clients.
        for (auto &bufs : workerBufs) {
            for (auto it = bufs.begin(); it != bufs.end();) {
                it->buf.clear(); // keep capacity across batches
                if (!it->conn->open.load())
                    it = bufs.erase(it);
                else
                    ++it;
            }
        }
        engine::BatchStats bs;
        engine->predictBatchVisit(
            reqs,
            [&](int worker, std::size_t k,
                const model::Prediction &pred) {
                Pending &p = batch[order[k]];
                p.conn->inflight.fetch_sub(1,
                                           std::memory_order_relaxed);
                auto &bufs = workerBufs[static_cast<std::size_t>(worker)];
                ConnBuf *cb = nullptr;
                for (auto &b : bufs)
                    if (b.conn.get() == p.conn.get()) {
                        cb = &b;
                        break;
                    }
                if (!cb) {
                    bufs.push_back({p.conn, {}});
                    cb = &bufs.back();
                }
                appendPredictResponse(cb->buf, p.id, pred);
            },
            &bs);
        {
            std::lock_guard<std::mutex> lock(statsMu);
            counters.predictions += reqs.size();
            ++counters.batches;
            counters.maxBatch =
                std::max<std::uint64_t>(counters.maxBatch, reqs.size());
            counters.analysisCacheHits += bs.analysisCacheHits;
            counters.predictionCacheHits += bs.predictionCacheHits;
            counters.analyzed += bs.analyzed;
        }
        for (auto &bufs : workerBufs)
            for (auto &b : bufs)
                if (!b.buf.empty())
                    b.conn->write(b.buf); // closed peers drop silently
    }

    // ---- warm-start snapshot ----------------------------------------------

    bool
    saveSnapshotNow()
    {
        if (opts.snapshotPath.empty())
            return false;
        std::lock_guard<std::mutex> lock(snapshotMu);
        try {
            analysis::saveSnapshot(opts.snapshotPath, {engine});
            return true;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "snapshot save failed: %s\n", e.what());
            return false;
        }
    }

    // ---- stats ------------------------------------------------------------

    ServerStats
    snapshotStats() const
    {
        ServerStats s;
        {
            std::lock_guard<std::mutex> lock(statsMu);
            s = counters;
        }
        s.requests = requestCount.load(std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(connMu);
            std::size_t open = 0;
            for (const auto &c : conns)
                open += c->open.load() ? 1 : 0;
            s.connectionsOpen = open;
        }
        s.uptimeMs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - startTime)
                .count());
        return s;
    }

    // ---- lifecycle ---------------------------------------------------------

    void
    start()
    {
        if (running.load())
            return;
        if (opts.unixPath.empty() && opts.tcpPort < 0)
            throw std::runtime_error(
                "PredictionServer: no listener configured");
        startTime = std::chrono::steady_clock::now();
        stopping.store(false);
        if (!opts.unixPath.empty())
            unixFd = listenUnix();
        if (opts.tcpPort >= 0) {
            try {
                tcpFd = listenTcp();
            } catch (...) {
                if (unixFd >= 0) {
                    ::close(unixFd);
                    ::unlink(opts.unixPath.c_str());
                    unixFd = -1;
                }
                throw;
            }
        }
        running.store(true);
        collector = std::thread([this] { collectorLoop(); });
        if (tcpFd >= 0)
            tcpAccept = std::thread([this] { acceptLoop(tcpFd, true); });
        if (unixFd >= 0)
            unixAccept =
                std::thread([this] { acceptLoop(unixFd, false); });
    }

    void
    stop()
    {
        if (!running.exchange(false))
            return;
        stopping.store(true);

        // 1. Close listeners; accept threads unblock and exit (no more
        //    sweeps run after this, so fds below cannot be recycled
        //    under us).
        if (tcpFd >= 0)
            ::shutdown(tcpFd, SHUT_RDWR);
        if (unixFd >= 0)
            ::shutdown(unixFd, SHUT_RDWR);
        if (tcpAccept.joinable())
            tcpAccept.join();
        if (unixAccept.joinable())
            unixAccept.join();
        if (tcpFd >= 0)
            ::close(tcpFd);
        if (unixFd >= 0) {
            ::close(unixFd);
            ::unlink(opts.unixPath.c_str());
        }
        tcpFd = unixFd = -1;

        // 2. Unblock connection readers and join them. Join WITHOUT
        //    holding connMu: a reader serving a STATS op takes connMu
        //    in snapshotStats(), and joining it under the same lock
        //    would deadlock.
        std::vector<std::shared_ptr<Conn>> snapshot;
        {
            std::lock_guard<std::mutex> lock(connMu);
            snapshot = conns;
        }
        for (auto &c : snapshot) {
            int f = c->fd.load();
            if (f >= 0)
                ::shutdown(f, SHUT_RDWR);
        }
        for (auto &c : snapshot)
            if (c->reader.joinable())
                c->reader.join();

        // 3. Drain the collector (it answers what it can; writes to
        //    closed peers fail silently), then close the sockets.
        queueCv.notify_all();
        if (collector.joinable())
            collector.join();
        {
            std::lock_guard<std::mutex> lock(connMu);
            for (auto &c : conns) {
                std::lock_guard<std::mutex> wlock(c->writeMu);
                int f = c->fd.exchange(-1);
                if (f >= 0)
                    ::close(f);
            }
            conns.clear();
        }
    }
};

PredictionServer::PredictionServer(ServerOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{}

PredictionServer::~PredictionServer()
{
    impl_->stop();
}

void
PredictionServer::start()
{
    impl_->start();
}

void
PredictionServer::stop()
{
    impl_->stop();
}

int
PredictionServer::tcpPort() const
{
    return impl_->boundTcpPort;
}

const std::string &
PredictionServer::unixPath() const
{
    return impl_->opts.unixPath;
}

ServerStats
PredictionServer::stats() const
{
    return impl_->snapshotStats();
}

bool
PredictionServer::saveSnapshot()
{
    return impl_->saveSnapshotNow();
}

} // namespace facile::server
