#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "analysis/snapshot.h"
#include "server/frame_parser.h"
#include "server/mpsc_ring.h"
#include "server/net_util.h"
#include "server/write_queue.h"
#include "testing/fault.h"
#include "uarch/config.h"

namespace facile::server {

namespace {

using Clock = std::chrono::steady_clock;

/** Milliseconds until @p t, rounded up and clamped to [0, cap]. */
int
msUntil(Clock::time_point t, Clock::time_point now, int cap)
{
    if (t <= now)
        return 0;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        t - now)
                        .count();
    const long long ms = (us + 999) / 1000;
    return static_cast<int>(std::min<long long>(ms, cap));
}

} // namespace

struct PredictionServer::Impl
{
    /**
     * Every epoll registration's data.ptr points at one of these; the
     * kind tag dispatches the event (two listeners, the per-loop
     * wakeup eventfd, or a connection).
     */
    struct EvSource
    {
        enum class Kind : std::uint8_t {
            TcpListen,
            UnixListen,
            Wake,
            Conn
        };
        Kind kind;
        explicit EvSource(Kind k) : kind(k) {}
    };

    struct Loop;

    /**
     * One accepted connection. Threading contract:
     *   - parser, seenFrame, lastProgress: owning io thread only;
     *   - outq, wantWrite, and the socket writes/epoll interest: any
     *     thread, under writeMu;
     *   - fd and open are atomics so lock-free readers can bail early;
     *     the transition open->false (with fd close + epoll DEL)
     *     happens exactly once, under writeMu.
     */
    struct Conn : EvSource, std::enable_shared_from_this<Conn>
    {
        Conn() : EvSource(Kind::Conn) {}

        std::atomic<int> fd{-1};
        std::atomic<bool> open{true};
        Loop *loop = nullptr;

        FrameParser parser;
        bool seenFrame = false;
        Clock::time_point lastProgress;

        std::mutex writeMu;
        WriteQueue outq;
        bool wantWrite = false; ///< EPOLLOUT currently armed

        /**
         * PREDICT requests admitted but not yet answered, gating the
         * per-connection in-flight quota. Incremented at admission,
         * decremented by engine workers as responses are serialized —
         * both sides relaxed; the quota is a bound, not a
         * synchronization point.
         */
        std::atomic<std::size_t> inflight{0};
    };

    /** One admitted PREDICT request traveling through the ring. */
    struct Pending
    {
        std::shared_ptr<Conn> conn;
        std::uint64_t id = 0;
        engine::Request req;
    };

    /** One epoll reader loop. conns/inbox feed io-thread-owned state. */
    struct Loop
    {
        std::size_t idx = 0;
        int epfd = -1;
        int wakeFd = -1;
        EvSource wakeTag{EvSource::Kind::Wake};
        std::thread thr;

        /** Io-thread owned; stop() touches it only after the join. */
        std::vector<std::shared_ptr<Conn>> conns;

        /** Connections accepted on loop 0 awaiting registration here. */
        std::mutex inboxMu;
        std::vector<std::shared_ptr<Conn>> inbox;
    };

    ServerOptions opts;
    engine::PredictionEngine *engine = nullptr;

    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    /**
     * Graceful-degradation latch (drain()): accept no new
     * connections, shed new PREDICT work with Status::Draining, keep
     * answering control ops and flushing batches already admitted.
     * One-way until the next start().
     */
    std::atomic<bool> draining{false};
    Clock::time_point startTime;

    int tcpFd = -1;
    int unixFd = -1;
    int boundTcpPort = -1;
    EvSource tcpTag{EvSource::Kind::TcpListen};
    EvSource unixTag{EvSource::Kind::UnixListen};

    std::vector<std::unique_ptr<Loop>> loops;
    std::atomic<std::size_t> rrAssign{0};

    std::unique_ptr<MpscRing<Pending>> ring;
    int collectorWakeFd = -1;
    std::thread collector;

    /** Admitted-but-unsubmitted PREDICT requests (maxPending gate). */
    std::atomic<std::size_t> queuedCount{0};

    // Hot-path counters (per frame / per event, touched by io threads
    // and engine workers — atomics, no lock).
    std::atomic<std::uint64_t> requestCount{0};
    std::atomic<std::uint64_t> overloadedQueue{0};
    std::atomic<std::uint64_t> overloadedConn{0};
    std::atomic<std::uint64_t> readTimeouts{0};
    std::atomic<std::uint64_t> quotaClosed{0};
    std::atomic<std::uint64_t> connectionsShed{0};
    std::atomic<std::uint64_t> connectionsAccepted{0};
    std::atomic<std::uint64_t> connectionsOpen{0};
    std::atomic<std::uint64_t> epollWakeups{0};
    std::atomic<std::uint64_t> shortWrites{0};
    std::atomic<std::uint64_t> ringFull{0};
    std::atomic<std::uint64_t> drainSheds{0};
    std::atomic<std::uint64_t> snapshotFallbacks{0};
    std::atomic<std::uint64_t> snapshotLoadMode{0};
    std::atomic<std::uint64_t> snapshotFetches{0};

    mutable std::mutex statsMu;
    ServerStats counters; ///< batch-grained; merged on read

    std::mutex snapshotMu; ///< serializes concurrent snapshot saves

    explicit Impl(ServerOptions o)
        : opts(std::move(o)),
          engine(opts.engine ? opts.engine
                             : &engine::PredictionEngine::shared())
    {}

    ~Impl() { stop(); }

    // ---- listeners --------------------------------------------------------

    int
    listenTcp()
    {
        int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
        if (fd < 0)
            throwErrno("socket(AF_INET)");
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port =
            htons(static_cast<std::uint16_t>(opts.tcpPort));
        if (::inet_pton(AF_INET, opts.tcpHost.c_str(), &addr.sin_addr) !=
            1) {
            ::close(fd);
            throw std::runtime_error("bad tcpHost: " + opts.tcpHost);
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
                0 ||
            ::listen(fd, 512) < 0) {
            int e = errno;
            ::close(fd);
            errno = e;
            throwErrno("bind/listen tcp " + opts.tcpHost);
        }
        sockaddr_in bound{};
        socklen_t blen = sizeof bound;
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &blen) == 0)
            boundTcpPort = ntohs(bound.sin_port);
        return fd;
    }

    int
    listenUnix()
    {
        sockaddr_un addr{};
        if (opts.unixPath.size() >= sizeof addr.sun_path)
            throw std::runtime_error("unix path too long: " +
                                     opts.unixPath);
        int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0);
        if (fd < 0)
            throwErrno("socket(AF_UNIX)");
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.unixPath.c_str(),
                     sizeof addr.sun_path - 1);
        ::unlink(opts.unixPath.c_str()); // stale socket from a crash
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) <
                0 ||
            ::listen(fd, 512) < 0) {
            int e = errno;
            ::close(fd);
            errno = e;
            throwErrno("bind/listen unix " + opts.unixPath);
        }
        return fd;
    }

    // ---- connection lifecycle ---------------------------------------------

    /** Register @p conn in its owning loop's epoll (io thread of lp). */
    void
    registerConn(Loop &lp, const std::shared_ptr<Conn> &conn)
    {
        lp.conns.push_back(conn);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = static_cast<EvSource *>(conn.get());
        ::epoll_ctl(lp.epfd, EPOLL_CTL_ADD, conn->fd.load(), &ev);
    }

    /**
     * Close a connection exactly once: epoll deregistration + close
     * under writeMu so no other thread is mid-write on the fd. Any
     * thread may call it; the owning io loop reaps the carcass from
     * its conns list on the next sweep.
     */
    void
    dropConn(Conn &c)
    {
        std::lock_guard<std::mutex> lock(c.writeMu);
        dropConnLocked(c);
    }

    void
    dropConnLocked(Conn &c)
    {
        if (!c.open.exchange(false))
            return;
        const int f = c.fd.exchange(-1);
        if (f >= 0) {
            if (c.loop)
                ::epoll_ctl(c.loop->epfd, EPOLL_CTL_DEL, f, nullptr);
            ::close(f);
        }
        connectionsOpen.fetch_sub(1, std::memory_order_relaxed);
    }

    /** Arm or disarm EPOLLOUT. Requires writeMu; open fd. */
    void
    setWantWriteLocked(Conn &c, bool want)
    {
        if (c.wantWrite == want)
            return;
        const int f = c.fd.load();
        if (f < 0)
            return;
        epoll_event ev{};
        ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
        ev.data.ptr = static_cast<EvSource *>(&c);
        ::epoll_ctl(c.loop->epfd, EPOLL_CTL_MOD, f, &ev);
        c.wantWrite = want;
    }

    /**
     * Post-write bookkeeping shared by every writer (io-thread reply
     * flush, collector batch flush, EPOLLOUT resume). Requires
     * writeMu held and an open connection at call time.
     */
    void
    applyWriteResultLocked(Conn &c, WriteQueue::Result r)
    {
        switch (r) {
          case WriteQueue::Result::Drained:
            setWantWriteLocked(c, false);
            return;
          case WriteQueue::Result::Blocked:
            shortWrites.fetch_add(1, std::memory_order_relaxed);
            setWantWriteLocked(c, true);
            return;
          case WriteQueue::Result::PeerGone:
            dropConnLocked(c);
            return;
        }
    }

    /** Gather-write @p iov to @p conn; no-op once the peer is gone. */
    void
    writeConn(Conn &c, const iovec *iov, std::size_t n)
    {
        std::lock_guard<std::mutex> lock(c.writeMu);
        if (!c.open.load())
            return;
        applyWriteResultLocked(c, c.outq.writeGather(c.fd.load(), iov, n));
    }

    // ---- accept (runs on loop 0) ------------------------------------------

    void
    acceptReady(Loop &lp0, int listenFd, bool tcp)
    {
        for (;;) {
            int fd;
            const auto fa = testing::faultPoint("server.accept", 0);
            if (fa.err) {
                errno = fa.err;
                fd = -1;
            } else {
                fd = ::accept4(listenFd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
            }
            if (fd < 0) {
                if (errno == EINTR || errno == ECONNABORTED)
                    continue; // retry: more conns may be queued behind
                break; // EAGAIN, or listener closed by stop()
            }
            if (tcp) {
                int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof one);
            }
            if (draining.load(std::memory_order_relaxed)) {
                // Drain mode: existing connections finish their work,
                // new ones are turned away at the door (same signal as
                // the connection cap — the close IS the answer).
                ::close(fd);
                connectionsShed.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            if (opts.maxConnections > 0 &&
                connectionsOpen.load(std::memory_order_relaxed) >=
                    opts.maxConnections) {
                // Accept-time shedding: no protocol exchange happened
                // yet, so there is no id to answer OVERLOADED on —
                // the close IS the backpressure signal.
                ::close(fd);
                connectionsShed.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            connectionsAccepted.fetch_add(1, std::memory_order_relaxed);
            connectionsOpen.fetch_add(1, std::memory_order_relaxed);

            auto conn = std::make_shared<Conn>();
            conn->fd.store(fd);
            conn->parser = FrameParser({opts.maxBufferedPerConn});
            conn->lastProgress = Clock::now();
            const std::size_t target =
                loops.size() == 1
                    ? 0
                    : rrAssign.fetch_add(1, std::memory_order_relaxed) %
                          loops.size();
            conn->loop = loops[target].get();
            if (target == lp0.idx) {
                registerConn(lp0, conn);
            } else {
                Loop &dst = *loops[target];
                {
                    std::lock_guard<std::mutex> lock(dst.inboxMu);
                    dst.inbox.push_back(std::move(conn));
                }
                wake(dst);
            }
        }
    }

    // EINTR audit (PR 8): these were bare ::write calls with the
    // result ignored — a signal landing exactly here silently lost the
    // wakeup and left the target loop asleep (up to a full sweep
    // interval for io loops, until the next unrelated wake for the
    // collector) with work already queued. signalWakeFd retries.
    void wake(Loop &lp) { signalWakeFd(lp.wakeFd); }

    void wakeCollector() { signalWakeFd(collectorWakeFd); }

    // ---- io loop ----------------------------------------------------------

    void
    ioLoop(Loop &lp)
    {
        constexpr int kMaxEvents = 128;
        epoll_event evs[kMaxEvents];
        std::vector<std::uint8_t> chunk(64 * 1024);
        std::vector<Pending> admitted;
        std::vector<std::uint8_t> reply;

        // Deadline sweep cadence: fine enough that a configured read
        // deadline is enforced within ~1.25x its nominal value, coarse
        // enough that an idle server wakes at most a few times/second.
        const int sweepMs =
            opts.readTimeoutMs > 0
                ? std::clamp(opts.readTimeoutMs / 4, 10, 1000)
                : 1000;
        auto nextSweep = Clock::now() + std::chrono::milliseconds(sweepMs);

        while (!stopping.load(std::memory_order_acquire)) {
            const int timeout =
                msUntil(nextSweep, Clock::now(), sweepMs);
            int n;
            const auto fa = testing::faultPoint("server.epoll", 0);
            if (fa.err) {
                errno = fa.err;
                n = -1;
            } else {
                n = ::epoll_wait(lp.epfd, evs, kMaxEvents, timeout);
            }
            epollWakeups.fetch_add(1, std::memory_order_relaxed);
            if (n < 0 && errno != EINTR)
                break;
            if (stopping.load(std::memory_order_acquire))
                break;
            for (int i = 0; i < std::max(n, 0); ++i) {
                auto *src = static_cast<EvSource *>(evs[i].data.ptr);
                switch (src->kind) {
                  case EvSource::Kind::TcpListen:
                    acceptReady(lp, tcpFd, true);
                    break;
                  case EvSource::Kind::UnixListen:
                    acceptReady(lp, unixFd, false);
                    break;
                  case EvSource::Kind::Wake:
                    drainWakeFd(lp.wakeFd);
                    adoptInbox(lp);
                    break;
                  case EvSource::Kind::Conn: {
                    Conn &c = *static_cast<Conn *>(src);
                    if (!c.open.load(std::memory_order_relaxed))
                        break; // closed by another thread; reap later
                    if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                        dropConn(c);
                        break;
                    }
                    if (evs[i].events & EPOLLOUT)
                        resumeWrite(c);
                    if (evs[i].events & EPOLLIN)
                        handleReadable(c.shared_from_this(), chunk,
                                       admitted, reply);
                    break;
                  }
                }
            }
            const auto now = Clock::now();
            if (now >= nextSweep) {
                sweep(lp, now);
                nextSweep = now + std::chrono::milliseconds(sweepMs);
            }
        }
    }

    void
    adoptInbox(Loop &lp)
    {
        std::vector<std::shared_ptr<Conn>> fresh;
        {
            std::lock_guard<std::mutex> lock(lp.inboxMu);
            fresh.swap(lp.inbox);
        }
        for (auto &conn : fresh)
            registerConn(lp, conn);
    }

    /** EPOLLOUT: resume a partially-written response stream. */
    void
    resumeWrite(Conn &c)
    {
        std::lock_guard<std::mutex> lock(c.writeMu);
        if (!c.open.load())
            return;
        const WriteQueue::Result r = c.outq.flush(c.fd.load());
        // Still blocked => stay armed (no counter: the short write was
        // counted when the tail was first queued).
        if (r != WriteQueue::Result::Blocked)
            applyWriteResultLocked(c, r);
    }

    /**
     * Reap closed connections and enforce the read deadline: a
     * connection mid-frame (partial header or payload buffered) or
     * one that never completed a first frame (handshake) with no
     * progress for readTimeoutMs is dropped — the slowloris defense.
     * Idling between complete frames is never penalized.
     */
    void
    sweep(Loop &lp, Clock::time_point now)
    {
        const auto deadline =
            std::chrono::milliseconds(opts.readTimeoutMs);
        for (auto it = lp.conns.begin(); it != lp.conns.end();) {
            Conn &c = **it;
            if (!c.open.load(std::memory_order_relaxed)) {
                it = lp.conns.erase(it);
                continue;
            }
            if (opts.readTimeoutMs > 0 &&
                (c.parser.midFrame() || !c.seenFrame) &&
                now - c.lastProgress >= deadline) {
                readTimeouts.fetch_add(1, std::memory_order_relaxed);
                dropConn(c);
                it = lp.conns.erase(it);
                continue;
            }
            ++it;
        }
    }

    void
    handleReadable(const std::shared_ptr<Conn> &conn,
                   std::vector<std::uint8_t> &chunk,
                   std::vector<Pending> &admitted,
                   std::vector<std::uint8_t> &reply)
    {
        // Fairness bound: one greedy pipeline must not monopolize the
        // loop. Level-triggered epoll re-reports leftover data.
        constexpr int kReadBudget = 8;

        admitted.clear();
        reply.clear();
        bool closed = false;
        bool abuse = false;
        std::size_t frames = 0;
        const int fd = conn->fd.load();

        for (int budget = kReadBudget; budget > 0; --budget) {
            ssize_t n;
            const auto fa = testing::faultPoint("server.recv", chunk.size());
            if (fa.err) {
                errno = fa.err;
                n = -1;
            } else {
                n = ::recv(fd, chunk.data(),
                           std::min(chunk.size(), fa.clamp), 0);
            }
            if (n < 0 && errno == EINTR) {
                ++budget;
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            if (n <= 0) {
                closed = true; // EOF or hard error
                break;
            }
            if (!conn->parser.feed(chunk.data(),
                                   static_cast<std::size_t>(n))) {
                // Buffered-unparsed byte quota exceeded. Well-formed
                // traffic cannot get here (frames drain as they
                // complete), so treat it as abuse and drop the
                // connection.
                quotaClosed.fetch_add(1, std::memory_order_relaxed);
                closed = abuse = true;
                break;
            }
            FrameView f;
            while (conn->parser.next(f)) {
                handleFrame(conn, f.header, f.payload, admitted, reply);
                ++frames;
            }
            if (static_cast<std::size_t>(n) < chunk.size())
                break; // likely drained; epoll re-reports otherwise
        }

        // Read-deadline bookkeeping (see sweep()): the clock resets
        // only when a frame completes or the buffer drains clean, and
        // never before the first frame.
        if (frames > 0)
            conn->seenFrame = true;
        if (conn->seenFrame &&
            (frames > 0 || !conn->parser.midFrame()))
            conn->lastProgress = Clock::now();

        // Admission before the control-reply flush: overflow shedding
        // appends its OVERLOADED responses to the same reply buffer,
        // so the whole answer goes out in one gather write.
        if (!admitted.empty())
            admitRequests(*conn, admitted, reply);
        if (!reply.empty() && !abuse &&
            conn->open.load(std::memory_order_relaxed)) {
            const iovec iov{
                const_cast<std::uint8_t *>(reply.data()), reply.size()};
            writeConn(*conn, &iov, 1);
        }
        if (closed)
            dropConn(*conn);
    }

    /**
     * Push parsed PREDICT requests into the admission ring, bounded by
     * maxPending (and by the ring's own capacity); overflow is
     * answered OVERLOADED right here instead of buffered without
     * limit.
     */
    void
    admitRequests(Conn &conn, std::vector<Pending> &admitted,
                  std::vector<std::uint8_t> &reply)
    {
        std::size_t accepted = 0;
        for (Pending &p : admitted) {
            bool ok = true;
            if (opts.maxPending > 0) {
                const std::size_t q = queuedCount.fetch_add(
                    1, std::memory_order_relaxed);
                if (q >= opts.maxPending) {
                    queuedCount.fetch_sub(1, std::memory_order_relaxed);
                    overloadedQueue.fetch_add(
                        1, std::memory_order_relaxed);
                    ok = false;
                }
            }
            if (ok && !ring->tryPush(std::move(p))) {
                if (opts.maxPending > 0)
                    queuedCount.fetch_sub(1, std::memory_order_relaxed);
                ringFull.fetch_add(1, std::memory_order_relaxed);
                ok = false;
            }
            if (ok) {
                ++accepted;
            } else {
                appendStatusResponse(reply, p.id, Op::Predict,
                                     Status::Overloaded);
                conn.inflight.fetch_sub(1, std::memory_order_relaxed);
            }
        }
        if (accepted > 0)
            wakeCollector();
    }

    void
    handleFrame(const std::shared_ptr<Conn> &conn, const RequestHeader &h,
                const std::uint8_t *payload, std::vector<Pending> &admitted,
                std::vector<std::uint8_t> &reply)
    {
        requestCount.fetch_add(1, std::memory_order_relaxed);
        switch (static_cast<Op>(h.op)) {
          case Op::Ping:
            appendStatusResponse(reply, h.id, Op::Ping, Status::Ok);
            return;
          case Op::Stats:
            appendStatsResponse(reply, h.id, snapshotStats());
            return;
          case Op::Snapshot:
            // Admin frame, dispatched on the first payload byte (an
            // empty payload is the pre-subop SAVE encoding). Both
            // subops run on this io thread — rare by construction;
            // they stall this loop's connections for the few ms of
            // the save while other loops and the collector keep
            // serving.
            if (h.len == 0 || payload[0] == kSnapshotSubopSave) {
                // SAVE: path is operator-configured, never
                // wire-supplied.
                appendStatusResponse(reply, h.id, Op::Snapshot,
                                     saveSnapshotNow()
                                         ? Status::Ok
                                         : Status::BadRequest);
            } else if (payload[0] == kSnapshotSubopFetch) {
                serveSnapshotFetch(h.id, reply);
            } else {
                // A subop this build doesn't know: reject rather
                // than guess (the requester may be newer than us).
                appendStatusResponse(reply, h.id, Op::Snapshot,
                                     Status::BadRequest);
            }
            return;
          case Op::Health:
            appendHealthResponse(reply, h.id,
                                 draining.load(std::memory_order_relaxed)
                                     ? HealthState::Draining
                                     : HealthState::Ready);
            return;
          case Op::Predict: {
            if (h.arch >= uarch::allUArchs().size() ||
                h.len > kMaxBlockBytes) {
                appendStatusResponse(reply, h.id, Op::Predict,
                                     Status::BadRequest);
                return;
            }
            if (draining.load(std::memory_order_relaxed)) {
                // Graceful shutdown: batches already admitted still
                // flush, but new work is declined with a status that
                // tells the client to go elsewhere — unlike Overloaded
                // this is not transient on THIS replica.
                drainSheds.fetch_add(1, std::memory_order_relaxed);
                appendStatusResponse(reply, h.id, Op::Predict,
                                     Status::Draining);
                return;
            }
            if (opts.maxInFlightPerConn > 0 &&
                conn->inflight.load(std::memory_order_relaxed) >=
                    opts.maxInFlightPerConn) {
                // Per-connection backpressure: this peer already has
                // a full quota of unanswered predictions; shedding
                // here keeps one greedy pipeline from monopolizing
                // the admission ring.
                overloadedConn.fetch_add(1, std::memory_order_relaxed);
                appendStatusResponse(reply, h.id, Op::Predict,
                                     Status::Overloaded);
                return;
            }
            conn->inflight.fetch_add(1, std::memory_order_relaxed);
            Pending p;
            p.conn = conn;
            p.id = h.id;
            p.req.bytes.assign(payload, payload + h.len);
            p.req.arch = static_cast<uarch::UArch>(h.arch);
            p.req.loop = (h.flags & kFlagLoop) != 0;
            p.req.payload = (h.flags & kFlagExplain)
                                ? model::Payload::Full
                                : model::Payload::None;
            p.req.config = model::ModelConfig::fromBits(h.config);
            admitted.push_back(std::move(p));
            return;
          }
          default:
            appendStatusResponse(reply, h.id, static_cast<Op>(h.op),
                                 Status::BadRequest);
            return;
        }
    }

    // ---- admission batching ----------------------------------------------

    /** Per-worker response staging: worker w owns workerBufs[w]. */
    struct ConnBuf
    {
        std::shared_ptr<Conn> conn;
        std::vector<std::uint8_t> buf;
    };

    /** Scatter-gather flush unit: one conn, its per-worker buffers. */
    struct FlushEntry
    {
        Conn *conn = nullptr;
        std::vector<iovec> iov;
    };

    /** Pop everything available, up to @p room more entries. */
    std::size_t
    drainRing(std::vector<Pending> &batch, std::size_t room)
    {
        Pending p;
        std::size_t got = 0;
        while (got < room && ring->tryPop(p)) {
            batch.push_back(std::move(p));
            ++got;
        }
        return got;
    }

    void
    collectorLoop()
    {
        std::vector<Pending> batch;
        std::vector<engine::Request> reqs;
        std::vector<std::size_t> order; // batch index, submission order
        std::vector<std::vector<ConnBuf>> workerBufs(
            static_cast<std::size_t>(engine->numThreads()));
        std::vector<FlushEntry> flushes;

        const std::size_t cap =
            opts.maxBatch > 0 ? opts.maxBatch : ring->capacity();

        for (;;) {
            batch.clear();
            // Block until the first request of a burst (or shutdown:
            // the ring is drained before exiting, so every admitted
            // request still gets an answer while stop() holds the
            // connection fds open).
            while (drainRing(batch, 1) == 0) {
                if (stopping.load(std::memory_order_acquire))
                    return;
                pollfd pf{collectorWakeFd, POLLIN, 0};
                // EINTR (or any failure) is benign here: the loop
                // re-checks the ring and stop flag either way.
                const auto fa =
                    testing::faultPoint("server.collector_poll", 0);
                if (!fa.err)
                    ::poll(&pf, 1, -1);
                drainWakeFd(collectorWakeFd);
            }
            // Admission window: wait for stragglers of the burst;
            // maxBatch pending closes the window early. ppoll keeps
            // the sub-millisecond window of the old condition-variable
            // collector.
            if (opts.batchWindowUs > 0) {
                const auto deadline =
                    Clock::now() +
                    std::chrono::microseconds(opts.batchWindowUs);
                while (batch.size() < cap &&
                       !stopping.load(std::memory_order_acquire)) {
                    if (drainRing(batch, cap - batch.size()) > 0)
                        continue;
                    const auto now = Clock::now();
                    if (now >= deadline)
                        break;
                    const auto ns =
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(deadline - now);
                    timespec ts{};
                    ts.tv_sec =
                        static_cast<time_t>(ns.count() / 1000000000);
                    ts.tv_nsec =
                        static_cast<long>(ns.count() % 1000000000);
                    pollfd pf{collectorWakeFd, POLLIN, 0};
                    const auto fa =
                        testing::faultPoint("server.collector_poll", 0);
                    if (!fa.err)
                        ::ppoll(&pf, 1, &ts, nullptr);
                    drainWakeFd(collectorWakeFd);
                }
            }
            // Final sweep: submit everything pending, not just
            // maxBatch — closing the window early must not split one
            // burst into several engine fan-outs (the ring bounds the
            // sweep). This matches the pre-event-loop collector, which
            // grabbed the whole admission queue at window close.
            drainRing(batch, ring->capacity());
            if (opts.maxPending > 0)
                queuedCount.fetch_sub(batch.size(),
                                      std::memory_order_relaxed);
            submitBatch(batch, reqs, order, workerBufs, flushes);
        }
    }

    void
    submitBatch(std::vector<Pending> &batch,
                std::vector<engine::Request> &reqs,
                std::vector<std::size_t> &order,
                std::vector<std::vector<ConnBuf>> &workerBufs,
                std::vector<FlushEntry> &flushes)
    {
        // Group requests per arch (stable counting sort) so one engine
        // fan-out walks each arch's cache shards and uop tables
        // contiguously. Single-arch batches — the common production
        // shape — skip the permutation entirely.
        constexpr std::size_t kArches = 256; // arch is a wire byte
        std::size_t cnt[kArches + 1] = {};
        for (const Pending &p : batch)
            ++cnt[static_cast<std::size_t>(p.req.arch) + 1];
        const bool singleArch =
            cnt[static_cast<std::size_t>(batch.front().req.arch) + 1] ==
            batch.size();

        order.clear();
        if (singleArch) {
            for (std::size_t i = 0; i < batch.size(); ++i)
                order.push_back(i);
        } else {
            for (std::size_t a = 1; a <= kArches; ++a)
                cnt[a] += cnt[a - 1];
            order.resize(batch.size());
            for (std::size_t i = 0; i < batch.size(); ++i)
                order[cnt[static_cast<std::size_t>(
                    batch[i].req.arch)]++] = i;
        }

        reqs.clear();
        reqs.reserve(order.size());
        for (std::size_t i : order)
            reqs.push_back(std::move(batch[i].req));

        // Zero-copy serving: each engine worker serializes predictions
        // straight from the cache into its own per-connection staging
        // buffer (no Prediction copies, no locks between workers).
        // Responses are matched by id, so the worker interleaving is
        // invisible to clients.
        for (auto &bufs : workerBufs) {
            for (auto it = bufs.begin(); it != bufs.end();) {
                it->buf.clear(); // keep capacity across batches
                if (!it->conn->open.load())
                    it = bufs.erase(it);
                else
                    ++it;
            }
        }
        engine::BatchStats bs;
        engine->predictBatchVisit(
            reqs,
            [&](int worker, std::size_t k,
                const model::Prediction &pred) {
                Pending &p = batch[order[k]];
                p.conn->inflight.fetch_sub(1,
                                           std::memory_order_relaxed);
                auto &bufs = workerBufs[static_cast<std::size_t>(worker)];
                ConnBuf *cb = nullptr;
                for (auto &b : bufs)
                    if (b.conn.get() == p.conn.get()) {
                        cb = &b;
                        break;
                    }
                if (!cb) {
                    bufs.push_back({p.conn, {}});
                    cb = &bufs.back();
                }
                appendPredictResponse(cb->buf, p.id, pred);
            },
            &bs);
        {
            std::lock_guard<std::mutex> lock(statsMu);
            counters.predictions += reqs.size();
            ++counters.batches;
            counters.maxBatch =
                std::max<std::uint64_t>(counters.maxBatch, reqs.size());
            counters.analysisCacheHits += bs.analysisCacheHits;
            counters.predictionCacheHits += bs.predictionCacheHits;
            counters.analyzed += bs.analyzed;
        }

        // Scatter-gather flush: group every worker's buffer for the
        // same connection into one iovec list and push it with a
        // single vectored write. A short write leaves the tail in the
        // connection's WriteQueue and arms EPOLLOUT on its io loop;
        // closed peers drop silently.
        flushes.clear();
        for (auto &bufs : workerBufs) {
            for (auto &b : bufs) {
                if (b.buf.empty())
                    continue;
                FlushEntry *fe = nullptr;
                for (auto &e : flushes)
                    if (e.conn == b.conn.get()) {
                        fe = &e;
                        break;
                    }
                if (!fe) {
                    flushes.push_back({b.conn.get(), {}});
                    fe = &flushes.back();
                }
                fe->iov.push_back(
                    {b.buf.data(), b.buf.size()});
            }
        }
        for (FlushEntry &e : flushes)
            writeConn(*e.conn, e.iov.data(), e.iov.size());
    }

    // ---- warm-start snapshot ----------------------------------------------

    /**
     * Warm start from ServerOptions::snapshotLoadPath before serving.
     * Crash recovery path: loadSnapshot walks the generation chain, so
     * a snapshot torn by a SIGKILL mid-save falls back to the previous
     * good one (counted in snapshotFallbacks); when NO generation
     * loads, the server starts cold rather than refusing to serve —
     * availability over warmth. Never throws.
     */
    void
    loadSnapshotAtStart()
    {
        if (opts.snapshotLoadPath.empty())
            return;
        try {
            const analysis::SnapshotStats st = analysis::loadSnapshot(
                opts.snapshotLoadPath, {engine, opts.snapshotGenerations});
            snapshotFallbacks.fetch_add(st.generation,
                                        std::memory_order_relaxed);
            // A v2 image that could not be mmap-bound (failed mmap,
            // unaligned foreign image) still warm-starts via the
            // eager parse — count the lost O(pages-touched) start as
            // a degradation alongside generation fallbacks.
            if (st.formatVersion == 2 &&
                st.loadMode == analysis::SnapshotLoadMode::EagerV2)
                snapshotFallbacks.fetch_add(1, std::memory_order_relaxed);
            snapshotLoadMode.store(
                static_cast<std::uint64_t>(st.loadMode),
                std::memory_order_relaxed);
            static const char *kModes[] = {"cold", "v1 parse",
                                           "v2 eager parse", "v2 mmap"};
            std::fprintf(
                stderr,
                "warm start: %zu records, %zu predictions from %s"
                " (generation %zu, %s)\n",
                st.records, st.predictions,
                analysis::snapshotGenerationPath(
                    opts.snapshotLoadPath, static_cast<int>(st.generation))
                    .c_str(),
                st.generation,
                kModes[static_cast<std::size_t>(st.loadMode) < 4
                           ? static_cast<std::size_t>(st.loadMode)
                           : 0]);
        } catch (const std::exception &e) {
            snapshotFallbacks.fetch_add(
                static_cast<std::uint64_t>(
                    std::max(1, opts.snapshotGenerations)),
                std::memory_order_relaxed);
            std::fprintf(stderr, "warm start unavailable, cold start: %s\n",
                         e.what());
        }
    }

    bool
    saveSnapshotNow()
    {
        if (opts.snapshotPath.empty())
            return false;
        std::lock_guard<std::mutex> lock(snapshotMu);
        try {
            analysis::saveSnapshot(opts.snapshotPath,
                                   {engine, opts.snapshotGenerations,
                                    opts.snapshotFormat});
            return true;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "snapshot save failed: %s\n", e.what());
            return false;
        }
    }

    /**
     * SNAPSHOT-fetch subop: serialize the live universe to a v2 image
     * in memory and stream it back as chunk frames. Always v2
     * regardless of the configured on-disk format — the requester is
     * a bootstrapping replica that wants the mmap-native image, and
     * v2 is byte-deterministic, so a wire fetch digests identically
     * to a local save of the same state.
     */
    void
    serveSnapshotFetch(std::uint64_t id, std::vector<std::uint8_t> &reply)
    {
        std::vector<std::uint8_t> img;
        {
            std::lock_guard<std::mutex> lock(snapshotMu);
            try {
                img = analysis::saveSnapshotToMemory(
                    {engine, 1, analysis::SnapshotFormat::V2});
            } catch (const std::exception &e) {
                std::fprintf(stderr, "snapshot fetch failed: %s\n",
                             e.what());
                appendStatusResponse(reply, id, Op::Snapshot,
                                     Status::BadRequest);
                return;
            }
        }
        appendSnapshotStream(reply, id, img.data(), img.size());
        snapshotFetches.fetch_add(1, std::memory_order_relaxed);
    }

    // ---- stats ------------------------------------------------------------

    ServerStats
    snapshotStats() const
    {
        ServerStats s;
        {
            std::lock_guard<std::mutex> lock(statsMu);
            s = counters;
        }
        s.requests = requestCount.load(std::memory_order_relaxed);
        s.overloadedQueue =
            overloadedQueue.load(std::memory_order_relaxed);
        s.overloadedConn =
            overloadedConn.load(std::memory_order_relaxed);
        s.readTimeouts = readTimeouts.load(std::memory_order_relaxed);
        s.quotaClosed = quotaClosed.load(std::memory_order_relaxed);
        s.connectionsShed =
            connectionsShed.load(std::memory_order_relaxed);
        s.connectionsAccepted =
            connectionsAccepted.load(std::memory_order_relaxed);
        s.connectionsOpen =
            connectionsOpen.load(std::memory_order_relaxed);
        s.epollWakeups = epollWakeups.load(std::memory_order_relaxed);
        s.shortWrites = shortWrites.load(std::memory_order_relaxed);
        s.ringFull = ringFull.load(std::memory_order_relaxed);
        // reconnects/retriedRequests are client-side counters; a
        // server always reports 0 (ResilientClient::stats() fills
        // them in on its side of the wire).
        s.drainSheds = drainSheds.load(std::memory_order_relaxed);
        s.snapshotFallbacks =
            snapshotFallbacks.load(std::memory_order_relaxed);
        s.snapshotLoadMode =
            snapshotLoadMode.load(std::memory_order_relaxed);
        s.snapshotFetchesServed =
            snapshotFetches.load(std::memory_order_relaxed);
        // routedPredicts/backendFailovers/convergenceMerges are
        // router- and replica-daemon-side counters (cluster::Router,
        // cluster::ConvergenceLoop); a backend server reports 0.
        s.uptimeMs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - startTime)
                .count());
        return s;
    }

    // ---- lifecycle ---------------------------------------------------------

    void
    start()
    {
        if (running.load())
            return;
        if (opts.unixPath.empty() && opts.tcpPort < 0)
            throw std::runtime_error(
                "PredictionServer: no listener configured");
        loadSnapshotAtStart();
        startTime = Clock::now();
        stopping.store(false);
        draining.store(false);
        if (!opts.unixPath.empty())
            unixFd = listenUnix();
        if (opts.tcpPort >= 0) {
            try {
                tcpFd = listenTcp();
            } catch (...) {
                if (unixFd >= 0) {
                    ::close(unixFd);
                    ::unlink(opts.unixPath.c_str());
                    unixFd = -1;
                }
                throw;
            }
        }

        ring = std::make_unique<MpscRing<Pending>>(
            opts.maxPending > 0 ? opts.maxPending : 65536);
        collectorWakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (collectorWakeFd < 0)
            throwErrno("eventfd");

        const int nLoops = std::max(1, opts.ioThreads);
        loops.clear();
        for (int i = 0; i < nLoops; ++i) {
            auto lp = std::make_unique<Loop>();
            lp->idx = static_cast<std::size_t>(i);
            lp->epfd = ::epoll_create1(EPOLL_CLOEXEC);
            lp->wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
            if (lp->epfd < 0 || lp->wakeFd < 0)
                throwErrno("epoll_create1/eventfd");
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.ptr = &lp->wakeTag;
            ::epoll_ctl(lp->epfd, EPOLL_CTL_ADD, lp->wakeFd, &ev);
            loops.push_back(std::move(lp));
        }
        // Loop 0 owns the listeners; accepted connections are assigned
        // round-robin across loops.
        if (tcpFd >= 0) {
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.ptr = &tcpTag;
            ::epoll_ctl(loops[0]->epfd, EPOLL_CTL_ADD, tcpFd, &ev);
        }
        if (unixFd >= 0) {
            epoll_event ev{};
            ev.events = EPOLLIN;
            ev.data.ptr = &unixTag;
            ::epoll_ctl(loops[0]->epfd, EPOLL_CTL_ADD, unixFd, &ev);
        }

        running.store(true);
        collector = std::thread([this] { collectorLoop(); });
        for (auto &lp : loops) {
            Loop *p = lp.get();
            p->thr = std::thread([this, p] { ioLoop(*p); });
        }
    }

    void
    stop()
    {
        if (!running.exchange(false))
            return;
        stopping.store(true, std::memory_order_release);

        // 1. Wake and join the io loops. They stop accepting and
        //    reading immediately but leave every connection fd open,
        //    so the drain below can still deliver answers.
        for (auto &lp : loops)
            wake(*lp);
        for (auto &lp : loops)
            if (lp->thr.joinable())
                lp->thr.join();

        // 2. Drain the collector: with the producers joined, it
        //    empties the ring, submits the final batches, and writes
        //    the responses directly (EPOLLOUT resume is gone with the
        //    io threads, so a blocked tail stays queued — accepted
        //    loss, the process is exiting the serving loop).
        wakeCollector();
        if (collector.joinable())
            collector.join();

        // 3. Now tear the sockets down.
        for (auto &lp : loops) {
            for (auto &c : lp->conns)
                dropConn(*c);
            lp->conns.clear();
            {
                std::lock_guard<std::mutex> lock(lp->inboxMu);
                for (auto &c : lp->inbox)
                    dropConn(*c);
                lp->inbox.clear();
            }
            if (lp->epfd >= 0)
                ::close(lp->epfd);
            if (lp->wakeFd >= 0)
                ::close(lp->wakeFd);
        }
        loops.clear();
        if (collectorWakeFd >= 0) {
            ::close(collectorWakeFd);
            collectorWakeFd = -1;
        }
        if (tcpFd >= 0)
            ::close(tcpFd);
        if (unixFd >= 0) {
            ::close(unixFd);
            ::unlink(opts.unixPath.c_str());
        }
        tcpFd = unixFd = -1;
        ring.reset();
    }
};

PredictionServer::PredictionServer(ServerOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{}

PredictionServer::~PredictionServer()
{
    impl_->stop();
}

void
PredictionServer::start()
{
    impl_->start();
}

void
PredictionServer::stop()
{
    impl_->stop();
}

void
PredictionServer::drain()
{
    impl_->draining.store(true, std::memory_order_release);
}

bool
PredictionServer::draining() const
{
    return impl_->draining.load(std::memory_order_acquire);
}

int
PredictionServer::tcpPort() const
{
    return impl_->boundTcpPort;
}

const std::string &
PredictionServer::unixPath() const
{
    return impl_->opts.unixPath;
}

ServerStats
PredictionServer::stats() const
{
    return impl_->snapshotStats();
}

bool
PredictionServer::saveSnapshot()
{
    return impl_->saveSnapshotNow();
}

} // namespace facile::server
