#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "server/net_util.h"
#include "testing/fault.h"

namespace facile::server {

namespace {

/** Map a non-OK response status to a typed ProtocolError. */
void
throwOnRejected(const ResponseHeader &h)
{
    if (h.status == static_cast<std::uint8_t>(Status::Ok))
        return;
    if (h.status == static_cast<std::uint8_t>(Status::Overloaded))
        throw ProtocolError("server overloaded (back off and retry)",
                            Status::Overloaded);
    if (h.status == static_cast<std::uint8_t>(Status::Draining))
        throw ProtocolError("server draining (retry elsewhere or back "
                            "off)",
                            Status::Draining);
    throw ProtocolError("server rejected request (status " +
                            std::to_string(h.status) + ")",
                        static_cast<Status>(h.status));
}

[[noreturn]] void
throwTransport(const std::string &what)
{
    throw TransportError(what + ": " + std::strerror(errno));
}

/**
 * Finish a connect(2) that was interrupted by a signal: the kernel
 * keeps establishing the connection asynchronously, so poll for
 * writability and read the final outcome from SO_ERROR — calling
 * connect() again would race the handshake and can report EALREADY
 * or EISCONN depending on timing.
 */
void
finishInterruptedConnect(int fd, const std::string &what)
{
    for (;;) {
        pollfd pf{fd, POLLOUT, 0};
        const int rc = ::poll(&pf, 1, -1);
        if (rc >= 0)
            break;
        if (errno != EINTR)
            throwTransport(what);
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0)
        throwTransport(what);
    if (err != 0) {
        errno = err;
        throwTransport(what);
    }
}

/**
 * connect(2) with EINTR completion and a fault-injection point. The
 * injection runs *after* the real connect so a forced EINTR models
 * the true syscall semantics (interrupted, but the handshake
 * continues in the background).
 */
void
connectOrThrow(int fd, const sockaddr *addr, socklen_t len,
               const std::string &what)
{
    int rc = ::connect(fd, addr, len);
    const auto fa = testing::faultPoint("client.connect", 0);
    if (fa.err && rc == 0) {
        errno = fa.err;
        rc = -1;
    }
    if (rc == 0)
        return;
    if (errno == EINTR) {
        finishInterruptedConnect(fd, what);
        return;
    }
    throwTransport(what);
}

} // namespace

Client
Client::connectTcp(const std::string &host, int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_INET)");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw std::runtime_error("bad host (want a dotted quad): " + host);
    }
    try {
        connectOrThrow(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr,
                       "connect " + host + ":" + std::to_string(port));
    } catch (...) {
        ::close(fd);
        throw;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    setNonBlocking(fd); // connect stays blocking; the session is not
    return Client(fd);
}

Client
Client::connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof addr.sun_path)
        throw std::runtime_error("unix path too long: " + path);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throwErrno("socket(AF_UNIX)");
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    try {
        connectOrThrow(fd, reinterpret_cast<sockaddr *>(&addr),
                       sizeof addr, "connect " + path);
    } catch (...) {
        ::close(fd);
        throw;
    }
    setNonBlocking(fd);
    return Client(fd);
}

Client::Client(int fd) : fd_(fd) {}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Client::Client(Client &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)), nextId_(other.nextId_),
      inbuf_(std::move(other.inbuf_)), parsed_(other.parsed_)
{}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        nextId_ = other.nextId_;
        inbuf_ = std::move(other.inbuf_);
        parsed_ = other.parsed_;
    }
    return *this;
}

bool
Client::drainSocket()
{
    std::uint8_t chunk[64 * 1024];
    for (;;) {
        ssize_t n;
        const auto fa = testing::faultPoint("client.recv", sizeof chunk);
        if (fa.err) {
            errno = fa.err;
            n = -1;
        } else {
            n = ::recv(fd_, chunk, std::min(sizeof chunk, fa.clamp), 0);
        }
        if (n > 0) {
            inbuf_.insert(inbuf_.end(), chunk, chunk + n);
            if (static_cast<std::size_t>(n) < sizeof chunk)
                return true;
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return true;
        return false; // EOF or hard error
    }
}

void
Client::writeAll(const std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        ssize_t n;
        const auto fa = testing::faultPoint("client.send", len);
        if (fa.err) {
            errno = fa.err;
            n = -1;
        } else {
            n = ::send(fd_, data, std::min(len, fa.clamp), MSG_NOSIGNAL);
        }
        if (n > 0) {
            data += static_cast<std::size_t>(n);
            len -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Send buffer full. The server may be blocked writing
            // responses back to us right now — drain them into inbuf_
            // while waiting for writability, or a deep pipeline
            // deadlocks with both socket buffers full. readResponse()
            // parses inbuf_ before touching the socket, so nothing
            // drained here is lost.
            pollfd pf{fd_, POLLIN | POLLOUT, 0};
            int rc;
            const auto pfa = testing::faultPoint("client.poll", 0);
            if (pfa.err) {
                errno = pfa.err;
                rc = -1;
            } else {
                rc = ::poll(&pf, 1, -1);
            }
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                throwTransport("poll");
            }
            if ((pf.revents & POLLIN) && !drainSocket())
                throw TransportError(
                    "connection closed by prediction server");
            continue;
        }
        throwTransport("send");
    }
}

ResponseHeader
Client::readResponse(const std::uint8_t *&payload)
{
    for (;;) {
        if (inbuf_.size() - parsed_ >= kResponseHeaderSize) {
            ResponseHeader h =
                parseResponseHeader(inbuf_.data() + parsed_);
            if (inbuf_.size() - parsed_ >=
                kResponseHeaderSize + h.len) {
                payload = inbuf_.data() + parsed_ + kResponseHeaderSize;
                parsed_ += kResponseHeaderSize + h.len;
                // The returned view lives in inbuf_; compaction is
                // deferred to the next refill below.
                return h;
            }
        }
        if (parsed_ == inbuf_.size()) {
            inbuf_.clear();
            parsed_ = 0;
        } else if (parsed_ > kCompactThreshold) {
            inbuf_.erase(inbuf_.begin(),
                         inbuf_.begin() +
                             static_cast<std::ptrdiff_t>(parsed_));
            parsed_ = 0;
        }
        const std::size_t before = inbuf_.size();
        if (!drainSocket())
            throw TransportError(
                "connection closed by prediction server");
        if (inbuf_.size() == before) {
            pollfd pf{fd_, POLLIN, 0};
            int rc;
            const auto fa = testing::faultPoint("client.poll", 0);
            if (fa.err) {
                errno = fa.err;
                rc = -1;
            } else {
                rc = ::poll(&pf, 1, -1);
            }
            if (rc < 0 && errno != EINTR)
                throwTransport("poll");
        }
    }
}

model::Prediction
Client::predict(const std::vector<std::uint8_t> &bytes, uarch::UArch arch,
                bool loop, const model::ModelConfig &config,
                model::Payload payload_)
{
    if (bytes.size() > kMaxBlockBytes)
        throw ProtocolError("block larger than kMaxBlockBytes");
    const std::uint64_t id = nextId_++;
    std::vector<std::uint8_t> frame;
    frame.reserve(kRequestHeaderSize + bytes.size());
    appendPredictRequest(frame, id, {bytes, arch, loop, config, payload_});
    writeAll(frame.data(), frame.size());

    const std::uint8_t *payload = nullptr;
    ResponseHeader h = readResponse(payload);
    if (h.id != id)
        throw ProtocolError("response id mismatch (pipelining "
                            "through predict()?)");
    throwOnRejected(h);
    auto pred = decodePredictPayload(payload, h.len);
    if (!pred)
        throw ProtocolError("malformed PREDICT response payload");
    return *pred;
}

std::vector<model::Prediction>
Client::predictMany(const std::vector<engine::Request> &reqs)
{
    std::vector<model::Prediction> out;
    predictManyInto(reqs, out);
    return out;
}

void
Client::predictManyInto(const std::vector<engine::Request> &reqs,
                        std::vector<model::Prediction> &out)
{
    out.resize(reqs.size());
    std::vector<std::uint8_t> frames;
    const std::uint8_t *payload = nullptr;
    std::vector<bool> received;

    for (std::size_t base = 0; base < reqs.size();
         base += kPipelineWindow) {
        const std::size_t end =
            std::min(reqs.size(), base + kPipelineWindow);
        const std::size_t window = end - base;

        // Ids within a window are consecutive, so a response maps back
        // to its request by offset — no per-request lookup structure.
        const std::uint64_t baseId = nextId_;
        nextId_ += window;
        frames.clear();
        for (std::size_t i = base; i < end; ++i) {
            if (reqs[i].bytes.size() > kMaxBlockBytes)
                throw ProtocolError("block larger than kMaxBlockBytes");
            appendPredictRequest(frames, baseId + (i - base), reqs[i]);
        }
        writeAll(frames.data(), frames.size());

        received.assign(window, false);
        for (std::size_t got = 0; got < window;) {
            ResponseHeader h = readResponse(payload);
            if (h.id < baseId || h.id - baseId >= window)
                throw ProtocolError("unexpected response id");
            const std::size_t idx =
                static_cast<std::size_t>(h.id - baseId);
            if (received[idx])
                throw ProtocolError("duplicate response id");
            throwOnRejected(h);
            if (!decodePredictInto(payload, h.len, out[base + idx]))
                throw ProtocolError(
                    "malformed PREDICT response payload");
            received[idx] = true;
            ++got;
        }
    }
}

ServerStats
Client::stats()
{
    const std::uint64_t id = nextId_++;
    std::vector<std::uint8_t> frame;
    appendControlRequest(frame, id, Op::Stats);
    writeAll(frame.data(), frame.size());
    const std::uint8_t *payload = nullptr;
    ResponseHeader h = readResponse(payload);
    if (h.id != id)
        throw ProtocolError("STATS response id mismatch");
    throwOnRejected(h);
    auto s = decodeStatsPayload(payload, h.len);
    if (!s)
        throw ProtocolError("malformed STATS response payload");
    return *s;
}

bool
Client::snapshot()
{
    const std::uint64_t id = nextId_++;
    std::vector<std::uint8_t> frame;
    appendControlRequest(frame, id, Op::Snapshot);
    writeAll(frame.data(), frame.size());
    const std::uint8_t *payload = nullptr;
    ResponseHeader h = readResponse(payload);
    if (h.id != id)
        throw ProtocolError("SNAPSHOT response id mismatch");
    return h.status == static_cast<std::uint8_t>(Status::Ok);
}

std::vector<std::uint8_t>
Client::fetchSnapshot()
{
    const std::uint64_t id = nextId_++;
    std::vector<std::uint8_t> frame;
    appendSnapshotFetchRequest(frame, id);
    writeAll(frame.data(), frame.size());

    std::vector<std::uint8_t> img;
    std::uint64_t total = 0;
    bool sawChunk = false;
    for (;;) {
        const std::uint8_t *payload = nullptr;
        ResponseHeader h = readResponse(payload);
        if (h.id != id)
            throw ProtocolError("SNAPSHOT stream id mismatch");
        throwOnRejected(h);
        auto chunk = decodeSnapshotChunk(payload, h.len);
        if (!chunk)
            throw ProtocolError("malformed SNAPSHOT chunk");
        if (!sawChunk) {
            total = chunk->totalBytes;
            img.reserve(static_cast<std::size_t>(total));
            sawChunk = true;
        } else if (chunk->totalBytes != total) {
            throw ProtocolError("SNAPSHOT stream changed size mid-way");
        }
        if (chunk->offset != img.size())
            throw ProtocolError("SNAPSHOT stream chunk out of order");
        if (chunk->len == 0 && img.size() < total)
            throw ProtocolError("truncated SNAPSHOT stream");
        img.insert(img.end(), chunk->data, chunk->data + chunk->len);
        if (img.size() >= total)
            return img;
    }
}

void
Client::ping()
{
    const std::uint64_t id = nextId_++;
    std::vector<std::uint8_t> frame;
    appendControlRequest(frame, id, Op::Ping);
    writeAll(frame.data(), frame.size());
    const std::uint8_t *payload = nullptr;
    ResponseHeader h = readResponse(payload);
    if (h.id != id)
        throw ProtocolError("PING response id mismatch");
    throwOnRejected(h);
}

HealthState
Client::health()
{
    const std::uint64_t id = nextId_++;
    std::vector<std::uint8_t> frame;
    appendControlRequest(frame, id, Op::Health);
    writeAll(frame.data(), frame.size());
    const std::uint8_t *payload = nullptr;
    ResponseHeader h = readResponse(payload);
    if (h.id != id)
        throw ProtocolError("HEALTH response id mismatch");
    throwOnRejected(h);
    auto state = decodeHealthPayload(payload, h.len);
    if (!state)
        throw ProtocolError("malformed HEALTH response payload");
    return *state;
}

} // namespace facile::server
