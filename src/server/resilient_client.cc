#include "server/resilient_client.h"

#include <csignal>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>

namespace facile::server {

namespace {

std::uint64_t splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Ignore SIGPIPE process-wide, once, and only if the process still has
 * the default disposition — a host application that installed its own
 * handler keeps it. Client sends use MSG_NOSIGNAL already; this covers
 * any other fd the process writes after a peer vanishes, so a dying
 * server can never kill its clients.
 */
void ignoreSigpipeOnce()
{
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction cur = {};
        if (::sigaction(SIGPIPE, nullptr, &cur) == 0 &&
            cur.sa_handler == SIG_DFL) {
            struct sigaction ign = {};
            ign.sa_handler = SIG_IGN;
            ::sigaction(SIGPIPE, &ign, nullptr);
        }
    });
}

} // namespace

ResilientClient ResilientClient::forTcp(std::string host, int port,
                                        RetryPolicy policy)
{
    return ResilientClient(std::move(host), port, std::string(),
                           std::move(policy));
}

ResilientClient ResilientClient::forUnix(std::string path,
                                         RetryPolicy policy)
{
    return ResilientClient(std::string(), -1, std::move(path),
                           std::move(policy));
}

ResilientClient::ResilientClient(std::string host, int port,
                                 std::string path, RetryPolicy policy)
    : host_(std::move(host)), port_(port), path_(std::move(path)),
      policy_(std::move(policy)), rngState_(policy_.jitterSeed)
{
    if (policy_.maxAttempts < 1) policy_.maxAttempts = 1;
    if (policy_.breakerThreshold < 1) policy_.breakerThreshold = 1;
}

std::uint64_t ResilientClient::nextRandom() { return splitmix64(rngState_); }

Client &ResilientClient::ensureConnected(Clock::time_point deadline,
                                         const char *what)
{
    (void)deadline;
    if (client_) return *client_;
    ignoreSigpipeOnce();
    // Dialing after a failure is the "reconnect" of the self-healing
    // contract; the very first dial of a healthy run is not.
    const bool redial = consecutiveFailures_ > 0;
    if (!path_.empty()) client_ = Client::connectUnix(path_);
    else client_ = Client::connectTcp(host_, port_);
    if (redial) ++heal_.reconnects;
    (void)what;
    return *client_;
}

void ResilientClient::backoffSleep(int attempt, Clock::time_point deadline)
{
    // attempt is 1-based: the sleep before the (attempt+1)-th try.
    double ms = static_cast<double>(policy_.initialBackoff.count());
    const double cap = static_cast<double>(policy_.maxBackoff.count());
    for (int i = 1; i < attempt && ms < cap; ++i)
        ms *= policy_.backoffMultiplier;
    if (ms > cap) ms = cap;
    // Deterministic uniform jitter in [1 - j, 1 + j].
    const double u =
        static_cast<double>(nextRandom() >> 11) * 0x1.0p-53; // [0, 1)
    ms *= 1.0 + policy_.jitter * (2.0 * u - 1.0);
    if (ms < 0.0) ms = 0.0;

    const auto now = Clock::now();
    if (now >= deadline)
        throw DeadlineError("retries exhausted the operation deadline");
    auto sleep = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms));
    if (now + sleep > deadline) sleep = deadline - now;
    if (sleep.count() > 0) std::this_thread::sleep_for(sleep);
}

template <typename Fn>
auto ResilientClient::withRetries(const char *what, Fn &&op)
{
    return withRetriesImpl(what, 0, false, std::forward<Fn>(op));
}

/**
 * The retry core. @p replayCost is how many PREDICT requests a retry
 * re-sends (for the retriedRequests counter); @p dropOnProtocolRetry
 * forces a reconnect before retrying a rejected *pipelined* op, whose
 * unread sibling responses would otherwise desync id matching on the
 * old connection (single-frame ops leave the connection clean).
 */
template <typename Fn>
auto ResilientClient::withRetriesImpl(const char *what,
                                      std::size_t replayCost,
                                      bool dropOnProtocolRetry, Fn &&op)
{
    using R = std::invoke_result_t<Fn &, Client &>;
    const auto deadline = Clock::now() + policy_.opDeadline;
    int attempt = 0;
    for (;;) {
        // Circuit breaker gate: while open, wait out the cooldown when
        // the deadline allows (then fall through as the half-open
        // probe); fail fast when it does not.
        if (consecutiveFailures_ >= policy_.breakerThreshold) {
            const auto now = Clock::now();
            if (now < breakerOpenUntil_) {
                if (breakerOpenUntil_ > deadline)
                    throw CircuitOpenError(what);
                std::this_thread::sleep_until(breakerOpenUntil_);
            }
        }
        ++attempt;
        try {
            Client &c = ensureConnected(deadline, what);
            if constexpr (std::is_void_v<R>) {
                op(c);
                consecutiveFailures_ = 0;
                return;
            } else {
                R result = op(c);
                consecutiveFailures_ = 0;
                return result;
            }
        } catch (const TransportError &) {
            // Connection-level fault: the socket is gone (or doubtful).
            // Predictions are pure, so reconnect-and-replay is safe.
            client_.reset();
            noteFailure();
            if (attempt >= policy_.maxAttempts) throw;
        } catch (const ProtocolError &e) {
            if (!e.retryable()) throw; // fatal: identical on retry
            if (e.status() == Status::Draining) ++heal_.drainedPeers;
            // The server answered, so the transport is healthy; this
            // is backpressure, not failure — the breaker stays closed.
            consecutiveFailures_ = 0;
            if (dropOnProtocolRetry) client_.reset();
            if (attempt >= policy_.maxAttempts) throw;
        }
        ++heal_.retries;
        heal_.retriedRequests += replayCost;
        backoffSleep(attempt, deadline);
    }
}

void ResilientClient::noteFailure()
{
    ++consecutiveFailures_;
    if (consecutiveFailures_ >= policy_.breakerThreshold) {
        if (consecutiveFailures_ == policy_.breakerThreshold)
            ++heal_.breakerOpens;
        breakerOpenUntil_ = Clock::now() + policy_.breakerCooldown;
    }
}

model::Prediction
ResilientClient::predict(const std::vector<std::uint8_t> &bytes,
                         uarch::UArch arch, bool loop,
                         const model::ModelConfig &config,
                         model::Payload payload)
{
    return withRetriesImpl("predict", 1, false, [&](Client &c) {
        return c.predict(bytes, arch, loop, config, payload);
    });
}

std::vector<model::Prediction>
ResilientClient::predictMany(const std::vector<engine::Request> &reqs)
{
    std::vector<model::Prediction> out;
    predictManyInto(reqs, out);
    return out;
}

void ResilientClient::predictManyInto(
    const std::vector<engine::Request> &reqs,
    std::vector<model::Prediction> &out)
{
    withRetriesImpl("predictMany", reqs.size(), true,
                    [&](Client &c) { c.predictManyInto(reqs, out); });
}

ServerStats ResilientClient::stats()
{
    ServerStats s =
        withRetries("stats", [](Client &c) { return c.stats(); });
    s.reconnects += heal_.reconnects;
    s.retriedRequests += heal_.retriedRequests;
    return s;
}

void ResilientClient::ping()
{
    withRetries("ping", [](Client &c) { c.ping(); });
}

bool ResilientClient::snapshot()
{
    return withRetries("snapshot", [](Client &c) { return c.snapshot(); });
}

HealthState ResilientClient::health()
{
    return withRetries("health", [](Client &c) { return c.health(); });
}

std::vector<std::uint8_t> ResilientClient::fetchSnapshot()
{
    return withRetries("fetchSnapshot",
                       [](Client &c) { return c.fetchSnapshot(); });
}

} // namespace facile::server
