/**
 * @file
 * Self-healing client for the prediction server: wraps the pipelining
 * Client with the fault-tolerance policy a fleet needs against a
 * replica that crashes, restarts, drains, or sheds load.
 *
 *   - **Typed taxonomy** — retryable vs fatal. TransportError (reset,
 *     refused, EOF) and ProtocolError::retryable() (Overloaded,
 *     Draining) are handled here; everything else (BadRequest,
 *     malformed frames) surfaces to the caller unchanged, because it
 *     would fail identically on retry.
 *   - **Reconnect + idempotent replay.** Predictions are pure
 *     functions of (bytes, arch, flags, config), so after a transport
 *     fault the client reconnects and replays the in-flight PREDICT
 *     requests on the fresh connection. The dead socket takes any
 *     half-delivered responses with it — no dedup bookkeeping needed.
 *   - **Deadlines + jittered exponential backoff.** Every operation
 *     gets RetryPolicy::opDeadline end to end; between attempts the
 *     client sleeps initialBackoff * multiplier^n, jittered by a
 *     deterministic seeded stream so a synchronized fleet de-correlates
 *     (and tests reproduce).
 *   - **Circuit breaker.** breakerThreshold consecutive transport-
 *     level failures open the breaker for breakerCooldown; while open,
 *     attempts wait for the cooldown when the deadline allows (the
 *     self-healing default) and fail fast with CircuitOpenError when
 *     it does not. One half-open probe then closes or re-opens it.
 *
 * Like Client, one instance is single-threaded; use one per thread.
 * Construction never connects (and never throws): the first operation
 * dials, so a fleet can be built while the server is still down.
 */
#ifndef FACILE_SERVER_RESILIENT_CLIENT_H
#define FACILE_SERVER_RESILIENT_CLIENT_H

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "server/client.h"

namespace facile::server {

/** An operation exhausted RetryPolicy::opDeadline across retries. */
class DeadlineError : public std::runtime_error
{
  public:
    explicit DeadlineError(const std::string &what)
        : std::runtime_error("deadline: " + what)
    {}
};

/**
 * The circuit breaker is open and the operation's deadline ends
 * before the cooldown does — the server has been failing repeatedly
 * and hammering it again right now would help nobody.
 */
class CircuitOpenError : public std::runtime_error
{
  public:
    explicit CircuitOpenError(const std::string &what)
        : std::runtime_error("circuit open: " + what)
    {}
};

struct RetryPolicy
{
    /** Attempts per operation, including the first (>= 1). */
    int maxAttempts = 8;
    /** Backoff before the second attempt. */
    std::chrono::milliseconds initialBackoff{5};
    /** Backoff growth cap. */
    std::chrono::milliseconds maxBackoff{500};
    /** Exponential growth factor. */
    double backoffMultiplier = 2.0;
    /** Uniform jitter fraction in [0, 1]: sleep *= 1 +/- jitter. */
    double jitter = 0.5;
    /** End-to-end deadline per operation (connect + retries + IO). */
    std::chrono::milliseconds opDeadline{30000};
    /** Consecutive transport failures that open the breaker. */
    int breakerThreshold = 8;
    /** How long an open breaker blocks attempts. */
    std::chrono::milliseconds breakerCooldown{500};
    /** Seed of the deterministic jitter stream. */
    std::uint64_t jitterSeed = 0x5eedfac12e511e17ULL;
};

/** Local self-healing counters (also merged into stats()). */
struct SelfHealStats
{
    std::uint64_t reconnects = 0;      ///< successful re-dials
    std::uint64_t retriedRequests = 0; ///< PREDICTs re-sent after a fault
    std::uint64_t retries = 0;         ///< operation attempts beyond the first
    std::uint64_t breakerOpens = 0;    ///< breaker threshold crossings
    std::uint64_t drainedPeers = 0;    ///< Draining rejections observed
};

class ResilientClient
{
  public:
    /** Target a TCP endpoint (dotted-quad host). Does not connect. */
    static ResilientClient forTcp(std::string host, int port,
                                  RetryPolicy policy = {});

    /** Target a Unix-domain socket path. Does not connect. */
    static ResilientClient forUnix(std::string path,
                                   RetryPolicy policy = {});

    ResilientClient(ResilientClient &&) noexcept = default;
    ResilientClient &operator=(ResilientClient &&) noexcept = default;

    /** One prediction; retried per the policy. */
    model::Prediction
    predict(const std::vector<std::uint8_t> &bytes, uarch::UArch arch,
            bool loop, const model::ModelConfig &config = {},
            model::Payload payload = model::Payload::None);

    /**
     * Pipelined batch with replay-on-fault: a transport error at any
     * point reconnects and re-sends the whole batch (pure predictions
     * make that idempotent; the dead socket discards any responses of
     * the aborted attempt). out[i] corresponds to reqs[i].
     */
    std::vector<model::Prediction>
    predictMany(const std::vector<engine::Request> &reqs);

    void predictManyInto(const std::vector<engine::Request> &reqs,
                         std::vector<model::Prediction> &out);

    /**
     * Server counters, with this client's reconnects/retriedRequests
     * merged in — the two client-side fields of the append-only STATS
     * payload (a server always sends 0 there).
     */
    ServerStats stats();

    void ping();
    bool snapshot();
    HealthState health();

    /**
     * Client::fetchSnapshot with the full retry taxonomy — the call a
     * bootstrapping replica makes against a peer that may itself be
     * starting, draining, or overloaded.
     */
    std::vector<std::uint8_t> fetchSnapshot();

    const SelfHealStats &selfHealStats() const { return heal_; }
    const RetryPolicy &policy() const { return policy_; }

    /** True while a dialed connection is held (no probe traffic). */
    bool connected() const { return client_.has_value(); }

    /** Drop the current connection; the next operation re-dials. */
    void disconnect() { client_.reset(); }

  private:
    ResilientClient(std::string host, int port, std::string path,
                    RetryPolicy policy);

    using Clock = std::chrono::steady_clock;

    /** Run @p op with connect/retry/backoff/breaker handling. */
    template <typename Fn> auto withRetries(const char *what, Fn &&op);
    template <typename Fn>
    auto withRetriesImpl(const char *what, std::size_t replayCost,
                         bool dropOnProtocolRetry, Fn &&op);

    Client &ensureConnected(Clock::time_point deadline, const char *what);
    void backoffSleep(int attempt, Clock::time_point deadline);
    void noteFailure();
    std::uint64_t nextRandom();

    std::string host_;
    int port_ = -1;
    std::string path_; ///< UDS target; empty = TCP
    RetryPolicy policy_;
    std::optional<Client> client_;
    SelfHealStats heal_;
    std::uint64_t rngState_ = 0;
    int consecutiveFailures_ = 0;
    Clock::time_point breakerOpenUntil_{};
};

} // namespace facile::server

#endif // FACILE_SERVER_RESILIENT_CLIENT_H
