/**
 * @file
 * Streaming prediction server: exposes the batched PredictionEngine
 * over TCP and Unix-domain sockets with the framed binary protocol of
 * protocol.h.
 *
 * Architecture (one process, no external dependencies): an
 * event-driven data plane — readiness-driven nonblocking I/O instead
 * of a thread per connection, so thousands of mostly-idle connections
 * cost file descriptors, not stacks and context switches.
 *
 *   io loops (1..ioThreads, each an epoll over nonblocking sockets)
 *       accept (loop 0) -> connections assigned round-robin
 *       EPOLLIN: recv -> FrameParser -> control ops answered inline,
 *                PREDICT requests admitted through a bounded
 *                lock-free MPSC ring (mpsc_ring.h)
 *            |
 *            v
 *   admission ring  --  collector thread drains the ring, groups
 *                       requests for up to batchWindowUs or until
 *                       maxBatch are pending, orders them arch-major,
 *                       and submits ONE engine batch
 *            |
 *            v
 *   PredictionEngine (worker pool, sharded two-generation caches,
 *                     zero-alloc hot paths; workers serialize
 *                     responses straight from the cache into
 *                     per-(worker, connection) buffers)
 *            |
 *            v
 *   scatter-gather flush: one writev-style sendmsg gathers a
 *   connection's buffers (write_queue.h); a short write queues the
 *   unsent tail and EPOLLOUT on the owning io loop resumes it
 *
 * The admission batching is what lets wire serving inherit the batch
 * engine's economics: a burst of N requests from any mix of clients
 * costs one pool fan-out, and repeated blocks collapse into cache
 * hits. Responses carry the client-chosen request id, so clients may
 * pipeline arbitrarily deep; per-connection frame order across batches
 * follows submission order of the batches, but within one batch the
 * order is the engine's — match by id.
 */
#ifndef FACILE_SERVER_SERVER_H
#define FACILE_SERVER_SERVER_H

#include <cstdint>
#include <memory>
#include <string>

#include "analysis/snapshot.h"
#include "server/protocol.h"

namespace facile::server {

struct ServerOptions
{
    /** Unix-domain socket path; empty disables the UDS listener. */
    std::string unixPath;

    /**
     * TCP listen port; -1 disables the TCP listener, 0 binds an
     * ephemeral port (query it with tcpPort() after start()).
     */
    int tcpPort = -1;

    /** TCP bind address. Loopback by default; widen deliberately. */
    std::string tcpHost = "127.0.0.1";

    /**
     * Admission window in microseconds: after the first request of a
     * batch arrives, the collector waits up to this long for more
     * before submitting, so bursts coalesce into one engine fan-out.
     * 0 submits whatever is pending immediately.
     */
    int batchWindowUs = 200;

    /** Admission batch size that closes the window early. */
    std::size_t maxBatch = 1024;

    /**
     * Number of epoll reader loops (io threads). One loop drives
     * thousands of connections on this protocol; shard only when the
     * reader side itself saturates a core. Loop 0 owns the listeners;
     * accepted connections are assigned round-robin.
     */
    int ioThreads = 1;

    // ---- resource limits (abuse handling; see README "Resource
    // limits & abuse handling"). Every limit is surfaced as a
    // ServerStats counter so shedding is observable over the wire. ----

    /**
     * Read deadline in milliseconds, enforced from accept onwards: a
     * connection that is mid-frame (partial header or payload
     * buffered) or has never completed a frame (handshake) and makes
     * no frame progress for this long is closed — the slowloris
     * defense. A connection idling *between* complete frames is never
     * closed (keep-alive is free). 0 disables the deadline.
     */
    int readTimeoutMs = 30000;

    /**
     * Accept-time connection cap: when this many connections are
     * alive, further accepts are closed immediately (counter:
     * connectionsShed). 0 disables the cap.
     */
    std::size_t maxConnections = 1024;

    /**
     * Bounded admission: PREDICT requests arriving while this many
     * are already admitted but not yet submitted to the engine are
     * answered Status::Overloaded instead of buffered (counter:
     * overloadedQueue). The bound sizes the lock-free admission ring
     * (rounded up to a power of two) and is what turns a request
     * flood into explicit backpressure rather than unbounded memory
     * growth. 0 disables the count gate (the ring's own capacity
     * still bounds memory; counter: ringFull).
     */
    std::size_t maxPending = 65536;

    /**
     * Per-connection in-flight quota: PREDICT requests admitted but
     * not yet answered. Requests beyond it are answered
     * Status::Overloaded (counter: overloadedConn). The default
     * leaves room for two full client pipeline windows. 0 disables.
     */
    std::size_t maxInFlightPerConn = 2 * 4096;

    /**
     * Per-connection cap on buffered-unparsed request bytes
     * (FrameParser::Options::maxBuffered). Exceeding it closes the
     * connection (counter: quotaClosed); it cannot be hit by
     * well-formed traffic since frames are drained as they complete.
     */
    std::size_t maxBufferedPerConn = 1u << 20;

    /** Engine to serve from; nullptr uses PredictionEngine::shared(). */
    engine::PredictionEngine *engine = nullptr;

    /**
     * Warm-start snapshot destination (src/analysis/snapshot.h). When
     * non-empty, saveSnapshot() — reachable via the SNAPSHOT admin
     * frame or the operator's signal handler — persists the intern
     * arenas and the serving engine's prediction cache there. Empty
     * disables the op (SNAPSHOT answers BAD_REQUEST): the path is
     * always operator-chosen, never taken from the wire. Saves are
     * atomic and generation-rotated (see snapshot.h "Crash safety").
     */
    std::string snapshotPath;

    /**
     * Warm-start source: when non-empty, start() loads this snapshot
     * — falling back through rotated generations if the newest file
     * is torn or corrupt (counter: snapshotFallbacks) — and starts
     * cold if no generation is loadable. Usually the same path as
     * snapshotPath so a crashed server restarts from its own last
     * good save.
     */
    std::string snapshotLoadPath;

    /** Snapshot generations kept/scanned (SnapshotOptions::generations). */
    int snapshotGenerations = analysis::kSnapshotGenerations;

    /**
     * Image format written by SNAPSHOT saves. V2 (the default) is the
     * mmap-native sectioned image: restarts warm-start in
     * O(pages touched) by binding the file instead of parsing it.
     * V1 keeps the legacy streaming format for rollback to older
     * binaries (any build reads both; see snapshot.h "Format v2").
     */
    analysis::SnapshotFormat snapshotFormat = analysis::SnapshotFormat::V2;
};

class PredictionServer
{
  public:
    explicit PredictionServer(ServerOptions opts);

    /** Stops and joins everything if still running. */
    ~PredictionServer();

    PredictionServer(const PredictionServer &) = delete;
    PredictionServer &operator=(const PredictionServer &) = delete;

    /**
     * Bind the configured listeners and start serving. Throws
     * std::runtime_error (with errno detail) if no listener could be
     * established.
     */
    void start();

    /** Stop listeners, drain in-flight batches, join all threads. */
    void stop();

    /**
     * Enter drain mode (graceful degradation, typically on SIGTERM):
     * new connections are refused, new PREDICT requests are answered
     * Status::Draining (counter: drainSheds), batches already admitted
     * flush normally, and control ops — STATS, PING, HEALTH (which now
     * reports Draining), SNAPSHOT — keep answering so operators can
     * save state and routers can observe the transition. Does not
     * block; call stop() once peers have moved off. One-way until the
     * next start().
     */
    void drain();

    /** True once drain() was called (and until the next start()). */
    bool draining() const;

    /** Actual TCP port after start() (ephemeral binds resolved). */
    int tcpPort() const;

    /** UDS path (empty when the UDS listener is disabled). */
    const std::string &unixPath() const;

    /** Snapshot of the serving counters (same data as the STATS op). */
    ServerStats stats() const;

    /**
     * Persist a warm-start snapshot to ServerOptions::snapshotPath
     * (serialized against concurrent saves). Returns false — never
     * throws — when no path is configured or the save fails; the
     * failure detail is logged to stderr.
     */
    bool saveSnapshot();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace facile::server

#endif // FACILE_SERVER_SERVER_H
