#include "isa/decoder.h"

namespace facile::isa {

namespace {

/** Cursor over the input bytes for one instruction. */
class Cursor
{
  public:
    Cursor(const std::uint8_t *data, std::size_t size, std::size_t pos)
        : data_(data), size_(size), start_(pos), pos_(pos)
    {}

    std::uint8_t
    peek() const
    {
        if (pos_ >= size_)
            throw DecodeError("unexpected end of buffer");
        return data_[pos_];
    }

    std::uint8_t
    next()
    {
        std::uint8_t b = peek();
        ++pos_;
        if (pos_ - start_ > 15)
            throw DecodeError("instruction longer than 15 bytes");
        return b;
    }

    std::int64_t
    imm(int width, bool signExtend = true)
    {
        std::uint64_t v = 0;
        for (int i = 0; i < width; ++i)
            v |= static_cast<std::uint64_t>(next()) << (8 * i);
        if (signExtend && width < 8) {
            std::uint64_t signBit = 1ULL << (8 * width - 1);
            if (v & signBit)
                v |= ~((signBit << 1) - 1);
        }
        return static_cast<std::int64_t>(v);
    }

    std::size_t offset() const { return pos_ - start_; }

  private:
    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t start_;
    std::size_t pos_;
};

/** Prefix state gathered before the opcode. */
struct Prefixes
{
    bool has66 = false;
    int mandatory = 0; ///< 0, 0xF2, or 0xF3
    bool rexPresent = false;
    bool rexW = false, rexR = false, rexX = false, rexB = false;
    // VEX state.
    bool vex = false;
    int vexMap = 0;
    int vexPp = 0;
    bool vexW = false, vexL = false;
    int vexVvvv = 0xF;
};

/** Decoded ModRM byte plus the resolved r/m operand. */
struct ModRm
{
    int reg = 0; ///< reg field with REX.R applied
    int mod = 0;
    bool rmIsMem = false;
    int rmReg = 0; ///< rm register index with REX.B applied (if !rmIsMem)
    MemOp mem;
};

ModRm
parseModRm(Cursor &cur, const Prefixes &pfx)
{
    ModRm result;
    std::uint8_t modrm = cur.next();
    result.mod = modrm >> 6;
    int rexR = pfx.rexR ? 8 : 0;
    int rexB = pfx.rexB ? 8 : 0;
    int rexX = pfx.rexX ? 8 : 0;
    result.reg = ((modrm >> 3) & 7) | rexR;
    int rmLow = modrm & 7;

    if (result.mod == 3) {
        result.rmIsMem = false;
        result.rmReg = rmLow | rexB;
        return result;
    }

    result.rmIsMem = true;
    MemOp &m = result.mem;
    if (rmLow == 4) {
        std::uint8_t sib = cur.next();
        int scaleBits = sib >> 6;
        int indexLow = (sib >> 3) & 7;
        int baseLow = sib & 7;
        m.scale = static_cast<std::uint8_t>(1 << scaleBits);
        if ((indexLow | rexX) != 4) {
            m.index = gpr(8, indexLow | rexX);
        } else {
            m.index = Reg{};
            m.scale = 1;
        }
        if (result.mod == 0 && baseLow == 5)
            throw DecodeError("base-less addressing not supported");
        m.base = gpr(8, baseLow | rexB);
    } else {
        if (result.mod == 0 && rmLow == 5)
            throw DecodeError("rip-relative addressing not supported");
        m.base = gpr(8, rmLow | rexB);
        m.index = Reg{};
        m.scale = 1;
    }
    if (result.mod == 1)
        m.disp = static_cast<std::int32_t>(cur.imm(1));
    else if (result.mod == 2)
        m.disp = static_cast<std::int32_t>(cur.imm(4));
    else
        m.disp = 0;
    return result;
}

/** GPR operand width from prefixes, for default-32-bit instructions. */
int
gprWidth(const Prefixes &pfx)
{
    if (pfx.rexW)
        return 8;
    if (pfx.has66)
        return 2;
    return 4;
}

Reg
rmRegOf(const ModRm &mod, int width)
{
    return gpr(width, mod.rmReg);
}

Operand
rmOperand(const ModRm &mod, int width)
{
    if (mod.rmIsMem) {
        MemOp m = mod.mem;
        m.width = static_cast<std::uint8_t>(width);
        return Operand::makeMem(m);
    }
    return Operand::makeReg(rmRegOf(mod, width));
}

Operand
rmVecOperand(const ModRm &mod, bool ymm, int memWidth = -1)
{
    if (mod.rmIsMem) {
        MemOp m = mod.mem;
        m.width = static_cast<std::uint8_t>(
            memWidth > 0 ? memWidth : (ymm ? 32 : 16));
        return Operand::makeMem(m);
    }
    return Operand::makeReg(ymm ? facile::isa::ymm(mod.rmReg)
                                : xmm(mod.rmReg));
}

const Mnemonic aluByBase[8] = {Mnemonic::ADD, Mnemonic::OR,  Mnemonic::ADC,
                               Mnemonic::SBB, Mnemonic::AND, Mnemonic::SUB,
                               Mnemonic::XOR, Mnemonic::CMP};

/** Decoder for one instruction; returns the DecodedInst. */
class InstDecoder
{
  public:
    InstDecoder(const std::uint8_t *data, std::size_t size, std::size_t pos)
        : cur_(data, size, pos)
    {}

    DecodedInst run();

  private:
    Cursor cur_;
    Prefixes pfx_;
    DecodedInst out_;

    void parsePrefixes();
    void decodeLegacy();
    void decodeTwoByte();
    void decodeThreeByte38();
    void decodeVex();

    [[noreturn]] void
    bad(const std::string &msg)
    {
        throw DecodeError(msg);
    }

    void
    set(Mnemonic m, std::vector<Operand> ops, Cond cc = Cond::None)
    {
        out_.inst.mnem = m;
        out_.inst.cc = cc;
        out_.inst.ops = std::move(ops);
    }

    /** Record an immediate operand with proper width bookkeeping. */
    Operand
    immOp(int width)
    {
        std::int64_t v = cur_.imm(width);
        if (width == 2)
            sawImm16_ = true;
        return Operand::makeImm(v, width);
    }

    bool sawImm16_ = false;

    friend DecodedInst decodeOneImpl(const std::uint8_t *, std::size_t,
                                     std::size_t);
};

void
InstDecoder::parsePrefixes()
{
    for (;;) {
        std::uint8_t b = cur_.peek();
        if (b == 0x66) {
            pfx_.has66 = true;
            cur_.next();
        } else if (b == 0xF2 || b == 0xF3) {
            pfx_.mandatory = b;
            cur_.next();
        } else if (b == 0x2E || b == 0x3E) { // segment prefixes (nop padding)
            cur_.next();
        } else {
            break;
        }
    }
    std::uint8_t b = cur_.peek();
    if ((b & 0xF0) == 0x40) {
        pfx_.rexPresent = true;
        pfx_.rexW = b & 8;
        pfx_.rexR = b & 4;
        pfx_.rexX = b & 2;
        pfx_.rexB = b & 1;
        cur_.next();
        b = cur_.peek();
    }
    if ((b == 0xC4 || b == 0xC5) && !pfx_.rexPresent && !pfx_.has66 &&
        !pfx_.mandatory) {
        pfx_.vex = true;
        cur_.next();
        if (b == 0xC5) {
            std::uint8_t v = cur_.next();
            pfx_.rexR = !(v & 0x80);
            pfx_.vexMap = 1;
            pfx_.vexVvvv = (~(v >> 3)) & 0xF;
            pfx_.vexL = v & 4;
            pfx_.vexPp = v & 3;
        } else {
            std::uint8_t v1 = cur_.next();
            std::uint8_t v2 = cur_.next();
            pfx_.rexR = !(v1 & 0x80);
            pfx_.rexX = !(v1 & 0x40);
            pfx_.rexB = !(v1 & 0x20);
            pfx_.vexMap = v1 & 0x1F;
            pfx_.vexW = v2 & 0x80;
            pfx_.vexVvvv = (~(v2 >> 3)) & 0xF;
            pfx_.vexL = v2 & 4;
            pfx_.vexPp = v2 & 3;
        }
    }
    out_.opcodeOffset = static_cast<std::uint8_t>(cur_.offset());
}

void
InstDecoder::decodeVex()
{
    std::uint8_t opc = cur_.next();
    bool L = pfx_.vexL;
    auto vecReg = [&](int idx) { return L ? ymm(idx) : xmm(idx); };
    // For three-operand forms, vvvv always names a register (xmm15/ymm15
    // encodes as vvvv = 1111); "unused" only applies to two-operand forms.
    Reg vvvv = vecReg(pfx_.vexVvvv);

    if (pfx_.vexMap == 1) {
        ModRm mod = parseModRm(cur_, pfx_);
        Operand rm = rmVecOperand(mod, L);
        Operand reg = Operand::makeReg(vecReg(mod.reg));
        auto threeOp = [&](Mnemonic m) {
            set(m, {reg, Operand::makeReg(vvvv), rm});
        };
        switch (opc) {
          case 0x10: set(Mnemonic::VMOVUPS, {reg, rm}); return;
          case 0x11: set(Mnemonic::VMOVUPS, {rm, reg}); return;
          case 0x28: set(Mnemonic::VMOVAPS, {reg, rm}); return;
          case 0x29: set(Mnemonic::VMOVAPS, {rm, reg}); return;
          case 0x51:
            if (pfx_.vexPp == 1) {
                set(Mnemonic::VSQRTPD, {reg, rm});
                return;
            }
            bad("unsupported vex 0F 51 form");
          case 0x54: threeOp(Mnemonic::VANDPS); return;
          case 0x57: threeOp(Mnemonic::VXORPS); return;
          case 0x58:
            threeOp(pfx_.vexPp == 0   ? Mnemonic::VADDPS
                    : pfx_.vexPp == 1 ? Mnemonic::VADDPD
                                      : Mnemonic::VADDSD);
            return;
          case 0x59:
            threeOp(pfx_.vexPp == 0   ? Mnemonic::VMULPS
                    : pfx_.vexPp == 1 ? Mnemonic::VMULPD
                                      : Mnemonic::VMULSD);
            return;
          case 0x5C: threeOp(Mnemonic::VSUBPS); return;
          case 0x5E:
            threeOp(pfx_.vexPp == 0 ? Mnemonic::VDIVPS : Mnemonic::VDIVSD);
            return;
          case 0xEF: threeOp(Mnemonic::VPXOR); return;
          case 0xFE: threeOp(Mnemonic::VPADDD); return;
          default:
            bad("unsupported vex map1 opcode");
        }
    } else if (pfx_.vexMap == 2) {
        ModRm mod = parseModRm(cur_, pfx_);
        Operand rm = rmVecOperand(mod, L);
        Operand reg = Operand::makeReg(vecReg(mod.reg));
        auto threeOp = [&](Mnemonic m) {
            set(m, {reg, Operand::makeReg(vvvv), rm});
        };
        switch (opc) {
          case 0x40: threeOp(Mnemonic::VPMULLD); return;
          case 0xB8:
            threeOp(pfx_.vexW ? Mnemonic::VFMADD231PD
                              : Mnemonic::VFMADD231PS);
            return;
          case 0xB9:
            if (pfx_.vexW) {
                threeOp(Mnemonic::VFMADD231SD);
                return;
            }
            bad("unsupported vfmadd form");
          default:
            bad("unsupported vex map2 opcode");
        }
    }
    bad("unsupported vex map");
}

void
InstDecoder::decodeThreeByte38()
{
    std::uint8_t opc = cur_.next();
    ModRm mod = parseModRm(cur_, pfx_);
    switch (opc) {
      case 0x40: // pmulld (66)
        if (!pfx_.has66)
            bad("pmulld requires 66 prefix");
        set(Mnemonic::PMULLD,
            {Operand::makeReg(xmm(mod.reg)), rmVecOperand(mod, false)});
        return;
      default:
        bad("unsupported 0F 38 opcode");
    }
}

void
InstDecoder::decodeTwoByte()
{
    std::uint8_t opc = cur_.next();

    if (opc == 0x38) {
        decodeThreeByte38();
        return;
    }

    // jcc rel32
    if (opc >= 0x80 && opc <= 0x8F) {
        Cond cc = static_cast<Cond>(opc - 0x80);
        set(Mnemonic::JCC, {immOp(4)}, cc);
        return;
    }
    // setcc
    if (opc >= 0x90 && opc <= 0x9F) {
        Cond cc = static_cast<Cond>(opc - 0x90);
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::SETCC, {rmOperand(mod, 1)}, cc);
        return;
    }
    // cmovcc
    if (opc >= 0x40 && opc <= 0x4F) {
        Cond cc = static_cast<Cond>(opc - 0x40);
        int w = gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::CMOVCC,
            {Operand::makeReg(gpr(w, mod.reg)), rmOperand(mod, w)}, cc);
        return;
    }
    // bswap
    if (opc >= 0xC8 && opc <= 0xCF) {
        int idx = (opc - 0xC8) | (pfx_.rexB ? 8 : 0);
        set(Mnemonic::BSWAP, {Operand::makeReg(gpr(gprWidth(pfx_), idx))});
        return;
    }

    auto sseByPp = [&](Mnemonic ps, Mnemonic pd, Mnemonic ss, Mnemonic sd,
                       int scalarW) {
        ModRm mod = parseModRm(cur_, pfx_);
        Mnemonic m;
        int memW = 16;
        if (pfx_.mandatory == 0xF3) {
            m = ss;
            memW = 4;
        } else if (pfx_.mandatory == 0xF2) {
            m = sd;
            memW = scalarW;
        } else if (pfx_.has66) {
            m = pd;
        } else {
            m = ps;
        }
        if (m == Mnemonic::kNumMnemonics)
            bad("unsupported sse form");
        set(m, {Operand::makeReg(xmm(mod.reg)),
                rmVecOperand(mod, false, memW)});
    };
    constexpr Mnemonic NONE = Mnemonic::kNumMnemonics;

    switch (opc) {
      case 0x10:
      case 0x11: {
        ModRm mod = parseModRm(cur_, pfx_);
        Mnemonic m;
        int memW = 16;
        if (pfx_.mandatory == 0xF3) {
            m = Mnemonic::MOVSS;
            memW = 4;
        } else if (pfx_.mandatory == 0xF2) {
            m = Mnemonic::MOVSD;
            memW = 8;
        } else if (pfx_.has66) {
            bad("movupd not supported");
        } else {
            m = Mnemonic::MOVUPS;
        }
        Operand reg = Operand::makeReg(xmm(mod.reg));
        Operand rm = rmVecOperand(mod, false, memW);
        if (opc == 0x10)
            set(m, {reg, rm});
        else
            set(m, {rm, reg});
        return;
      }
      case 0x1F: { // multi-byte nop
        parseModRm(cur_, pfx_);
        out_.inst.mnem = Mnemonic::NOP;
        out_.inst.ops.clear();
        return;
      }
      case 0x28:
      case 0x29: {
        ModRm mod = parseModRm(cur_, pfx_);
        Mnemonic m = pfx_.has66 ? Mnemonic::MOVAPD : Mnemonic::MOVAPS;
        Operand reg = Operand::makeReg(xmm(mod.reg));
        Operand rm = rmVecOperand(mod, false);
        if (opc == 0x28)
            set(m, {reg, rm});
        else
            set(m, {rm, reg});
        return;
      }
      case 0x2A: {
        if (pfx_.mandatory != 0xF2)
            bad("only cvtsi2sd supported at 0F 2A");
        int srcW = pfx_.rexW ? 8 : 4;
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::CVTSI2SD,
            {Operand::makeReg(xmm(mod.reg)), rmOperand(mod, srcW)});
        return;
      }
      case 0x2C: {
        if (pfx_.mandatory != 0xF2)
            bad("only cvttsd2si supported at 0F 2C");
        int dstW = pfx_.rexW ? 8 : 4;
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::CVTTSD2SI, {Operand::makeReg(gpr(dstW, mod.reg)),
                                  rmVecOperand(mod, false, 8)});
        return;
      }
      case 0x51:
        sseByPp(Mnemonic::SQRTPS, Mnemonic::SQRTPD, NONE, Mnemonic::SQRTSD,
                8);
        return;
      case 0x54: sseByPp(Mnemonic::ANDPS, NONE, NONE, NONE, 8); return;
      case 0x56: sseByPp(Mnemonic::ORPS, NONE, NONE, NONE, 8); return;
      case 0x57: sseByPp(Mnemonic::XORPS, NONE, NONE, NONE, 8); return;
      case 0x58:
        sseByPp(Mnemonic::ADDPS, Mnemonic::ADDPD, Mnemonic::ADDSS,
                Mnemonic::ADDSD, 8);
        return;
      case 0x59:
        sseByPp(Mnemonic::MULPS, Mnemonic::MULPD, Mnemonic::MULSS,
                Mnemonic::MULSD, 8);
        return;
      case 0x5C:
        sseByPp(Mnemonic::SUBPS, Mnemonic::SUBPD, NONE, Mnemonic::SUBSD, 8);
        return;
      case 0x5D: sseByPp(Mnemonic::MINPS, NONE, NONE, NONE, 8); return;
      case 0x5E:
        sseByPp(Mnemonic::DIVPS, Mnemonic::DIVPD, Mnemonic::DIVSS,
                Mnemonic::DIVSD, 8);
        return;
      case 0x5F: sseByPp(Mnemonic::MAXPS, NONE, NONE, NONE, 8); return;
      case 0x62:
        sseByPp(NONE, Mnemonic::PUNPCKLDQ, NONE, NONE, 8);
        return;
      case 0x6E: {
        if (!pfx_.has66)
            bad("movd/movq requires 66");
        int w = pfx_.rexW ? 8 : 4;
        ModRm mod = parseModRm(cur_, pfx_);
        set(pfx_.rexW ? Mnemonic::MOVQ : Mnemonic::MOVD,
            {Operand::makeReg(xmm(mod.reg)), rmOperand(mod, w)});
        return;
      }
      case 0x72: { // psll/psrl group, imm8
        if (!pfx_.has66)
            bad("pslld/psrld requires 66");
        ModRm mod = parseModRm(cur_, pfx_);
        Operand imm = immOp(1);
        if (mod.reg == 6)
            set(Mnemonic::PSLLD, {rmVecOperand(mod, false), imm});
        else if (mod.reg == 2)
            set(Mnemonic::PSRLD, {rmVecOperand(mod, false), imm});
        else
            bad("unsupported 0F 72 group digit");
        return;
      }
      case 0x7E: {
        if (!pfx_.has66)
            bad("movd/movq requires 66");
        int w = pfx_.rexW ? 8 : 4;
        ModRm mod = parseModRm(cur_, pfx_);
        set(pfx_.rexW ? Mnemonic::MOVQ : Mnemonic::MOVD,
            {rmOperand(mod, w), Operand::makeReg(xmm(mod.reg))});
        return;
      }
      case 0xAF: {
        int w = gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::IMUL,
            {Operand::makeReg(gpr(w, mod.reg)), rmOperand(mod, w)});
        return;
      }
      case 0xB6:
      case 0xB7:
      case 0xBE:
      case 0xBF: {
        // With F3: 0F B8 is popcnt; BC/BD are tzcnt/lzcnt (handled below).
        int srcW = (opc & 1) ? 2 : 1;
        int dstW = gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        set(opc < 0xBE ? Mnemonic::MOVZX : Mnemonic::MOVSX,
            {Operand::makeReg(gpr(dstW, mod.reg)), rmOperand(mod, srcW)});
        return;
      }
      case 0xB8: {
        if (pfx_.mandatory != 0xF3)
            bad("0F B8 without F3 unsupported");
        int w = gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::POPCNT,
            {Operand::makeReg(gpr(w, mod.reg)), rmOperand(mod, w)});
        return;
      }
      case 0xBC:
      case 0xBD: {
        int w = gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        Mnemonic m;
        if (pfx_.mandatory == 0xF3)
            m = (opc == 0xBC) ? Mnemonic::TZCNT : Mnemonic::LZCNT;
        else
            m = (opc == 0xBC) ? Mnemonic::BSF : Mnemonic::BSR;
        set(m, {Operand::makeReg(gpr(w, mod.reg)), rmOperand(mod, w)});
        return;
      }
      case 0xC6: {
        ModRm mod = parseModRm(cur_, pfx_);
        Operand rm = rmVecOperand(mod, false);
        Operand imm = immOp(1);
        set(Mnemonic::SHUFPS, {Operand::makeReg(xmm(mod.reg)), rm, imm});
        return;
      }
      // 66-prefixed packed-integer ops.
      case 0xD4:
      case 0xDB:
      case 0xEB:
      case 0xEF:
      case 0xFA:
      case 0xFE: {
        if (!pfx_.has66)
            bad("packed-int op requires 66 prefix");
        ModRm mod = parseModRm(cur_, pfx_);
        Mnemonic m;
        switch (opc) {
          case 0xD4: m = Mnemonic::PADDQ; break;
          case 0xDB: m = Mnemonic::PAND; break;
          case 0xEB: m = Mnemonic::POR; break;
          case 0xEF: m = Mnemonic::PXOR; break;
          case 0xFA: m = Mnemonic::PSUBD; break;
          default: m = Mnemonic::PADDD; break;
        }
        set(m, {Operand::makeReg(xmm(mod.reg)), rmVecOperand(mod, false)});
        return;
      }
      default:
        bad("unsupported two-byte opcode");
    }
}

void
InstDecoder::decodeLegacy()
{
    std::uint8_t opc = cur_.next();

    if (opc == 0x0F) {
        decodeTwoByte();
        return;
    }

    // ALU block 0x00..0x3B.
    if (opc < 0x40 && (opc & 7) < 4) {
        Mnemonic m = aluByBase[opc >> 3];
        int dir = opc & 3;
        int w = (dir & 1) ? gprWidth(pfx_) : 1;
        ModRm mod = parseModRm(cur_, pfx_);
        Operand reg = Operand::makeReg(gpr(w, mod.reg));
        Operand rm = rmOperand(mod, w);
        if (dir < 2)
            set(m, {rm, reg});
        else
            set(m, {reg, rm});
        return;
    }

    if (opc >= 0x50 && opc <= 0x57) {
        int idx = (opc - 0x50) | (pfx_.rexB ? 8 : 0);
        set(Mnemonic::PUSH, {Operand::makeReg(gpr(8, idx))});
        return;
    }
    if (opc >= 0x58 && opc <= 0x5F) {
        int idx = (opc - 0x58) | (pfx_.rexB ? 8 : 0);
        set(Mnemonic::POP, {Operand::makeReg(gpr(8, idx))});
        return;
    }
    if (opc >= 0x70 && opc <= 0x7F) {
        Cond cc = static_cast<Cond>(opc - 0x70);
        set(Mnemonic::JCC, {immOp(1)}, cc);
        return;
    }
    if (opc >= 0xB0 && opc <= 0xB7) {
        int idx = (opc - 0xB0) | (pfx_.rexB ? 8 : 0);
        if (!pfx_.rexPresent && idx >= 4 && idx <= 7)
            bad("ah/ch/dh/bh not supported");
        set(Mnemonic::MOV, {Operand::makeReg(gpr(1, idx)), immOp(1)});
        return;
    }
    if (opc >= 0xB8 && opc <= 0xBF) {
        int idx = (opc - 0xB8) | (pfx_.rexB ? 8 : 0);
        int w = gprWidth(pfx_);
        int immW = (w == 2) ? 2 : (w == 8 ? 8 : 4);
        set(Mnemonic::MOV, {Operand::makeReg(gpr(w, idx)), immOp(immW)});
        return;
    }

    switch (opc) {
      case 0x68:
        set(Mnemonic::PUSH, {immOp(4)});
        return;
      case 0x6A:
        set(Mnemonic::PUSH, {immOp(1)});
        return;
      case 0x69:
      case 0x6B: {
        int w = gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        Operand rm = rmOperand(mod, w);
        Operand imm = (opc == 0x6B) ? immOp(1) : immOp(w == 2 ? 2 : 4);
        set(Mnemonic::IMUL, {Operand::makeReg(gpr(w, mod.reg)), rm, imm});
        return;
      }
      case 0x80:
      case 0x81:
      case 0x83: {
        int w = (opc == 0x80) ? 1 : gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        Mnemonic m = aluByBase[mod.reg & 7];
        Operand rm = rmOperand(mod, w);
        Operand imm;
        if (opc == 0x80 || opc == 0x83)
            imm = immOp(1);
        else
            imm = immOp(w == 2 ? 2 : 4);
        set(m, {rm, imm});
        return;
      }
      case 0x84:
      case 0x85: {
        int w = (opc == 0x84) ? 1 : gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::TEST,
            {rmOperand(mod, w), Operand::makeReg(gpr(w, mod.reg))});
        return;
      }
      case 0x86:
      case 0x87: {
        int w = (opc == 0x86) ? 1 : gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::XCHG,
            {rmOperand(mod, w), Operand::makeReg(gpr(w, mod.reg))});
        return;
      }
      case 0x88:
      case 0x89: {
        int w = (opc == 0x88) ? 1 : gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::MOV,
            {rmOperand(mod, w), Operand::makeReg(gpr(w, mod.reg))});
        return;
      }
      case 0x8A:
      case 0x8B: {
        int w = (opc == 0x8A) ? 1 : gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::MOV,
            {Operand::makeReg(gpr(w, mod.reg)), rmOperand(mod, w)});
        return;
      }
      case 0x8D: {
        int w = gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        if (!mod.rmIsMem)
            bad("lea requires a memory operand");
        Operand rm = rmOperand(mod, w);
        set(Mnemonic::LEA, {Operand::makeReg(gpr(w, mod.reg)), rm});
        return;
      }
      case 0x8F: {
        ModRm mod = parseModRm(cur_, pfx_);
        set(Mnemonic::POP, {rmOperand(mod, 8)});
        return;
      }
      case 0x90:
        set(Mnemonic::NOP, {});
        return;
      case 0xC0:
      case 0xC1:
      case 0xD0:
      case 0xD1:
      case 0xD2:
      case 0xD3: {
        int w = (opc & 1) ? gprWidth(pfx_) : 1;
        ModRm mod = parseModRm(cur_, pfx_);
        Mnemonic m;
        switch (mod.reg & 7) {
          case 0: m = Mnemonic::ROL; break;
          case 1: m = Mnemonic::ROR; break;
          case 4: m = Mnemonic::SHL; break;
          case 5: m = Mnemonic::SHR; break;
          case 7: m = Mnemonic::SAR; break;
          default: bad("unsupported shift group digit");
        }
        Operand amt;
        if (opc == 0xC0 || opc == 0xC1)
            amt = immOp(1);
        else if (opc == 0xD0 || opc == 0xD1)
            amt = Operand::makeImm(1, 1);
        else
            amt = Operand::makeReg(CL);
        set(m, {rmOperand(mod, w), amt});
        return;
      }
      case 0xC3:
        set(Mnemonic::RET, {});
        return;
      case 0xC6:
      case 0xC7: {
        int w = (opc == 0xC6) ? 1 : gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        Operand rm = rmOperand(mod, w);
        Operand imm = immOp(w == 1 ? 1 : (w == 2 ? 2 : 4));
        set(Mnemonic::MOV, {rm, imm});
        return;
      }
      case 0xE8:
        set(Mnemonic::CALL, {immOp(4)});
        return;
      case 0xE9:
        set(Mnemonic::JMP, {immOp(4)});
        return;
      case 0xEB:
        set(Mnemonic::JMP, {immOp(1)});
        return;
      case 0xF6:
      case 0xF7: {
        int w = (opc == 0xF6) ? 1 : gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        Operand rm = rmOperand(mod, w);
        switch (mod.reg & 7) {
          case 0:
            set(Mnemonic::TEST, {rm, immOp(w == 1 ? 1 : (w == 2 ? 2 : 4))});
            return;
          case 2: set(Mnemonic::NOT, {rm}); return;
          case 3: set(Mnemonic::NEG, {rm}); return;
          case 4: set(Mnemonic::MUL, {rm}); return;
          case 5: set(Mnemonic::IMUL, {rm}); return;
          case 6: set(Mnemonic::DIV, {rm}); return;
          case 7: set(Mnemonic::IDIV, {rm}); return;
          default: bad("unsupported F6/F7 group digit");
        }
      }
      case 0xFE:
      case 0xFF: {
        int w = (opc == 0xFE) ? 1 : gprWidth(pfx_);
        ModRm mod = parseModRm(cur_, pfx_);
        Operand rm = rmOperand(mod, w);
        switch (mod.reg & 7) {
          case 0: set(Mnemonic::INC, {rm}); return;
          case 1: set(Mnemonic::DEC, {rm}); return;
          case 6:
            if (opc == 0xFF) {
                rm.mem.width = 8;
                set(Mnemonic::PUSH, {rm});
                return;
            }
            bad("unsupported FE group digit");
          default:
            bad("unsupported FE/FF group digit");
        }
      }
      default:
        bad("unsupported opcode");
    }
}

DecodedInst
InstDecoder::run()
{
    parsePrefixes();
    if (pfx_.vex)
        decodeVex();
    else
        decodeLegacy();
    out_.length = static_cast<std::uint8_t>(cur_.offset());
    // A NOP decodes back to its own canonical length.
    if (out_.inst.mnem == Mnemonic::NOP)
        out_.inst.nopLen = out_.length;
    // Length-changing prefix: 66 operand-size prefix + 16-bit immediate.
    out_.lcp = pfx_.has66 && sawImm16_;
    return out_;
}

} // namespace

DecodedInst
decodeOne(const std::uint8_t *data, std::size_t size, std::size_t pos)
{
    InstDecoder dec(data, size, pos);
    return dec.run();
}

std::vector<DecodedInst>
decodeBlock(const std::vector<std::uint8_t> &bytes)
{
    std::vector<DecodedInst> out;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        DecodedInst d = decodeOne(bytes.data(), bytes.size(), pos);
        pos += d.length;
        out.push_back(std::move(d));
    }
    return out;
}

} // namespace facile::isa
