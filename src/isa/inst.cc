#include "isa/inst.h"

#include <array>

namespace facile::isa {

namespace {

const char *
rawName(Mnemonic m)
{
    using M = Mnemonic;
    switch (m) {
      case M::ADD: return "add";
      case M::SUB: return "sub";
      case M::ADC: return "adc";
      case M::SBB: return "sbb";
      case M::AND: return "and";
      case M::OR: return "or";
      case M::XOR: return "xor";
      case M::CMP: return "cmp";
      case M::TEST: return "test";
      case M::MOV: return "mov";
      case M::MOVZX: return "movzx";
      case M::MOVSX: return "movsx";
      case M::LEA: return "lea";
      case M::INC: return "inc";
      case M::DEC: return "dec";
      case M::NEG: return "neg";
      case M::NOT: return "not";
      case M::IMUL: return "imul";
      case M::MUL: return "mul";
      case M::DIV: return "div";
      case M::IDIV: return "idiv";
      case M::SHL: return "shl";
      case M::SHR: return "shr";
      case M::SAR: return "sar";
      case M::ROL: return "rol";
      case M::ROR: return "ror";
      case M::XCHG: return "xchg";
      case M::PUSH: return "push";
      case M::POP: return "pop";
      case M::BSWAP: return "bswap";
      case M::BSF: return "bsf";
      case M::BSR: return "bsr";
      case M::POPCNT: return "popcnt";
      case M::LZCNT: return "lzcnt";
      case M::TZCNT: return "tzcnt";
      case M::NOP: return "nop";
      case M::JCC: return "jcc";
      case M::JMP: return "jmp";
      case M::CALL: return "call";
      case M::RET: return "ret";
      case M::SETCC: return "setcc";
      case M::CMOVCC: return "cmovcc";
      case M::MOVAPS: return "movaps";
      case M::MOVUPS: return "movups";
      case M::MOVAPD: return "movapd";
      case M::MOVSS: return "movss";
      case M::MOVSD: return "movsd";
      case M::ADDPS: return "addps";
      case M::ADDPD: return "addpd";
      case M::ADDSS: return "addss";
      case M::ADDSD: return "addsd";
      case M::SUBPS: return "subps";
      case M::SUBPD: return "subpd";
      case M::SUBSD: return "subsd";
      case M::MULPS: return "mulps";
      case M::MULPD: return "mulpd";
      case M::MULSS: return "mulss";
      case M::MULSD: return "mulsd";
      case M::DIVPS: return "divps";
      case M::DIVPD: return "divpd";
      case M::DIVSS: return "divss";
      case M::DIVSD: return "divsd";
      case M::SQRTPS: return "sqrtps";
      case M::SQRTPD: return "sqrtpd";
      case M::SQRTSD: return "sqrtsd";
      case M::MINPS: return "minps";
      case M::MAXPS: return "maxps";
      case M::ANDPS: return "andps";
      case M::ORPS: return "orps";
      case M::XORPS: return "xorps";
      case M::PXOR: return "pxor";
      case M::PADDD: return "paddd";
      case M::PADDQ: return "paddq";
      case M::PSUBD: return "psubd";
      case M::PAND: return "pand";
      case M::POR: return "por";
      case M::PMULLD: return "pmulld";
      case M::PSLLD: return "pslld";
      case M::PSRLD: return "psrld";
      case M::SHUFPS: return "shufps";
      case M::PUNPCKLDQ: return "punpckldq";
      case M::CVTSI2SD: return "cvtsi2sd";
      case M::CVTTSD2SI: return "cvttsd2si";
      case M::MOVD: return "movd";
      case M::MOVQ: return "movq";
      case M::VMOVAPS: return "vmovaps";
      case M::VMOVUPS: return "vmovups";
      case M::VADDPS: return "vaddps";
      case M::VADDPD: return "vaddpd";
      case M::VADDSD: return "vaddsd";
      case M::VSUBPS: return "vsubps";
      case M::VMULPS: return "vmulps";
      case M::VMULPD: return "vmulpd";
      case M::VMULSD: return "vmulsd";
      case M::VDIVPS: return "vdivps";
      case M::VDIVSD: return "vdivsd";
      case M::VSQRTPD: return "vsqrtpd";
      case M::VANDPS: return "vandps";
      case M::VXORPS: return "vxorps";
      case M::VPXOR: return "vpxor";
      case M::VPADDD: return "vpaddd";
      case M::VPMULLD: return "vpmulld";
      case M::VFMADD231PS: return "vfmadd231ps";
      case M::VFMADD231PD: return "vfmadd231pd";
      case M::VFMADD231SD: return "vfmadd231sd";
      case M::kNumMnemonics: break;
    }
    return "<bad>";
}

} // namespace

std::string
condName(Cond c)
{
    static const std::array<const char *, 16> names = {
        "o", "no", "b", "nb", "e", "ne", "be", "nbe",
        "s", "ns", "p", "np", "l", "nl", "le", "nle"};
    if (c == Cond::None)
        return "";
    return names[static_cast<int>(c)];
}

std::string
mnemonicName(Mnemonic m)
{
    return rawName(m);
}

bool
Inst::isStore() const
{
    if (mnem == Mnemonic::PUSH || mnem == Mnemonic::CALL)
        return true;
    if (mnem == Mnemonic::CMP || mnem == Mnemonic::TEST)
        return false; // memory is only read
    if (ops.empty() || !ops[0].isMem())
        return false;
    // First operand is memory and the instruction writes its destination.
    switch (mnem) {
      case Mnemonic::LEA:
      case Mnemonic::JMP:
        return false;
      default:
        return true;
    }
}

bool
Inst::isLoad() const
{
    if (mnem == Mnemonic::POP || mnem == Mnemonic::RET)
        return true;
    if (mnem == Mnemonic::LEA)
        return false; // address computation only
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (!ops[i].isMem())
            continue;
        if (i == 0) {
            // Destination memory: read-modify-write ops also load.
            switch (mnem) {
              case Mnemonic::MOV:
              case Mnemonic::MOVAPS:
              case Mnemonic::MOVUPS:
              case Mnemonic::MOVAPD:
              case Mnemonic::MOVSS:
              case Mnemonic::MOVSD:
              case Mnemonic::VMOVAPS:
              case Mnemonic::VMOVUPS:
              case Mnemonic::MOVD:
              case Mnemonic::MOVQ:
              case Mnemonic::SETCC:
                return false; // pure store
              default:
                return true; // RMW or explicit read (cmp/test/...)
            }
        }
        return true; // source memory operand
    }
    return false;
}

int
Inst::operandWidth() const
{
    if (mnem == Mnemonic::RET)
        return 8;
    if (mnem == Mnemonic::PUSH || mnem == Mnemonic::POP)
        return 8;
    for (const auto &o : ops) {
        if (o.isReg())
            return o.reg.width();
        if (o.isMem())
            return o.mem.width;
    }
    return 0;
}

std::string
toString(const Inst &inst)
{
    std::string s;
    if (inst.mnem == Mnemonic::JCC)
        s = "j" + condName(inst.cc);
    else if (inst.mnem == Mnemonic::SETCC)
        s = "set" + condName(inst.cc);
    else if (inst.mnem == Mnemonic::CMOVCC)
        s = "cmov" + condName(inst.cc);
    else
        s = mnemonicName(inst.mnem);

    for (std::size_t i = 0; i < inst.ops.size(); ++i) {
        s += i == 0 ? " " : ", ";
        const Operand &o = inst.ops[i];
        switch (o.kind) {
          case Operand::Kind::Reg:
            s += regName(o.reg);
            break;
          case Operand::Kind::Mem: {
            static const char *widthPrefix[] = {
                "", "byte ptr ", "word ptr ", "", "dword ptr ",
                "", "", "", "qword ptr "};
            if (o.mem.width <= 8)
                s += widthPrefix[o.mem.width];
            else if (o.mem.width == 16)
                s += "xmmword ptr ";
            else
                s += "ymmword ptr ";
            s += "[" + regName(o.mem.base);
            if (o.mem.index.valid()) {
                s += "+" + regName(o.mem.index);
                if (o.mem.scale > 1)
                    s += "*" + std::to_string(o.mem.scale);
            }
            if (o.mem.disp != 0) {
                s += (o.mem.disp > 0 ? "+" : "") + std::to_string(o.mem.disp);
            }
            s += "]";
            break;
          }
          case Operand::Kind::Imm:
            s += std::to_string(o.imm);
            break;
          case Operand::Kind::None:
            break;
        }
    }
    return s;
}

} // namespace facile::isa
