#include "isa/asm_parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "isa/builder.h"

namespace facile::isa {

namespace {

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    std::size_t e = s.find_last_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    return s.substr(b, e - b + 1);
}

/** All register names to Reg. */
const std::map<std::string, Reg> &
regTable()
{
    static const std::map<std::string, Reg> table = [] {
        std::map<std::string, Reg> t;
        for (int i = 0; i < 16; ++i) {
            for (int w : {1, 2, 4, 8})
                t[regName(gpr(w, i))] = gpr(w, i);
            t["xmm" + std::to_string(i)] = xmm(i);
            t["ymm" + std::to_string(i)] = ymm(i);
        }
        return t;
    }();
    return table;
}

/** Mnemonic names (plain; condition-code forms handled separately). */
const std::map<std::string, Mnemonic> &
mnemonicTable()
{
    static const std::map<std::string, Mnemonic> table = [] {
        std::map<std::string, Mnemonic> t;
        for (int m = 0; m < static_cast<int>(Mnemonic::kNumMnemonics);
             ++m) {
            Mnemonic mn = static_cast<Mnemonic>(m);
            if (mn == Mnemonic::JCC || mn == Mnemonic::SETCC ||
                mn == Mnemonic::CMOVCC)
                continue;
            t[mnemonicName(mn)] = mn;
        }
        return t;
    }();
    return table;
}

/** Try to parse a condition-code suffixed mnemonic (j*, set*, cmov*). */
bool
parseCcMnemonic(const std::string &name, Mnemonic &mnem, Cond &cc)
{
    static const std::map<std::string, Cond> conds = {
        {"o", Cond::O},     {"no", Cond::NO},   {"b", Cond::B},
        {"c", Cond::B},     {"nae", Cond::B},   {"nb", Cond::NB},
        {"nc", Cond::NB},   {"ae", Cond::NB},   {"e", Cond::E},
        {"z", Cond::E},     {"ne", Cond::NE},   {"nz", Cond::NE},
        {"be", Cond::BE},   {"na", Cond::BE},   {"nbe", Cond::NBE},
        {"a", Cond::NBE},   {"s", Cond::S},     {"ns", Cond::NS},
        {"p", Cond::P},     {"np", Cond::NP},   {"l", Cond::L},
        {"nge", Cond::L},   {"nl", Cond::NL},   {"ge", Cond::NL},
        {"le", Cond::LE},   {"ng", Cond::LE},   {"nle", Cond::NLE},
        {"g", Cond::NLE},
    };
    auto match = [&](const std::string &prefix, Mnemonic m) {
        if (name.rfind(prefix, 0) != 0)
            return false;
        auto it = conds.find(name.substr(prefix.size()));
        if (it == conds.end())
            return false;
        mnem = m;
        cc = it->second;
        return true;
    };
    // "jmp" must not parse as j+mp.
    if (name != "jmp" && match("j", Mnemonic::JCC))
        return true;
    if (match("set", Mnemonic::SETCC))
        return true;
    if (match("cmov", Mnemonic::CMOVCC))
        return true;
    return false;
}

/** Parse a memory operand body (the text inside [ ]), plus width. */
Operand
parseMemOperand(const std::string &inside, int width)
{
    MemOp m;
    m.width = static_cast<std::uint8_t>(width);
    m.base = Reg{};
    m.index = Reg{};
    m.scale = 1;
    m.disp = 0;

    // Split on top-level '+' and '-' (keeping the sign for disp terms).
    std::vector<std::string> terms;
    std::string current;
    for (char c : inside) {
        if (c == '+' || c == '-') {
            if (!trim(current).empty())
                terms.push_back(trim(current));
            current = c == '-' ? "-" : "";
        } else {
            current += c;
        }
    }
    if (!trim(current).empty())
        terms.push_back(trim(current));

    for (const std::string &term : terms) {
        std::size_t star = term.find('*');
        if (star != std::string::npos) {
            std::string rname = trim(term.substr(0, star));
            std::string sname = trim(term.substr(star + 1));
            // Either reg*scale or scale*reg.
            auto rit = regTable().find(rname);
            if (rit != regTable().end()) {
                m.index = rit->second;
                m.scale = static_cast<std::uint8_t>(std::stoi(sname));
            } else {
                rit = regTable().find(sname);
                if (rit == regTable().end())
                    throw ParseError("bad scaled-index term: " + term);
                m.index = rit->second;
                m.scale = static_cast<std::uint8_t>(std::stoi(rname));
            }
            continue;
        }
        auto rit = regTable().find(term);
        if (rit != regTable().end()) {
            if (!m.base.valid())
                m.base = rit->second;
            else if (!m.index.valid())
                m.index = rit->second;
            else
                throw ParseError("too many registers in address: " + term);
            continue;
        }
        // Displacement (decimal or 0x hex, possibly negative).
        m.disp += static_cast<std::int32_t>(std::stoll(term, nullptr, 0));
    }
    if (!m.base.valid() && m.index.valid() && m.scale == 1) {
        m.base = m.index;
        m.index = Reg{};
    }
    return Operand::makeMem(m);
}

/** Parse one operand token. */
Operand
parseOperand(std::string tok, int &gprWidthHint)
{
    tok = trim(tok);
    int width = 0;
    struct WidthPrefix
    {
        const char *name;
        int width;
    };
    static const WidthPrefix prefixes[] = {
        {"byte ptr", 1},    {"word ptr", 2},   {"dword ptr", 4},
        {"qword ptr", 8},   {"xmmword ptr", 16}, {"ymmword ptr", 32},
    };
    for (const auto &p : prefixes) {
        if (tok.rfind(p.name, 0) == 0) {
            width = p.width;
            tok = trim(tok.substr(std::string(p.name).size()));
            break;
        }
    }

    if (!tok.empty() && tok.front() == '[') {
        if (tok.back() != ']')
            throw ParseError("unterminated memory operand: " + tok);
        if (width == 0)
            width = gprWidthHint ? gprWidthHint : 8;
        return parseMemOperand(tok.substr(1, tok.size() - 2), width);
    }

    auto rit = regTable().find(tok);
    if (rit != regTable().end()) {
        if (rit->second.isGpr())
            gprWidthHint = rit->second.width();
        return Operand::makeReg(rit->second);
    }

    // Immediate.
    try {
        std::int64_t v = std::stoll(tok, nullptr, 0);
        int immWidth;
        if (v >= -128 && v <= 127)
            immWidth = 1;
        else if (gprWidthHint == 2)
            immWidth = 2;
        else
            immWidth = 4;
        return Operand::makeImm(v, immWidth);
    } catch (const std::exception &) {
        throw ParseError("unrecognized operand: " + tok);
    }
}

} // namespace

Inst
parseInst(const std::string &rawLine)
{
    std::string line = rawLine;
    std::size_t comment = line.find(';');
    if (comment != std::string::npos)
        line = line.substr(0, comment);
    line = lower(trim(line));
    if (line.empty())
        throw ParseError("empty line");

    std::size_t space = line.find_first_of(" \t");
    std::string name = space == std::string::npos ? line
                                                  : line.substr(0, space);
    std::string rest =
        space == std::string::npos ? "" : trim(line.substr(space));

    // nopN: NOP with explicit encoded length.
    if (name.rfind("nop", 0) == 0 && name.size() > 3) {
        int len = std::stoi(name.substr(3));
        return nop(len);
    }

    Mnemonic mnem;
    Cond cc = Cond::None;
    auto it = mnemonicTable().find(name);
    if (it != mnemonicTable().end()) {
        mnem = it->second;
    } else if (!parseCcMnemonic(name, mnem, cc)) {
        throw ParseError("unknown mnemonic: " + name);
    }

    // Split operands on top-level commas (none appear inside [ ]).
    std::vector<Operand> ops;
    int widthHint = 0;
    if (!rest.empty()) {
        std::stringstream ss(rest);
        std::string tok;
        std::vector<std::string> toks;
        while (std::getline(ss, tok, ','))
            toks.push_back(tok);
        // First pass register tokens establish the width hint for
        // immediates and un-annotated memory operands.
        for (const auto &t : toks) {
            std::string tt = trim(t);
            auto rit = regTable().find(tt);
            if (rit != regTable().end() && rit->second.isGpr()) {
                widthHint = rit->second.width();
                break;
            }
        }
        for (const auto &t : toks)
            ops.push_back(parseOperand(t, widthHint));
    }

    Inst inst(mnem, cc, std::move(ops));

    // Instructions whose immediate is architecturally always imm8.
    switch (inst.mnem) {
      case Mnemonic::SHUFPS:
      case Mnemonic::PSLLD:
      case Mnemonic::PSRLD:
      case Mnemonic::SHL:
      case Mnemonic::SHR:
      case Mnemonic::SAR:
      case Mnemonic::ROL:
      case Mnemonic::ROR:
        if (!inst.ops.empty() && inst.ops.back().isImm())
            inst.ops.back().immWidth = 1;
        break;
      default:
        break;
    }
    return inst;
}

std::vector<Inst>
parseListing(const std::string &text)
{
    std::vector<Inst> insts;
    std::stringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) {
        std::size_t comment = line.find(';');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        if (trim(line).empty())
            continue;
        insts.push_back(parseInst(line));
    }
    return insts;
}

std::vector<std::uint8_t>
parseHex(const std::string &text)
{
    std::vector<std::uint8_t> bytes;
    int nibbles = 0;
    std::uint8_t current = 0;
    for (char c : text) {
        int v;
        if (c >= '0' && c <= '9')
            v = c - '0';
        else if (c >= 'a' && c <= 'f')
            v = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            v = c - 'A' + 10;
        else if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        else
            throw ParseError("bad hex character");
        current = static_cast<std::uint8_t>((current << 4) | v);
        if (++nibbles == 2) {
            bytes.push_back(current);
            nibbles = 0;
            current = 0;
        }
    }
    if (nibbles != 0)
        throw ParseError("odd number of hex digits");
    return bytes;
}

} // namespace facile::isa
