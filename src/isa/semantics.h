/**
 * @file
 * Architectural read/write semantics of the supported instructions.
 *
 * Dependence analysis (Facile's Precedence component, paper section 4.9)
 * and the reference simulator both need, per instruction, the set of
 * architectural values read and written. Values are tracked at the
 * granularity of register *families* plus two flag groups:
 *
 *   0..15   GPR families (rax..r15, any width)
 *   16..31  vector families (xmm/ymm 0..15)
 *   32      the carry flag (CF)
 *   33      the remaining status flags (SPAZO group)
 *
 * Flags are split because x86 instructions update them partially
 * (e.g. INC preserves CF); treating FLAGS as one value would create
 * spurious dependence cycles.
 *
 * Memory is not a value: per the modeling assumptions (paper section 3.3)
 * loads and stores are assumed not to alias, so no store-to-load edges
 * are created. Address registers of memory operands are read.
 */
#ifndef FACILE_ISA_SEMANTICS_H
#define FACILE_ISA_SEMANTICS_H

#include <cstdint>
#include <vector>

#include "isa/inst.h"

namespace facile::isa {

/** Abstract value ids. */
inline constexpr int kValCf = 32;
inline constexpr int kValFlags = 33; ///< SF/ZF/AF/PF/OF group
inline constexpr int kNumValues = 34;

/** Value id of a register family. */
inline int
valueOf(Reg r)
{
    return r.family();
}

/** Read/write sets of one instruction. */
struct RwSets
{
    std::vector<int> reads;
    std::vector<int> writes;

    /**
     * True for dependency-breaking idioms (xor r,r; sub r,r; pxor x,x; ...):
     * the destination write does not depend on any input.
     */
    bool depBreaking = false;
};

/** True if the instruction is a recognized zero/dependency-breaking idiom. */
bool isZeroIdiom(const Inst &inst);

/**
 * Compute the read and write sets of @p inst.
 *
 * Partial-width register writes (8/16-bit destinations) read the old
 * destination value (merge semantics). 32-bit writes zero the upper half
 * and count as full writes.
 */
RwSets instRw(const Inst &inst);

/**
 * As above, filling a caller-owned RwSets (cleared first). Lets hot
 * paths reuse the sets' vector capacity instead of allocating per call.
 */
void instRw(const Inst &inst, RwSets &out);

} // namespace facile::isa

#endif // FACILE_ISA_SEMANTICS_H
