/**
 * @file
 * Intel-syntax assembly text parser for the supported subset.
 *
 * Accepts the same notation toString() emits, e.g.:
 *
 *   add rax, rbx
 *   mov qword ptr [rbx+rcx*4+8], 5
 *   vfmadd231pd xmm0, xmm1, xmm2
 *   jne -2
 *   nop5                 ; NOP with an explicit 5-byte encoding
 *
 * Used by the facile_tool example to provide the command-line front end
 * the original facile.py offers.
 */
#ifndef FACILE_ISA_ASM_PARSER_H
#define FACILE_ISA_ASM_PARSER_H

#include <stdexcept>
#include <string>
#include <vector>

#include "isa/inst.h"

namespace facile::isa {

/** Thrown on malformed assembly text. */
class ParseError : public std::runtime_error
{
  public:
    explicit ParseError(const std::string &what)
        : std::runtime_error("parse: " + what)
    {}
};

/** Parse a single instruction line. Comments after ';' are ignored. */
Inst parseInst(const std::string &line);

/**
 * Parse a multi-line listing; empty lines and pure-comment lines are
 * skipped.
 */
std::vector<Inst> parseListing(const std::string &text);

/**
 * Parse a hex byte string ("48 01 d8 ..." or "4801d8...") into bytes.
 */
std::vector<std::uint8_t> parseHex(const std::string &text);

} // namespace facile::isa

#endif // FACILE_ISA_ASM_PARSER_H
