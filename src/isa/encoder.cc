#include "isa/encoder.h"

#include <cassert>

namespace facile::isa {

namespace {

/** Accumulates the byte encoding of one instruction. */
class Emitter
{
  public:
    explicit Emitter(std::vector<std::uint8_t> &out) : out_(out) {}

    void byte(std::uint8_t b) { out_.push_back(b); }

    void
    bytes(std::initializer_list<std::uint8_t> bs)
    {
        for (auto b : bs)
            out_.push_back(b);
    }

    void
    imm(std::int64_t v, int width)
    {
        for (int i = 0; i < width; ++i)
            out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

  private:
    std::vector<std::uint8_t> &out_;
};

/** Pending REX computation for legacy-encoded instructions. */
struct Rex
{
    bool w = false, r = false, x = false, b = false;
    bool force = false; ///< required for spl/bpl/sil/dil access

    bool needed() const { return w || r || x || b || force; }
    std::uint8_t
    value() const
    {
        return static_cast<std::uint8_t>(0x40 | (w << 3) | (r << 2) |
                                         (x << 1) | (b << 0));
    }
};

/** True if the register requires a REX prefix to be addressable. */
bool
needsRexPresence(Reg reg)
{
    // spl, bpl, sil, dil: encodings 4..7 in Gpr8 mean ah..bh without REX.
    return reg.cls == RegClass::Gpr8 && reg.idx >= 4 && reg.idx <= 7;
}

/** ModRM + SIB + displacement for a memory operand; sets REX X/B bits. */
void
emitMem(Emitter &e, const MemOp &m, int regField)
{
    if (!m.base.valid() || m.base.cls != RegClass::Gpr64)
        throw EncodeError("memory operand requires a 64-bit base register");
    if (m.index.valid() && m.index.idx == 4 && !(m.index.idx & 8))
        throw EncodeError("rsp cannot be an index register");

    const int baseLow = m.base.idx & 7;
    const bool needSib = m.index.valid() || baseLow == 4;

    int mod;
    if (m.disp == 0 && baseLow != 5) {
        mod = 0;
    } else if (m.disp >= -128 && m.disp <= 127) {
        mod = 1;
    } else {
        mod = 2;
    }

    if (needSib) {
        e.byte(static_cast<std::uint8_t>((mod << 6) | (regField << 3) | 4));
        int scaleBits;
        switch (m.scale) {
          case 1: scaleBits = 0; break;
          case 2: scaleBits = 1; break;
          case 4: scaleBits = 2; break;
          case 8: scaleBits = 3; break;
          default:
            throw EncodeError("bad scale");
        }
        const int indexLow = m.index.valid() ? (m.index.idx & 7) : 4;
        e.byte(static_cast<std::uint8_t>((scaleBits << 6) | (indexLow << 3) |
                                         baseLow));
    } else {
        e.byte(static_cast<std::uint8_t>((mod << 6) | (regField << 3) |
                                         baseLow));
    }

    if (mod == 1)
        e.imm(m.disp, 1);
    else if (mod == 2)
        e.imm(m.disp, 4);
}

/** ModRM for a register r/m operand. */
void
emitRegRm(Emitter &e, Reg rm, int regField)
{
    e.byte(static_cast<std::uint8_t>(0xC0 | (regField << 3) | (rm.idx & 7)));
}

/**
 * Encoder for one instruction. Collects prefix requirements, then emits
 * prefixes, opcode, ModRM/SIB, and immediates in canonical order.
 */
class InstEncoder
{
  public:
    InstEncoder(const Inst &inst, std::vector<std::uint8_t> &out)
        : inst_(inst), out_(out)
    {}

    int run();

  private:
    const Inst &inst_;
    std::vector<std::uint8_t> &out_;

    // -- helpers ---------------------------------------------------------

    [[noreturn]] void
    bad(const std::string &msg) const
    {
        throw EncodeError(mnemonicName(inst_.mnem) + ": " + msg);
    }

    const Operand &
    op(std::size_t i) const
    {
        if (i >= inst_.ops.size())
            bad("missing operand");
        return inst_.ops[i];
    }

    std::size_t nops() const { return inst_.ops.size(); }

    /**
     * Emit a legacy-encoded instruction:
     * [66] [F2/F3 mandatory] [REX] opcode... modrm(+sib+disp) [imm].
     *
     * @param mandatory 0, 0xF2, or 0xF3 mandatory prefix
     * @param opWidth operand width in bytes (for 66 prefix and REX.W);
     *                0 means neither applies
     * @param opcode opcode bytes (escape bytes included)
     * @param regField either a register operand (sets REX.R) or an
     *                 opcode-extension digit
     * @param rm the r/m operand (register or memory)
     * @param immOp optional immediate and its width
     */
    void
    legacy(int mandatory, int opWidth,
           std::initializer_list<std::uint8_t> opcode, Reg regReg,
           int regDigit, const Operand &rm, std::int64_t immVal = 0,
           int immWidth = 0)
    {
        Emitter e(out_);
        if (opWidth == 2)
            e.byte(0x66);
        if (mandatory)
            e.byte(static_cast<std::uint8_t>(mandatory));

        Rex rex;
        rex.w = (opWidth == 8);
        int regField;
        if (regReg.valid()) {
            rex.r = regReg.idx >= 8;
            rex.force |= needsRexPresence(regReg);
            regField = regReg.idx & 7;
        } else {
            regField = regDigit;
        }
        if (rm.isReg()) {
            rex.b = rm.reg.idx >= 8;
            rex.force |= needsRexPresence(rm.reg);
        } else if (rm.isMem()) {
            rex.b = rm.mem.base.valid() && rm.mem.base.idx >= 8;
            rex.x = rm.mem.index.valid() && rm.mem.index.idx >= 8;
        }
        if (rex.needed())
            e.byte(rex.value());

        for (auto b : opcode)
            e.byte(b);

        if (rm.isReg())
            emitRegRm(e, rm.reg, regField);
        else if (rm.isMem())
            emitMem(e, rm.mem, regField);
        else
            bad("r/m operand expected");

        if (immWidth)
            e.imm(immVal, immWidth);
    }

    /** Legacy instruction with no ModRM (opcode+reg forms, plain opcodes). */
    void
    plain(int opWidth, std::initializer_list<std::uint8_t> opcode,
          Reg plusReg = Reg{}, std::int64_t immVal = 0, int immWidth = 0)
    {
        Emitter e(out_);
        if (opWidth == 2)
            e.byte(0x66);
        Rex rex;
        rex.w = (opWidth == 8);
        if (plusReg.valid()) {
            rex.b = plusReg.idx >= 8;
            rex.force |= needsRexPresence(plusReg);
        }
        if (rex.needed())
            e.byte(rex.value());
        auto it = opcode.begin();
        auto last = opcode.end();
        --last;
        for (; it != last; ++it)
            e.byte(*it);
        if (plusReg.valid())
            e.byte(static_cast<std::uint8_t>(*last + (plusReg.idx & 7)));
        else
            e.byte(*last);
        if (immWidth)
            e.imm(immVal, immWidth);
    }

    /**
     * Emit a VEX-encoded instruction.
     *
     * @param pp implied prefix: 0=none, 1=66, 2=F3, 3=F2
     * @param map opcode map: 1=0F, 2=0F38, 3=0F3A
     * @param w VEX.W bit
     * @param l VEX.L bit (0 = 128-bit, 1 = 256-bit)
     * @param opcode single opcode byte
     * @param regReg ModRM.reg register
     * @param vvvv the VEX.vvvv register (invalid -> 0b1111 i.e. unused)
     * @param rm the r/m operand
     */
    void
    vex(int pp, int map, bool w, bool l, std::uint8_t opcode, Reg regReg,
        Reg vvvvReg, const Operand &rm, std::int64_t immVal = 0,
        int immWidth = 0)
    {
        Emitter e(out_);
        bool rBit = regReg.valid() && regReg.idx >= 8;
        bool xBit = false, bBit = false;
        if (rm.isReg()) {
            bBit = rm.reg.idx >= 8;
        } else if (rm.isMem()) {
            bBit = rm.mem.base.valid() && rm.mem.base.idx >= 8;
            xBit = rm.mem.index.valid() && rm.mem.index.idx >= 8;
        }
        int vvvv = vvvvReg.valid() ? vvvvReg.idx : 0xF;

        if (map == 1 && !w && !xBit && !bBit) {
            // 2-byte VEX.
            e.byte(0xC5);
            e.byte(static_cast<std::uint8_t>(((rBit ? 0 : 1) << 7) |
                                             ((~vvvv & 0xF) << 3) |
                                             ((l ? 1 : 0) << 2) | pp));
        } else {
            e.byte(0xC4);
            e.byte(static_cast<std::uint8_t>(((rBit ? 0 : 1) << 7) |
                                             ((xBit ? 0 : 1) << 6) |
                                             ((bBit ? 0 : 1) << 5) | map));
            e.byte(static_cast<std::uint8_t>(((w ? 1 : 0) << 7) |
                                             ((~vvvv & 0xF) << 3) |
                                             ((l ? 1 : 0) << 2) | pp));
        }
        e.byte(opcode);
        int regField = regReg.valid() ? (regReg.idx & 7) : 0;
        if (rm.isReg())
            emitRegRm(e, rm.reg, regField);
        else if (rm.isMem())
            emitMem(e, rm.mem, regField);
        else
            bad("r/m operand expected");
        if (immWidth)
            e.imm(immVal, immWidth);
    }

    // -- per-family encoders ---------------------------------------------

    void encodeAluFamily(std::uint8_t base, int digit);
    void encodeShift(int digit);
    void encodeSseArith(int pp, std::uint8_t opcode);
    void encodeSseMov(int pp, std::uint8_t loadOp, std::uint8_t storeOp);
    void encodeVexArith(int pp, int map, bool w, std::uint8_t opcode);
    void encodeNop();
};

void
InstEncoder::encodeAluFamily(std::uint8_t base, int digit)
{
    const Operand &dst = op(0);
    const Operand &src = op(1);
    int w = inst_.operandWidth();

    if (src.isImm()) {
        std::uint8_t opc;
        int immW;
        if (w == 1) {
            opc = 0x80;
            immW = 1;
        } else if (src.immWidth == 1) {
            opc = 0x83; // sign-extended imm8
            immW = 1;
        } else {
            opc = 0x81;
            immW = (w == 2) ? 2 : 4; // 16-bit form carries an LCP
        }
        legacy(0, w, {opc}, Reg{}, digit, dst, src.imm, immW);
    } else if (src.isReg() && (dst.isReg() || dst.isMem())) {
        // r/m, r form.
        legacy(0, w, {static_cast<std::uint8_t>(base + (w == 1 ? 0 : 1))},
               src.reg, 0, dst);
    } else if (dst.isReg() && src.isMem()) {
        legacy(0, w, {static_cast<std::uint8_t>(base + (w == 1 ? 2 : 3))},
               dst.reg, 0, src);
    } else {
        bad("unsupported operand combination");
    }
}

void
InstEncoder::encodeShift(int digit)
{
    const Operand &dst = op(0);
    const Operand &amt = op(1);
    int w = inst_.operandWidth();
    if (amt.isImm()) {
        legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0xC0 : 0xC1)}, Reg{},
               digit, dst, amt.imm, 1);
    } else if (amt.isReg() && amt.reg == CL) {
        legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0xD2 : 0xD3)}, Reg{},
               digit, dst);
    } else {
        bad("shift amount must be imm8 or cl");
    }
}

void
InstEncoder::encodeSseArith(int pp, std::uint8_t opcode)
{
    // (xmm, xmm/mem) form; pp: 0=none, 0x66, 0xF2, 0xF3 literal prefix byte.
    const Operand &dst = op(0);
    const Operand &src = op(1);
    if (!dst.isReg() || !dst.reg.isVec())
        bad("destination must be a vector register");
    if (dst.reg.cls == RegClass::Ymm)
        bad("ymm requires the VEX-encoded variant");
    legacy(pp, 0, {0x0F, opcode}, dst.reg, 0, src);
}

void
InstEncoder::encodeSseMov(int pp, std::uint8_t loadOp, std::uint8_t storeOp)
{
    const Operand &dst = op(0);
    const Operand &src = op(1);
    if (dst.isReg() && dst.reg.isVec()) {
        legacy(pp, 0, {0x0F, loadOp}, dst.reg, 0, src);
    } else if (dst.isMem() && src.isReg()) {
        legacy(pp, 0, {0x0F, storeOp}, src.reg, 0, dst);
    } else {
        bad("unsupported mov form");
    }
}

void
InstEncoder::encodeVexArith(int pp, int map, bool w, std::uint8_t opcode)
{
    // 3-operand form: dst, src1 (vvvv), src2 (r/m).
    const Operand &dst = op(0);
    const Operand &src1 = op(1);
    const Operand &src2 = op(2);
    if (!dst.isReg() || !src1.isReg())
        bad("vex arith needs register dst and src1");
    bool l = dst.reg.cls == RegClass::Ymm;
    vex(pp, map, w, l, opcode, dst.reg, src1.reg, src2);
}

void
InstEncoder::encodeNop()
{
    Emitter e(out_);
    int len = inst_.nopLen;
    if (len < 1 || len > 15)
        bad("nop length must be 1..15");
    switch (len) {
      case 1: e.bytes({0x90}); return;
      case 2: e.bytes({0x66, 0x90}); return;
      case 3: e.bytes({0x0F, 0x1F, 0x00}); return;
      case 4: e.bytes({0x0F, 0x1F, 0x40, 0x00}); return;
      case 5: e.bytes({0x0F, 0x1F, 0x44, 0x00, 0x00}); return;
      case 6: e.bytes({0x66, 0x0F, 0x1F, 0x44, 0x00, 0x00}); return;
      case 7: e.bytes({0x0F, 0x1F, 0x80, 0x00, 0x00, 0x00, 0x00}); return;
      case 8:
        e.bytes({0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00});
        return;
      default:
        // 9..15: 66-prefix padding on the 8-byte form.
        for (int i = 0; i < len - 8; ++i)
            e.byte(0x66);
        e.bytes({0x0F, 0x1F, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00});
        return;
    }
}

int
InstEncoder::run()
{
    const std::size_t start = out_.size();
    using M = Mnemonic;

    switch (inst_.mnem) {
      case M::ADD: encodeAluFamily(0x00, 0); break;
      case M::OR: encodeAluFamily(0x08, 1); break;
      case M::ADC: encodeAluFamily(0x10, 2); break;
      case M::SBB: encodeAluFamily(0x18, 3); break;
      case M::AND: encodeAluFamily(0x20, 4); break;
      case M::SUB: encodeAluFamily(0x28, 5); break;
      case M::XOR: encodeAluFamily(0x30, 6); break;
      case M::CMP: encodeAluFamily(0x38, 7); break;

      case M::TEST: {
        const Operand &dst = op(0);
        const Operand &src = op(1);
        int w = inst_.operandWidth();
        if (src.isImm()) {
            int immW = (w == 1) ? 1 : (w == 2 ? 2 : 4);
            legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0xF6 : 0xF7)},
                   Reg{}, 0, dst, src.imm, immW);
        } else {
            legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0x84 : 0x85)},
                   src.reg, 0, dst);
        }
        break;
      }

      case M::MOV: {
        const Operand &dst = op(0);
        const Operand &src = op(1);
        int w = inst_.operandWidth();
        if (src.isImm()) {
            if (dst.isReg()) {
                if (w == 1)
                    plain(0, {0xB0}, dst.reg, src.imm, 1);
                else if (w == 2)
                    plain(2, {0xB8}, dst.reg, src.imm, 2); // LCP form
                else if (w == 4)
                    plain(4, {0xB8}, dst.reg, src.imm, 4);
                else
                    legacy(0, 8, {0xC7}, Reg{}, 0, dst, src.imm, 4);
            } else {
                int immW = (w == 1) ? 1 : (w == 2 ? 2 : 4);
                legacy(0, w,
                       {static_cast<std::uint8_t>(w == 1 ? 0xC6 : 0xC7)},
                       Reg{}, 0, dst, src.imm, immW);
            }
        } else if (src.isReg() && (dst.isMem() || dst.isReg())) {
            legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0x88 : 0x89)},
                   src.reg, 0, dst);
        } else if (dst.isReg() && src.isMem()) {
            legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0x8A : 0x8B)},
                   dst.reg, 0, src);
        } else {
            bad("unsupported mov form");
        }
        break;
      }

      case M::MOVZX:
      case M::MOVSX: {
        const Operand &dst = op(0);
        const Operand &src = op(1);
        if (!dst.isReg())
            bad("movzx/movsx destination must be a register");
        int srcW = src.isReg() ? src.reg.width() : src.mem.width;
        int dstW = dst.reg.width();
        if (srcW != 1 && srcW != 2)
            bad("source width must be 1 or 2");
        if (dstW <= srcW)
            bad("destination must be wider than source");
        std::uint8_t opc = inst_.mnem == M::MOVZX
                               ? (srcW == 1 ? 0xB6 : 0xB7)
                               : (srcW == 1 ? 0xBE : 0xBF);
        legacy(0, dstW, {0x0F, opc}, dst.reg, 0, src);
        break;
      }

      case M::LEA: {
        const Operand &dst = op(0);
        const Operand &src = op(1);
        if (!dst.isReg() || !src.isMem())
            bad("lea requires reg, mem");
        legacy(0, dst.reg.width(), {0x8D}, dst.reg, 0, src);
        break;
      }

      case M::INC:
      case M::DEC: {
        int w = inst_.operandWidth();
        int digit = inst_.mnem == M::INC ? 0 : 1;
        legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0xFE : 0xFF)}, Reg{},
               digit, op(0));
        break;
      }

      case M::NOT:
      case M::NEG: {
        int w = inst_.operandWidth();
        int digit = inst_.mnem == M::NOT ? 2 : 3;
        legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0xF6 : 0xF7)}, Reg{},
               digit, op(0));
        break;
      }

      case M::IMUL: {
        if (nops() == 1) {
            int w = inst_.operandWidth();
            legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0xF6 : 0xF7)},
                   Reg{}, 5, op(0));
        } else if (nops() == 2) {
            legacy(0, op(0).reg.width(), {0x0F, 0xAF}, op(0).reg, 0, op(1));
        } else {
            const Operand &imm = op(2);
            int w = op(0).reg.width();
            if (imm.immWidth == 1)
                legacy(0, w, {0x6B}, op(0).reg, 0, op(1), imm.imm, 1);
            else
                legacy(0, w, {0x69}, op(0).reg, 0, op(1), imm.imm,
                       w == 2 ? 2 : 4);
        }
        break;
      }

      case M::MUL:
      case M::DIV:
      case M::IDIV: {
        int w = inst_.operandWidth();
        int digit = inst_.mnem == M::MUL ? 4 : (inst_.mnem == M::DIV ? 6 : 7);
        legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0xF6 : 0xF7)}, Reg{},
               digit, op(0));
        break;
      }

      case M::ROL: encodeShift(0); break;
      case M::ROR: encodeShift(1); break;
      case M::SHL: encodeShift(4); break;
      case M::SHR: encodeShift(5); break;
      case M::SAR: encodeShift(7); break;

      case M::XCHG: {
        int w = inst_.operandWidth();
        const Operand &a = op(0);
        const Operand &b = op(1);
        if (b.isReg())
            legacy(0, w, {static_cast<std::uint8_t>(w == 1 ? 0x86 : 0x87)},
                   b.reg, 0, a);
        else
            bad("xchg second operand must be a register");
        break;
      }

      case M::PUSH: {
        const Operand &o = op(0);
        if (o.isReg())
            plain(0, {0x50}, o.reg);
        else if (o.isImm())
            plain(0, {0x68}, Reg{}, o.imm, 4);
        else
            legacy(0, 0, {0xFF}, Reg{}, 6, o);
        break;
      }

      case M::POP: {
        const Operand &o = op(0);
        if (o.isReg())
            plain(0, {0x58}, o.reg);
        else
            legacy(0, 0, {0x8F}, Reg{}, 0, o);
        break;
      }

      case M::BSWAP:
        plain(op(0).reg.width(), {0x0F, 0xC8}, op(0).reg);
        break;

      case M::BSF:
        legacy(0, op(0).reg.width(), {0x0F, 0xBC}, op(0).reg, 0, op(1));
        break;
      case M::BSR:
        legacy(0, op(0).reg.width(), {0x0F, 0xBD}, op(0).reg, 0, op(1));
        break;
      case M::POPCNT:
        legacy(0xF3, op(0).reg.width(), {0x0F, 0xB8}, op(0).reg, 0, op(1));
        break;
      case M::LZCNT:
        legacy(0xF3, op(0).reg.width(), {0x0F, 0xBD}, op(0).reg, 0, op(1));
        break;
      case M::TZCNT:
        legacy(0xF3, op(0).reg.width(), {0x0F, 0xBC}, op(0).reg, 0, op(1));
        break;

      case M::NOP: encodeNop(); break;

      case M::JCC: {
        std::int64_t rel = nops() >= 1 && op(0).isImm() ? op(0).imm : 0;
        if (rel >= -128 && rel <= 127) {
            plain(0, {static_cast<std::uint8_t>(0x70 +
                                                static_cast<int>(inst_.cc))},
                  Reg{}, rel, 1);
        } else {
            plain(0, {0x0F, static_cast<std::uint8_t>(
                                0x80 + static_cast<int>(inst_.cc))},
                  Reg{}, rel, 4);
        }
        break;
      }

      case M::JMP: {
        std::int64_t rel = nops() >= 1 && op(0).isImm() ? op(0).imm : 0;
        if (rel >= -128 && rel <= 127)
            plain(0, {0xEB}, Reg{}, rel, 1);
        else
            plain(0, {0xE9}, Reg{}, rel, 4);
        break;
      }

      case M::CALL: {
        std::int64_t rel = nops() >= 1 && op(0).isImm() ? op(0).imm : 0;
        plain(0, {0xE8}, Reg{}, rel, 4);
        break;
      }

      case M::RET: plain(0, {0xC3}); break;

      case M::SETCC:
        legacy(0, 1,
               {0x0F,
                static_cast<std::uint8_t>(0x90 + static_cast<int>(inst_.cc))},
               Reg{}, 0, op(0));
        break;

      case M::CMOVCC:
        legacy(0, op(0).reg.width(),
               {0x0F,
                static_cast<std::uint8_t>(0x40 + static_cast<int>(inst_.cc))},
               op(0).reg, 0, op(1));
        break;

      // ---- SSE ----
      case M::MOVAPS: encodeSseMov(0, 0x28, 0x29); break;
      case M::MOVUPS: encodeSseMov(0, 0x10, 0x11); break;
      case M::MOVAPD: encodeSseMov(0x66, 0x28, 0x29); break;
      case M::MOVSS: encodeSseMov(0xF3, 0x10, 0x11); break;
      case M::MOVSD: encodeSseMov(0xF2, 0x10, 0x11); break;

      case M::ADDPS: encodeSseArith(0, 0x58); break;
      case M::ADDPD: encodeSseArith(0x66, 0x58); break;
      case M::ADDSS: encodeSseArith(0xF3, 0x58); break;
      case M::ADDSD: encodeSseArith(0xF2, 0x58); break;
      case M::SUBPS: encodeSseArith(0, 0x5C); break;
      case M::SUBPD: encodeSseArith(0x66, 0x5C); break;
      case M::SUBSD: encodeSseArith(0xF2, 0x5C); break;
      case M::MULPS: encodeSseArith(0, 0x59); break;
      case M::MULPD: encodeSseArith(0x66, 0x59); break;
      case M::MULSS: encodeSseArith(0xF3, 0x59); break;
      case M::MULSD: encodeSseArith(0xF2, 0x59); break;
      case M::DIVPS: encodeSseArith(0, 0x5E); break;
      case M::DIVPD: encodeSseArith(0x66, 0x5E); break;
      case M::DIVSS: encodeSseArith(0xF3, 0x5E); break;
      case M::DIVSD: encodeSseArith(0xF2, 0x5E); break;
      case M::SQRTPS: encodeSseArith(0, 0x51); break;
      case M::SQRTPD: encodeSseArith(0x66, 0x51); break;
      case M::SQRTSD: encodeSseArith(0xF2, 0x51); break;
      case M::MINPS: encodeSseArith(0, 0x5D); break;
      case M::MAXPS: encodeSseArith(0, 0x5F); break;
      case M::ANDPS: encodeSseArith(0, 0x54); break;
      case M::ORPS: encodeSseArith(0, 0x56); break;
      case M::XORPS: encodeSseArith(0, 0x57); break;

      case M::PXOR: encodeSseArith(0x66, 0xEF); break;
      case M::PADDD: encodeSseArith(0x66, 0xFE); break;
      case M::PADDQ: encodeSseArith(0x66, 0xD4); break;
      case M::PSUBD: encodeSseArith(0x66, 0xFA); break;
      case M::PAND: encodeSseArith(0x66, 0xDB); break;
      case M::POR: encodeSseArith(0x66, 0xEB); break;
      case M::PUNPCKLDQ: encodeSseArith(0x66, 0x62); break;

      case M::PMULLD:
        legacy(0x66, 0, {0x0F, 0x38, 0x40}, op(0).reg, 0, op(1));
        break;

      case M::PSLLD:
      case M::PSRLD: {
        int digit = inst_.mnem == M::PSLLD ? 6 : 2;
        legacy(0x66, 0, {0x0F, 0x72}, Reg{}, digit, op(0), op(1).imm, 1);
        break;
      }

      case M::SHUFPS:
        legacy(0, 0, {0x0F, 0xC6}, op(0).reg, 0, op(1), op(2).imm, 1);
        break;

      case M::CVTSI2SD: {
        int srcW = op(1).isReg() ? op(1).reg.width() : op(1).mem.width;
        legacy(0xF2, srcW == 8 ? 8 : 0, {0x0F, 0x2A}, op(0).reg, 0, op(1));
        break;
      }
      case M::CVTTSD2SI:
        legacy(0xF2, op(0).reg.width() == 8 ? 8 : 0, {0x0F, 0x2C}, op(0).reg,
               0, op(1));
        break;

      case M::MOVD: {
        const Operand &dst = op(0);
        if (dst.isReg() && dst.reg.isVec())
            legacy(0x66, 0, {0x0F, 0x6E}, dst.reg, 0, op(1));
        else
            legacy(0x66, 0, {0x0F, 0x7E}, op(1).reg, 0, dst);
        break;
      }
      case M::MOVQ: {
        const Operand &dst = op(0);
        if (dst.isReg() && dst.reg.isVec())
            legacy(0x66, 8, {0x0F, 0x6E}, dst.reg, 0, op(1));
        else
            legacy(0x66, 8, {0x0F, 0x7E}, op(1).reg, 0, dst);
        break;
      }

      // ---- AVX / VEX ----
      case M::VMOVAPS: {
        const Operand &dst = op(0);
        const Operand &src = op(1);
        if (dst.isReg() && dst.reg.isVec())
            vex(0, 1, false, dst.reg.cls == RegClass::Ymm, 0x28, dst.reg,
                Reg{}, src);
        else
            vex(0, 1, false, src.reg.cls == RegClass::Ymm, 0x29, src.reg,
                Reg{}, dst);
        break;
      }
      case M::VMOVUPS: {
        const Operand &dst = op(0);
        const Operand &src = op(1);
        if (dst.isReg() && dst.reg.isVec())
            vex(0, 1, false, dst.reg.cls == RegClass::Ymm, 0x10, dst.reg,
                Reg{}, src);
        else
            vex(0, 1, false, src.reg.cls == RegClass::Ymm, 0x11, src.reg,
                Reg{}, dst);
        break;
      }

      case M::VADDPS: encodeVexArith(0, 1, false, 0x58); break;
      case M::VADDPD: encodeVexArith(1, 1, false, 0x58); break;
      case M::VADDSD: encodeVexArith(3, 1, false, 0x58); break;
      case M::VSUBPS: encodeVexArith(0, 1, false, 0x5C); break;
      case M::VMULPS: encodeVexArith(0, 1, false, 0x59); break;
      case M::VMULPD: encodeVexArith(1, 1, false, 0x59); break;
      case M::VMULSD: encodeVexArith(3, 1, false, 0x59); break;
      case M::VDIVPS: encodeVexArith(0, 1, false, 0x5E); break;
      case M::VDIVSD: encodeVexArith(3, 1, false, 0x5E); break;
      case M::VANDPS: encodeVexArith(0, 1, false, 0x54); break;
      case M::VXORPS: encodeVexArith(0, 1, false, 0x57); break;
      case M::VPXOR: encodeVexArith(1, 1, false, 0xEF); break;
      case M::VPADDD: encodeVexArith(1, 1, false, 0xFE); break;
      case M::VPMULLD: encodeVexArith(1, 2, false, 0x40); break;
      case M::VFMADD231PS: encodeVexArith(1, 2, false, 0xB8); break;
      case M::VFMADD231PD: encodeVexArith(1, 2, true, 0xB8); break;
      case M::VFMADD231SD: encodeVexArith(1, 2, true, 0xB9); break;

      case M::VSQRTPD: {
        const Operand &dst = op(0);
        vex(1, 1, false, dst.reg.cls == RegClass::Ymm, 0x51, dst.reg, Reg{},
            op(1));
        break;
      }

      case M::kNumMnemonics:
        bad("invalid mnemonic");
    }

    const int len = static_cast<int>(out_.size() - start);
    if (len == 0 || len > 15)
        throw EncodeError("encoded length out of range");
    return len;
}

} // namespace

int
encode(const Inst &inst, std::vector<std::uint8_t> &out)
{
    InstEncoder enc(inst, out);
    return enc.run();
}

std::vector<std::uint8_t>
encode(const Inst &inst)
{
    std::vector<std::uint8_t> out;
    encode(inst, out);
    return out;
}

std::vector<std::uint8_t>
encodeBlock(const std::vector<Inst> &insts)
{
    std::vector<std::uint8_t> out;
    for (const auto &inst : insts)
        encode(inst, out);
    return out;
}

} // namespace facile::isa
