/**
 * @file
 * x86-64 instruction decoder (XED substitute).
 *
 * Decodes machine code back into Inst structures and reports the
 * byte-layout facts Facile's predecoder model needs: total length,
 * the position of the nominal opcode (first non-prefix byte), and
 * whether the instruction carries a length-changing prefix (LCP),
 * i.e. a 0x66 operand-size prefix combined with a 16-bit immediate.
 *
 * The decoder is written independently of the encoder (table/switch
 * driven from the opcode maps); decode(encode(i)) == i is enforced by
 * property tests.
 */
#ifndef FACILE_ISA_DECODER_H
#define FACILE_ISA_DECODER_H

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "isa/inst.h"

namespace facile::isa {

/** Thrown on malformed or unsupported byte sequences. */
class DecodeError : public std::runtime_error
{
  public:
    explicit DecodeError(const std::string &what)
        : std::runtime_error("decode: " + what)
    {}
};

/** One decoded instruction plus its byte-layout facts. */
struct DecodedInst
{
    Inst inst;
    std::uint8_t length = 0;       ///< total encoded length in bytes
    std::uint8_t opcodeOffset = 0; ///< offset of the nominal opcode byte
    bool lcp = false;              ///< has a length-changing prefix
};

/**
 * Decode a single instruction starting at data[pos].
 * @throws DecodeError on malformed input.
 */
DecodedInst decodeOne(const std::uint8_t *data, std::size_t size,
                      std::size_t pos = 0);

/** Decode a whole byte buffer into consecutive instructions. */
std::vector<DecodedInst> decodeBlock(const std::vector<std::uint8_t> &bytes);

} // namespace facile::isa

#endif // FACILE_ISA_DECODER_H
