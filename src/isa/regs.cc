#include "isa/regs.h"

#include <stdexcept>

namespace facile::isa {

int
Reg::width() const
{
    switch (cls) {
      case RegClass::Gpr8:
        return 1;
      case RegClass::Gpr16:
        return 2;
      case RegClass::Gpr32:
        return 4;
      case RegClass::Gpr64:
        return 8;
      case RegClass::Xmm:
        return 16;
      case RegClass::Ymm:
        return 32;
      case RegClass::None:
        return 0;
    }
    return 0;
}

int
Reg::family() const
{
    if (isGpr())
        return idx;
    if (isVec())
        return 16 + idx;
    return -1;
}

RegClass
gprClass(int width_bytes)
{
    switch (width_bytes) {
      case 1:
        return RegClass::Gpr8;
      case 2:
        return RegClass::Gpr16;
      case 4:
        return RegClass::Gpr32;
      case 8:
        return RegClass::Gpr64;
      default:
        throw std::invalid_argument("gprClass: bad width");
    }
}

Reg
gpr(int width_bytes, int idx)
{
    return Reg{gprClass(width_bytes), static_cast<std::uint8_t>(idx)};
}

Reg
xmm(int idx)
{
    return Reg{RegClass::Xmm, static_cast<std::uint8_t>(idx)};
}

Reg
ymm(int idx)
{
    return Reg{RegClass::Ymm, static_cast<std::uint8_t>(idx)};
}

namespace {

const char *gpr64Names[16] = {"rax", "rcx", "rdx", "rbx", "rsp", "rbp",
                              "rsi", "rdi", "r8",  "r9",  "r10", "r11",
                              "r12", "r13", "r14", "r15"};
const char *gpr32Names[16] = {"eax",  "ecx",  "edx",  "ebx", "esp", "ebp",
                              "esi",  "edi",  "r8d",  "r9d", "r10d", "r11d",
                              "r12d", "r13d", "r14d", "r15d"};
const char *gpr16Names[16] = {"ax",   "cx",   "dx",   "bx",  "sp",  "bp",
                              "si",   "di",   "r8w",  "r9w", "r10w", "r11w",
                              "r12w", "r13w", "r14w", "r15w"};
const char *gpr8Names[16] = {"al",   "cl",   "dl",   "bl",  "spl", "bpl",
                             "sil",  "dil",  "r8b",  "r9b", "r10b", "r11b",
                             "r12b", "r13b", "r14b", "r15b"};

} // namespace

std::string
regName(Reg r)
{
    switch (r.cls) {
      case RegClass::Gpr64:
        return gpr64Names[r.idx];
      case RegClass::Gpr32:
        return gpr32Names[r.idx];
      case RegClass::Gpr16:
        return gpr16Names[r.idx];
      case RegClass::Gpr8:
        return gpr8Names[r.idx];
      case RegClass::Xmm:
        return "xmm" + std::to_string(r.idx);
      case RegClass::Ymm:
        return "ymm" + std::to_string(r.idx);
      case RegClass::None:
        return "<none>";
    }
    return "<bad>";
}

} // namespace facile::isa
