#include "isa/semantics.h"

#include <algorithm>

namespace facile::isa {

namespace {

/** Flag values read by a condition code. */
void
condReads(Cond cc, std::vector<int> &reads)
{
    switch (cc) {
      case Cond::B:
      case Cond::NB:
        reads.push_back(kValCf);
        break;
      case Cond::BE:
      case Cond::NBE:
        reads.push_back(kValCf);
        reads.push_back(kValFlags);
        break;
      default:
        reads.push_back(kValFlags);
        break;
    }
}

/** Collector with convenience helpers; fills a caller-owned RwSets. */
struct Collector
{
    RwSets &rw;

    void
    read(Reg r)
    {
        if (r.valid())
            rw.reads.push_back(valueOf(r));
    }

    void readVal(int v) { rw.reads.push_back(v); }

    void
    write(Reg r)
    {
        if (r.valid())
            rw.writes.push_back(valueOf(r));
    }

    void writeVal(int v) { rw.writes.push_back(v); }

    void
    writeFlagsAll()
    {
        writeVal(kValCf);
        writeVal(kValFlags);
    }

    /** Read the address registers of memory operands. */
    void
    readAddrs(const Inst &inst)
    {
        for (const auto &o : inst.ops) {
            if (o.isMem()) {
                read(o.mem.base);
                read(o.mem.index);
            }
        }
    }

    /**
     * Write the destination register; partial (8/16-bit) writes merge
     * with, and therefore read, the old value.
     */
    void
    writeDst(Reg r)
    {
        if (!r.valid())
            return;
        if (r.width() <= 2)
            rw.reads.push_back(valueOf(r));
        rw.writes.push_back(valueOf(r));
    }

    void
    finish()
    {
        auto dedup = [](std::vector<int> &v) {
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
        };
        dedup(rw.reads);
        dedup(rw.writes);
    }
};

bool
sameRegOps(const Inst &inst, std::size_t a, std::size_t b)
{
    return inst.ops.size() > std::max(a, b) && inst.ops[a].isReg() &&
           inst.ops[b].isReg() && inst.ops[a].reg == inst.ops[b].reg;
}

} // namespace

bool
isZeroIdiom(const Inst &inst)
{
    using M = Mnemonic;
    switch (inst.mnem) {
      case M::XOR:
      case M::SUB:
        // 8/16-bit forms still merge the upper bits, so only wider forms
        // break dependencies.
        return sameRegOps(inst, 0, 1) && inst.ops[0].reg.width() >= 4;
      case M::PXOR:
      case M::XORPS:
        return sameRegOps(inst, 0, 1);
      case M::VPXOR:
      case M::VXORPS:
        return sameRegOps(inst, 1, 2);
      default:
        return false;
    }
}

void
instRw(const Inst &inst, RwSets &out)
{
    using M = Mnemonic;
    out.reads.clear();
    out.writes.clear();
    out.depBreaking = false;
    Collector c{out};

    auto regOf = [&](std::size_t i) -> Reg {
        return i < inst.ops.size() && inst.ops[i].isReg() ? inst.ops[i].reg
                                                          : Reg{};
    };
    auto readOp = [&](std::size_t i) {
        if (i < inst.ops.size() && inst.ops[i].isReg())
            c.read(inst.ops[i].reg);
    };

    if (isZeroIdiom(inst)) {
        c.rw.depBreaking = true;
        c.write(regOf(0) .valid() ? regOf(0) : regOf(1));
        switch (inst.mnem) {
          case M::XOR:
          case M::SUB:
            c.writeFlagsAll();
            break;
          default:
            break;
        }
        c.finish();
        return;
    }

    c.readAddrs(inst);

    switch (inst.mnem) {
      case M::ADD:
      case M::SUB:
      case M::AND:
      case M::OR:
      case M::XOR:
        readOp(0); // RMW destination
        readOp(1);
        c.writeDst(regOf(0));
        c.writeFlagsAll();
        break;

      case M::ADC:
      case M::SBB:
        readOp(0);
        readOp(1);
        c.readVal(kValCf);
        c.writeDst(regOf(0));
        c.writeFlagsAll();
        break;

      case M::CMP:
      case M::TEST:
        readOp(0);
        readOp(1);
        c.writeFlagsAll();
        break;

      case M::MOV:
        readOp(1);
        c.writeDst(regOf(0));
        break;

      case M::MOVZX:
      case M::MOVSX:
        readOp(1);
        c.writeDst(regOf(0));
        break;

      case M::LEA:
        // Address registers already read by readAddrs().
        c.writeDst(regOf(0));
        break;

      case M::INC:
      case M::DEC:
        readOp(0);
        c.writeDst(regOf(0));
        c.writeVal(kValFlags); // CF preserved
        break;

      case M::NEG:
        readOp(0);
        c.writeDst(regOf(0));
        c.writeFlagsAll();
        break;

      case M::NOT:
        readOp(0);
        c.writeDst(regOf(0));
        break;

      case M::IMUL:
        if (inst.ops.size() == 1) {
            readOp(0);
            c.readVal(0);  // rax
            c.writeVal(0); // rax
            c.writeVal(2); // rdx
            c.writeFlagsAll();
        } else {
            if (inst.ops.size() == 2)
                readOp(0);
            readOp(1);
            c.writeDst(regOf(0));
            c.writeFlagsAll();
        }
        break;

      case M::MUL:
        readOp(0);
        c.readVal(0);
        c.writeVal(0);
        c.writeVal(2);
        c.writeFlagsAll();
        break;

      case M::DIV:
      case M::IDIV:
        readOp(0);
        c.readVal(0);
        c.readVal(2);
        c.writeVal(0);
        c.writeVal(2);
        c.writeFlagsAll();
        break;

      case M::SHL:
      case M::SHR:
      case M::SAR:
      case M::ROL:
      case M::ROR:
        readOp(0);
        readOp(1); // CL if register form
        c.writeDst(regOf(0));
        c.writeFlagsAll();
        break;

      case M::XCHG:
        readOp(0);
        readOp(1);
        c.writeDst(regOf(0));
        c.writeDst(regOf(1));
        break;

      case M::PUSH:
        readOp(0);
        c.readVal(4); // rsp
        c.writeVal(4);
        break;

      case M::POP:
        c.readVal(4);
        c.writeVal(4);
        c.writeDst(regOf(0));
        break;

      case M::CALL:
      case M::RET:
        c.readVal(4);
        c.writeVal(4);
        break;

      case M::BSWAP:
        readOp(0);
        c.writeDst(regOf(0));
        break;

      case M::BSF:
      case M::BSR:
      case M::POPCNT:
      case M::LZCNT:
      case M::TZCNT:
        readOp(1);
        c.writeDst(regOf(0));
        c.writeFlagsAll();
        break;

      case M::NOP:
        break;

      case M::JCC:
        condReads(inst.cc, c.rw.reads);
        break;

      case M::JMP:
        break;

      case M::SETCC:
        condReads(inst.cc, c.rw.reads);
        c.writeDst(regOf(0));
        break;

      case M::CMOVCC:
        condReads(inst.cc, c.rw.reads);
        readOp(0); // may keep old value
        readOp(1);
        c.writeDst(regOf(0));
        break;

      // ---- SSE two-operand (dst is also a source) ----
      case M::ADDPS: case M::ADDPD: case M::ADDSS: case M::ADDSD:
      case M::SUBPS: case M::SUBPD: case M::SUBSD:
      case M::MULPS: case M::MULPD: case M::MULSS: case M::MULSD:
      case M::DIVPS: case M::DIVPD: case M::DIVSS: case M::DIVSD:
      case M::MINPS: case M::MAXPS:
      case M::ANDPS: case M::ORPS: case M::XORPS:
      case M::PXOR: case M::PADDD: case M::PADDQ: case M::PSUBD:
      case M::PAND: case M::POR: case M::PMULLD:
      case M::SHUFPS: case M::PUNPCKLDQ:
        readOp(0);
        readOp(1);
        c.write(regOf(0));
        break;

      case M::SQRTPS:
      case M::SQRTPD:
        readOp(1);
        c.write(regOf(0));
        break;

      case M::SQRTSD:
        // Scalar sqrt merges the upper lanes of dst.
        readOp(0);
        readOp(1);
        c.write(regOf(0));
        break;

      case M::PSLLD:
      case M::PSRLD:
        readOp(0);
        c.write(regOf(0));
        break;

      case M::MOVAPS:
      case M::MOVUPS:
      case M::MOVAPD:
        readOp(1);
        c.write(regOf(0));
        break;

      case M::MOVSS:
      case M::MOVSD:
        // Reg-reg form merges into dst; load form replaces low lane and
        // zeroes the rest.
        if (inst.ops.size() == 2 && inst.ops[0].isReg() &&
            inst.ops[1].isReg())
            readOp(0);
        readOp(1);
        c.write(regOf(0));
        break;

      case M::CVTSI2SD:
        readOp(0); // merges upper lanes
        readOp(1);
        c.write(regOf(0));
        break;

      case M::CVTTSD2SI:
        readOp(1);
        c.writeDst(regOf(0));
        break;

      case M::MOVD:
      case M::MOVQ:
        readOp(1);
        c.write(regOf(0));
        break;

      // ---- AVX ----
      case M::VMOVAPS:
      case M::VMOVUPS:
        readOp(1);
        c.write(regOf(0));
        break;

      case M::VSQRTPD:
        readOp(1);
        c.write(regOf(0));
        break;

      case M::VADDPS: case M::VADDPD: case M::VADDSD:
      case M::VSUBPS:
      case M::VMULPS: case M::VMULPD: case M::VMULSD:
      case M::VDIVPS: case M::VDIVSD:
      case M::VANDPS: case M::VXORPS:
      case M::VPXOR: case M::VPADDD: case M::VPMULLD:
        readOp(1);
        readOp(2);
        c.write(regOf(0));
        break;

      case M::VFMADD231PS:
      case M::VFMADD231PD:
      case M::VFMADD231SD:
        readOp(0); // accumulator
        readOp(1);
        readOp(2);
        c.write(regOf(0));
        break;

      case M::kNumMnemonics:
        break;
    }

    c.finish();
}

RwSets
instRw(const Inst &inst)
{
    RwSets rw;
    instRw(inst, rw);
    return rw;
}

} // namespace facile::isa
