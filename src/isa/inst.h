/**
 * @file
 * Instruction representation: mnemonics, condition codes, operands,
 * and the Inst struct produced by the builder API and by the decoder.
 */
#ifndef FACILE_ISA_INST_H
#define FACILE_ISA_INST_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/regs.h"

namespace facile::isa {

/** Mnemonics of the supported x86-64 subset. */
enum class Mnemonic : std::uint16_t {
    // Scalar integer.
    ADD, SUB, ADC, SBB, AND, OR, XOR, CMP, TEST,
    MOV, MOVZX, MOVSX, LEA,
    INC, DEC, NEG, NOT,
    IMUL, MUL, DIV, IDIV,
    SHL, SHR, SAR, ROL, ROR,
    XCHG, PUSH, POP,
    BSWAP, BSF, BSR, POPCNT, LZCNT, TZCNT,
    NOP,
    JCC, JMP, CALL, RET,
    SETCC, CMOVCC,
    // SSE (legacy encoded).
    MOVAPS, MOVUPS, MOVAPD, MOVSS, MOVSD,
    ADDPS, ADDPD, ADDSS, ADDSD,
    SUBPS, SUBPD, SUBSD,
    MULPS, MULPD, MULSS, MULSD,
    DIVPS, DIVPD, DIVSS, DIVSD,
    SQRTPS, SQRTPD, SQRTSD,
    MINPS, MAXPS,
    ANDPS, ORPS, XORPS,
    PXOR, PADDD, PADDQ, PSUBD, PAND, POR, PMULLD,
    PSLLD, PSRLD, SHUFPS, PUNPCKLDQ,
    CVTSI2SD, CVTTSD2SI, MOVD, MOVQ,
    // AVX (VEX encoded).
    VMOVAPS, VMOVUPS,
    VADDPS, VADDPD, VADDSD,
    VSUBPS, VMULPS, VMULPD, VMULSD,
    VDIVPS, VDIVSD, VSQRTPD,
    VANDPS, VXORPS, VPXOR, VPADDD, VPMULLD,
    VFMADD231PS, VFMADD231PD, VFMADD231SD,
    kNumMnemonics,
};

/** Condition codes for JCC / SETCC / CMOVCC (x86 encoding order). */
enum class Cond : std::uint8_t {
    O = 0, NO, B, NB, E, NE, BE, NBE,
    S, NS, P, NP, L, NL, LE, NLE,
    None = 0xff,
};

/** Memory operand: [base + index*scale + disp], width in bytes. */
struct MemOp
{
    Reg base;            ///< must be a Gpr64 (subset restriction)
    Reg index;           ///< Gpr64 or None
    std::uint8_t scale = 1; ///< 1, 2, 4, or 8
    std::int32_t disp = 0;
    std::uint8_t width = 8; ///< access width in bytes

    bool operator==(const MemOp &o) const = default;
};

/** One instruction operand (tagged union). */
struct Operand
{
    enum class Kind : std::uint8_t { None, Reg, Mem, Imm };

    Kind kind = Kind::None;
    Reg reg;
    MemOp mem;
    std::int64_t imm = 0;
    std::uint8_t immWidth = 0; ///< immediate width in bytes (1, 2, or 4)

    static Operand
    makeReg(Reg r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }

    static Operand
    makeMem(MemOp m)
    {
        Operand o;
        o.kind = Kind::Mem;
        o.mem = m;
        return o;
    }

    static Operand
    makeImm(std::int64_t v, int width_bytes)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        o.immWidth = static_cast<std::uint8_t>(width_bytes);
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isMem() const { return kind == Kind::Mem; }
    bool isImm() const { return kind == Kind::Imm; }

    bool operator==(const Operand &o) const = default;
};

/** A decoded or constructed instruction. */
struct Inst
{
    Mnemonic mnem = Mnemonic::NOP;
    Cond cc = Cond::None;  ///< for JCC / SETCC / CMOVCC
    std::vector<Operand> ops;

    /** Explicit NOP length request (1..15); encoder pads accordingly. */
    std::uint8_t nopLen = 1;

    Inst() = default;
    Inst(Mnemonic m, std::vector<Operand> o) : mnem(m), ops(std::move(o)) {}
    Inst(Mnemonic m, Cond c, std::vector<Operand> o)
        : mnem(m), cc(c), ops(std::move(o))
    {}

    bool isBranch() const
    {
        return mnem == Mnemonic::JCC || mnem == Mnemonic::JMP ||
               mnem == Mnemonic::CALL || mnem == Mnemonic::RET;
    }

    bool
    hasMemOperand() const
    {
        for (const auto &o : ops)
            if (o.isMem())
                return true;
        return false;
    }

    /** First memory operand, if any. */
    const MemOp *
    memOperand() const
    {
        for (const auto &o : ops)
            if (o.isMem())
                return &o.mem;
        return nullptr;
    }

    /**
     * True if the destination (first operand) is written to memory.
     * Also true for PUSH / CALL, which store implicitly.
     */
    bool isStore() const;

    /** True if the instruction reads from memory (incl. POP / RET). */
    bool isLoad() const;

    /** Main operand width in bytes (destination width; 0 if N/A). */
    int operandWidth() const;
};

/** Name of a mnemonic, lower case (e.g. "add"). JCC prints as "j<cc>". */
std::string mnemonicName(Mnemonic m);

/** Condition-code suffix, e.g. "e", "ne", "le". */
std::string condName(Cond c);

/** Intel-syntax rendering of an instruction, e.g. "add rax, [rbx+8]". */
std::string toString(const Inst &inst);

} // namespace facile::isa

#endif // FACILE_ISA_INST_H
