/**
 * @file
 * x86-64 instruction encoder for the supported subset.
 *
 * Produces genuine machine code (legacy/REX/VEX encodings, ModRM/SIB,
 * displacements, immediates). Byte-accurate encoding matters: Facile's
 * predecoder model depends on real instruction lengths, 16-byte-window
 * placement, nominal-opcode positions, and length-changing prefixes.
 *
 * Encoding choices are deterministic (one canonical encoding per
 * instruction form), so decode(encode(i)) == i is a testable property.
 */
#ifndef FACILE_ISA_ENCODER_H
#define FACILE_ISA_ENCODER_H

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "isa/inst.h"

namespace facile::isa {

/** Thrown when an instruction has no encodable form in the subset. */
class EncodeError : public std::runtime_error
{
  public:
    explicit EncodeError(const std::string &what)
        : std::runtime_error("encode: " + what)
    {}
};

/** Append the encoding of @p inst to @p out. Returns encoded length. */
int encode(const Inst &inst, std::vector<std::uint8_t> &out);

/** Encode a single instruction into a fresh byte vector. */
std::vector<std::uint8_t> encode(const Inst &inst);

/** Encode a whole basic block (concatenated instructions). */
std::vector<std::uint8_t> encodeBlock(const std::vector<Inst> &insts);

} // namespace facile::isa

#endif // FACILE_ISA_ENCODER_H
