/**
 * @file
 * Register model for the supported x86-64 subset.
 *
 * Registers are (class, index) pairs. GPRs of all widths with the same
 * index belong to one architectural register family; XMM/YMM likewise.
 * The family id is what dependence analysis tracks.
 */
#ifndef FACILE_ISA_REGS_H
#define FACILE_ISA_REGS_H

#include <cstdint>
#include <string>

namespace facile::isa {

/** Architectural register classes. */
enum class RegClass : std::uint8_t {
    None,  ///< no register (empty operand slot / no index reg)
    Gpr8,  ///< low-byte registers AL..R15B (REX-style, no AH/CH/DH/BH)
    Gpr16,
    Gpr32,
    Gpr64,
    Xmm,
    Ymm,
};

/** A register: class plus encoding index (0..15). */
struct Reg
{
    RegClass cls = RegClass::None;
    std::uint8_t idx = 0;

    bool valid() const { return cls != RegClass::None; }
    bool isGpr() const
    {
        return cls == RegClass::Gpr8 || cls == RegClass::Gpr16 ||
               cls == RegClass::Gpr32 || cls == RegClass::Gpr64;
    }
    bool isVec() const { return cls == RegClass::Xmm || cls == RegClass::Ymm; }

    /** Operand width in bytes. */
    int width() const;

    /**
     * Architectural family id used for dependence tracking:
     * GPR families 0..15, vector families 16..31.
     */
    int family() const;

    bool operator==(const Reg &o) const = default;
};

/** Width (1/2/4/8 bytes) to GPR register class. */
RegClass gprClass(int width_bytes);

/** GPR of the given width (bytes) and index. */
Reg gpr(int width_bytes, int idx);

/** XMM register of the given index. */
Reg xmm(int idx);

/** YMM register of the given index. */
Reg ymm(int idx);

/** Canonical Intel-syntax name, e.g. "rax", "r10d", "xmm3". */
std::string regName(Reg r);

// Convenience constants (64-bit GPRs).
inline constexpr Reg RAX{RegClass::Gpr64, 0};
inline constexpr Reg RCX{RegClass::Gpr64, 1};
inline constexpr Reg RDX{RegClass::Gpr64, 2};
inline constexpr Reg RBX{RegClass::Gpr64, 3};
inline constexpr Reg RSP{RegClass::Gpr64, 4};
inline constexpr Reg RBP{RegClass::Gpr64, 5};
inline constexpr Reg RSI{RegClass::Gpr64, 6};
inline constexpr Reg RDI{RegClass::Gpr64, 7};
inline constexpr Reg R8{RegClass::Gpr64, 8};
inline constexpr Reg R9{RegClass::Gpr64, 9};
inline constexpr Reg R10{RegClass::Gpr64, 10};
inline constexpr Reg R11{RegClass::Gpr64, 11};
inline constexpr Reg R12{RegClass::Gpr64, 12};
inline constexpr Reg R13{RegClass::Gpr64, 13};
inline constexpr Reg R14{RegClass::Gpr64, 14};
inline constexpr Reg R15{RegClass::Gpr64, 15};

inline constexpr Reg EAX{RegClass::Gpr32, 0};
inline constexpr Reg ECX{RegClass::Gpr32, 1};
inline constexpr Reg EDX{RegClass::Gpr32, 2};
inline constexpr Reg EBX{RegClass::Gpr32, 3};
inline constexpr Reg ESI{RegClass::Gpr32, 6};
inline constexpr Reg EDI{RegClass::Gpr32, 7};

inline constexpr Reg AX{RegClass::Gpr16, 0};
inline constexpr Reg CX{RegClass::Gpr16, 1};
inline constexpr Reg DX{RegClass::Gpr16, 2};
inline constexpr Reg BX{RegClass::Gpr16, 3};

inline constexpr Reg AL{RegClass::Gpr8, 0};
inline constexpr Reg CL{RegClass::Gpr8, 1};
inline constexpr Reg DL{RegClass::Gpr8, 2};
inline constexpr Reg BL{RegClass::Gpr8, 3};

inline constexpr Reg XMM0{RegClass::Xmm, 0};
inline constexpr Reg XMM1{RegClass::Xmm, 1};
inline constexpr Reg XMM2{RegClass::Xmm, 2};
inline constexpr Reg XMM3{RegClass::Xmm, 3};
inline constexpr Reg XMM4{RegClass::Xmm, 4};
inline constexpr Reg XMM5{RegClass::Xmm, 5};
inline constexpr Reg YMM0{RegClass::Ymm, 0};
inline constexpr Reg YMM1{RegClass::Ymm, 1};
inline constexpr Reg YMM2{RegClass::Ymm, 2};
inline constexpr Reg YMM3{RegClass::Ymm, 3};

} // namespace facile::isa

#endif // FACILE_ISA_REGS_H
