/**
 * @file
 * Convenience builders for instructions and operands.
 *
 * Example:
 *   using namespace facile::isa;
 *   Inst i = make(Mnemonic::ADD, R(RAX), M(mem(RBX, 8)));
 */
#ifndef FACILE_ISA_BUILDER_H
#define FACILE_ISA_BUILDER_H

#include "isa/inst.h"

namespace facile::isa {

/** Register operand. */
inline Operand
R(Reg r)
{
    return Operand::makeReg(r);
}

/** Memory operand. */
inline Operand
M(MemOp m)
{
    return Operand::makeMem(m);
}

/** Immediate operand with explicit encoded width (1, 2, or 4 bytes). */
inline Operand
I(std::int64_t v, int width = 1)
{
    return Operand::makeImm(v, width);
}

/**
 * Immediate with automatically chosen canonical width: imm8 if the value
 * fits, otherwise imm16 for 16-bit destinations and imm32 otherwise.
 */
inline Operand
autoImm(std::int64_t v, int operand_width)
{
    if (v >= -128 && v <= 127)
        return Operand::makeImm(v, 1);
    return Operand::makeImm(v, operand_width == 2 ? 2 : 4);
}

/** [base + disp], with explicit access width in bytes. */
inline MemOp
mem(Reg base, std::int32_t disp = 0, int width = 8)
{
    MemOp m;
    m.base = base;
    m.disp = disp;
    m.width = static_cast<std::uint8_t>(width);
    return m;
}

/** [base + index*scale + disp]. */
inline MemOp
memIdx(Reg base, Reg index, int scale = 1, std::int32_t disp = 0,
       int width = 8)
{
    MemOp m;
    m.base = base;
    m.index = index;
    m.scale = static_cast<std::uint8_t>(scale);
    m.disp = disp;
    m.width = static_cast<std::uint8_t>(width);
    return m;
}

/** Generic instruction builder. */
inline Inst
make(Mnemonic m, std::vector<Operand> ops = {})
{
    return Inst(m, std::move(ops));
}

/** Conditional instruction builder (JCC / SETCC / CMOVCC). */
inline Inst
makeCC(Mnemonic m, Cond cc, std::vector<Operand> ops = {})
{
    return Inst(m, cc, std::move(ops));
}

/** NOP of a specific encoded length (1..15 bytes). */
inline Inst
nop(int len = 1)
{
    Inst i(Mnemonic::NOP, {});
    i.nopLen = static_cast<std::uint8_t>(len);
    return i;
}

/** Backward conditional jump (loop back-edge), rel8 = -len. */
inline Inst
backEdge(Cond cc = Cond::NE, int rel = -2)
{
    return makeCC(Mnemonic::JCC, cc, {I(rel, 1)});
}

} // namespace facile::isa

#endif // FACILE_ISA_BUILDER_H
