#include "uarch/config.h"

#include <array>
#include <bit>
#include <stdexcept>

#include "support/math_util.h"

namespace facile::uarch {

int
portCount(PortMask m)
{
    return std::popcount(static_cast<unsigned>(m));
}

std::string
portMaskName(PortMask m)
{
    std::string s = "p";
    for (int p = 0; p < 16; ++p)
        if (m & (1u << p))
            s += std::to_string(p);
    return s;
}

int
MicroArchConfig::lsdUnrollFactor(int n_uops) const
{
    if (n_uops <= 0)
        return 1;
    int bestU = 1;
    double bestRate = 0.0;
    for (int u = 1; u <= 8; ++u) {
        const std::int64_t total = static_cast<std::int64_t>(n_uops) * u;
        if (total > idqWidth)
            break;
        double rate = static_cast<double>(total) /
                      static_cast<double>(ceilDiv(total, issueWidth));
        if (rate > bestRate + 1e-9) {
            bestRate = rate;
            bestU = u;
        }
    }
    return bestU;
}

namespace {

constexpr MicroArchConfig
makeConfig(UArch arch, UArchFamily family, const char *name,
           const char *abbrev, int year)
{
    MicroArchConfig c{};
    c.arch = arch;
    c.family = family;
    c.name = name;
    c.abbrev = abbrev;
    c.year = year;
    c.predecodeWidth = 5;

    switch (family) {
      case UArchFamily::SnB:
        c.issueWidth = 4;
        c.nDecoders = 4;
        c.dsbWidth = 4;
        c.idqWidth = 28;
        c.lsdEnabled = true;
        c.jccErratum = false;
        c.macroFusibleOnLastDecoder = false;
        c.loadLatency = 4;
        c.rsSize = 54;
        c.robSize = 168;
        c.nPorts = 6;
        c.cmovTwoUops = true;
        c.adcTwoUops = true;
        break;
      case UArchFamily::HSW:
        c.issueWidth = 4;
        c.nDecoders = 4;
        c.dsbWidth = 4;
        c.idqWidth = 56;
        c.lsdEnabled = true;
        c.jccErratum = false;
        c.macroFusibleOnLastDecoder = true;
        c.loadLatency = 4;
        c.rsSize = 60;
        c.robSize = 192;
        c.nPorts = 8;
        c.cmovTwoUops = true;
        c.adcTwoUops = false;
        break;
      case UArchFamily::SKL:
        c.issueWidth = 4;
        c.nDecoders = 4;
        c.dsbWidth = 6;
        c.idqWidth = 64;
        c.lsdEnabled = false; // SKL150 erratum
        c.jccErratum = true;  // JCC erratum mitigation
        c.macroFusibleOnLastDecoder = true;
        c.loadLatency = 4;
        c.rsSize = 97;
        c.robSize = 224;
        c.nPorts = 8;
        c.cmovTwoUops = false;
        c.adcTwoUops = false;
        break;
      case UArchFamily::ICL:
        c.issueWidth = 5;
        c.nDecoders = 4;
        c.dsbWidth = 6;
        c.idqWidth = 70;
        c.lsdEnabled = true;
        c.jccErratum = false;
        c.macroFusibleOnLastDecoder = true;
        c.loadLatency = 5;
        c.rsSize = 160;
        c.robSize = 352;
        c.nPorts = 10;
        c.cmovTwoUops = false;
        c.adcTwoUops = false;
        break;
    }
    c.retireWidth = c.issueWidth;

    // Move elimination evolved non-monotonically: introduced with Ivy
    // Bridge, GPR move elimination disabled again on Ice/Tiger/Rocket Lake.
    switch (arch) {
      case UArch::SNB:
        c.gprMovElim = false;
        c.vecMovElim = false;
        break;
      case UArch::ICL:
      case UArch::TGL:
      case UArch::RKL:
        c.gprMovElim = false;
        c.vecMovElim = true;
        break;
      default:
        c.gprMovElim = true;
        c.vecMovElim = true;
        break;
    }

    // Broadwell turned CMOV into a single µop.
    if (arch == UArch::BDW)
        c.cmovTwoUops = false;

    return c;
}

const std::array<MicroArchConfig, 9> &
table()
{
    static const std::array<MicroArchConfig, 9> t = {
        makeConfig(UArch::RKL, UArchFamily::ICL, "Rocket Lake", "RKL", 2021),
        makeConfig(UArch::TGL, UArchFamily::ICL, "Tiger Lake", "TGL", 2020),
        makeConfig(UArch::ICL, UArchFamily::ICL, "Ice Lake", "ICL", 2019),
        makeConfig(UArch::CLX, UArchFamily::SKL, "Cascade Lake", "CLX", 2019),
        makeConfig(UArch::SKL, UArchFamily::SKL, "Skylake", "SKL", 2015),
        makeConfig(UArch::BDW, UArchFamily::HSW, "Broadwell", "BDW", 2015),
        makeConfig(UArch::HSW, UArchFamily::HSW, "Haswell", "HSW", 2013),
        makeConfig(UArch::IVB, UArchFamily::SnB, "Ivy Bridge", "IVB", 2012),
        makeConfig(UArch::SNB, UArchFamily::SnB, "Sandy Bridge", "SNB", 2011),
    };
    return t;
}

} // namespace

const MicroArchConfig &
config(UArch arch)
{
    // Indexed lookup (the table is newest-first, Table 1 order; the
    // pointer array below is built once, indexed by the enum value).
    // config() sits on the prediction hot path — several component
    // bounds consult it per block — so no per-call scan.
    static const auto byArch = [] {
        std::array<const MicroArchConfig *, 9> m{};
        for (const auto &c : table()) {
            const auto i = static_cast<std::size_t>(c.arch);
            if (i >= m.size())
                throw std::logic_error(
                    "uarch table outgrew the lookup array");
            m[i] = &c;
        }
        for (const auto *p : m)
            if (!p)
                throw std::logic_error("uarch table incomplete");
        return m;
    }();
    const auto idx = static_cast<std::size_t>(arch);
    if (idx >= byArch.size())
        throw std::invalid_argument("unknown microarchitecture");
    return *byArch[idx];
}

const std::vector<UArch> &
allUArchs()
{
    static const std::vector<UArch> order = {
        UArch::RKL, UArch::TGL, UArch::ICL, UArch::CLX, UArch::SKL,
        UArch::BDW, UArch::HSW, UArch::IVB, UArch::SNB};
    return order;
}

UArch
fromAbbrev(const std::string &abbrev)
{
    for (const auto &c : table())
        if (abbrev == c.abbrev)
            return c.arch;
    throw std::invalid_argument("unknown microarchitecture: " + abbrev);
}

} // namespace facile::uarch
