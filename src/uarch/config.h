/**
 * @file
 * Microarchitecture configurations for the nine Intel Core generations
 * evaluated in the paper (Table 1).
 *
 * These play the role of uiCA's microArchConfigs.py. Parameter values are
 * synthesized from public documentation of the respective families; the
 * per-family grouping (SnB, HSW, SKL, ICL) mirrors how the real designs
 * evolved and is shared with the instruction database.
 */
#ifndef FACILE_UARCH_CONFIG_H
#define FACILE_UARCH_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace facile::uarch {

/** The microarchitectures of Table 1. */
enum class UArch : std::uint8_t {
    SNB, ///< Sandy Bridge (2011)
    IVB, ///< Ivy Bridge (2012)
    HSW, ///< Haswell (2013)
    BDW, ///< Broadwell (2015)
    SKL, ///< Skylake (2015)
    CLX, ///< Cascade Lake (2019)
    ICL, ///< Ice Lake (2019)
    TGL, ///< Tiger Lake (2020)
    RKL, ///< Rocket Lake (2021)
};

/** Families sharing port layout and instruction characteristics. */
enum class UArchFamily : std::uint8_t { SnB, HSW, SKL, ICL };

/** Set of execution ports, bit p = port p. */
using PortMask = std::uint16_t;

/** Count set bits in a port mask. */
int portCount(PortMask m);

/** Human-readable port mask, e.g. "p015". */
std::string portMaskName(PortMask m);

/** Static configuration of one microarchitecture. */
struct MicroArchConfig
{
    UArch arch;
    UArchFamily family;
    const char *name;   ///< e.g. "Rocket Lake"
    const char *abbrev; ///< e.g. "RKL"
    int year;           ///< release year (Table 1)

    int issueWidth;  ///< µops issued by the renamer per cycle
    int nDecoders;   ///< 1 complex + (nDecoders-1) simple
    int predecodeWidth = 5; ///< instructions predecoded per cycle
    int dsbWidth;    ///< µops streamed from the DSB per cycle
    int idqWidth;    ///< IDQ capacity in µops (LSD eligibility bound)
    bool lsdEnabled; ///< false on SKL/CLX due to the SKL150 erratum
    bool jccErratum; ///< JCC-erratum mitigation active (SKL family)

    /**
     * Whether a macro-fusible instruction can be decoded on the last
     * simple decoder (false on SnB/IvB: the potential fusion partner
     * would land in the next decode group).
     */
    bool macroFusibleOnLastDecoder;

    bool gprMovElim; ///< GPR move elimination at rename
    bool vecMovElim; ///< vector move elimination at rename

    int loadLatency;  ///< L1 load-to-use latency
    int rsSize;       ///< scheduler (reservation station) entries
    int robSize;      ///< reorder buffer entries
    int retireWidth;  ///< µops retired per cycle

    int nPorts;       ///< number of execution ports
    PortMask allPorts() const { return (PortMask)((1u << nPorts) - 1); }

    // Family-specific instruction quirks.
    bool cmovTwoUops;   ///< CMOVcc decodes to 2 µops (pre-Broadwell)
    bool adcTwoUops;    ///< ADC/SBB decode to 2 µops (SnB/IvB)

    /**
     * LSD unroll factor for a loop of @p n_uops µops (paper section 4.6).
     *
     * The hardware unrolls small loops inside the IDQ so that more µops
     * per cycle can be streamed to the renamer. We choose the factor
     * u in [1, 8] that maximizes the streaming rate n*u / ceil(n*u / i),
     * subject to n*u fitting in the IDQ; ties pick the smallest u.
     * (uiCA ships reverse-engineered per-size tables; this rule
     * reproduces their purpose and is documented as a substitution.)
     */
    int lsdUnrollFactor(int n_uops) const;
};

/** Configuration of one microarchitecture (singleton per UArch). */
const MicroArchConfig &config(UArch arch);

/** All nine microarchitectures, newest first (Table 1 order). */
const std::vector<UArch> &allUArchs();

/** Parse an abbreviation like "SKL"; throws std::invalid_argument. */
UArch fromAbbrev(const std::string &abbrev);

} // namespace facile::uarch

#endif // FACILE_UARCH_CONFIG_H
