#include "eval/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "sim/pipeline.h"
#include "support/math_util.h"
#include "support/stats.h"

namespace facile::eval {

ArchSuite
prepare(uarch::UArch arch, const std::vector<bhive::Benchmark> &benchmarks)
{
    ArchSuite s;
    s.arch = arch;
    s.benchmarks.reserve(benchmarks.size());
    for (const auto &b : benchmarks) {
        s.benchmarks.push_back(&b);
        s.blocksU.push_back(bb::analyze(b.bytesU, arch));
        s.blocksL.push_back(bb::analyze(b.bytesL, arch));
        s.measuredU.push_back(
            round2(sim::measuredThroughput(s.blocksU.back(), false)));
        s.measuredL.push_back(
            round2(sim::measuredThroughput(s.blocksL.back(), true)));
    }
    return s;
}

std::vector<double>
runPredictor(const baselines::ThroughputPredictor &p, const ArchSuite &suite,
             bool loop)
{
    const auto &blocks = loop ? suite.blocksL : suite.blocksU;
    std::vector<double> out;
    out.reserve(blocks.size());
    for (const auto &blk : blocks) {
        double tp = 0.0;
        try {
            tp = p.predict(blk, loop);
        } catch (const std::exception &) {
            tp = 0.0; // crash -> throughput 0, as in the paper's protocol
        }
        out.push_back(round2(tp));
    }
    return out;
}

Accuracy
score(const std::vector<double> &measured,
      const std::vector<double> &predicted)
{
    Accuracy a;
    a.mape = mape(measured, predicted);
    a.kendall = kendallTau(measured, predicted);
    return a;
}

Accuracy
evaluate(const baselines::ThroughputPredictor &p, const ArchSuite &suite,
         bool loop)
{
    return score(loop ? suite.measuredL : suite.measuredU,
                 runPredictor(p, suite, loop));
}

double
timePerBenchmarkMs(const baselines::ThroughputPredictor &p,
                   const ArchSuite &suite, bool loop)
{
    const auto &blocks = loop ? suite.blocksL : suite.blocksU;
    if (blocks.empty())
        return 0.0;
    volatile double sink = 0.0;
    auto t0 = std::chrono::steady_clock::now();
    for (const auto &blk : blocks)
        sink += p.predict(blk, loop);
    auto t1 = std::chrono::steady_clock::now();
    (void)sink;
    double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    return ms / static_cast<double>(blocks.size());
}

std::vector<std::vector<int>>
heatmap(const std::vector<double> &measured,
        const std::vector<double> &predicted, double max_tp, int bins)
{
    std::vector<std::vector<int>> grid(
        static_cast<std::size_t>(bins),
        std::vector<int>(static_cast<std::size_t>(bins), 0));
    for (std::size_t i = 0; i < measured.size(); ++i) {
        if (measured[i] >= max_tp || measured[i] < 0)
            continue;
        double pv = std::clamp(predicted[i], 0.0, max_tp - 1e-9);
        int x = static_cast<int>(measured[i] / max_tp * bins);
        int y = static_cast<int>(pv / max_tp * bins);
        ++grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
    }
    return grid;
}

std::string
renderHeatmap(const std::vector<std::vector<int>> &grid, double max_tp)
{
    // Log-shaded density, diagonal marks perfect prediction.
    static const char shades[] = " .:+*#@";
    const int bins = static_cast<int>(grid.size());
    std::string out;
    out += "predicted\n";
    for (int y = bins - 1; y >= 0; --y) {
        char rowLabel[32];
        std::snprintf(rowLabel, sizeof(rowLabel), "%5.1f |",
                      max_tp * (y + 1) / bins);
        out += rowLabel;
        for (int x = 0; x < bins; ++x) {
            int c = grid[static_cast<std::size_t>(y)]
                        [static_cast<std::size_t>(x)];
            int shade = 0;
            if (c > 0)
                shade = std::min<int>(6, 1 + static_cast<int>(
                                             std::log10(c) * 2));
            char ch = shades[shade];
            if (c == 0 && x == y)
                ch = '-'; // diagonal guide
            out += ch;
            out += ' ';
        }
        out += '\n';
    }
    out += "      +";
    for (int x = 0; x < bins; ++x)
        out += "--";
    out += "> measured (0.." + std::to_string(static_cast<int>(max_tp)) +
           " cycles)\n";
    return out;
}

} // namespace facile::eval
