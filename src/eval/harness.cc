#include "eval/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "sim/pipeline.h"
#include "support/math_util.h"
#include "support/stats.h"

namespace facile::eval {

ArchSuite
prepare(uarch::UArch arch, const std::vector<bhive::Benchmark> &benchmarks,
        engine::PredictionEngine &engine)
{
    ArchSuite s;
    s.arch = arch;
    s.benchmarks.reserve(benchmarks.size());
    for (const auto &b : benchmarks)
        s.benchmarks.push_back(&b);
    s.blocksU.resize(benchmarks.size());
    s.blocksL.resize(benchmarks.size());
    s.measuredU.resize(benchmarks.size());
    s.measuredL.resize(benchmarks.size());

    // Analysis and cycle-level measurement of each benchmark are
    // independent; fan out over the engine pool, writing by index so the
    // suite is identical to a serial pass. Blocks are analyzed directly
    // (not through the engine's cache): the suite owns its blocks, and
    // caching them in the process-wide engine would retain a second copy
    // of every block for the process lifetime.
    engine.parallelFor(benchmarks.size(), [&](std::size_t i) {
        const bhive::Benchmark &b = benchmarks[i];
        s.blocksU[i] = bb::analyze(b.bytesU, arch);
        s.blocksL[i] = bb::analyze(b.bytesL, arch);
        s.measuredU[i] =
            round2(sim::measuredThroughput(s.blocksU[i], false));
        s.measuredL[i] =
            round2(sim::measuredThroughput(s.blocksL[i], true));
    });
    return s;
}

ArchSuite
prepare(uarch::UArch arch, const std::vector<bhive::Benchmark> &benchmarks)
{
    return prepare(arch, benchmarks, engine::PredictionEngine::shared());
}

std::vector<double>
runPredictor(const baselines::ThroughputPredictor &p, const ArchSuite &suite,
             bool loop)
{
    const auto &blocks = loop ? suite.blocksL : suite.blocksU;
    std::vector<double> out(blocks.size());
    engine::PredictionEngine &eng = engine::PredictionEngine::shared();

    // One pipeline scratch per worker lane, threaded explicitly into
    // the predictor (Facile-family predictors run allocation-free and
    // payload-free on it; others ignore it).
    std::vector<std::unique_ptr<model::PredictScratch>> scratch;
    scratch.reserve(static_cast<std::size_t>(eng.numThreads()));
    for (int w = 0; w < eng.numThreads(); ++w)
        scratch.push_back(std::make_unique<model::PredictScratch>());

    eng.parallelForWorker(blocks.size(), [&](int worker, std::size_t i) {
        double tp = 0.0;
        try {
            tp = p.predict(blocks[i], loop,
                           *scratch[static_cast<std::size_t>(worker)]);
        } catch (const std::exception &) {
            tp = 0.0; // crash -> throughput 0, per the paper's protocol
        }
        out[i] = round2(tp);
    });
    return out;
}

Accuracy
score(const std::vector<double> &measured,
      const std::vector<double> &predicted)
{
    Accuracy a;
    a.mape = mape(measured, predicted, &a.mapeSkipped);
    a.kendall = kendallTau(measured, predicted);
    return a;
}

Accuracy
evaluate(const baselines::ThroughputPredictor &p, const ArchSuite &suite,
         bool loop)
{
    return score(loop ? suite.measuredL : suite.measuredU,
                 runPredictor(p, suite, loop));
}

double
bestOfRunsMs(const std::function<void()> &fn, int repeats, bool warmup)
{
    if (warmup)
        fn();
    double bestMs = std::numeric_limits<double>::infinity();
    for (int run = 0; run < repeats; ++run) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        bestMs = std::min(
            bestMs,
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return bestMs;
}

double
timePerBenchmarkMs(const baselines::ThroughputPredictor &p,
                   const ArchSuite &suite, bool loop)
{
    const auto &blocks = loop ? suite.blocksL : suite.blocksU;
    if (blocks.empty())
        return 0.0;
    // Times the serving-shaped path: explicit scratch, no payload for
    // Facile-family predictors.
    model::PredictScratch scratch;
    volatile double sink = 0.0;
    double bestMs = bestOfRunsMs([&] {
        for (const auto &blk : blocks)
            sink = sink + p.predict(blk, loop, scratch);
    });
    (void)sink;
    return bestMs / static_cast<double>(blocks.size());
}

EngineThroughput
measureEngineThroughput(engine::PredictionEngine &engine,
                        const ArchSuite &suite, bool loop, int repeats)
{
    EngineThroughput r;
    std::vector<engine::Request> batch;
    batch.reserve(suite.benchmarks.size());
    for (const auto *b : suite.benchmarks)
        batch.push_back(
            {loop ? b->bytesL : b->bytesU, suite.arch, loop, {}});
    r.blocks = batch.size();
    if (batch.empty() || repeats < 1)
        return r;

    // Explicit warm-up so cold cache fills stay out of r.stats.
    engine.predictBatch(batch);
    double bestMs = bestOfRunsMs(
        [&] { engine.predictBatch(batch, &r.stats); }, repeats,
        /*warmup=*/false);
    r.msPerBlock = bestMs / static_cast<double>(batch.size());
    r.blocksPerSec = 1000.0 * static_cast<double>(batch.size()) / bestMs;
    return r;
}

std::vector<std::vector<int>>
heatmap(const std::vector<double> &measured,
        const std::vector<double> &predicted, double max_tp, int bins)
{
    std::vector<std::vector<int>> grid(
        static_cast<std::size_t>(bins),
        std::vector<int>(static_cast<std::size_t>(bins), 0));
    for (std::size_t i = 0; i < measured.size(); ++i) {
        if (measured[i] >= max_tp || measured[i] < 0)
            continue;
        double pv = std::clamp(predicted[i], 0.0, max_tp - 1e-9);
        int x = static_cast<int>(measured[i] / max_tp * bins);
        int y = static_cast<int>(pv / max_tp * bins);
        ++grid[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)];
    }
    return grid;
}

std::string
renderHeatmap(const std::vector<std::vector<int>> &grid, double max_tp)
{
    // Log-shaded density, diagonal marks perfect prediction.
    static const char shades[] = " .:+*#@";
    const int bins = static_cast<int>(grid.size());
    std::string out;
    out += "predicted\n";
    for (int y = bins - 1; y >= 0; --y) {
        char rowLabel[32];
        std::snprintf(rowLabel, sizeof(rowLabel), "%5.1f |",
                      max_tp * (y + 1) / bins);
        out += rowLabel;
        for (int x = 0; x < bins; ++x) {
            int c = grid[static_cast<std::size_t>(y)]
                        [static_cast<std::size_t>(x)];
            int shade = 0;
            if (c > 0)
                shade = std::min<int>(6, 1 + static_cast<int>(
                                             std::log10(c) * 2));
            char ch = shades[shade];
            if (c == 0 && x == y)
                ch = '-'; // diagonal guide
            out += ch;
            out += ' ';
        }
        out += '\n';
    }
    out += "      +";
    for (int x = 0; x < bins; ++x)
        out += "--";
    out += "> measured (0.." + std::to_string(static_cast<int>(max_tp)) +
           " cycles)\n";
    return out;
}

} // namespace facile::eval
