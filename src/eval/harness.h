/**
 * @file
 * Evaluation harness: prepares per-microarchitecture suites with ground
 * truth (the reference simulator standing in for hardware measurement),
 * scores predictors (MAPE, Kendall's tau), measures per-benchmark
 * execution times, and provides the aggregation helpers behind every
 * table and figure of the paper.
 */
#ifndef FACILE_EVAL_HARNESS_H
#define FACILE_EVAL_HARNESS_H

#include <string>
#include <vector>

#include "baselines/predictor_iface.h"
#include "bhive/generator.h"

namespace facile::eval {

/** One microarchitecture's analyzed suite with measured ground truth. */
struct ArchSuite
{
    uarch::UArch arch;
    std::vector<const bhive::Benchmark *> benchmarks;
    std::vector<bb::BasicBlock> blocksU;
    std::vector<bb::BasicBlock> blocksL;
    std::vector<double> measuredU; ///< rounded to 2 decimals, cycles/iter
    std::vector<double> measuredL;
};

/**
 * Analyze and measure the given benchmarks on @p arch. The measurement
 * pass (cycle-level simulation of every block in both variants) is the
 * expensive part; prepare once and evaluate many predictors against it.
 */
ArchSuite prepare(uarch::UArch arch,
                  const std::vector<bhive::Benchmark> &benchmarks);

/** Accuracy of one predictor against the suite's ground truth. */
struct Accuracy
{
    double mape = 0.0;    ///< mean absolute percentage error
    double kendall = 0.0; ///< Kendall's tau-b rank correlation
};

/** Predictions of one predictor over a suite (rounded to 2 decimals). */
std::vector<double> runPredictor(const baselines::ThroughputPredictor &p,
                                 const ArchSuite &suite, bool loop);

/** Score a prediction vector against the ground truth. */
Accuracy score(const std::vector<double> &measured,
               const std::vector<double> &predicted);

/** Convenience: run and score in one step. */
Accuracy evaluate(const baselines::ThroughputPredictor &p,
                  const ArchSuite &suite, bool loop);

/** Wall-clock time per benchmark in milliseconds (one sequential pass). */
double timePerBenchmarkMs(const baselines::ThroughputPredictor &p,
                          const ArchSuite &suite, bool loop);

/**
 * 2-D histogram relating measured and predicted throughput (Figure 3).
 * Cells count benchmarks with (measured, predicted) in the respective
 * bin; both axes span [0, max_tp) with @p bins bins.
 */
std::vector<std::vector<int>> heatmap(const std::vector<double> &measured,
                                      const std::vector<double> &predicted,
                                      double max_tp, int bins);

/** Render a heatmap as an ASCII density plot with log shading. */
std::string renderHeatmap(const std::vector<std::vector<int>> &grid,
                          double max_tp);

} // namespace facile::eval

#endif // FACILE_EVAL_HARNESS_H
