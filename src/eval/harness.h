/**
 * @file
 * Evaluation harness: prepares per-microarchitecture suites with ground
 * truth (the reference simulator standing in for hardware measurement),
 * scores predictors (MAPE, Kendall's tau), measures per-benchmark
 * execution times, and provides the aggregation helpers behind every
 * table and figure of the paper.
 *
 * Suite preparation and predictor sweeps run through the shared
 * PredictionEngine worker pool, so the paper harness and the batch
 * serving path exercise the same code.
 */
#ifndef FACILE_EVAL_HARNESS_H
#define FACILE_EVAL_HARNESS_H

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "baselines/predictor_iface.h"
#include "bhive/generator.h"
#include "engine/engine.h"

namespace facile::eval {

/**
 * The bit-identity oracle shared by the perf benches and tests: exact
 * bit pattern on throughput and component values (NaN markers
 * included), value equality on the interpretability payload.
 */
inline bool
samePrediction(const model::Prediction &a, const model::Prediction &b)
{
    if (std::memcmp(&a.throughput, &b.throughput, sizeof(double)) != 0)
        return false;
    if (std::memcmp(a.componentValue.data(), b.componentValue.data(),
                    sizeof(double) * a.componentValue.size()) != 0)
        return false;
    return a.bottlenecks == b.bottlenecks &&
           a.primaryBottleneck == b.primaryBottleneck &&
           a.criticalChain == b.criticalChain &&
           a.contendedPorts == b.contendedPorts &&
           a.contendingInsts == b.contendingInsts;
}

/** One microarchitecture's analyzed suite with measured ground truth. */
struct ArchSuite
{
    uarch::UArch arch;
    std::vector<const bhive::Benchmark *> benchmarks;
    std::vector<bb::BasicBlock> blocksU;
    std::vector<bb::BasicBlock> blocksL;
    std::vector<double> measuredU; ///< rounded to 2 decimals, cycles/iter
    std::vector<double> measuredL;
};

/**
 * Analyze and measure the given benchmarks on @p arch. The measurement
 * pass (cycle-level simulation of every block in both variants) is the
 * expensive part; prepare once and evaluate many predictors against it.
 * Analysis and simulation fan out over @p engine's worker pool.
 */
ArchSuite prepare(uarch::UArch arch,
                  const std::vector<bhive::Benchmark> &benchmarks,
                  engine::PredictionEngine &engine);

/** As above, on the process-wide shared engine. */
ArchSuite prepare(uarch::UArch arch,
                  const std::vector<bhive::Benchmark> &benchmarks);

/** Accuracy of one predictor against the suite's ground truth. */
struct Accuracy
{
    double mape = 0.0;    ///< MAPE; NaN when no pair was evaluable
    double kendall = 0.0; ///< Kendall's tau-b rank correlation

    /** Pairs excluded from MAPE because the measured value was zero. */
    std::size_t mapeSkipped = 0;
};

/**
 * Predictions of one predictor over a suite (rounded to 2 decimals).
 * Blocks are predicted in parallel on the shared engine pool; out[i]
 * always corresponds to suite block i, identical to a serial pass.
 */
std::vector<double> runPredictor(const baselines::ThroughputPredictor &p,
                                 const ArchSuite &suite, bool loop);

/** Score a prediction vector against the ground truth. */
Accuracy score(const std::vector<double> &measured,
               const std::vector<double> &predicted);

/** Convenience: run and score in one step. */
Accuracy evaluate(const baselines::ThroughputPredictor &p,
                  const ArchSuite &suite, bool loop);

/**
 * The timing protocol shared by every perf number in the repo: one
 * untimed warm-up call of @p fn (unless @p warmup is false), then the
 * minimum wall time over @p repeats timed calls, in milliseconds. The
 * minimum estimates the undisturbed cost and de-jitters the numbers.
 */
double bestOfRunsMs(const std::function<void()> &fn, int repeats = 3,
                    bool warmup = true);

/**
 * Wall-clock time per benchmark in milliseconds, under the
 * bestOfRunsMs protocol (warm-up + min of three sequential passes).
 */
double timePerBenchmarkMs(const baselines::ThroughputPredictor &p,
                          const ArchSuite &suite, bool loop);

/** End-to-end engine throughput over a prepared suite. */
struct EngineThroughput
{
    double blocksPerSec = 0.0; ///< best of the timed repeats
    double msPerBlock = 0.0;
    std::size_t blocks = 0;
    engine::BatchStats stats; ///< accumulated over the timed repeats
                              ///< (the warm-up batch is excluded)
};

/**
 * Measure end-to-end batch throughput (bytes in, predictions out) of
 * @p engine over the suite's benchmarks: one warm-up batch, then the
 * best of @p repeats timed batches. Set cacheEnabled=false on the
 * engine to measure pure compute scaling.
 */
EngineThroughput measureEngineThroughput(engine::PredictionEngine &engine,
                                         const ArchSuite &suite, bool loop,
                                         int repeats = 3);

/**
 * 2-D histogram relating measured and predicted throughput (Figure 3).
 * Cells count benchmarks with (measured, predicted) in the respective
 * bin; both axes span [0, max_tp) with @p bins bins.
 */
std::vector<std::vector<int>> heatmap(const std::vector<double> &measured,
                                      const std::vector<double> &predicted,
                                      double max_tp, int bins);

/** Render a heatmap as an ASCII density plot with log shading. */
std::string renderHeatmap(const std::vector<std::vector<int>> &grid,
                          double max_tp);

} // namespace facile::eval

#endif // FACILE_EVAL_HARNESS_H
