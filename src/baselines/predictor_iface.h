/**
 * @file
 * Common interface for all throughput predictors evaluated in Table 2,
 * plus the adapters for Facile itself and for the reference simulator
 * (which plays the role of uiCA / the measurement in this reproduction).
 */
#ifndef FACILE_BASELINES_PREDICTOR_IFACE_H
#define FACILE_BASELINES_PREDICTOR_IFACE_H

#include <memory>
#include <string>
#include <vector>

#include "bb/basic_block.h"
#include "facile/component.h"
#include "facile/predictor.h"

namespace facile::baselines {

/** A basic-block throughput predictor. */
class ThroughputPredictor
{
  public:
    virtual ~ThroughputPredictor() = default;

    /** Display name used in tables (e.g. "Facile", "llvm-mca-like"). */
    virtual std::string name() const = 0;

    /** Predicted throughput in cycles/iteration for the TPU/TPL notion. */
    virtual double predict(const bb::BasicBlock &blk, bool loop) const = 0;

    /**
     * As above, with an explicit per-thread scratch — the overload the
     * eval harness drives (one scratch per worker lane). Predictors
     * built on the Facile pipeline use it for allocation-free,
     * payload-free evaluation; others fall back to predict(blk, loop).
     * The throughput value is identical either way.
     */
    virtual double
    predict(const bb::BasicBlock &blk, bool loop,
            model::PredictScratch &scratch) const
    {
        (void)scratch;
        return predict(blk, loop);
    }
};

/** Facile with a given ablation configuration. */
class FacilePredictor : public ThroughputPredictor
{
  public:
    explicit FacilePredictor(model::ModelConfig config = {},
                             std::string name = "Facile")
        : config_(config), name_(std::move(name))
    {}

    std::string name() const override { return name_; }

    using ThroughputPredictor::predict;

    double
    predict(const bb::BasicBlock &blk, bool loop) const override
    {
        return predict(blk, loop, model::tlsPredictScratch());
    }

    double
    predict(const bb::BasicBlock &blk, bool loop,
            model::PredictScratch &scratch) const override
    {
        // The serving-path cheap mode: tables only consume the
        // throughput, which is bit-identical to the payload-building
        // overloads.
        return model::predict(blk, loop, config_, scratch,
                              model::Payload::None)
            .throughput;
    }

  private:
    model::ModelConfig config_;
    std::string name_;
};

/**
 * The reference cycle-level simulator as a predictor. In this
 * reproduction it is also the ground truth, standing in for uiCA
 * (whose predictions define the measurement-accurate end of Table 2)
 * and for the hardware measurements themselves.
 */
class SimulatorPredictor : public ThroughputPredictor
{
  public:
    std::string name() const override { return "uiCA-like (ref. sim)"; }
    double predict(const bb::BasicBlock &blk, bool loop) const override;
};

/** All comparator baselines (llvm-mca-like, CQA-like, ...). */
std::vector<std::unique_ptr<ThroughputPredictor>> makeBaselines();

/** One specific baseline by name; throws std::invalid_argument. */
std::unique_ptr<ThroughputPredictor> makeBaseline(const std::string &name);

} // namespace facile::baselines

#endif // FACILE_BASELINES_PREDICTOR_IFACE_H
