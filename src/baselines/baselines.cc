/**
 * @file
 * Re-implementations of the comparator predictors' modelling
 * philosophies (see DESIGN.md section 1 for the substitution rationale):
 *
 *  - LlvmMcaLike:   back-end scheduler simulation, no front end, no
 *                   micro/macro fusion awareness.
 *  - CqaLike:       detailed front end, no back-end dependence analysis.
 *  - OsacaLike:     analytical port pressure + issue width only.
 *  - IthemalLike:   learned-regressor proxy with deterministic
 *                   pseudo-noise standing in for LSTM prediction error.
 *  - LearningBlLike: the simple per-µop baseline of [7], using one fixed
 *                   (Skylake-family) port model for every µarch.
 *  - DiffTuneLike:  llvm-mca with "learned" (mis-tuned) parameters.
 */
#include "baselines/predictor_iface.h"

#include <algorithm>
#include <cmath>

#include "facile/dec.h"
#include "facile/ports.h"
#include "facile/precedence.h"
#include "facile/predec.h"
#include "facile/simple_components.h"
#include "sim/pipeline.h"
#include "support/math_util.h"
#include "uarch/config.h"

namespace facile::baselines {

double
SimulatorPredictor::predict(const bb::BasicBlock &blk, bool loop) const
{
    return sim::measuredThroughput(blk, loop);
}

namespace {

using uarch::PortMask;

/** Deterministic per-block hash for pseudo-noise in learned baselines. */
std::uint64_t
blockHash(const bb::BasicBlock &blk)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t b : blk.bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Pseudo-noise factor in [1-amp, 1+amp], deterministic per block. */
double
noiseFactor(const bb::BasicBlock &blk, double amp, std::uint64_t salt)
{
    std::uint64_t h = blockHash(blk) ^ salt;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    double unit = static_cast<double>(h % 10000) / 10000.0; // [0,1)
    return 1.0 - amp + 2.0 * amp * unit;
}

/** Sum of unfused µops (no fusion awareness). */
int
unfusedUops(const bb::BasicBlock &blk)
{
    int n = 0;
    for (const auto &ai : blk.insts) {
        if (ai.fusedWithPrev)
            continue;
        n += std::max<std::size_t>(1, ai.info->portUops.size());
    }
    return n;
}

/**
 * Greedy per-port load assignment: each µop is placed on its currently
 * least-loaded admissible port. Unlike the optimal distribution Facile
 * assumes, greedy placement can be unbalanced — the characteristic
 * imprecision of scheduler simulation with simple heuristics.
 */
double
greedyPortBound(const bb::BasicBlock &blk, bool respectElimination)
{
    std::array<double, 16> load{};
    for (const auto &ai : blk.insts) {
        if (ai.fusedWithPrev)
            continue;
        if (respectElimination && ai.info->eliminated)
            continue;
        for (const auto &u : ai.info->portUops) {
            if (!u.ports)
                continue;
            int best = -1;
            for (int p = 0; p < 16; ++p) {
                if (!(u.ports & (1u << p)))
                    continue;
                if (best < 0 || load[p] < load[best])
                    best = p;
            }
            if (best >= 0)
                load[best] += 1.0;
        }
    }
    return *std::max_element(load.begin(), load.end());
}

/**
 * llvm-mca-like: dispatch-width bound over unfused µops plus greedy
 * port contention plus a dependence-height estimate; no front end.
 * Latencies come from the scheduling model "as shipped", which for
 * several instruction classes disagrees with reality — modeled as a
 * fixed per-class skew.
 */
class LlvmMcaLike : public ThroughputPredictor
{
  public:
    explicit LlvmMcaLike(std::string name = "llvm-mca-like",
                         double latencySkew = 1.0,
                         std::uint64_t noiseSalt = 0, double noiseAmp = 0.0)
        : name_(std::move(name)), latencySkew_(latencySkew),
          noiseSalt_(noiseSalt), noiseAmp_(noiseAmp)
    {}

    std::string name() const override { return name_; }

    double
    predict(const bb::BasicBlock &blk, bool /*loop*/) const override
    {
        const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);

        // Dispatch bound: unfused µops through the issue stage (the
        // model does not know about micro or macro fusion).
        double dispatch =
            static_cast<double>(unfusedUops(blk)) / cfg.issueWidth;

        // Port contention with greedy placement; eliminated moves are
        // dispatched like ordinary µops (no move-elimination model).
        double portBound = greedyPortBound(blk, false);

        // Loop-carried dependence height with skewed latencies.
        model::PrecedenceResult pr = model::precedence(blk);
        double depBound = pr.throughput * latencySkew_;

        double tp = std::max({dispatch, portBound, depBound});
        if (noiseAmp_ > 0.0)
            tp *= noiseFactor(blk, noiseAmp_, noiseSalt_);
        return tp;
    }

  private:
    std::string name_;
    double latencySkew_;
    std::uint64_t noiseSalt_;
    double noiseAmp_;
};

/**
 * CQA-like: detailed front-end model (predecode, decode, DSB) and port
 * pressure, but no back-end model ("because of its complexity and lack
 * of documentation"). Its DECAN-style analysis does count instructions
 * on dependency paths, which we model as a dependence bound with
 * coarse, clamped latencies — it catches chains of simple operations
 * but underestimates high-latency ones.
 */
class CqaLike : public ThroughputPredictor
{
  public:
    std::string name() const override { return "CQA-like"; }

    double
    predict(const bb::BasicBlock &blk, bool loop) const override
    {
        model::ModelConfig cfg = {};
        cfg.usePrecedence = false;
        double tp = model::predict(blk, loop, cfg).throughput;

        // Coarse dependence bound: every instruction latency clamped
        // to 3 cycles (the tool has no per-µarch latency tables).
        bb::BasicBlock coarse = blk;
        for (std::size_t i = 0; i < coarse.insts.size(); ++i) {
            uops::InstrInfo &info = coarse.mutableInfo(i);
            info.latency = std::min(info.latency, 3);
        }
        tp = std::max(tp, model::precedence(coarse).throughput);
        return tp;
    }
};

/**
 * OSACA-like: analytical port-pressure model with optimal distribution
 * plus the issue bound; no front end, no loop-carried dependence bound.
 * OSACA additionally reports a critical-path number but does not fold
 * it into the throughput prediction.
 */
class OsacaLike : public ThroughputPredictor
{
  public:
    std::string name() const override { return "OSACA-like"; }

    double
    predict(const bb::BasicBlock &blk, bool /*loop*/) const override
    {
        double portBound = model::ports(blk).throughput;
        double issueBound = model::issue(blk);
        return std::max(portBound, issueBound);
    }
};

/**
 * Ithemal-like: stands in for the LSTM regressor. Uses a feature-based
 * estimate (the back-end bounds blended the way a learned model
 * interpolates) with deterministic pseudo-noise of the magnitude
 * reported for Ithemal; trained on unrolled (TPU) measurements, so TPL
 * benchmarks inherit the TPU-biased front-end blindness.
 */
class IthemalLike : public ThroughputPredictor
{
  public:
    std::string name() const override { return "Ithemal-like"; }

    double
    predict(const bb::BasicBlock &blk, bool /*loop*/) const override
    {
        const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
        double issueBound =
            static_cast<double>(blk.issueUops()) / cfg.issueWidth;
        double portBound = model::ports(blk).throughput;
        double depBound = model::precedence(blk).throughput;
        // Trained on *unrolled* measurements, the network learned the
        // legacy-decode front end as a feature — and applies it to loop
        // benchmarks too, where the DSB/LSD actually feed the pipeline.
        // That asymmetry is why Ithemal is markedly worse on BHiveL.
        double fe = model::predec(blk, true);
        // A regressor interpolates rather than taking a hard max.
        double tp = std::max({issueBound, portBound, depBound, fe});
        double slack = issueBound + portBound + depBound - 2.0 * tp;
        tp += 0.1 * std::max(0.0, slack);
        return tp * noiseFactor(blk, 0.10, 0x17e3a1);
    }
};

/**
 * learning-bl-like: the simple baseline of [7] — per-µop counts with a
 * single fixed port model (Skylake's) applied to every
 * microarchitecture, no front end, no dependence analysis.
 */
class LearningBlLike : public ThroughputPredictor
{
  public:
    std::string name() const override { return "learning-bl-like"; }

    double
    predict(const bb::BasicBlock &blk, bool /*loop*/) const override
    {
        // Re-annotate against one fixed (Haswell) database regardless of
        // the target µarch: the per-opcode parameters were fit once, and
        // carry residual fitting noise.
        bb::BasicBlock refBlk = bb::analyze(blk.bytes, uarch::UArch::HSW);
        double portBound = model::ports(refBlk).throughput;
        double issueBound = static_cast<double>(refBlk.issueUops()) / 4.0;
        double depBound = model::precedence(refBlk).throughput *
                          noiseFactor(blk, 0.12, 0x2f9e11);
        return std::max({portBound, issueBound, depBound});
    }
};

/**
 * DiffTune-like: llvm-mca with learned parameters. The learned latency
 * and dispatch parameters fit the unrolled training distribution but
 * transfer poorly, drastically so for loop benchmarks (cf. the >100%
 * BHiveL MAPE in Table 2): the learned dispatch width under-estimates
 * effective loop throughput sources (LSD/DSB), inflating predictions.
 */
class DiffTuneLike : public ThroughputPredictor
{
  public:
    std::string name() const override { return "DiffTune-like"; }

    double
    predict(const bb::BasicBlock &blk, bool loop) const override
    {
        // Learned per-mnemonic latencies: deterministic multiplicative
        // distortion in [0.4, 2.2].
        double dep = model::precedence(blk).throughput;
        double depLearned = dep * noiseFactor(blk, 0.9, 0x9d1f07);

        // Learned dispatch cost per µop (absorbed front-end effects of
        // the training set into a constant).
        const double learnedDispatchCost = loop ? 0.55 : 0.31;
        double dispatch = unfusedUops(blk) * learnedDispatchCost;

        double portBound = greedyPortBound(blk, false) *
                           noiseFactor(blk, 0.4, 0x55aa33);

        return std::max({dispatch, portBound, depLearned});
    }
};

} // namespace

std::vector<std::unique_ptr<ThroughputPredictor>>
makeBaselines()
{
    std::vector<std::unique_ptr<ThroughputPredictor>> v;
    // The shipped scheduling models mis-state several latencies; a 15%
    // average skew reproduces that class of error.
    v.push_back(std::make_unique<LlvmMcaLike>("llvm-mca-like", 1.15));
    v.push_back(std::make_unique<CqaLike>());
    v.push_back(std::make_unique<OsacaLike>());
    v.push_back(std::make_unique<IthemalLike>());
    v.push_back(std::make_unique<LearningBlLike>());
    v.push_back(std::make_unique<DiffTuneLike>());
    return v;
}

std::unique_ptr<ThroughputPredictor>
makeBaseline(const std::string &name)
{
    for (auto &p : makeBaselines())
        if (p->name() == name)
            return std::move(p);
    if (name == "Facile")
        return std::make_unique<FacilePredictor>();
    if (name == "uiCA-like (ref. sim)")
        return std::make_unique<SimulatorPredictor>();
    throw std::invalid_argument("unknown predictor: " + name);
}

} // namespace facile::baselines
