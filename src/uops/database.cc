/**
 * @file
 * Per-family instruction tables.
 *
 * Port layouts per family (documented substitution for uops.info):
 *
 *   SnB/IvB (6 ports):  p0,p1,p5 compute; p2,p3 load+AGU; p4 store data
 *   HSW/BDW (8 ports):  p0,p1,p5,p6 int ALU; p0,p1 FP; p5 shuffle;
 *                       p2,p3 load+AGU; p7 store AGU; p4 store data
 *   SKL/CLX (8 ports):  as HSW with FP add/mul unified on p0,p1
 *   ICL/TGL/RKL (10):   p0,p1,p5,p6 int ALU; p2,p3 load; p7,p8 store AGU;
 *                       p4,p9 store data; shuffles on p1,p5
 */
#include "uops/info.h"

#include "isa/semantics.h"

namespace facile::uops {

namespace {

using isa::Inst;
using isa::Mnemonic;
using uarch::MicroArchConfig;
using uarch::UArchFamily;

constexpr PortMask
mask(std::initializer_list<int> ports)
{
    PortMask m = 0;
    for (int p : ports)
        m |= static_cast<PortMask>(1u << p);
    return m;
}

/** Port sets for the µop classes of one family. */
struct PortClasses
{
    PortMask alu, shift, branch, imul, lea, leaSlow;
    PortMask fpAdd, fpMul, fma, fpDiv;
    PortMask vecLogic, vecIntAdd, vecIntMul, vecShift, shuffle;
    PortMask load, storeAgu, storeData, movd;
    int fpAddLat, fpMulLat, fmaLat;
    int divF32Lat, divF64Lat, sqrtF32Lat, sqrtF64Lat;
};

const PortClasses &
portClasses(UArchFamily f)
{
    static const PortClasses snb = {
        .alu = mask({0, 1, 5}),
        .shift = mask({0, 5}),
        .branch = mask({5}),
        .imul = mask({1}),
        .lea = mask({0, 1}),
        .leaSlow = mask({1}),
        .fpAdd = mask({1}),
        .fpMul = mask({0}),
        .fma = mask({0}), // no FMA hardware; modeled on the FP-mul port
        .fpDiv = mask({0}),
        .vecLogic = mask({0, 1, 5}),
        .vecIntAdd = mask({1, 5}),
        .vecIntMul = mask({0}),
        .vecShift = mask({0}),
        .shuffle = mask({5}),
        .load = mask({2, 3}),
        .storeAgu = mask({2, 3}),
        .storeData = mask({4}),
        .movd = mask({0}),
        .fpAddLat = 3,
        .fpMulLat = 5,
        .fmaLat = 5,
        .divF32Lat = 14,
        .divF64Lat = 22,
        .sqrtF32Lat = 14,
        .sqrtF64Lat = 21,
    };
    static const PortClasses hsw = {
        .alu = mask({0, 1, 5, 6}),
        .shift = mask({0, 6}),
        .branch = mask({0, 6}),
        .imul = mask({1}),
        .lea = mask({1, 5}),
        .leaSlow = mask({1}),
        .fpAdd = mask({1}),
        .fpMul = mask({0, 1}),
        .fma = mask({0, 1}),
        .fpDiv = mask({0}),
        .vecLogic = mask({0, 1, 5}),
        .vecIntAdd = mask({1, 5}),
        .vecIntMul = mask({0}),
        .vecShift = mask({0}),
        .shuffle = mask({5}),
        .load = mask({2, 3}),
        .storeAgu = mask({2, 3, 7}),
        .storeData = mask({4}),
        .movd = mask({0}),
        .fpAddLat = 3,
        .fpMulLat = 5,
        .fmaLat = 5,
        .divF32Lat = 13,
        .divF64Lat = 20,
        .sqrtF32Lat = 13,
        .sqrtF64Lat = 19,
    };
    static const PortClasses skl = {
        .alu = mask({0, 1, 5, 6}),
        .shift = mask({0, 6}),
        .branch = mask({0, 6}),
        .imul = mask({1}),
        .lea = mask({1, 5}),
        .leaSlow = mask({1}),
        .fpAdd = mask({0, 1}),
        .fpMul = mask({0, 1}),
        .fma = mask({0, 1}),
        .fpDiv = mask({0}),
        .vecLogic = mask({0, 1, 5}),
        .vecIntAdd = mask({0, 1, 5}),
        .vecIntMul = mask({0, 1}),
        .vecShift = mask({0, 1}),
        .shuffle = mask({5}),
        .load = mask({2, 3}),
        .storeAgu = mask({2, 3, 7}),
        .storeData = mask({4}),
        .movd = mask({0}),
        .fpAddLat = 4,
        .fpMulLat = 4,
        .fmaLat = 4,
        .divF32Lat = 11,
        .divF64Lat = 14,
        .sqrtF32Lat = 12,
        .sqrtF64Lat = 15,
    };
    static const PortClasses icl = {
        .alu = mask({0, 1, 5, 6}),
        .shift = mask({0, 6}),
        .branch = mask({0, 6}),
        .imul = mask({1}),
        .lea = mask({1, 5}),
        .leaSlow = mask({1}),
        .fpAdd = mask({0, 1}),
        .fpMul = mask({0, 1}),
        .fma = mask({0, 1}),
        .fpDiv = mask({0}),
        .vecLogic = mask({0, 1, 5}),
        .vecIntAdd = mask({0, 1, 5}),
        .vecIntMul = mask({0, 1}),
        .vecShift = mask({0, 1}),
        .shuffle = mask({1, 5}),
        .load = mask({2, 3}),
        .storeAgu = mask({7, 8}),
        .storeData = mask({4, 9}),
        .movd = mask({0}),
        .fpAddLat = 4,
        .fpMulLat = 4,
        .fmaLat = 4,
        .divF32Lat = 11,
        .divF64Lat = 14,
        .sqrtF32Lat = 12,
        .sqrtF64Lat = 15,
    };
    switch (f) {
      case UArchFamily::SnB:
        return snb;
      case UArchFamily::HSW:
        return hsw;
      case UArchFamily::SKL:
        return skl;
      case UArchFamily::ICL:
        return icl;
    }
    return skl;
}

/** Compute-part description of an instruction (register form). */
struct ComputeDesc
{
    int uops = 0;        ///< number of compute µops
    PortMask ports = 0;  ///< ports of each compute µop
    PortMask ports2 = 0; ///< ports of the 2nd µop, if different
    int latency = 1;
    bool eliminated = false; ///< handled at rename (no ports, lat 0)
};

/** Whether a scalar FP mnemonic operates on F32 or F64 lanes. */
bool
isF64(Mnemonic m)
{
    switch (m) {
      case Mnemonic::ADDPD: case Mnemonic::ADDSD: case Mnemonic::SUBPD:
      case Mnemonic::SUBSD: case Mnemonic::MULPD: case Mnemonic::MULSD:
      case Mnemonic::DIVPD: case Mnemonic::DIVSD: case Mnemonic::SQRTPD:
      case Mnemonic::SQRTSD: case Mnemonic::MOVAPD: case Mnemonic::MOVSD:
      case Mnemonic::VADDPD: case Mnemonic::VADDSD: case Mnemonic::VMULPD:
      case Mnemonic::VMULSD: case Mnemonic::VDIVSD: case Mnemonic::VSQRTPD:
      case Mnemonic::VFMADD231PD: case Mnemonic::VFMADD231SD:
        return true;
      default:
        return false;
    }
}

/** Compute-part description for the register form of @p inst. */
ComputeDesc
computeDesc(const Inst &inst, const MicroArchConfig &cfg,
            const PortClasses &pc)
{
    using M = Mnemonic;
    ComputeDesc d;
    d.uops = 1;
    d.ports = pc.alu;
    d.latency = 1;

    const bool regRegMov =
        inst.ops.size() == 2 && inst.ops[0].isReg() && inst.ops[1].isReg();

    if (isa::isZeroIdiom(inst)) {
        d.uops = 1;
        d.eliminated = true;
        d.latency = 0;
        return d;
    }

    switch (inst.mnem) {
      case M::ADD: case M::SUB: case M::AND: case M::OR: case M::XOR:
      case M::CMP: case M::TEST: case M::INC: case M::DEC: case M::NEG:
      case M::NOT: case M::SETCC:
        break; // 1 ALU µop, latency 1

      case M::MOVZX:
      case M::MOVSX:
        if (inst.ops.size() == 2 && inst.ops[1].isMem()) {
            d.uops = 0; // the load µop performs the extension
            d.latency = 0;
        }
        break;

      case M::MOV:
        if (regRegMov && inst.ops[0].reg.isGpr() && cfg.gprMovElim &&
            inst.ops[0].reg.width() >= 4) {
            d.eliminated = true;
            d.latency = 0;
        } else if (inst.hasMemOperand()) {
            d.uops = 0; // pure load or pure store
            d.latency = 0;
        }
        break;

      case M::ADC: case M::SBB:
        if (cfg.adcTwoUops) {
            d.uops = 2;
            d.latency = 2;
        }
        break;

      case M::CMOVCC:
        if (cfg.cmovTwoUops) {
            d.uops = 2;
            d.latency = 2;
        }
        break;

      case M::LEA: {
        const isa::MemOp *m = inst.memOperand();
        bool slow = m && m->base.valid() && m->index.valid() && m->disp != 0;
        if (slow) {
            d.ports = pc.leaSlow;
            d.latency = 3;
        } else {
            d.ports = pc.lea;
            d.latency = 1;
        }
        break;
      }

      case M::IMUL:
        if (inst.ops.size() == 1) {
            d.uops = 2;
            d.ports = pc.imul;
            d.ports2 = pc.alu;
            d.latency = 3;
        } else {
            d.ports = pc.imul;
            d.latency = 3;
        }
        break;

      case M::MUL:
        d.uops = 2;
        d.ports = pc.imul;
        d.ports2 = pc.alu;
        d.latency = 3;
        break;

      case M::DIV:
      case M::IDIV: {
        bool wide = inst.operandWidth() == 8;
        d.uops = wide ? 36 : 10;
        d.ports = pc.fpDiv; // the integer divider shares port 0
        d.ports2 = pc.alu;
        d.latency = wide ? 40 : 26;
        break;
      }

      case M::SHL: case M::SHR: case M::SAR: case M::ROL: case M::ROR:
        d.ports = pc.shift;
        if (inst.ops.size() == 2 && inst.ops[1].isReg())
            d.uops = 2; // shift by CL carries a flags-merge µop
        break;

      case M::XCHG:
        d.uops = 3;
        d.latency = 2;
        break;

      case M::BSWAP:
        if (inst.operandWidth() == 8) {
            d.uops = 2;
            d.latency = 2;
        }
        break;

      case M::BSF: case M::BSR: case M::POPCNT: case M::LZCNT:
      case M::TZCNT:
        d.ports = pc.imul;
        d.latency = 3;
        break;

      case M::NOP:
        d.uops = 1;
        d.eliminated = true;
        d.latency = 0;
        break;

      case M::JCC: case M::JMP:
        d.ports = pc.branch;
        break;

      case M::CALL:
        // Store of the return address plus the branch µop; the store part
        // is added by the memory-form logic via isStore().
        d.ports = pc.branch;
        break;

      case M::RET:
        d.uops = 2;
        d.ports = pc.load;
        d.ports2 = pc.branch;
        d.latency = 2;
        break;

      case M::PUSH: case M::POP:
        d.uops = 0; // pure stack store/load; memory µops added below
        break;

      // ---- vector / FP ----
      case M::MOVAPS: case M::MOVUPS: case M::MOVAPD:
      case M::VMOVAPS: case M::VMOVUPS:
        if (regRegMov && cfg.vecMovElim) {
            d.eliminated = true;
            d.latency = 0;
        } else if (inst.hasMemOperand()) {
            d.uops = 0; // pure vector load or store
            d.latency = 0;
        } else {
            d.ports = pc.vecLogic;
        }
        break;

      case M::MOVSS: case M::MOVSD:
        if (regRegMov)
            d.ports = pc.shuffle; // merge into low lane
        else
            d.uops = 0; // pure load/store
        break;

      case M::ADDPS: case M::ADDPD: case M::ADDSS: case M::ADDSD:
      case M::SUBPS: case M::SUBPD: case M::SUBSD:
      case M::MINPS: case M::MAXPS:
      case M::VADDPS: case M::VADDPD: case M::VADDSD: case M::VSUBPS:
        d.ports = pc.fpAdd;
        d.latency = pc.fpAddLat;
        break;

      case M::MULPS: case M::MULPD: case M::MULSS: case M::MULSD:
      case M::VMULPS: case M::VMULPD: case M::VMULSD:
        d.ports = pc.fpMul;
        d.latency = pc.fpMulLat;
        break;

      case M::VFMADD231PS: case M::VFMADD231PD: case M::VFMADD231SD:
        d.ports = pc.fma;
        d.latency = pc.fmaLat;
        break;

      case M::DIVPS: case M::DIVSS: case M::VDIVPS:
        d.ports = pc.fpDiv;
        d.latency = pc.divF32Lat;
        break;
      case M::DIVPD: case M::DIVSD: case M::VDIVSD:
        d.ports = pc.fpDiv;
        d.latency = pc.divF64Lat;
        break;
      case M::SQRTPS:
        d.ports = pc.fpDiv;
        d.latency = pc.sqrtF32Lat;
        break;
      case M::SQRTPD: case M::SQRTSD: case M::VSQRTPD:
        d.ports = pc.fpDiv;
        d.latency = pc.sqrtF64Lat;
        break;

      case M::ANDPS: case M::ORPS: case M::XORPS:
      case M::PXOR: case M::PAND: case M::POR:
      case M::VANDPS: case M::VXORPS: case M::VPXOR:
        d.ports = pc.vecLogic;
        break;

      case M::PADDD: case M::PADDQ: case M::PSUBD: case M::VPADDD:
        d.ports = pc.vecIntAdd;
        break;

      case M::PMULLD: case M::VPMULLD:
        d.ports = pc.vecIntMul;
        d.latency = cfg.family == UArchFamily::SnB ? 5 : 10;
        break;

      case M::PSLLD: case M::PSRLD:
        d.ports = pc.vecShift;
        break;

      case M::SHUFPS: case M::PUNPCKLDQ:
        d.ports = pc.shuffle;
        break;

      case M::CVTSI2SD:
        d.uops = 2;
        d.ports = pc.imul;
        d.ports2 = pc.shuffle;
        d.latency = 5;
        break;

      case M::CVTTSD2SI:
        d.uops = 2;
        d.ports = pc.movd;
        d.ports2 = pc.imul;
        d.latency = 6;
        break;

      case M::MOVD: case M::MOVQ:
        d.ports = pc.movd;
        d.latency = 2;
        break;

      case M::kNumMnemonics:
        break;
    }

    (void)isF64; // latency selection above is explicit per mnemonic
    return d;
}

} // namespace

bool
macroFusesWith(const Inst &first, const Inst &jcc,
               const MicroArchConfig &cfg)
{
    using M = Mnemonic;
    using isa::Cond;
    if (jcc.mnem != M::JCC)
        return false;

    // Instructions with RIP-relative or immediate+memory forms are
    // excluded in hardware; the SnB family does not fuse memory forms.
    bool hasMem = first.hasMemOperand();
    bool hasImm = !first.ops.empty() && first.ops.back().isImm();
    if (hasMem && (hasImm || cfg.family == UArchFamily::SnB))
        return false;

    auto ccReadsCf = [&] {
        switch (jcc.cc) {
          case Cond::B: case Cond::NB: case Cond::BE: case Cond::NBE:
            return true;
          default:
            return false;
        }
    };
    auto ccTestsSignOverflowParity = [&] {
        switch (jcc.cc) {
          case Cond::S: case Cond::NS: case Cond::P: case Cond::NP:
          case Cond::O: case Cond::NO:
            return true;
          default:
            return false;
        }
    };

    switch (first.mnem) {
      case M::TEST:
      case M::AND:
        return true; // fuse with all condition codes
      case M::CMP:
      case M::ADD:
      case M::SUB:
        return !ccTestsSignOverflowParity();
      case M::INC:
      case M::DEC:
        return !ccReadsCf() && !ccTestsSignOverflowParity();
      default:
        return false;
    }
}

InstrInfo
lookup(const Inst &inst, const MicroArchConfig &cfg)
{
    using M = Mnemonic;
    const PortClasses &pc = portClasses(cfg.family);
    ComputeDesc d = computeDesc(inst, cfg, pc);

    InstrInfo info;
    info.latency = d.latency;

    const bool hasLoad = inst.isLoad();
    const bool hasStore = inst.isStore();
    const bool indexed = [&] {
        const isa::MemOp *m = inst.memOperand();
        return m && m->index.valid();
    }();
    // PUSH/POP/CALL/RET use the stack engine: rsp-relative, never indexed.
    const bool stackOp = inst.mnem == M::PUSH || inst.mnem == M::POP ||
                         inst.mnem == M::CALL || inst.mnem == M::RET;

    // --- unfused execution µops -----------------------------------------
    if (d.eliminated) {
        info.eliminated = true;
    } else {
        for (int i = 0; i < d.uops; ++i) {
            PortMask p = (i == 1 && d.ports2) ? d.ports2 : d.ports;
            info.portUops.push_back({p, UopKind::Compute});
        }
    }
    if (hasLoad && inst.mnem != M::RET) // RET's load is in its compute µops
        info.portUops.insert(info.portUops.begin(),
                             {pc.load, UopKind::Load});
    if (hasStore) {
        info.portUops.push_back({pc.storeAgu, UopKind::StoreAddr});
        info.portUops.push_back({pc.storeData, UopKind::StoreData});
    }

    // --- fused-domain µop counts -----------------------------------------
    // Decode-time fused-domain count: micro-fusion keeps a load combined
    // with its compute µop, and a store's address and data µops combined.
    int fused = d.uops;
    if (d.eliminated)
        fused = 1;
    if (hasLoad && inst.mnem != M::RET) {
        if (d.uops == 0)
            fused += 1; // pure load
        // otherwise the load micro-fuses with the first compute µop
    }
    if (hasStore)
        fused += 1; // store-address + store-data micro-fused pair
    if (inst.mnem == M::RET)
        fused = 2;
    if (fused == 0)
        fused = 1;
    info.fusedUops = fused;

    // --- unlamination ------------------------------------------------------
    // Micro-fused pairs with indexed addressing are split ("unlaminated")
    // before issue: on SnB/IvB all of them, on later families only the
    // store-address/store-data pairs and RMW forms.
    int issue = fused;
    if (indexed && !stackOp) {
        if (cfg.family == UArchFamily::SnB) {
            if (hasLoad && d.uops > 0)
                issue += 1;
            if (hasStore)
                issue += 1;
        } else {
            if (hasStore)
                issue += 1;
        }
    }
    info.issueUops = issue;

    // --- decoder requirements ---------------------------------------------
    info.needsComplexDecoder = info.fusedUops > 1;
    if (info.fusedUops <= 2)
        info.nAvailableSimpleDecoders = cfg.nDecoders - 1;
    else if (info.fusedUops == 3)
        info.nAvailableSimpleDecoders = 1;
    else
        info.nAvailableSimpleDecoders = 0; // microcoded / long flows

    // --- macro fusion -------------------------------------------------------
    switch (inst.mnem) {
      case M::CMP: case M::TEST: case M::ADD: case M::SUB: case M::AND:
      case M::INC: case M::DEC:
        info.macroFusible = !(inst.hasMemOperand() &&
                              cfg.family == UArchFamily::SnB);
        break;
      default:
        info.macroFusible = false;
        break;
    }

    return info;
}

} // namespace facile::uops
