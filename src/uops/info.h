/**
 * @file
 * Instruction characteristics database (uops.info substitute).
 *
 * For every (instruction, microarchitecture) pair, provides the data
 * Facile's component predictors and the reference simulator consume:
 * µop decomposition (fused-domain at decode, fused-domain after
 * unlamination, unfused execution µops with their port sets), compute
 * latency, decoder requirements, macro-fusion capability, and
 * rename-time elimination.
 *
 * Values are synthesized per microarchitecture family from public
 * documentation of these designs (see database.cc); Facile and the
 * simulator read the same tables, mirroring the role uops.info plays
 * for the original Facile and real hardware.
 */
#ifndef FACILE_UOPS_INFO_H
#define FACILE_UOPS_INFO_H

#include <vector>

#include "isa/inst.h"
#include "uarch/config.h"

namespace facile::uops {

using uarch::PortMask;

/** Role of an unfused µop (used by the simulator for timing). */
enum class UopKind : std::uint8_t {
    Compute,
    Load,
    StoreAddr,
    StoreData,
};

/** One unfused µop: the set of ports it may dispatch to, plus its role. */
struct Uop
{
    PortMask ports = 0;
    UopKind kind = UopKind::Compute;
};

/** Characteristics of one instruction on one microarchitecture. */
struct InstrInfo
{
    /** Fused-domain µops produced by the decoders (pre-unlamination). */
    int fusedUops = 1;

    /** Fused-domain µops at the issue stage (after unlamination). */
    int issueUops = 1;

    /**
     * Unfused µops that occupy execution ports. Empty for µops executed
     * by the renamer (eliminated moves, NOPs, zero idioms).
     */
    std::vector<Uop> portUops;

    /** Latency from register sources to the result, in cycles. */
    int latency = 1;

    /** True if decoding requires the complex decoder. */
    bool needsComplexDecoder = false;

    /**
     * Number of simple decoders available for subsequent instructions in
     * the same cycle after this instruction used the complex decoder
     * (cf. Algorithm 1, line 12).
     */
    int nAvailableSimpleDecoders = 3;

    /** May macro-fuse with a directly following conditional branch. */
    bool macroFusible = false;

    /** Executed by the renamer; consumes no execution port. */
    bool eliminated = false;
};

/** Look up the characteristics of @p inst on @p cfg. */
InstrInfo lookup(const isa::Inst &inst, const uarch::MicroArchConfig &cfg);

/**
 * True if @p first macro-fuses with the directly following conditional
 * branch @p jcc on @p cfg (fusibility of the first instruction combined
 * with the condition-code restrictions of the pair).
 */
bool macroFusesWith(const isa::Inst &first, const isa::Inst &jcc,
                    const uarch::MicroArchConfig &cfg);

} // namespace facile::uops

#endif // FACILE_UOPS_INFO_H
