#include "bhive/generator.h"

#include <array>

#include "isa/builder.h"
#include "isa/encoder.h"
#include "support/rng.h"

namespace facile::bhive {

namespace {

using namespace facile::isa;
using facile::Rng;

// R15 is reserved as the loop counter of the L variant; RSP is reserved
// for (balanced) stack traffic.
const std::vector<Reg> kGprPool = {RAX, RBX, RCX, RDX, RSI, RDI,
                                   R8,  R9,  R10, R11, R12, R13, R14};
const std::vector<Reg> kBasePool = {RBX, RSI, RDI, R12, R13, R14};

Reg
vecReg(Rng &rng)
{
    return xmm(static_cast<int>(rng.below(8)));
}

Reg
gpr64(Rng &rng)
{
    return rng.pick(kGprPool);
}

Reg
gpr32(Rng &rng)
{
    Reg r = gpr64(rng);
    return gpr(4, r.idx);
}

MemOp
randomMem(Rng &rng, int width)
{
    Reg base = rng.pick(kBasePool);
    if (rng.chance(0.35)) {
        Reg index = rng.pick(kGprPool);
        if (index.idx == base.idx || index.idx == 4)
            index = RCX;
        int scale = 1 << rng.below(4);
        return memIdx(base, index, scale,
                      static_cast<std::int32_t>(rng.range(0, 15)) * 8,
                      width);
    }
    return mem(base, static_cast<std::int32_t>(rng.range(-16, 64)), width);
}

/** Per-category instruction generators. Each returns one instruction. */
Inst
genScalarAlu(Rng &rng)
{
    switch (rng.below(10)) {
      case 0:
        return make(Mnemonic::ADD, {R(gpr64(rng)), R(gpr64(rng))});
      case 1:
        return make(Mnemonic::SUB, {R(gpr64(rng)), R(gpr64(rng))});
      case 2:
        return make(Mnemonic::AND, {R(gpr32(rng)), R(gpr32(rng))});
      case 3:
        return make(Mnemonic::OR, {R(gpr64(rng)), R(gpr64(rng))});
      case 4:
        return make(Mnemonic::MOV, {R(gpr64(rng)), R(gpr64(rng))});
      case 5:
        return make(Mnemonic::LEA,
                    {R(gpr64(rng)), M(memIdx(rng.pick(kBasePool), RCX, 4,
                                             rng.chance(0.5) ? 8 : 0))});
      case 6:
        return make(Mnemonic::XOR, {R(gpr32(rng)),
                                    autoImm(rng.range(1, 4000), 4)});
      case 7:
        return make(Mnemonic::CMP, {R(gpr64(rng)),
                                    autoImm(rng.range(0, 100), 8)});
      case 8:
        return makeCC(Mnemonic::CMOVCC,
                      static_cast<Cond>(4 + rng.below(4)),
                      {R(gpr64(rng)), R(gpr64(rng))});
      default:
        return make(Mnemonic::MOVZX, {R(gpr64(rng)),
                                      R(gpr(1, gpr64(rng).idx))});
    }
}

Inst
genDepChain(Rng &rng, Reg chainReg)
{
    switch (rng.below(6)) {
      case 0:
        return make(Mnemonic::IMUL, {R(chainReg), R(chainReg)});
      case 1:
        return make(Mnemonic::ADD, {R(chainReg), R(gpr64(rng))});
      case 2:
        return make(Mnemonic::ADD, {R(chainReg),
                                    autoImm(rng.range(1, 100), 8)});
      case 3:
        return make(Mnemonic::LEA,
                    {R(chainReg), M(memIdx(chainReg, chainReg, 2, 0))});
      case 4:
        return make(Mnemonic::SHL, {R(chainReg), I(rng.range(1, 7), 1)});
      default:
        return make(Mnemonic::POPCNT, {R(chainReg), R(chainReg)});
    }
}

Inst
genLoadHeavy(Rng &rng)
{
    switch (rng.below(5)) {
      case 0:
        return make(Mnemonic::MOV, {R(gpr64(rng)), M(randomMem(rng, 8))});
      case 1:
        return make(Mnemonic::MOV, {R(gpr32(rng)), M(randomMem(rng, 4))});
      case 2:
        return make(Mnemonic::ADD, {R(gpr64(rng)), M(randomMem(rng, 8))});
      case 3:
        return make(Mnemonic::MOVZX, {R(gpr64(rng)),
                                      M(randomMem(rng, 1))});
      default:
        return make(Mnemonic::CMP, {R(gpr64(rng)), M(randomMem(rng, 8))});
    }
}

Inst
genStoreHeavy(Rng &rng)
{
    switch (rng.below(4)) {
      case 0:
        return make(Mnemonic::MOV, {M(randomMem(rng, 8)), R(gpr64(rng))});
      case 1:
        return make(Mnemonic::MOV, {M(randomMem(rng, 4)), R(gpr32(rng))});
      case 2:
        return make(Mnemonic::MOV,
                    {M(randomMem(rng, 4)), autoImm(rng.range(0, 4000), 4)});
      default:
        return make(Mnemonic::ADD, {M(randomMem(rng, 8)), R(gpr64(rng))});
    }
}

Inst
genNumerical(Rng &rng)
{
    Reg a = vecReg(rng), b = vecReg(rng), c = vecReg(rng);
    switch (rng.below(9)) {
      case 0:
        return make(Mnemonic::MULSD, {R(a), R(b)});
      case 1:
        return make(Mnemonic::ADDSD, {R(a), R(b)});
      case 2:
        return make(Mnemonic::ADDPD, {R(a), R(b)});
      case 3:
        return make(Mnemonic::MULPS, {R(a), R(b)});
      case 4:
        return make(Mnemonic::VFMADD231PD, {R(a), R(b), R(c)});
      case 5:
        return make(Mnemonic::MOVAPS, {R(a), R(b)});
      case 6:
        return make(Mnemonic::MOVSD, {R(a), M(randomMem(rng, 8))});
      case 7:
        return make(Mnemonic::VADDPS, {R(a), R(b), R(c)});
      default:
        return rng.chance(0.2)
                   ? make(Mnemonic::DIVSD, {R(a), R(b)})
                   : make(Mnemonic::VMULPD, {R(a), R(b), R(c)});
    }
}

Inst
genVectorInt(Rng &rng)
{
    Reg a = vecReg(rng), b = vecReg(rng), c = vecReg(rng);
    switch (rng.below(8)) {
      case 0:
        return make(Mnemonic::PADDD, {R(a), R(b)});
      case 1:
        return make(Mnemonic::PXOR, {R(a), R(b)});
      case 2:
        return make(Mnemonic::PAND, {R(a), R(b)});
      case 3:
        return make(Mnemonic::PMULLD, {R(a), R(b)});
      case 4:
        return make(Mnemonic::PSLLD, {R(a), I(rng.range(1, 15), 1)});
      case 5:
        return make(Mnemonic::SHUFPS, {R(a), R(b), I(rng.range(0, 255), 1)});
      case 6:
        return make(Mnemonic::VPADDD, {R(a), R(b), R(c)});
      default:
        return make(Mnemonic::MOVUPS, {R(a), M(randomMem(rng, 16))});
    }
}

Inst
genHashing(Rng &rng)
{
    switch (rng.below(7)) {
      case 0:
        return make(Mnemonic::ROL, {R(gpr64(rng)), I(rng.range(1, 31), 1)});
      case 1:
        return make(Mnemonic::SHR, {R(gpr64(rng)), I(rng.range(1, 31), 1)});
      case 2:
        return make(Mnemonic::IMUL, {R(gpr64(rng)), R(gpr64(rng)),
                                     I(rng.range(3, 127), 1)});
      case 3:
        return make(Mnemonic::XOR, {R(gpr64(rng)), R(gpr64(rng))});
      case 4:
        return make(Mnemonic::BSWAP, {R(gpr64(rng))});
      case 5:
        return make(Mnemonic::LZCNT, {R(gpr64(rng)), R(gpr64(rng))});
      default:
        return make(Mnemonic::ADD, {R(gpr64(rng)), R(gpr64(rng))});
    }
}

Inst
genDecodeStress(Rng &rng)
{
    switch (rng.below(6)) {
      case 0: // RMW: 2 fused µops, complex decoder
        return make(Mnemonic::ADD, {M(randomMem(rng, 8)), R(gpr64(rng))});
      case 1:
        return make(Mnemonic::XCHG, {R(gpr64(rng)), R(gpr64(rng))});
      case 2:
        return make(Mnemonic::PUSH, {R(gpr64(rng))});
      case 3:
        return make(Mnemonic::POP, {R(gpr64(rng))});
      case 4:
        return make(Mnemonic::MUL, {R(gpr64(rng))});
      default:
        return make(Mnemonic::SHL, {R(gpr64(rng)), R(CL)});
    }
}

Inst
genLcpStress(Rng &rng)
{
    Reg r16 = gpr(2, gpr64(rng).idx);
    std::int64_t imm16 = rng.range(256, 30000);
    switch (rng.below(4)) {
      case 0:
        return make(Mnemonic::ADD, {R(r16), I(imm16, 2)});
      case 1:
        return make(Mnemonic::CMP, {R(r16), I(imm16, 2)});
      case 2:
        return make(Mnemonic::MOV, {R(r16), I(imm16, 2)});
      default:
        // Non-LCP filler so LCP density varies.
        return make(Mnemonic::ADD, {R(gpr64(rng)), R(gpr64(rng))});
    }
}

std::string
pad4(int v)
{
    std::string s = std::to_string(v);
    return std::string(4 - s.size(), '0') + s;
}

} // namespace

std::string
categoryName(Category c)
{
    switch (c) {
      case Category::ScalarAlu: return "scalar_alu";
      case Category::DepChain: return "dep_chain";
      case Category::LoadHeavy: return "load_heavy";
      case Category::StoreHeavy: return "store_heavy";
      case Category::Numerical: return "numerical";
      case Category::VectorInt: return "vector_int";
      case Category::Hashing: return "hashing";
      case Category::DecodeStress: return "decode_stress";
      case Category::LcpStress: return "lcp_stress";
      case Category::Mixed: return "mixed";
      case Category::kNumCategories: break;
    }
    return "<bad>";
}

std::vector<Benchmark>
generateSuite(std::uint64_t seed, int per_category)
{
    std::vector<Benchmark> suite;
    suite.reserve(static_cast<std::size_t>(per_category) * kNumCategories);

    for (int ci = 0; ci < kNumCategories; ++ci) {
        const Category cat = static_cast<Category>(ci);
        for (int k = 0; k < per_category; ++k) {
            Rng rng(seed * 1315423911ULL + ci * 2654435761ULL + k);

            // Block sizes biased toward the small blocks dominating BHive.
            int size;
            switch (rng.below(4)) {
              case 0: size = static_cast<int>(rng.range(1, 4)); break;
              case 1: size = static_cast<int>(rng.range(3, 8)); break;
              case 2: size = static_cast<int>(rng.range(6, 16)); break;
              default: size = static_cast<int>(rng.range(12, 28)); break;
            }

            Benchmark b;
            b.category = cat;
            b.id = categoryName(cat) + "/" + pad4(k);

            Reg chainReg = gpr64(rng);
            int stackDepth = 0;
            for (int n = 0; n < size; ++n) {
                Inst inst = nop();
                Category effective = cat;
                if (cat == Category::Mixed)
                    effective = static_cast<Category>(
                        rng.below(kNumCategories - 1));
                switch (effective) {
                  case Category::ScalarAlu:
                    inst = genScalarAlu(rng);
                    break;
                  case Category::DepChain:
                    inst = rng.chance(0.7) ? genDepChain(rng, chainReg)
                                           : genScalarAlu(rng);
                    break;
                  case Category::LoadHeavy:
                    inst = rng.chance(0.75) ? genLoadHeavy(rng)
                                            : genScalarAlu(rng);
                    break;
                  case Category::StoreHeavy:
                    inst = rng.chance(0.7) ? genStoreHeavy(rng)
                                           : genScalarAlu(rng);
                    break;
                  case Category::Numerical:
                    inst = genNumerical(rng);
                    break;
                  case Category::VectorInt:
                    inst = genVectorInt(rng);
                    break;
                  case Category::Hashing:
                    inst = genHashing(rng);
                    break;
                  case Category::DecodeStress:
                    inst = genDecodeStress(rng);
                    break;
                  case Category::LcpStress:
                    inst = genLcpStress(rng);
                    break;
                  default:
                    inst = genScalarAlu(rng);
                    break;
                }
                // Keep stack traffic balanced within the block.
                if (inst.mnem == Mnemonic::POP && stackDepth == 0)
                    inst = make(Mnemonic::PUSH, {R(gpr64(rng))});
                if (inst.mnem == Mnemonic::PUSH)
                    ++stackDepth;
                else if (inst.mnem == Mnemonic::POP)
                    --stackDepth;
                b.bodyU.push_back(inst);
            }
            while (stackDepth-- > 0)
                b.bodyU.push_back(make(Mnemonic::POP, {R(gpr64(rng))}));

            b.bodyL = b.bodyU;
            b.bodyL.push_back(make(Mnemonic::DEC, {R(R15)}));
            b.bodyL.push_back(backEdge(Cond::NE));

            b.bytesU = encodeBlock(b.bodyU);
            b.bytesL = encodeBlock(b.bodyL);
            suite.push_back(std::move(b));
        }
    }
    return suite;
}

const std::vector<Benchmark> &
defaultSuite()
{
    static const std::vector<Benchmark> suite = generateSuite(20231020, 60);
    return suite;
}

} // namespace facile::bhive
