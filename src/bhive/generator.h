/**
 * @file
 * BHive-substitute benchmark suite (see DESIGN.md section 1).
 *
 * Generates deterministic, stratified basic blocks covering the distinct
 * bottleneck regimes the BHive applications exercise: scalar integer
 * code, dependence chains, load/store-dominated code, vectorized
 * numerical kernels, hash-like bit manipulation, decode- and
 * predecode-stressing instruction mixes, and LCP-carrying immediates.
 *
 * Every benchmark comes in the two variants the paper distinguishes:
 * a U variant (no terminal branch; measured under unrolling, TPU) and an
 * L variant (same body ending in a macro-fusible dec/jnz pair, TPL).
 */
#ifndef FACILE_BHIVE_GENERATOR_H
#define FACILE_BHIVE_GENERATOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/inst.h"

namespace facile::bhive {

/** Workload categories (application domains of the BHive suite). */
enum class Category : int {
    ScalarAlu = 0, ///< compiler-generated-looking scalar integer code
    DepChain,      ///< serial dependence chains (pointer chasing, reductions)
    LoadHeavy,     ///< load-dominated (database/scan-like)
    StoreHeavy,    ///< store-dominated (memset/serialization-like)
    Numerical,     ///< scalar/packed FP (BLAS-like; daxpy, dot, fma)
    VectorInt,     ///< packed integer SIMD (codec-like)
    Hashing,       ///< shifts/rotates/multiplies (hash/crypto-like)
    DecodeStress,  ///< multi-µop instructions stressing the complex decoder
    LcpStress,     ///< 16-bit immediates (length-changing prefixes)
    Mixed,         ///< mixtures of everything above
    kNumCategories,
};

inline constexpr int kNumCategories =
    static_cast<int>(Category::kNumCategories);

/** Category name ("scalar_alu", ...). */
std::string categoryName(Category c);

/** One benchmark in both throughput-notion variants. */
struct Benchmark
{
    std::string id;
    Category category = Category::ScalarAlu;

    std::vector<isa::Inst> bodyU; ///< without terminal branch (TPU)
    std::vector<isa::Inst> bodyL; ///< with dec/jnz back edge (TPL)

    std::vector<std::uint8_t> bytesU;
    std::vector<std::uint8_t> bytesL;
};

/**
 * Generate a deterministic suite with @p per_category benchmarks per
 * category. The same seed always yields the same suite.
 */
std::vector<Benchmark> generateSuite(std::uint64_t seed, int per_category);

/** The default suite used by tests and benches (seed 20231020). */
const std::vector<Benchmark> &defaultSuite();

} // namespace facile::bhive

#endif // FACILE_BHIVE_GENERATOR_H
