/**
 * @file
 * Batched, multi-threaded prediction engine.
 *
 * The paper's headline property is that Facile predicts basic-block
 * throughput orders of magnitude faster than simulators; this subsystem
 * turns the single-block predictor into a service-shaped batch engine:
 *
 *   - a batch of (bytes, arch, loop, config) requests is fanned out
 *     over a fixed worker pool (uneven block cost load-balances via a
 *     shared work index);
 *   - a sharded per-arch analysis cache keyed on the raw block bytes
 *     lets repeated blocks skip decoding and uop lookup entirely;
 *   - a second-level prediction cache keyed additionally on the
 *     throughput notion, the ablation config, and the payload depth
 *     short-circuits fully repeated requests;
 *   - one model::PredictScratch per pool worker (see
 *     facile/component.h) makes the whole component pipeline
 *     allocation-free in steady state, with scratch ownership explicit
 *     instead of thread_local-scattered;
 *   - requests default to Payload::None: the serving path computes
 *     bounds and bottleneck classification but skips the
 *     interpretability payload unless a request asks for it.
 *
 * Predictions are bit-identical to serial facile::model::predict()
 * at the same payload depth: the same deterministic code runs per
 * block, only scheduling and memoization differ.
 */
#ifndef FACILE_ENGINE_ENGINE_H
#define FACILE_ENGINE_ENGINE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bb/basic_block.h"
#include "facile/predictor.h"

namespace facile::engine {

class ThreadPool;

/** One prediction request. */
struct Request
{
    std::vector<std::uint8_t> bytes;
    uarch::UArch arch = uarch::UArch::SKL;
    bool loop = false;
    model::ModelConfig config{};

    /**
     * How much of the Prediction to build. The serving default is the
     * cheap path: throughput, componentValue and the bottleneck
     * classification, no interpretability payload. Payload::Full asks
     * for criticalChain / contendedPorts / contendingInsts as well and
     * is cached separately (the payload depth is part of the
     * prediction-cache key).
     */
    model::Payload payload = model::Payload::None;
};

/** Counters for one predictBatch call. */
struct BatchStats
{
    std::size_t requests = 0;
    std::size_t analysisCacheHits = 0;   ///< decode+annotate skipped
    std::size_t predictionCacheHits = 0; ///< whole prediction skipped
    std::size_t analyzed = 0;            ///< blocks decoded this batch
};

struct EngineOptions
{
    /** Worker threads; 0 picks std::thread::hardware_concurrency. */
    int numThreads = 0;

    /** Master switch for both cache levels. */
    bool cacheEnabled = true;

    /**
     * Bound on entries per cache-shard generation. Shards use
     * two-generation (old/new) eviction: inserts and old-generation
     * hits go to the new generation; when it fills, the old generation
     * is dropped and the new one ages into its place. The hot working
     * set survives overflow (a hostile request stream still cannot
     * exhaust memory — a shard holds at most 2x this many entries),
     * and steady-state traffic at capacity keeps its hit rate.
     */
    std::size_t maxEntriesPerShard = 1 << 16;
};

class PredictionEngine
{
  public:
    using Options = EngineOptions;

    explicit PredictionEngine(Options opts = {});
    ~PredictionEngine();

    PredictionEngine(const PredictionEngine &) = delete;
    PredictionEngine &operator=(const PredictionEngine &) = delete;

    int numThreads() const;

    /**
     * Predict every request of the batch in parallel. out[i] corresponds
     * to batch[i] and is bit-identical to
     * model::predict(bb::analyze(batch[i].bytes, batch[i].arch),
     *                batch[i].loop, batch[i].config).
     * A malformed block (decode error) yields a default Prediction with
     * throughput 0, mirroring the eval harness' crash protocol.
     */
    std::vector<model::Prediction>
    predictBatch(const std::vector<Request> &batch,
                 BatchStats *stats = nullptr);

    /**
     * Visitor over one prediction: (worker, requestIndex, prediction).
     * worker is the stable pool-worker index in [0, numThreads()).
     */
    using PredictionVisitor =
        std::function<void(int, std::size_t, const model::Prediction &)>;

    /**
     * As predictBatch, but instead of materializing a result vector
     * the engine calls visit(worker, i, prediction) once per request —
     * on prediction-cache hits with a reference to the cached entry,
     * so the serving hot path copies nothing. Calls happen on the
     * worker threads, concurrently for distinct i; the reference is
     * valid only for the duration of the call (on hits it is made
     * under the owning shard lock, so visitors must be brief and must
     * not re-enter the engine).
     */
    void predictBatchVisit(const std::vector<Request> &batch,
                           const PredictionVisitor &visit,
                           BatchStats *stats = nullptr);

    /** Single-request convenience; same caches, calling thread only. */
    model::Prediction predictOne(const Request &req,
                                 BatchStats *stats = nullptr);

    /**
     * Analyze a block through the per-arch analysis cache (shared with
     * predictBatch). The returned block is immutable and shared.
     */
    std::shared_ptr<const bb::BasicBlock>
    analyze(const std::vector<std::uint8_t> &bytes, uarch::UArch arch,
            BatchStats *stats = nullptr);

    /**
     * Run body(i) for all i in [0, n) on the worker pool; blocks until
     * complete. Exposed so the eval harness can drive suite preparation
     * and predictor sweeps through the same pool.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /**
     * As parallelFor, with the stable pool-worker index in
     * [0, numThreads()) as the first argument — the hook callers use
     * to bind one PredictScratch (or any per-lane state) per worker.
     */
    void
    parallelForWorker(std::size_t n,
                      const std::function<void(int, std::size_t)> &body);

    void clearCaches();

    // ---- snapshot support (src/analysis/snapshot.h) -----------------------

    /**
     * Visit every prediction-cache entry as (opaque key, prediction).
     * The key encodes (notion, payload depth, config, arch, block
     * bytes) deterministically, so entries exported by one process hit
     * in another. Shard locks are held during each shard's visits;
     * visitors must be brief and must not re-enter the engine. Returns
     * the number of entries visited.
     */
    std::size_t exportPredictionCache(
        const std::function<void(const std::string &key,
                                 const model::Prediction &)> &visit) const;

    /**
     * Insert one exported entry back into the prediction cache (normal
     * two-generation capacity rules apply; an existing key wins).
     */
    void importPredictionCacheEntry(std::string key,
                                    model::Prediction pred);

    /** Process-wide shared engine (hardware-concurrency threads). */
    static PredictionEngine &shared();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace facile::engine

#endif // FACILE_ENGINE_ENGINE_H
