/**
 * @file
 * Minimal fixed-size worker pool used by the PredictionEngine.
 *
 * Jobs are std::function<void(int)> callables receiving the stable
 * worker index in [0, size()) of the thread that executes them, so
 * callers can maintain per-worker state (scratch buffers, counters)
 * without locks.
 */
#ifndef FACILE_ENGINE_THREAD_POOL_H
#define FACILE_ENGINE_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace facile::engine {

class ThreadPool
{
  public:
    /** Spawn @p n_threads workers (at least one). */
    explicit ThreadPool(int n_threads)
    {
        if (n_threads < 1)
            n_threads = 1;
        workers_.reserve(static_cast<std::size_t>(n_threads));
        for (int i = 0; i < n_threads; ++i)
            workers_.emplace_back([this, i] { workerLoop(i); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto &w : workers_)
            w.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int size() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a job; it runs on some worker as soon as one is free. */
    void
    submit(std::function<void(int)> job)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            jobs_.push(std::move(job));
        }
        cv_.notify_one();
    }

    /**
     * Run @p body(index) for every index in [0, n) across the pool and
     * block until all indices completed. Indices are claimed one at a
     * time from a shared counter, so uneven per-item cost load-balances
     * automatically. The calling thread only waits; parallelism degree
     * equals size().
     *
     * If @p body throws, remaining indices are abandoned and the first
     * exception is rethrown on the calling thread (a worker must never
     * unwind, which would std::terminate the process).
     */
    void
    parallelFor(std::size_t n, const std::function<void(std::size_t)> &body)
    {
        parallelForWorker(
            n, [&body](int, std::size_t i) { body(i); });
    }

    /**
     * As parallelFor, but the body also receives the stable worker
     * index of the executing thread, so callers can keep per-worker
     * state (output buffers, counters) without locks.
     */
    void
    parallelForWorker(std::size_t n,
                      const std::function<void(int, std::size_t)> &body)
    {
        if (n == 0)
            return;
        // Re-entrant call from one of this pool's own workers: running
        // the indices inline avoids the deadlock of all workers waiting
        // on jobs none of them is free to execute.
        if (currentPool() == this) {
            for (std::size_t i = 0; i < n; ++i)
                body(currentWorker(), i);
            return;
        }
        struct State
        {
            std::mutex mu;
            std::condition_variable done;
            std::size_t next = 0;
            int active = 0;
            std::exception_ptr error;
        };
        auto state = std::make_shared<State>();
        const int tasks =
            static_cast<int>(std::min<std::size_t>(workers_.size(), n));
        state->active = tasks;
        for (int t = 0; t < tasks; ++t) {
            submit([state, n, &body](int worker) {
                for (;;) {
                    std::size_t i;
                    {
                        std::lock_guard<std::mutex> lock(state->mu);
                        if (state->next >= n || state->error)
                            break;
                        i = state->next++;
                    }
                    try {
                        body(worker, i);
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(state->mu);
                        if (!state->error)
                            state->error = std::current_exception();
                        break;
                    }
                }
                std::lock_guard<std::mutex> lock(state->mu);
                if (--state->active == 0)
                    state->done.notify_all();
            });
        }
        std::unique_lock<std::mutex> lock(state->mu);
        state->done.wait(lock, [&] { return state->active == 0; });
        if (state->error)
            std::rethrow_exception(state->error);
    }

  private:
    /** The pool the current thread is a worker of, if any. */
    static ThreadPool *&
    currentPool()
    {
        thread_local ThreadPool *pool = nullptr;
        return pool;
    }

    /** Worker index of the current thread (0 off the pool). */
    static int &
    currentWorker()
    {
        thread_local int worker = 0;
        return worker;
    }

    void
    workerLoop(int index)
    {
        currentPool() = this;
        currentWorker() = index;
        for (;;) {
            std::function<void(int)> job;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock, [&] { return stop_ || !jobs_.empty(); });
                if (stop_ && jobs_.empty())
                    return;
                job = std::move(jobs_.front());
                jobs_.pop();
            }
            job(index);
        }
    }

    std::vector<std::thread> workers_;
    std::queue<std::function<void(int)>> jobs_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace facile::engine

#endif // FACILE_ENGINE_THREAD_POOL_H
