#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "engine/thread_pool.h"
#include "facile/component.h"

namespace facile::engine {

namespace {

/** Analysis-cache key: arch byte + raw block bytes. */
std::string
analysisKey(const std::vector<std::uint8_t> &bytes, uarch::UArch arch)
{
    std::string key;
    key.reserve(bytes.size() + 1);
    key.push_back(static_cast<char>(arch));
    if (!bytes.empty())
        key.append(reinterpret_cast<const char *>(bytes.data()),
                   bytes.size());
    return key;
}

/** Prediction-cache key: notion + payload depth + config + analysis key. */
std::string
predictionKey(const Request &r)
{
    const std::uint16_t cfg = r.config.packBits();
    std::string key;
    key.reserve(r.bytes.size() + 4);
    key.push_back(static_cast<char>(
        (r.loop ? 1 : 0) |
        (r.payload == model::Payload::Full ? 2 : 0)));
    key.push_back(static_cast<char>(cfg & 0xff));
    key.push_back(static_cast<char>(cfg >> 8));
    key.push_back(static_cast<char>(r.arch));
    if (!r.bytes.empty())
        key.append(reinterpret_cast<const char *>(r.bytes.data()),
                   r.bytes.size());
    return key;
}

constexpr std::size_t kShards = 16;

std::size_t
shardOf(const std::string &key)
{
    return std::hash<std::string>{}(key) % kShards;
}

} // namespace

/**
 * One cache shard with two-generation (old/new) eviction.
 *
 * Inserts and promotions go to the new generation; when it reaches the
 * per-generation bound the old generation is dropped and the new one
 * takes its place. A lookup that hits the old generation promotes the
 * entry, so the hot working set keeps circulating between generations
 * and steady-state traffic at capacity keeps its hit rate — unlike the
 * previous epoch eviction (clear() on overflow), which discarded the
 * entire hot set the moment a shard filled up. Entries untouched for a
 * full generation age out; a shard never holds more than 2x the bound.
 */
template <typename V> struct Gen2Shard
{
    std::mutex mu;
    std::unordered_map<std::string, V> newGen, oldGen;

    /** Lookup with promotion; caller must hold mu. */
    V *
    find(const std::string &key, std::size_t maxPerGen)
    {
        auto it = newGen.find(key);
        if (it != newGen.end())
            return &it->second;
        auto itOld = oldGen.find(key);
        if (itOld == oldGen.end())
            return nullptr;
        V value = std::move(itOld->second);
        oldGen.erase(itOld);
        return &insert(key, std::move(value), maxPerGen);
    }

    /**
     * Insert into the new generation, rotating when full; caller must
     * hold mu and have checked find() under the same lock, so the key
     * is in neither generation.
     */
    V &
    insert(std::string key, V value, std::size_t maxPerGen)
    {
        if (newGen.size() >= maxPerGen) {
            std::swap(oldGen, newGen);
            newGen.clear();
        }
        return newGen.emplace(std::move(key), std::move(value))
            .first->second;
    }

    void
    clear()
    {
        newGen.clear();
        oldGen.clear();
    }
};

struct PredictionEngine::Impl
{
    Options opts;
    ThreadPool pool;

    using AnalysisShard = Gen2Shard<std::shared_ptr<const bb::BasicBlock>>;
    using PredictionShard = Gen2Shard<model::Prediction>;
    AnalysisShard analysisShards[kShards];
    PredictionShard predictionShards[kShards];

    /**
     * One component-pipeline scratch per pool worker: scratch
     * ownership is explicit (a worker's index selects its scratch),
     * not thread_local-scattered, and a worker's buffers stay warm
     * across batches.
     */
    std::vector<std::unique_ptr<model::PredictScratch>> workerScratch;

    explicit Impl(Options o)
        : opts(o),
          pool(o.numThreads > 0
                   ? o.numThreads
                   : static_cast<int>(
                         std::max(1u, std::thread::hardware_concurrency())))
    {
        workerScratch.reserve(static_cast<std::size_t>(pool.size()));
        for (int i = 0; i < pool.size(); ++i)
            workerScratch.push_back(
                std::make_unique<model::PredictScratch>());
    }

    std::shared_ptr<const bb::BasicBlock>
    analyzeCached(const std::vector<std::uint8_t> &bytes, uarch::UArch arch,
                  BatchStats *stats)
    {
        if (!opts.cacheEnabled) {
            auto blk = std::make_shared<const bb::BasicBlock>(
                bb::analyze(bytes, arch));
            if (stats)
                ++stats->analyzed;
            return blk;
        }
        std::string key = analysisKey(bytes, arch);
        AnalysisShard &shard = analysisShards[shardOf(key)];
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            if (auto *hit = shard.find(key, opts.maxEntriesPerShard)) {
                if (stats)
                    ++stats->analysisCacheHits;
                return *hit;
            }
        }
        // Analyze outside the lock; concurrent misses on the same key
        // duplicate work once but produce identical blocks.
        auto blk =
            std::make_shared<const bb::BasicBlock>(bb::analyze(bytes, arch));
        if (stats)
            ++stats->analyzed;
        std::lock_guard<std::mutex> lock(shard.mu);
        if (auto *hit = shard.find(key, opts.maxEntriesPerShard))
            return *hit; // lost the race; share the other thread's block
        return shard.insert(std::move(key), blk, opts.maxEntriesPerShard);
    }

    /**
     * Core lookup-or-compute. The visitor sees the prediction without
     * a copy: on cache hits it runs under the owning shard lock with a
     * reference to the cached entry (the zero-copy serving path).
     */
    void
    predictCachedVisit(const Request &req, BatchStats *stats, int worker,
                       std::size_t index, model::PredictScratch &scratch,
                       const PredictionEngine::PredictionVisitor &visit)
    {
        std::string key;
        if (opts.cacheEnabled) {
            key = predictionKey(req);
            PredictionShard &shard = predictionShards[shardOf(key)];
            std::lock_guard<std::mutex> lock(shard.mu);
            if (auto *hit = shard.find(key, opts.maxEntriesPerShard)) {
                if (stats)
                    ++stats->predictionCacheHits;
                visit(worker, index, *hit);
                return;
            }
        }

        model::Prediction p;
        try {
            auto blk = analyzeCached(req.bytes, req.arch, stats);
            p = model::predict(*blk, req.loop, req.config, scratch,
                               req.payload);
        } catch (const std::exception &) {
            p = model::Prediction{}; // malformed block: throughput 0
        }

        if (opts.cacheEnabled) {
            PredictionShard &shard = predictionShards[shardOf(key)];
            std::lock_guard<std::mutex> lock(shard.mu);
            // A concurrent miss on the same key may have inserted an
            // identical prediction already; find() keeps it hot.
            if (!shard.find(key, opts.maxEntriesPerShard))
                shard.insert(std::move(key), p, opts.maxEntriesPerShard);
        }
        visit(worker, index, p);
    }

    /** Calling-thread path (predictOne): uses the thread's scratch. */
    model::Prediction
    predictCached(const Request &req, BatchStats *stats)
    {
        model::Prediction out;
        predictCachedVisit(req, stats, 0, 0, model::tlsPredictScratch(),
                           [&out](int, std::size_t,
                                  const model::Prediction &p) { out = p; });
        return out;
    }
};

PredictionEngine::PredictionEngine(Options opts)
    : impl_(std::make_unique<Impl>(opts))
{}

PredictionEngine::~PredictionEngine() = default;

int
PredictionEngine::numThreads() const
{
    return impl_->pool.size();
}

std::vector<model::Prediction>
PredictionEngine::predictBatch(const std::vector<Request> &batch,
                               BatchStats *stats)
{
    std::vector<model::Prediction> out(batch.size());
    if (batch.empty())
        return out;

    std::atomic<std::size_t> analysisHits{0}, predictionHits{0},
        analyzed{0};

    impl_->pool.parallelForWorker(
        batch.size(), [&](int worker, std::size_t i) {
            BatchStats local;
            impl_->predictCachedVisit(
                batch[i], stats ? &local : nullptr, worker, i,
                *impl_->workerScratch[static_cast<std::size_t>(worker)],
                [&out](int, std::size_t idx, const model::Prediction &p) {
                    out[idx] = p;
                });
            if (stats) {
                analysisHits += local.analysisCacheHits;
                predictionHits += local.predictionCacheHits;
                analyzed += local.analyzed;
            }
        });

    if (stats) {
        stats->requests += batch.size();
        stats->analysisCacheHits += analysisHits;
        stats->predictionCacheHits += predictionHits;
        stats->analyzed += analyzed;
    }
    return out;
}

void
PredictionEngine::predictBatchVisit(const std::vector<Request> &batch,
                                    const PredictionVisitor &visit,
                                    BatchStats *stats)
{
    if (batch.empty())
        return;

    std::atomic<std::size_t> analysisHits{0}, predictionHits{0},
        analyzed{0};

    impl_->pool.parallelForWorker(
        batch.size(), [&](int worker, std::size_t i) {
            BatchStats local;
            impl_->predictCachedVisit(
                batch[i], stats ? &local : nullptr, worker, i,
                *impl_->workerScratch[static_cast<std::size_t>(worker)],
                visit);
            if (stats) {
                analysisHits += local.analysisCacheHits;
                predictionHits += local.predictionCacheHits;
                analyzed += local.analyzed;
            }
        });

    if (stats) {
        stats->requests += batch.size();
        stats->analysisCacheHits += analysisHits;
        stats->predictionCacheHits += predictionHits;
        stats->analyzed += analyzed;
    }
}

model::Prediction
PredictionEngine::predictOne(const Request &req, BatchStats *stats)
{
    if (stats)
        ++stats->requests;
    return impl_->predictCached(req, stats);
}

std::shared_ptr<const bb::BasicBlock>
PredictionEngine::analyze(const std::vector<std::uint8_t> &bytes,
                          uarch::UArch arch, BatchStats *stats)
{
    return impl_->analyzeCached(bytes, arch, stats);
}

void
PredictionEngine::parallelFor(std::size_t n,
                              const std::function<void(std::size_t)> &body)
{
    impl_->pool.parallelFor(n, body);
}

void
PredictionEngine::parallelForWorker(
    std::size_t n, const std::function<void(int, std::size_t)> &body)
{
    impl_->pool.parallelForWorker(n, body);
}

void
PredictionEngine::clearCaches()
{
    for (std::size_t s = 0; s < kShards; ++s) {
        {
            std::lock_guard<std::mutex> lock(
                impl_->analysisShards[s].mu);
            impl_->analysisShards[s].clear();
        }
        std::lock_guard<std::mutex> lock(impl_->predictionShards[s].mu);
        impl_->predictionShards[s].clear();
    }
}

std::size_t
PredictionEngine::exportPredictionCache(
    const std::function<void(const std::string &key,
                             const model::Prediction &)> &visit) const
{
    std::size_t n = 0;
    for (std::size_t s = 0; s < kShards; ++s) {
        Impl::PredictionShard &shard = impl_->predictionShards[s];
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[key, pred] : shard.newGen) {
            visit(key, pred);
            ++n;
        }
        for (const auto &[key, pred] : shard.oldGen) {
            visit(key, pred);
            ++n;
        }
    }
    return n;
}

void
PredictionEngine::importPredictionCacheEntry(std::string key,
                                             model::Prediction pred)
{
    Impl::PredictionShard &shard = impl_->predictionShards[shardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.find(key, impl_->opts.maxEntriesPerShard))
        shard.insert(std::move(key), std::move(pred),
                     impl_->opts.maxEntriesPerShard);
}

PredictionEngine &
PredictionEngine::shared()
{
    static PredictionEngine engine{Options{}};
    return engine;
}

} // namespace facile::engine
