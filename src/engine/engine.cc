#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "engine/thread_pool.h"

namespace facile::engine {

namespace {

/** Pack the ablation switches into a stable cache-key byte pair. */
std::uint16_t
configBits(const model::ModelConfig &c)
{
    std::uint16_t b = 0;
    b |= c.usePredec ? 1u << 0 : 0u;
    b |= c.useDec ? 1u << 1 : 0u;
    b |= c.useDsb ? 1u << 2 : 0u;
    b |= c.useLsd ? 1u << 3 : 0u;
    b |= c.useIssue ? 1u << 4 : 0u;
    b |= c.usePorts ? 1u << 5 : 0u;
    b |= c.usePrecedence ? 1u << 6 : 0u;
    b |= c.simplePredec ? 1u << 7 : 0u;
    b |= c.simpleDec ? 1u << 8 : 0u;
    return b;
}

/** Analysis-cache key: arch byte + raw block bytes. */
std::string
analysisKey(const std::vector<std::uint8_t> &bytes, uarch::UArch arch)
{
    std::string key;
    key.reserve(bytes.size() + 1);
    key.push_back(static_cast<char>(arch));
    if (!bytes.empty())
        key.append(reinterpret_cast<const char *>(bytes.data()),
                   bytes.size());
    return key;
}

/** Prediction-cache key: notion + config bits + analysis key. */
std::string
predictionKey(const Request &r)
{
    const std::uint16_t cfg = configBits(r.config);
    std::string key;
    key.reserve(r.bytes.size() + 4);
    key.push_back(r.loop ? 1 : 0);
    key.push_back(static_cast<char>(cfg & 0xff));
    key.push_back(static_cast<char>(cfg >> 8));
    key.push_back(static_cast<char>(r.arch));
    if (!r.bytes.empty())
        key.append(reinterpret_cast<const char *>(r.bytes.data()),
                   r.bytes.size());
    return key;
}

constexpr std::size_t kShards = 16;

std::size_t
shardOf(const std::string &key)
{
    return std::hash<std::string>{}(key) % kShards;
}

} // namespace

struct PredictionEngine::Impl
{
    Options opts;
    ThreadPool pool;

    struct AnalysisShard
    {
        std::mutex mu;
        std::unordered_map<std::string,
                           std::shared_ptr<const bb::BasicBlock>>
            map;
    };
    struct PredictionShard
    {
        std::mutex mu;
        std::unordered_map<std::string, model::Prediction> map;
    };
    AnalysisShard analysisShards[kShards];
    PredictionShard predictionShards[kShards];

    explicit Impl(Options o)
        : opts(o),
          pool(o.numThreads > 0
                   ? o.numThreads
                   : static_cast<int>(
                         std::max(1u, std::thread::hardware_concurrency())))
    {}

    std::shared_ptr<const bb::BasicBlock>
    analyzeCached(const std::vector<std::uint8_t> &bytes, uarch::UArch arch,
                  BatchStats *stats)
    {
        if (!opts.cacheEnabled) {
            auto blk = std::make_shared<const bb::BasicBlock>(
                bb::analyze(bytes, arch));
            if (stats)
                ++stats->analyzed;
            return blk;
        }
        std::string key = analysisKey(bytes, arch);
        AnalysisShard &shard = analysisShards[shardOf(key)];
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                if (stats)
                    ++stats->analysisCacheHits;
                return it->second;
            }
        }
        // Analyze outside the lock; concurrent misses on the same key
        // duplicate work once but produce identical blocks.
        auto blk =
            std::make_shared<const bb::BasicBlock>(bb::analyze(bytes, arch));
        if (stats)
            ++stats->analyzed;
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.map.size() >= opts.maxEntriesPerShard)
            shard.map.clear(); // epoch eviction
        auto [it, inserted] = shard.map.emplace(std::move(key), blk);
        return inserted ? blk : it->second;
    }

    model::Prediction
    predictCached(const Request &req, BatchStats *stats)
    {
        std::string key;
        if (opts.cacheEnabled) {
            key = predictionKey(req);
            PredictionShard &shard = predictionShards[shardOf(key)];
            std::lock_guard<std::mutex> lock(shard.mu);
            auto it = shard.map.find(key);
            if (it != shard.map.end()) {
                if (stats)
                    ++stats->predictionCacheHits;
                return it->second;
            }
        }

        model::Prediction p;
        try {
            auto blk = analyzeCached(req.bytes, req.arch, stats);
            p = model::predict(*blk, req.loop, req.config);
        } catch (const std::exception &) {
            p = model::Prediction{}; // malformed block: throughput 0
        }

        if (opts.cacheEnabled) {
            PredictionShard &shard = predictionShards[shardOf(key)];
            std::lock_guard<std::mutex> lock(shard.mu);
            if (shard.map.size() >= opts.maxEntriesPerShard)
                shard.map.clear();
            shard.map.emplace(std::move(key), p);
        }
        return p;
    }
};

PredictionEngine::PredictionEngine(Options opts)
    : impl_(std::make_unique<Impl>(opts))
{}

PredictionEngine::~PredictionEngine() = default;

int
PredictionEngine::numThreads() const
{
    return impl_->pool.size();
}

std::vector<model::Prediction>
PredictionEngine::predictBatch(const std::vector<Request> &batch,
                               BatchStats *stats)
{
    std::vector<model::Prediction> out(batch.size());
    if (batch.empty())
        return out;

    std::atomic<std::size_t> analysisHits{0}, predictionHits{0},
        analyzed{0};

    impl_->pool.parallelFor(batch.size(), [&](std::size_t i) {
        BatchStats local;
        out[i] = impl_->predictCached(batch[i], stats ? &local : nullptr);
        if (stats) {
            analysisHits += local.analysisCacheHits;
            predictionHits += local.predictionCacheHits;
            analyzed += local.analyzed;
        }
    });

    if (stats) {
        stats->requests += batch.size();
        stats->analysisCacheHits += analysisHits;
        stats->predictionCacheHits += predictionHits;
        stats->analyzed += analyzed;
    }
    return out;
}

model::Prediction
PredictionEngine::predictOne(const Request &req, BatchStats *stats)
{
    if (stats)
        ++stats->requests;
    return impl_->predictCached(req, stats);
}

std::shared_ptr<const bb::BasicBlock>
PredictionEngine::analyze(const std::vector<std::uint8_t> &bytes,
                          uarch::UArch arch, BatchStats *stats)
{
    return impl_->analyzeCached(bytes, arch, stats);
}

void
PredictionEngine::parallelFor(std::size_t n,
                              const std::function<void(std::size_t)> &body)
{
    impl_->pool.parallelFor(n, body);
}

void
PredictionEngine::clearCaches()
{
    for (std::size_t s = 0; s < kShards; ++s) {
        {
            std::lock_guard<std::mutex> lock(
                impl_->analysisShards[s].mu);
            impl_->analysisShards[s].map.clear();
        }
        std::lock_guard<std::mutex> lock(impl_->predictionShards[s].mu);
        impl_->predictionShards[s].map.clear();
    }
}

PredictionEngine &
PredictionEngine::shared()
{
    static PredictionEngine engine{Options{}};
    return engine;
}

} // namespace facile::engine
