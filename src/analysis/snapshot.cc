#include "analysis/snapshot.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "corpus/sections.h"
#include "engine/engine.h"
// The prediction-cache section reuses the wire codec (one Prediction
// body layout in the repo, not two drifting copies).
#include "server/protocol.h"
#include "testing/fault.h"

namespace facile::analysis {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'C', 'S', 'N', 'A', 'P', '\n'};
constexpr char kMagicV2[8] = {'F', 'A', 'C', 'S', 'N', 'P', '2', '\n'};
constexpr std::size_t kHeaderSize = 32;   // v1
constexpr std::size_t kHeaderSizeV2 = 64; // v2

enum class SectionType : std::uint32_t {
    Records = 1,
    FusedPairs = 2,
    Predictions = 3,
};

// ---- append helpers (little-endian; the host is asserted little-
// endian by the server protocol, and the snapshot shares that
// assumption via memcpy codecs) ---------------------------------------------

void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    const std::size_t n = out.size();
    out.resize(n + 2);
    std::memcpy(out.data() + n, &v, 2);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    const std::size_t n = out.size();
    out.resize(n + 4);
    std::memcpy(out.data() + n, &v, 4);
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    const std::size_t n = out.size();
    out.resize(n + 8);
    std::memcpy(out.data() + n, &v, 8);
}

void
putI32(std::vector<std::uint8_t> &out, std::int32_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
}

void
putI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(out, bits);
}

/** Bounds-checked sequential reader; every overrun is a SnapshotError. */
struct Reader
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    void
    need(std::size_t n) const
    {
        if (size - pos < n)
            throw SnapshotError("truncated data");
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data[pos++];
    }

    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v;
        std::memcpy(&v, data + pos, 2);
        pos += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v;
        std::memcpy(&v, data + pos, 4);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v;
        std::memcpy(&v, data + pos, 8);
        pos += 8;
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    const std::uint8_t *
    bytes(std::size_t n)
    {
        need(n);
        const std::uint8_t *p = data + pos;
        pos += n;
        return p;
    }
};

// ---- isa/uops sub-codecs ---------------------------------------------------

void
encodeReg(std::vector<std::uint8_t> &out, const isa::Reg &r)
{
    putU8(out, static_cast<std::uint8_t>(r.cls));
    putU8(out, r.idx);
}

isa::Reg
decodeReg(Reader &rd)
{
    isa::Reg r;
    const std::uint8_t cls = rd.u8();
    if (cls > static_cast<std::uint8_t>(isa::RegClass::Ymm))
        throw SnapshotError("bad register class");
    r.cls = static_cast<isa::RegClass>(cls);
    r.idx = rd.u8();
    return r;
}

void
encodeOperand(std::vector<std::uint8_t> &out, const isa::Operand &op)
{
    putU8(out, static_cast<std::uint8_t>(op.kind));
    switch (op.kind) {
      case isa::Operand::Kind::Reg:
        encodeReg(out, op.reg);
        break;
      case isa::Operand::Kind::Mem:
        encodeReg(out, op.mem.base);
        encodeReg(out, op.mem.index);
        putU8(out, op.mem.scale);
        putI32(out, op.mem.disp);
        putU8(out, op.mem.width);
        break;
      case isa::Operand::Kind::Imm:
        putI64(out, op.imm);
        putU8(out, op.immWidth);
        break;
      case isa::Operand::Kind::None:
        break;
    }
}

isa::Operand
decodeOperand(Reader &rd)
{
    isa::Operand op;
    const std::uint8_t kind = rd.u8();
    if (kind > static_cast<std::uint8_t>(isa::Operand::Kind::Imm))
        throw SnapshotError("bad operand kind");
    op.kind = static_cast<isa::Operand::Kind>(kind);
    switch (op.kind) {
      case isa::Operand::Kind::Reg:
        op.reg = decodeReg(rd);
        break;
      case isa::Operand::Kind::Mem:
        op.mem.base = decodeReg(rd);
        op.mem.index = decodeReg(rd);
        op.mem.scale = rd.u8();
        op.mem.disp = rd.i32();
        op.mem.width = rd.u8();
        break;
      case isa::Operand::Kind::Imm:
        op.imm = rd.i64();
        op.immWidth = rd.u8();
        break;
      case isa::Operand::Kind::None:
        break;
    }
    return op;
}

// ---- Prediction codec (prediction-cache section) ---------------------------
//
// Snapshot entries carry exactly the wire protocol's PREDICT response
// payload: appendPredictResponse minus its frame header on the way
// out, decodePredictInto (which validates lengths and component
// ranges) on the way in. Raw IEEE-754 bit patterns either way.

void
encodePrediction(std::vector<std::uint8_t> &out,
                 const model::Prediction &p)
{
    std::vector<std::uint8_t> frame;
    server::appendPredictResponse(frame, 0, p);
    out.insert(out.end(),
               frame.begin() + server::kResponseHeaderSize, frame.end());
}

model::Prediction
decodePrediction(const std::uint8_t *data, std::size_t len)
{
    model::Prediction p;
    if (!server::decodePredictInto(data, len, p))
        throw SnapshotError("bad prediction entry");
    return p;
}

// ---- file I/O --------------------------------------------------------------

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f;
    const auto fa = testing::faultPoint("snapshot.read", 0);
    if (fa.err) {
        errno = fa.err;
        f = nullptr;
    } else {
        f = std::fopen(path.c_str(), "rb");
    }
    if (!f)
        throw SnapshotError("cannot open " + path);
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> buf(sz > 0 ? static_cast<std::size_t>(sz)
                                         : 0);
    if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f) !=
                            buf.size()) {
        std::fclose(f);
        throw SnapshotError("short read on " + path);
    }
    std::fclose(f);
    return buf;
}

/**
 * Format sniff: read just the 8 magic bytes so the v2 path never
 * read()s the whole image (that would defeat the O(pages-touched)
 * warm start). Deliberately NOT behind the "snapshot.read" fault
 * site: v1 loads keep exactly one site consultation per generation
 * attempt, as the existing fault matrices pin.
 * @return 1 magic read, 0 file shorter than 8 bytes, -1 cannot open.
 */
int
readMagic8(const std::string &path, std::uint8_t out[8])
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return -1;
    const bool ok = std::fread(out, 1, 8, f) == 8;
    std::fclose(f);
    return ok ? 1 : 0;
}

} // namespace

std::string
snapshotGenerationPath(const std::string &path, int gen)
{
    return corpus::generationPath(path, gen);
}

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t len, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
InstRecordSnapshotCodec::encode(std::vector<std::uint8_t> &out,
                                const InstRecord &rec)
{
    // DecodedInst.
    putU16(out, static_cast<std::uint16_t>(rec.dec.inst.mnem));
    putU8(out, static_cast<std::uint8_t>(rec.dec.inst.cc));
    putU8(out, rec.dec.inst.nopLen);
    putU8(out, static_cast<std::uint8_t>(rec.dec.inst.ops.size()));
    for (const isa::Operand &op : rec.dec.inst.ops)
        encodeOperand(out, op);
    putU8(out, rec.dec.length);
    putU8(out, rec.dec.opcodeOffset);
    putU8(out, rec.dec.lcp ? 1 : 0);

    // InstrInfo.
    putI32(out, rec.info.fusedUops);
    putI32(out, rec.info.issueUops);
    putI32(out, rec.info.latency);
    putI32(out, rec.info.nAvailableSimpleDecoders);
    putU8(out, rec.info.needsComplexDecoder ? 1 : 0);
    putU8(out, rec.info.macroFusible ? 1 : 0);
    putU8(out, rec.info.eliminated ? 1 : 0);
    putU16(out, static_cast<std::uint16_t>(rec.info.portUops.size()));
    for (const uops::Uop &u : rec.info.portUops) {
        putU16(out, u.ports);
        putU8(out, static_cast<std::uint8_t>(u.kind));
    }

    // RwSets (value ids fit a byte: 0..33).
    putU8(out, static_cast<std::uint8_t>(rec.rw.reads.size()));
    for (int v : rec.rw.reads)
        putU8(out, static_cast<std::uint8_t>(v));
    putU8(out, static_cast<std::uint8_t>(rec.rw.writes.size()));
    for (int v : rec.rw.writes)
        putU8(out, static_cast<std::uint8_t>(v));
    putU8(out, rec.rw.depBreaking ? 1 : 0);

    // Dependence templates and port masks.
    putU16(out, static_cast<std::uint16_t>(rec.depReads.size()));
    for (const DepRead &d : rec.depReads) {
        putI32(out, d.value);
        putF64(out, d.latency);
    }
    putU16(out, static_cast<std::uint16_t>(rec.portMasks.size()));
    for (uarch::PortMask m : rec.portMasks)
        putU16(out, m);

    // Scalars and inline dependence data (only the valid prefixes —
    // slots past the counts are uninitialized by construction).
    putU8(out, rec.stackOp ? 1 : 0);
    putU8(out, rec.depBreaking ? 1 : 0);
    putU8(out, rec.nWritesInl);
    if (rec.nWritesInl != InstRecord::kSpilled)
        for (std::uint8_t i = 0; i < rec.nWritesInl; ++i)
            putU8(out, rec.writesInl[i]);
    putU8(out, rec.nDepInl);
    if (rec.nDepInl != InstRecord::kSpilled)
        for (std::uint8_t i = 0; i < rec.nDepInl; ++i) {
            putI32(out, rec.depInl[i].value);
            putF64(out, rec.depInl[i].latency);
        }

    // Macro-fusion pair class.
    putU8(out, static_cast<std::uint8_t>(rec.fuseClass));
    putU8(out, rec.isJcc ? 1 : 0);
    putU8(out, rec.jccReadsCf ? 1 : 0);
    putU8(out, rec.jccTestsSOP ? 1 : 0);
}

InstRecord
InstRecordSnapshotCodec::decode(const std::uint8_t *data, std::size_t size,
                                std::size_t &pos)
{
    Reader rd{data, size, pos};
    InstRecord rec;

    // DecodedInst.
    const std::uint16_t mnem = rd.u16();
    if (mnem >= static_cast<std::uint16_t>(isa::Mnemonic::kNumMnemonics))
        throw SnapshotError("bad mnemonic");
    rec.dec.inst.mnem = static_cast<isa::Mnemonic>(mnem);
    const std::uint8_t cc = rd.u8();
    if (cc > static_cast<std::uint8_t>(isa::Cond::NLE) &&
        cc != static_cast<std::uint8_t>(isa::Cond::None))
        throw SnapshotError("bad condition code");
    rec.dec.inst.cc = static_cast<isa::Cond>(cc);
    rec.dec.inst.nopLen = rd.u8();
    const std::size_t nOps = rd.u8();
    rec.dec.inst.ops.reserve(nOps);
    for (std::size_t i = 0; i < nOps; ++i)
        rec.dec.inst.ops.push_back(decodeOperand(rd));
    rec.dec.length = rd.u8();
    rec.dec.opcodeOffset = rd.u8();
    rec.dec.lcp = rd.u8() != 0;

    // InstrInfo.
    rec.info.fusedUops = rd.i32();
    rec.info.issueUops = rd.i32();
    rec.info.latency = rd.i32();
    rec.info.nAvailableSimpleDecoders = rd.i32();
    rec.info.needsComplexDecoder = rd.u8() != 0;
    rec.info.macroFusible = rd.u8() != 0;
    rec.info.eliminated = rd.u8() != 0;
    const std::size_t nUops = rd.u16();
    rec.info.portUops.reserve(nUops);
    for (std::size_t i = 0; i < nUops; ++i) {
        uops::Uop u;
        u.ports = rd.u16();
        const std::uint8_t kind = rd.u8();
        if (kind > static_cast<std::uint8_t>(uops::UopKind::StoreData))
            throw SnapshotError("bad uop kind");
        u.kind = static_cast<uops::UopKind>(kind);
        rec.info.portUops.push_back(u);
    }

    // RwSets.
    const std::size_t nReads = rd.u8();
    rec.rw.reads.reserve(nReads);
    for (std::size_t i = 0; i < nReads; ++i)
        rec.rw.reads.push_back(rd.u8());
    const std::size_t nWrites = rd.u8();
    rec.rw.writes.reserve(nWrites);
    for (std::size_t i = 0; i < nWrites; ++i)
        rec.rw.writes.push_back(rd.u8());
    rec.rw.depBreaking = rd.u8() != 0;

    // Dependence templates and port masks.
    const std::size_t nDeps = rd.u16();
    rec.depReads.reserve(nDeps);
    for (std::size_t i = 0; i < nDeps; ++i) {
        DepRead d;
        d.value = rd.i32();
        d.latency = rd.f64();
        rec.depReads.push_back(d);
    }
    const std::size_t nMasks = rd.u16();
    rec.portMasks.reserve(nMasks);
    for (std::size_t i = 0; i < nMasks; ++i)
        rec.portMasks.push_back(rd.u16());

    // Scalars and inline dependence data.
    rec.stackOp = rd.u8() != 0;
    rec.depBreaking = rd.u8() != 0;
    rec.nWritesInl = rd.u8();
    if (rec.nWritesInl != InstRecord::kSpilled) {
        if (rec.nWritesInl > InstRecord::kInlineDeps)
            throw SnapshotError("bad inline write count");
        for (std::uint8_t i = 0; i < rec.nWritesInl; ++i)
            rec.writesInl[i] = rd.u8();
    }
    rec.nDepInl = rd.u8();
    if (rec.nDepInl != InstRecord::kSpilled) {
        if (rec.nDepInl > InstRecord::kInlineDeps)
            throw SnapshotError("bad inline dep count");
        for (std::uint8_t i = 0; i < rec.nDepInl; ++i) {
            rec.depInl[i].value = rd.i32();
            rec.depInl[i].latency = rd.f64();
        }
    }

    // Macro-fusion pair class.
    const std::uint8_t fuse = rd.u8();
    if (fuse > static_cast<std::uint8_t>(FuseClass::NoCarryNoSOP))
        throw SnapshotError("bad fuse class");
    rec.fuseClass = static_cast<FuseClass>(fuse);
    rec.isJcc = rd.u8() != 0;
    rec.jccReadsCf = rd.u8() != 0;
    rec.jccTestsSOP = rd.u8() != 0;

    pos = rd.pos;
    return rec;
}

// ---- v2 flat record layout -------------------------------------------------
//
// Everything below is position-independent POD: offsets and counts
// instead of pointers, natural alignment throughout, zero padding in
// every gap so canonically-written images are deterministic byte
// streams. All structs are memcpy'd, never overlaid — the mmap view
// stays const and no alignment faults are possible even on a forged
// image.

namespace {

/** Flag bits of FlatRecordHead::flags. Other bits must be zero. */
constexpr std::uint8_t kFlagIsJcc = 1;
constexpr std::uint8_t kFlagJccReadsCf = 2;
constexpr std::uint8_t kFlagJccTestsSOP = 4;
constexpr std::uint8_t kFlagWritesSpilled = 8;
constexpr std::uint8_t kFlagDepsSpilled = 16;
constexpr std::uint8_t kFlagAll = 31;

/**
 * Fixed 64-byte head of one flat record. Trailing arrays follow in
 * this order: FlatDepRead × nDepReads, FlatOperand × nOps, FlatUop ×
 * nPortUops, u16 × nPortMasks, u8 × nReads, u8 × nWrites, zero pad to
 * an 8-byte boundary (totalBytes covers head + arrays + pad).
 *
 * The inline dependence mirrors (InstRecord::writesInl/depInl) are
 * NOT stored: they are rebuilt from the arrays on materialize, which
 * is exactly how the cold path builds them. The spilled flags record
 * the one piece of state that is not derivable — a v1 image may carry
 * kSpilled with small vectors, and that (valid) state must round-trip
 * without changing prediction behavior.
 */
struct FlatRecordHead
{
    std::uint32_t totalBytes; // head + arrays + pad, 8-byte multiple
    std::uint8_t keyLen;      // 1..15
    std::uint8_t key[15];     // exact encoded bytes, zero-padded
    std::uint16_t mnem;
    std::uint8_t cc;
    std::uint8_t nopLen;
    std::uint8_t nOps;
    std::uint8_t decLength;
    std::uint8_t opcodeOffset;
    std::uint8_t lcp;
    std::int32_t fusedUops;
    std::int32_t issueUops;
    std::int32_t latency;
    std::int32_t nAvailSimple;
    std::uint8_t needsComplex;
    std::uint8_t macroFusible;
    std::uint8_t eliminated;
    std::uint8_t rwDepBreaking;
    std::uint8_t stackOp;
    std::uint8_t depBreaking;
    std::uint8_t fuseClass;
    std::uint8_t flags;
    std::uint16_t nPortUops;
    std::uint16_t nDepReads;
    std::uint16_t nPortMasks;
    std::uint8_t nReads;
    std::uint8_t nWrites;
    std::uint8_t pad[4];
};
static_assert(sizeof(FlatRecordHead) == 64,
              "FlatRecordHead is the on-disk layout");

struct FlatDepRead
{
    std::int32_t value;
    std::uint32_t pad;
    std::uint64_t latencyBits; // raw IEEE-754
};
static_assert(sizeof(FlatDepRead) == 16, "on-disk layout");

struct FlatOperand
{
    std::uint8_t kind;
    std::uint8_t regCls, regIdx;         // kind == Reg
    std::uint8_t memBaseCls, memBaseIdx; // kind == Mem ...
    std::uint8_t memIndexCls, memIndexIdx;
    std::uint8_t memScale;
    std::int32_t memDisp;
    std::uint8_t memWidth;
    std::uint8_t immWidth; // kind == Imm
    std::uint8_t pad[2];
    std::int64_t imm; // kind == Imm
};
static_assert(sizeof(FlatOperand) == 24, "on-disk layout");

struct FlatUop
{
    std::uint16_t ports;
    std::uint8_t kind;
    std::uint8_t pad;
};
static_assert(sizeof(FlatUop) == 4, "on-disk layout");

/**
 * 64-byte head of a Records section: [head][records][index], where
 * records occupy recordsBytes starting at recordsOffset (always 64)
 * and the open-addressed index starts at indexOffset == 64 +
 * recordsBytes and runs to the section end.
 */
struct RecordsSectionHead
{
    std::uint64_t recordCount;
    std::uint64_t indexSlots; // power of two, >= max(8, 2*recordCount)
    std::uint64_t recordsOffset;
    std::uint64_t recordsBytes;
    std::uint64_t indexOffset;
    std::uint64_t reserved[3];
};
static_assert(sizeof(RecordsSectionHead) == 64, "on-disk layout");

/** One open-addressed index slot; recOffset 0 means empty. */
struct IndexSlot
{
    std::uint64_t keyLo;
    std::uint64_t keyHi;
    std::uint64_t recOffset; // from section start, into records area
};
static_assert(sizeof(IndexSlot) == 24, "on-disk layout");

/**
 * Pack the exact encoded instruction bytes into the 16-byte lookup
 * key: zero-padded bytes in [0,15), length at [15] — the same packing
 * the interner's canonical maps hash, so index probes and shard-map
 * probes agree on equality by construction.
 */
void
packKey16(const std::uint8_t *bytes, std::size_t len,
          std::uint8_t out[16])
{
    std::memset(out, 0, 16);
    std::memcpy(out, bytes, len);
    out[15] = static_cast<std::uint8_t>(len);
}

/** Flat-encoded size of @p rec. @throws SnapshotError on overflow. */
std::uint64_t
flatRecordSize(const InstRecord &rec)
{
    if (rec.dec.inst.ops.size() > 255 ||
        rec.info.portUops.size() > 65535 ||
        rec.depReads.size() > 65535 || rec.portMasks.size() > 65535 ||
        rec.rw.reads.size() > 255 || rec.rw.writes.size() > 255)
        throw SnapshotError("record too large for flat encoding");
    return corpus::alignUp(
        sizeof(FlatRecordHead) + 16 * rec.depReads.size() +
            24 * rec.dec.inst.ops.size() +
            4 * rec.info.portUops.size() + 2 * rec.portMasks.size() +
            rec.rw.reads.size() + rec.rw.writes.size(),
        8);
}

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    return bits;
}

/**
 * Append the flat encoding of (@p key16, @p rec) to @p out — exactly
 * flatRecordSize(rec) bytes. @throws SnapshotError when the record is
 * not representable: oversized counts, or inline dependence mirrors
 * that do not match the vectors they claim to mirror (possible only
 * in a forged v1 image; refusing to encode beats silently changing
 * what precedence() would stream after a convert).
 */
void
encodeFlatRecord(std::vector<std::uint8_t> &out,
                 const std::uint8_t key16[16], const InstRecord &rec)
{
    const std::uint64_t total = flatRecordSize(rec);
    FlatRecordHead h;
    std::memset(&h, 0, sizeof h);
    h.totalBytes = static_cast<std::uint32_t>(total);
    h.keyLen = key16[15];
    std::memcpy(h.key, key16, 15);
    h.mnem = static_cast<std::uint16_t>(rec.dec.inst.mnem);
    h.cc = static_cast<std::uint8_t>(rec.dec.inst.cc);
    h.nopLen = rec.dec.inst.nopLen;
    h.nOps = static_cast<std::uint8_t>(rec.dec.inst.ops.size());
    h.decLength = rec.dec.length;
    h.opcodeOffset = rec.dec.opcodeOffset;
    h.lcp = rec.dec.lcp ? 1 : 0;
    h.fusedUops = rec.info.fusedUops;
    h.issueUops = rec.info.issueUops;
    h.latency = rec.info.latency;
    h.nAvailSimple = rec.info.nAvailableSimpleDecoders;
    h.needsComplex = rec.info.needsComplexDecoder ? 1 : 0;
    h.macroFusible = rec.info.macroFusible ? 1 : 0;
    h.eliminated = rec.info.eliminated ? 1 : 0;
    h.rwDepBreaking = rec.rw.depBreaking ? 1 : 0;
    h.stackOp = rec.stackOp ? 1 : 0;
    h.depBreaking = rec.depBreaking ? 1 : 0;
    h.fuseClass = static_cast<std::uint8_t>(rec.fuseClass);
    h.flags = (rec.isJcc ? kFlagIsJcc : 0) |
              (rec.jccReadsCf ? kFlagJccReadsCf : 0) |
              (rec.jccTestsSOP ? kFlagJccTestsSOP : 0);
    h.nPortUops = static_cast<std::uint16_t>(rec.info.portUops.size());
    h.nDepReads = static_cast<std::uint16_t>(rec.depReads.size());
    h.nPortMasks = static_cast<std::uint16_t>(rec.portMasks.size());
    h.nReads = static_cast<std::uint8_t>(rec.rw.reads.size());
    h.nWrites = static_cast<std::uint8_t>(rec.rw.writes.size());

    // The spilled flags: the mirrors themselves are rebuilt on
    // materialize, so a mirror that disagrees with its vector has no
    // flat representation — reject it.
    if (rec.nWritesInl == InstRecord::kSpilled) {
        h.flags |= kFlagWritesSpilled;
    } else {
        if (rec.nWritesInl > InstRecord::kInlineDeps ||
            rec.nWritesInl != rec.rw.writes.size())
            throw SnapshotError("inline write mirror mismatch");
        for (std::uint8_t i = 0; i < rec.nWritesInl; ++i)
            if (rec.writesInl[i] !=
                static_cast<std::uint8_t>(rec.rw.writes[i]))
                throw SnapshotError("inline write mirror mismatch");
    }
    if (rec.nDepInl == InstRecord::kSpilled) {
        h.flags |= kFlagDepsSpilled;
    } else {
        if (rec.nDepInl > InstRecord::kInlineDeps ||
            rec.nDepInl != rec.depReads.size())
            throw SnapshotError("inline dep mirror mismatch");
        for (std::uint8_t i = 0; i < rec.nDepInl; ++i)
            if (rec.depInl[i].value != rec.depReads[i].value ||
                doubleBits(rec.depInl[i].latency) !=
                    doubleBits(rec.depReads[i].latency))
                throw SnapshotError("inline dep mirror mismatch");
    }

    const std::size_t start = out.size();
    out.reserve(start + total);
    auto putPod = [&out](const void *p, std::size_t n) {
        const auto *b = static_cast<const std::uint8_t *>(p);
        out.insert(out.end(), b, b + n);
    };
    putPod(&h, sizeof h);
    for (const DepRead &d : rec.depReads) {
        FlatDepRead fd{d.value, 0, doubleBits(d.latency)};
        putPod(&fd, sizeof fd);
    }
    for (const isa::Operand &op : rec.dec.inst.ops) {
        FlatOperand fo;
        std::memset(&fo, 0, sizeof fo);
        fo.kind = static_cast<std::uint8_t>(op.kind);
        switch (op.kind) {
          case isa::Operand::Kind::Reg:
            fo.regCls = static_cast<std::uint8_t>(op.reg.cls);
            fo.regIdx = op.reg.idx;
            break;
          case isa::Operand::Kind::Mem:
            fo.memBaseCls = static_cast<std::uint8_t>(op.mem.base.cls);
            fo.memBaseIdx = op.mem.base.idx;
            fo.memIndexCls = static_cast<std::uint8_t>(op.mem.index.cls);
            fo.memIndexIdx = op.mem.index.idx;
            fo.memScale = op.mem.scale;
            fo.memDisp = op.mem.disp;
            fo.memWidth = op.mem.width;
            break;
          case isa::Operand::Kind::Imm:
            fo.imm = op.imm;
            fo.immWidth = op.immWidth;
            break;
          case isa::Operand::Kind::None:
            break;
        }
        putPod(&fo, sizeof fo);
    }
    for (const uops::Uop &u : rec.info.portUops) {
        FlatUop fu{u.ports, static_cast<std::uint8_t>(u.kind), 0};
        putPod(&fu, sizeof fu);
    }
    for (uarch::PortMask m : rec.portMasks) {
        const std::uint16_t v = m;
        putPod(&v, 2);
    }
    for (int v : rec.rw.reads)
        out.push_back(static_cast<std::uint8_t>(v));
    for (int v : rec.rw.writes)
        out.push_back(static_cast<std::uint8_t>(v));
    out.resize(start + total, 0); // zero pad to the 8-byte boundary
}

/** Validate one decoded reg class byte and build the isa::Reg. */
isa::Reg
flatReg(std::uint8_t cls, std::uint8_t idx)
{
    if (cls > static_cast<std::uint8_t>(isa::RegClass::Ymm))
        throw SnapshotError("bad register class");
    return isa::Reg{static_cast<isa::RegClass>(cls), idx};
}

/**
 * Decode the flat record at @p off of section @p sec (records area
 * bounded by @p limit = indexOffset), filling @p rec and the packed
 * key @p keyOut. Every field is validated exactly as hard as the v1
 * codec — a hit through the lazy source must be just as trustworthy
 * as an eager parse. @return the record's totalBytes.
 * @throws SnapshotError; @p rec may be partially filled then (callers
 * materialize into a scratch record, never directly into a caller's
 * out-param).
 */
std::uint64_t
materializeFlatRecord(const std::uint8_t *sec, std::uint64_t limit,
                      std::uint64_t off, std::uint8_t keyOut[16],
                      InstRecord &rec)
{
    if (off < sizeof(RecordsSectionHead) || off % 8 != 0 ||
        off + sizeof(FlatRecordHead) > limit)
        throw SnapshotError("flat record out of bounds");
    FlatRecordHead h;
    std::memcpy(&h, sec + off, sizeof h);

    const std::uint64_t need = corpus::alignUp(
        sizeof(FlatRecordHead) + 16ULL * h.nDepReads + 24ULL * h.nOps +
            4ULL * h.nPortUops + 2ULL * h.nPortMasks + h.nReads +
            h.nWrites,
        8);
    if (h.totalBytes != need || off + need > limit)
        throw SnapshotError("flat record size mismatch");
    if (h.keyLen < 1 || h.keyLen > 15)
        throw SnapshotError("bad key length");
    for (int i = h.keyLen; i < 15; ++i)
        if (h.key[i] != 0)
            throw SnapshotError("bad key padding");
    if (h.flags & ~kFlagAll)
        throw SnapshotError("bad record flags");
    for (std::uint8_t p : h.pad)
        if (p != 0)
            throw SnapshotError("bad record padding");
    if (h.mnem >=
        static_cast<std::uint16_t>(isa::Mnemonic::kNumMnemonics))
        throw SnapshotError("bad mnemonic");
    if (h.cc > static_cast<std::uint8_t>(isa::Cond::NLE) &&
        h.cc != static_cast<std::uint8_t>(isa::Cond::None))
        throw SnapshotError("bad condition code");
    if (h.fuseClass > static_cast<std::uint8_t>(FuseClass::NoCarryNoSOP))
        throw SnapshotError("bad fuse class");
    if (!(h.flags & kFlagWritesSpilled) &&
        h.nWrites > InstRecord::kInlineDeps)
        throw SnapshotError("bad inline write count");
    if (!(h.flags & kFlagDepsSpilled) &&
        h.nDepReads > InstRecord::kInlineDeps)
        throw SnapshotError("bad inline dep count");

    std::memcpy(keyOut, h.key, 15);
    keyOut[15] = h.keyLen;

    rec.dec.inst.mnem = static_cast<isa::Mnemonic>(h.mnem);
    rec.dec.inst.cc = static_cast<isa::Cond>(h.cc);
    rec.dec.inst.nopLen = h.nopLen;
    rec.dec.length = h.decLength;
    rec.dec.opcodeOffset = h.opcodeOffset;
    rec.dec.lcp = h.lcp != 0;
    rec.info.fusedUops = h.fusedUops;
    rec.info.issueUops = h.issueUops;
    rec.info.latency = h.latency;
    rec.info.nAvailableSimpleDecoders = h.nAvailSimple;
    rec.info.needsComplexDecoder = h.needsComplex != 0;
    rec.info.macroFusible = h.macroFusible != 0;
    rec.info.eliminated = h.eliminated != 0;
    rec.rw.depBreaking = h.rwDepBreaking != 0;
    rec.stackOp = h.stackOp != 0;
    rec.depBreaking = h.depBreaking != 0;
    rec.fuseClass = static_cast<FuseClass>(h.fuseClass);
    rec.isJcc = (h.flags & kFlagIsJcc) != 0;
    rec.jccReadsCf = (h.flags & kFlagJccReadsCf) != 0;
    rec.jccTestsSOP = (h.flags & kFlagJccTestsSOP) != 0;

    const std::uint8_t *p = sec + off + sizeof(FlatRecordHead);
    rec.depReads.reserve(h.nDepReads);
    for (std::uint32_t i = 0; i < h.nDepReads; ++i) {
        FlatDepRead fd;
        std::memcpy(&fd, p, sizeof fd);
        p += sizeof fd;
        DepRead d;
        d.value = fd.value;
        std::memcpy(&d.latency, &fd.latencyBits, 8);
        rec.depReads.push_back(d);
    }
    rec.dec.inst.ops.reserve(h.nOps);
    for (std::uint32_t i = 0; i < h.nOps; ++i) {
        FlatOperand fo;
        std::memcpy(&fo, p, sizeof fo);
        p += sizeof fo;
        if (fo.kind > static_cast<std::uint8_t>(isa::Operand::Kind::Imm))
            throw SnapshotError("bad operand kind");
        isa::Operand op;
        op.kind = static_cast<isa::Operand::Kind>(fo.kind);
        switch (op.kind) {
          case isa::Operand::Kind::Reg:
            op.reg = flatReg(fo.regCls, fo.regIdx);
            break;
          case isa::Operand::Kind::Mem:
            op.mem.base = flatReg(fo.memBaseCls, fo.memBaseIdx);
            op.mem.index = flatReg(fo.memIndexCls, fo.memIndexIdx);
            op.mem.scale = fo.memScale;
            op.mem.disp = fo.memDisp;
            op.mem.width = fo.memWidth;
            break;
          case isa::Operand::Kind::Imm:
            op.imm = fo.imm;
            op.immWidth = fo.immWidth;
            break;
          case isa::Operand::Kind::None:
            break;
        }
        rec.dec.inst.ops.push_back(op);
    }
    rec.info.portUops.reserve(h.nPortUops);
    for (std::uint32_t i = 0; i < h.nPortUops; ++i) {
        FlatUop fu;
        std::memcpy(&fu, p, sizeof fu);
        p += sizeof fu;
        if (fu.kind >
            static_cast<std::uint8_t>(uops::UopKind::StoreData))
            throw SnapshotError("bad uop kind");
        uops::Uop u;
        u.ports = fu.ports;
        u.kind = static_cast<uops::UopKind>(fu.kind);
        rec.info.portUops.push_back(u);
    }
    rec.portMasks.reserve(h.nPortMasks);
    for (std::uint32_t i = 0; i < h.nPortMasks; ++i) {
        std::uint16_t m;
        std::memcpy(&m, p, 2);
        p += 2;
        rec.portMasks.push_back(m);
    }
    rec.rw.reads.reserve(h.nReads);
    for (std::uint32_t i = 0; i < h.nReads; ++i)
        rec.rw.reads.push_back(*p++);
    rec.rw.writes.reserve(h.nWrites);
    for (std::uint32_t i = 0; i < h.nWrites; ++i)
        rec.rw.writes.push_back(*p++);
    for (const std::uint8_t *end = sec + off + need; p < end; ++p)
        if (*p != 0)
            throw SnapshotError("bad record padding");

    // Rebuild the inline mirrors exactly as the cold path would.
    if (h.flags & kFlagWritesSpilled) {
        rec.nWritesInl = InstRecord::kSpilled;
    } else {
        rec.nWritesInl = h.nWrites;
        for (std::uint32_t i = 0; i < h.nWrites; ++i)
            rec.writesInl[i] =
                static_cast<std::uint8_t>(rec.rw.writes[i]);
    }
    if (h.flags & kFlagDepsSpilled) {
        rec.nDepInl = InstRecord::kSpilled;
    } else {
        rec.nDepInl = static_cast<std::uint8_t>(h.nDepReads);
        for (std::uint32_t i = 0; i < h.nDepReads; ++i)
            rec.depInl[i] = rec.depReads[i];
    }
    return need;
}

/**
 * Validate the head of a Records section payload (@p sec, @p len
 * bytes) and fill @p h. Checks structure only — record bytes are the
 * caller's business (walked eagerly, or trusted lazily after the
 * section hash passed).
 */
void
validateRecordsHead(const std::uint8_t *sec, std::uint64_t len,
                    RecordsSectionHead &h)
{
    if (len < sizeof(RecordsSectionHead) || len % 8 != 0)
        throw SnapshotError("truncated records section");
    std::memcpy(&h, sec, sizeof h);
    if (h.recordsOffset != sizeof(RecordsSectionHead) || h.reserved[0] ||
        h.reserved[1] || h.reserved[2])
        throw SnapshotError("bad records section head");
    if (h.recordsBytes > len - sizeof(RecordsSectionHead) ||
        h.indexOffset != sizeof(RecordsSectionHead) + h.recordsBytes)
        throw SnapshotError("bad records section layout");
    // Every record is at least one 64-byte head, so a forged count
    // cannot claim more records than the area could hold.
    if (h.recordCount > h.recordsBytes / sizeof(FlatRecordHead))
        throw SnapshotError("bad record count");
    const std::uint64_t indexBytes = len - h.indexOffset;
    if (h.indexSlots < 8 || (h.indexSlots & (h.indexSlots - 1)) != 0 ||
        h.indexSlots < 2 * h.recordCount ||
        h.indexSlots > indexBytes / sizeof(IndexSlot) ||
        h.indexSlots * sizeof(IndexSlot) != indexBytes)
        throw SnapshotError("bad index geometry");
}

/**
 * The deep eager walk of one Records section: decode every record
 * sequentially (full field validation), then prove the index is
 * exactly the records' index — every non-empty slot points at a
 * record start with a matching key, every record is reachable by its
 * own linear probe, and the slot population equals the record count.
 * This is what makes `facile_snaptool verify` strictly stronger than
 * the lazy load path. @p cb receives each record in file order.
 */
void
walkRecordsSection(
    const std::uint8_t *sec, const corpus::SectionEntry &e,
    const std::function<void(const std::uint8_t keyOut[16],
                             InstRecord &&rec)> &cb)
{
    RecordsSectionHead h;
    validateRecordsHead(sec, e.length, h);
    if (e.itemCount != h.recordCount)
        throw SnapshotError("record count disagrees with table");

    std::unordered_map<std::uint64_t, std::array<std::uint8_t, 16>>
        atOffset;
    atOffset.reserve(h.recordCount);
    std::uint64_t off = h.recordsOffset;
    for (std::uint64_t i = 0; i < h.recordCount; ++i) {
        InstRecord rec;
        std::uint8_t key[16];
        const std::uint64_t n =
            materializeFlatRecord(sec, h.indexOffset, off, key, rec);
        std::array<std::uint8_t, 16> k;
        std::memcpy(k.data(), key, 16);
        atOffset.emplace(off, k);
        cb(key, std::move(rec));
        off += n;
    }
    if (off != h.indexOffset)
        throw SnapshotError("records area size mismatch");

    const std::uint8_t *idx = sec + h.indexOffset;
    const std::uint64_t mask = h.indexSlots - 1;
    std::uint64_t nonEmpty = 0;
    for (std::uint64_t s = 0; s < h.indexSlots; ++s) {
        IndexSlot sl;
        std::memcpy(&sl, idx + s * sizeof(IndexSlot), sizeof sl);
        if (sl.recOffset == 0)
            continue;
        ++nonEmpty;
        const auto it = atOffset.find(sl.recOffset);
        if (it == atOffset.end())
            throw SnapshotError("index slot points between records");
        std::uint64_t lo, hi;
        std::memcpy(&lo, it->second.data(), 8);
        std::memcpy(&hi, it->second.data() + 8, 8);
        if (lo != sl.keyLo || hi != sl.keyHi)
            throw SnapshotError("index key disagrees with record");
    }
    if (nonEmpty != h.recordCount)
        throw SnapshotError("index population mismatch");
    for (const auto &[recOff, key] : atOffset) {
        std::uint64_t lo, hi;
        std::memcpy(&lo, key.data(), 8);
        std::memcpy(&hi, key.data() + 8, 8);
        const std::uint64_t hash = corpus::xxh64(key.data(), 16);
        bool found = false;
        for (std::uint64_t i = 0; i <= mask; ++i) {
            IndexSlot sl;
            std::memcpy(&sl,
                        idx + ((hash + i) & mask) * sizeof(IndexSlot),
                        sizeof sl);
            if (sl.recOffset == 0)
                break; // probe chain ends before the record: unreachable
            if (sl.keyLo != lo || sl.keyHi != hi)
                continue;
            if (sl.recOffset != recOff)
                throw SnapshotError("duplicate record key");
            found = true;
            break;
        }
        if (!found)
            throw SnapshotError("record unreachable from index");
    }
}

/**
 * Validate the fixed v2 header + section table of (@p data, @p size)
 * and return the decoded, layout-checked table: ascending,
 * non-overlapping payloads that all start after the table. @p name
 * labels errors.
 */
std::vector<corpus::SectionEntry>
parseV2HeaderAndTable(const std::uint8_t *data, std::size_t size,
                      const std::string &name)
{
    if (size < kHeaderSizeV2)
        throw SnapshotError("truncated header in " + name);
    if (std::memcmp(data, kMagicV2, sizeof kMagicV2) != 0)
        throw SnapshotError("bad magic in " + name);
    std::uint64_t headerHash;
    std::memcpy(&headerHash, data + 48, 8);
    if (corpus::xxh64(data, 48) != headerHash)
        throw SnapshotError("header checksum mismatch in " + name);

    Reader hd{data, size, sizeof kMagicV2};
    const std::uint32_t version = hd.u32();
    if (version != kSnapshotVersionV2)
        throw SnapshotError("unsupported version " +
                            std::to_string(version) + " in " + name);
    if (hd.u32() != corpus::kLittleEndianTag)
        throw SnapshotError("foreign-endian image " + name);
    if (hd.u32() != corpus::kSectionAlign)
        throw SnapshotError("unsupported page size in " + name);
    const std::uint32_t sectionCount = hd.u32();
    if (hd.u64() != size)
        throw SnapshotError("file size mismatch in " + name);
    if (hd.u64() != kHeaderSizeV2)
        throw SnapshotError("bad table offset in " + name);
    const std::uint64_t tableHash = hd.u64();
    std::uint64_t reserved;
    std::memcpy(&reserved, data + 56, 8);
    if (reserved != 0)
        throw SnapshotError("nonzero reserved header field in " + name);

    const std::uint64_t tableBytes =
        std::uint64_t{sectionCount} * sizeof(corpus::SectionEntry);
    if (size - kHeaderSizeV2 < tableBytes)
        throw SnapshotError("truncated section table in " + name);
    if (corpus::xxh64(data + kHeaderSizeV2, tableBytes) != tableHash)
        throw SnapshotError("table checksum mismatch in " + name);
    std::vector<corpus::SectionEntry> entries;
    try {
        entries = corpus::decodeSectionTable(
            data + kHeaderSizeV2, size - kHeaderSizeV2, sectionCount,
            size);
    } catch (const corpus::SectionError &e) {
        throw SnapshotError(std::string(e.what()) + " in " + name);
    }

    // Layout: strictly ascending, non-overlapping, nothing under the
    // header + table. (Alignment is NOT required here — an unaligned
    // image is legal-but-unmappable and takes the eager path.)
    std::uint64_t prevEnd = kHeaderSizeV2 + tableBytes;
    bool sawPredictions = false;
    std::array<bool, 32> sawRecords{}; // indexed by arch, 9 in use
    for (const corpus::SectionEntry &e : entries) {
        if (e.offset < prevEnd)
            throw SnapshotError("overlapping sections in " + name);
        prevEnd = e.offset + e.length;
        switch (static_cast<SectionType>(e.type)) {
          case SectionType::Records:
          case SectionType::FusedPairs: {
            if (e.tag >= uarch::allUArchs().size())
                throw SnapshotError("bad arch in " + name);
            const bool records =
                e.type ==
                static_cast<std::uint32_t>(SectionType::Records);
            if (records && sawRecords[e.tag])
                throw SnapshotError("duplicate records section in " +
                                    name);
            if (!records && !sawRecords[e.tag])
                throw SnapshotError("fused pairs before records in " +
                                    name);
            if (records)
                sawRecords[e.tag] = true;
            break;
          }
          case SectionType::Predictions:
            if (e.tag != 0 || sawPredictions)
                throw SnapshotError("bad predictions section in " +
                                    name);
            sawPredictions = true;
            break;
          default:
            throw SnapshotError("unknown section type " +
                                std::to_string(e.type) + " in " + name);
        }
    }
    return entries;
}

/**
 * Parse the shared (v1-codec) tail payloads. Pairs: u32 count + index
 * pairs, bounds-checked against @p recordCount. @p expect is the
 * table's itemCount (v1 passes the count again; the check is a no-op
 * there).
 */
void
parsePairsPayload(
    Reader &rd, std::size_t sectionEnd, std::uint64_t expect,
    std::size_t recordCount, const std::string &name,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> &out)
{
    const std::uint32_t count = rd.u32();
    if (count != expect)
        throw SnapshotError("pair count disagrees with table in " +
                            name);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t fi = rd.u32();
        const std::uint32_t si = rd.u32();
        if (fi >= recordCount || si >= recordCount)
            throw SnapshotError("bad fused pair index in " + name);
        out.emplace_back(fi, si);
    }
    if (rd.pos != sectionEnd)
        throw SnapshotError("section length mismatch in " + name);
}

/** Predictions: u32 count, then (key, payload) entries, validated. */
void
parsePredictionsPayload(
    Reader &rd, std::size_t sectionEnd, std::uint64_t expect,
    const std::string &name,
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>> &out)
{
    const std::uint32_t count = rd.u32();
    if (count != expect)
        throw SnapshotError(
            "prediction count disagrees with table in " + name);
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t keyLen = rd.u32();
        const std::uint8_t *key = rd.bytes(keyLen);
        const std::uint32_t predLen = rd.u32();
        const std::uint8_t *pred = rd.bytes(predLen);
        decodePrediction(pred, predLen); // validate; discard
        out.emplace_back(
            std::string(reinterpret_cast<const char *>(key), keyLen),
            std::vector<std::uint8_t>(pred, pred + predLen));
    }
    if (rd.pos != sectionEnd)
        throw SnapshotError("section length mismatch in " + name);
}

/**
 * Deep-parse a v1 image into a SnapshotModel: header, checksum, and
 * every section fully validated; nothing committed anywhere.
 */
SnapshotModel
parseV1Model(const std::uint8_t *data, std::size_t size,
             const std::string &name)
{
    if (size < kHeaderSize)
        throw SnapshotError("truncated header in " + name);
    if (std::memcmp(data, kMagic, sizeof kMagic) != 0)
        throw SnapshotError("bad magic in " + name);

    Reader hd{data, size, sizeof kMagic};
    const std::uint32_t version = hd.u32();
    if (version != kSnapshotVersion)
        throw SnapshotError("unsupported version " +
                            std::to_string(version) + " in " + name);
    const std::uint32_t sections = hd.u32();
    const std::uint64_t payloadLen = hd.u64();
    const std::uint64_t checksum = hd.u64();
    if (size - kHeaderSize != payloadLen)
        throw SnapshotError("payload length mismatch in " + name);
    if (fnv1a64(data + kHeaderSize, payloadLen) != checksum)
        throw SnapshotError("checksum mismatch in " + name);

    SnapshotModel model;
    model.sourceVersion = kSnapshotVersion;
    std::unordered_map<std::uint32_t, std::size_t> archIndex;
    Reader rd{data + kHeaderSize, static_cast<std::size_t>(payloadLen),
              0};

    for (std::uint32_t s = 0; s < sections; ++s) {
        const std::uint32_t type = rd.u32();
        const std::uint32_t archWord = rd.u32();
        const std::uint64_t len = rd.u64();
        rd.need(len);
        const std::size_t sectionEnd = rd.pos + len;

        switch (static_cast<SectionType>(type)) {
          case SectionType::Records: {
            if (archWord >= uarch::allUArchs().size())
                throw SnapshotError("bad arch in " + name);
            const std::uint32_t count = rd.u32();
            auto [it, fresh] =
                archIndex.emplace(archWord, model.arches.size());
            if (fresh) {
                model.arches.emplace_back();
                model.arches.back().arch = archWord;
            }
            auto &records = model.arches[it->second].records;
            // Clamp the hint: `count` comes from the file, and each
            // record costs at least 8 section bytes, so a forged count
            // cannot reserve more memory than the section could hold.
            records.reserve(
                records.size() +
                std::min<std::size_t>(count,
                                      (sectionEnd - rd.pos) / 8 + 1));
            for (std::uint32_t i = 0; i < count; ++i) {
                const std::uint8_t keyLen = rd.u8();
                if (keyLen == 0 || keyLen > 15)
                    throw SnapshotError("bad key length in " + name);
                const std::uint8_t *key = rd.bytes(keyLen);
                std::size_t pos = rd.pos;
                InstRecord rec = InstRecordSnapshotCodec::decode(
                    rd.data, sectionEnd, pos);
                rd.pos = pos;
                records.emplace_back(
                    std::vector<std::uint8_t>(key, key + keyLen),
                    std::move(rec));
            }
            break;
          }
          case SectionType::FusedPairs: {
            if (archWord >= uarch::allUArchs().size())
                throw SnapshotError("bad arch in " + name);
            const auto it = archIndex.find(archWord);
            const std::uint32_t count = rd.u32();
            rd.pos -= 4; // parsePairsPayload re-reads the count
            if (it == archIndex.end()) {
                if (count > 0)
                    throw SnapshotError("bad fused pair index in " +
                                        name);
                rd.pos += 4; // empty section for an absent arch: v1
                break;       // tolerated this; nothing to record
            }
            auto &arch = model.arches[it->second];
            parsePairsPayload(rd, sectionEnd, count,
                              arch.records.size(), name,
                              arch.fusedPairs);
            break;
          }
          case SectionType::Predictions: {
            model.hasPredictions = true;
            const std::uint32_t count = rd.u32();
            rd.pos -= 4;
            parsePredictionsPayload(rd, sectionEnd, count, name,
                                    model.predictions);
            break;
          }
          default:
            throw SnapshotError("unknown section type " +
                                std::to_string(type) + " in " + name);
        }
        if (rd.pos != sectionEnd)
            throw SnapshotError("section length mismatch in " + name);
    }
    if (rd.pos != payloadLen)
        throw SnapshotError("trailing garbage in " + name);
    return model;
}

/**
 * Deep-parse a v2 image into a SnapshotModel: header, table, every
 * section hash, every record, full index-consistency probing.
 */
SnapshotModel
parseV2Model(const std::uint8_t *data, std::size_t size,
             const std::string &name)
{
    const std::vector<corpus::SectionEntry> entries =
        parseV2HeaderAndTable(data, size, name);

    SnapshotModel model;
    model.sourceVersion = kSnapshotVersionV2;
    std::unordered_map<std::uint32_t, std::size_t> archIndex;

    for (const corpus::SectionEntry &e : entries) {
        const std::uint8_t *sec = data + e.offset;
        if (corpus::xxh64(sec, e.length) != e.hash)
            throw SnapshotError("section checksum mismatch in " + name);
        switch (static_cast<SectionType>(e.type)) {
          case SectionType::Records: {
            model.arches.emplace_back();
            SnapshotModel::Arch &arch = model.arches.back();
            arch.arch = e.tag;
            archIndex.emplace(e.tag, model.arches.size() - 1);
            // Clamp the hint: itemCount is cross-checked inside the
            // walk, but only after this reserve would have run.
            arch.records.reserve(std::min<std::size_t>(
                e.itemCount, e.length / sizeof(FlatRecordHead)));
            walkRecordsSection(
                sec, e,
                [&arch](const std::uint8_t key[16], InstRecord &&rec) {
                    arch.records.emplace_back(
                        std::vector<std::uint8_t>(key, key + key[15]),
                        std::move(rec));
                });
            break;
          }
          case SectionType::FusedPairs: {
            SnapshotModel::Arch &arch =
                model.arches[archIndex.at(e.tag)];
            Reader rd{sec, static_cast<std::size_t>(e.length), 0};
            parsePairsPayload(rd, e.length, e.itemCount,
                              arch.records.size(), name,
                              arch.fusedPairs);
            break;
          }
          case SectionType::Predictions: {
            model.hasPredictions = true;
            Reader rd{sec, static_cast<std::size_t>(e.length), 0};
            parsePredictionsPayload(rd, e.length, e.itemCount, name,
                                    model.predictions);
            break;
          }
          default:
            break; // unreachable: the table walk rejected it
        }
    }
    return model;
}

/** Fill the record/pair/prediction totals of @p m into @p st. */
void
countsOf(const SnapshotModel &m, SnapshotStats &st)
{
    for (const SnapshotModel::Arch &a : m.arches) {
        st.records += a.records.size();
        st.fusedPairs += a.fusedPairs.size();
    }
    st.predictions = m.predictions.size();
}

/**
 * Phase 2 — commit a fully-validated model to the process-wide arenas
 * (and @p opts.engine's prediction cache). Nothing in here can fail
 * validation; imports go through the same shard maps internAt fills
 * (existing keys win). Consumes the model.
 */
void
commitModel(SnapshotModel &&m, const SnapshotOptions &opts,
            SnapshotStats &st)
{
    for (SnapshotModel::Arch &arch : m.arches) {
        InstInterner &in =
            InstInterner::forArch(static_cast<uarch::UArch>(arch.arch));
        std::vector<const InstRecord *> byIndex;
        byIndex.reserve(arch.records.size());
        for (auto &[key, rec] : arch.records) {
            bool inserted = false;
            byIndex.push_back(in.importRecord(key.data(), key.size(),
                                              std::move(rec),
                                              &inserted));
            st.newRecords += inserted ? 1 : 0;
        }
        for (const auto &[fi, si] : arch.fusedPairs)
            in.internFused(byIndex[fi], byIndex[si]);
    }
    if (opts.engine)
        for (auto &[key, payload] : m.predictions)
            opts.engine->importPredictionCacheEntry(
                std::move(key),
                decodePrediction(payload.data(), payload.size()));
}

/** The v1 load path: deep parse, then commit unless validating. */
SnapshotStats
loadImageV1(const std::uint8_t *data, std::size_t size,
            const SnapshotOptions &opts, bool commit,
            const std::string &name)
{
    SnapshotModel m = parseV1Model(data, size, name);
    SnapshotStats st;
    st.bytes = size;
    st.formatVersion = kSnapshotVersion;
    countsOf(m, st);
    if (commit) {
        commitModel(std::move(m), opts, st);
        st.loadMode = SnapshotLoadMode::ParseV1;
    }
    return st;
}

/** The eager v2 load path (unaligned / mmap failed / forced / wire). */
SnapshotStats
loadImageV2Eager(const std::uint8_t *data, std::size_t size,
                 const SnapshotOptions &opts, bool commit,
                 const std::string &name)
{
    SnapshotModel m = parseV2Model(data, size, name);
    SnapshotStats st;
    st.bytes = size;
    st.formatVersion = kSnapshotVersionV2;
    countsOf(m, st);
    if (commit) {
        commitModel(std::move(m), opts, st);
        st.loadMode = SnapshotLoadMode::EagerV2;
    }
    return st;
}

// ---- writers ---------------------------------------------------------------

/**
 * What to write, gathered before any byte is produced: per-arch record
 * pointers (with packed keys) and pair indices, plus pre-encoded
 * prediction entries. Borrowed pointers — the source (live interner
 * arenas, or a SnapshotModel) must outlive the plan.
 *
 * Predictions are pre-encoded at plan time because
 * exportPredictionCache holds engine shard locks across its visits:
 * visitors must be brief and must certainly not sit behind
 * fault-injectable file IO.
 */
struct PlanArch
{
    std::uint32_t archWord = 0;
    std::vector<std::pair<std::array<std::uint8_t, 16>,
                          const InstRecord *>>
        recs;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
};

struct WritePlan
{
    std::vector<PlanArch> arches;
    bool hasPredictions = false;
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
        predictions; // (key, pre-encoded payload)
};

WritePlan
planFromLive(engine::PredictionEngine *eng)
{
    WritePlan plan;
    // A process warm-started from an mmap'd v2 image serves most
    // records through the lazily bound RecordSource, which
    // exportRecords cannot see — pull everything into the canonical
    // arenas first so the save persists the image's whole universe.
    for (uarch::UArch arch : uarch::allUArchs())
        InstInterner::forArch(arch).materializeBoundSource();
    for (uarch::UArch arch : uarch::allUArchs()) {
        const InstInterner &in = InstInterner::forArch(arch);
        PlanArch pa;
        pa.archWord = static_cast<std::uint32_t>(arch);
        std::unordered_map<const InstRecord *, std::uint32_t> indexOf;
        in.exportRecords([&](const std::uint8_t *bytes, std::size_t len,
                             const InstRecord &rec) {
            std::array<std::uint8_t, 16> k;
            packKey16(bytes, len, k.data());
            indexOf.emplace(&rec,
                            static_cast<std::uint32_t>(pa.recs.size()));
            pa.recs.emplace_back(k, &rec);
        });
        if (pa.recs.empty())
            continue; // this arch saw no traffic
        in.exportFusedPairs([&](const InstRecord *first,
                                const InstRecord *second) {
            auto fi = indexOf.find(first);
            auto si = indexOf.find(second);
            if (fi == indexOf.end() || si == indexOf.end())
                return; // unreachable: bases are canonical records
            pa.pairs.emplace_back(fi->second, si->second);
        });
        plan.arches.push_back(std::move(pa));
    }
    if (eng) {
        plan.hasPredictions = true;
        eng->exportPredictionCache(
            [&](const std::string &key, const model::Prediction &p) {
                std::vector<std::uint8_t> enc;
                encodePrediction(enc, p);
                plan.predictions.emplace_back(key, std::move(enc));
            });
    }
    return plan;
}

WritePlan
planFromModel(const SnapshotModel &model)
{
    WritePlan plan;
    for (const SnapshotModel::Arch &arch : model.arches) {
        PlanArch pa;
        pa.archWord = arch.arch;
        pa.recs.reserve(arch.records.size());
        for (const auto &[key, rec] : arch.records) {
            if (key.empty() || key.size() > 15)
                throw SnapshotError("bad key length");
            std::array<std::uint8_t, 16> k;
            packKey16(key.data(), key.size(), k.data());
            pa.recs.emplace_back(k, &rec);
        }
        pa.pairs = arch.fusedPairs;
        for (const auto &[fi, si] : pa.pairs)
            if (fi >= pa.recs.size() || si >= pa.recs.size())
                throw SnapshotError("bad fused pair index");
        plan.arches.push_back(std::move(pa));
    }
    plan.hasPredictions = model.hasPredictions;
    for (const auto &[key, payload] : model.predictions) {
        decodePrediction(payload.data(), payload.size()); // validate
        plan.predictions.emplace_back(key, payload);
    }
    return plan;
}

void
statsOfPlan(const WritePlan &plan, SnapshotStats &st)
{
    for (const PlanArch &pa : plan.arches) {
        st.records += pa.recs.size();
        st.fusedPairs += pa.pairs.size();
    }
    st.predictions = plan.predictions.size();
}

/**
 * Byte destination of a writer: an in-memory vector
 * (buildSnapshotImage) or the durable temp file (saveSnapshot). The
 * writeAt hole-patching is what lets both formats stream: headers and
 * tables whose contents depend on the payload are zero-filled first
 * and patched once the payload has gone out.
 */
class Sink
{
  public:
    virtual ~Sink() = default;
    virtual void write(const void *p, std::size_t n) = 0;
    virtual void writeAt(std::uint64_t off, const void *p,
                         std::size_t n) = 0;
    virtual std::uint64_t offset() const = 0;

    void
    padTo(std::uint64_t align)
    {
        static const std::uint8_t zeros[512] = {};
        std::uint64_t need = corpus::alignUp(offset(), align) - offset();
        while (need > 0) {
            const std::size_t n = static_cast<std::size_t>(
                std::min<std::uint64_t>(need, sizeof zeros));
            write(zeros, n);
            need -= n;
        }
    }
};

class VecSink final : public Sink
{
  public:
    explicit VecSink(std::vector<std::uint8_t> &buf) : buf_(buf) {}

    void
    write(const void *p, std::size_t n) override
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    void
    writeAt(std::uint64_t off, const void *p, std::size_t n) override
    {
        std::memcpy(buf_.data() + off, p, n);
    }

    std::uint64_t offset() const override { return buf_.size(); }

  private:
    std::vector<std::uint8_t> &buf_;
};

class FileSink final : public Sink
{
  public:
    explicit FileSink(corpus::AtomicFileWriter &w) : w_(w) {}

    void
    write(const void *p, std::size_t n) override
    {
        w_.write(p, n);
    }

    void
    writeAt(std::uint64_t off, const void *p, std::size_t n) override
    {
        w_.writeAt(off, p, n);
    }

    std::uint64_t offset() const override { return w_.offset(); }

  private:
    corpus::AtomicFileWriter &w_;
};

/**
 * Stream a v1 image: zero header, sections one at a time (one
 * section's bytes is the peak buffered memory — the old writer
 * materialized the whole payload), running FNV-1a over the payload as
 * it goes out, 32-byte header patched at the end. Byte-identical to
 * the historical in-memory builder.
 */
void
writeV1(Sink &sink, const WritePlan &plan)
{
    const std::uint8_t zeros[kHeaderSize] = {};
    sink.write(zeros, kHeaderSize);
    std::uint64_t fnv = 0xcbf29ce484222325ULL;
    std::uint32_t sections = 0;
    auto emit = [&](const std::vector<std::uint8_t> &v) {
        fnv = fnv1a64(v.data(), v.size(), fnv);
        sink.write(v.data(), v.size());
    };
    auto emitSection = [&](SectionType type, std::uint32_t arch,
                           std::uint32_t count,
                           const std::vector<std::uint8_t> &body) {
        std::vector<std::uint8_t> hdr;
        putU32(hdr, static_cast<std::uint32_t>(type));
        putU32(hdr, arch);
        putU64(hdr, body.size() + 4);
        putU32(hdr, count);
        emit(hdr);
        emit(body);
        ++sections;
    };

    for (const PlanArch &pa : plan.arches) {
        {
            std::vector<std::uint8_t> recSec;
            for (const auto &[key, rec] : pa.recs) {
                const std::uint8_t keyLen = key[15];
                putU8(recSec, keyLen);
                recSec.insert(recSec.end(), key.data(),
                              key.data() + keyLen);
                InstRecordSnapshotCodec::encode(recSec, *rec);
            }
            emitSection(SectionType::Records, pa.archWord,
                        static_cast<std::uint32_t>(pa.recs.size()),
                        recSec);
        }
        std::vector<std::uint8_t> pairSec;
        for (const auto &[fi, si] : pa.pairs) {
            putU32(pairSec, fi);
            putU32(pairSec, si);
        }
        emitSection(SectionType::FusedPairs, pa.archWord,
                    static_cast<std::uint32_t>(pa.pairs.size()),
                    pairSec);
    }
    if (plan.hasPredictions) {
        std::vector<std::uint8_t> predSec;
        for (const auto &[key, enc] : plan.predictions) {
            putU32(predSec, static_cast<std::uint32_t>(key.size()));
            const auto *kp =
                reinterpret_cast<const std::uint8_t *>(key.data());
            predSec.insert(predSec.end(), kp, kp + key.size());
            putU32(predSec, static_cast<std::uint32_t>(enc.size()));
            predSec.insert(predSec.end(), enc.begin(), enc.end());
        }
        emitSection(SectionType::Predictions, 0,
                    static_cast<std::uint32_t>(plan.predictions.size()),
                    predSec);
    }

    std::vector<std::uint8_t> head;
    const auto *magic = reinterpret_cast<const std::uint8_t *>(kMagic);
    head.insert(head.end(), magic, magic + sizeof kMagic);
    putU32(head, kSnapshotVersion);
    putU32(head, sections);
    putU64(head, sink.offset() - kHeaderSize);
    putU64(head, fnv);
    sink.writeAt(0, head.data(), head.size());
}

/**
 * Stream a v2 image: zero header + table holes, then per arch a
 * page-aligned Records section (records streamed one at a time
 * through an incremental xxh64, index accumulated in memory and
 * appended — peak buffered memory is one record plus the index) and a
 * FusedPairs section, then the predictions tail, then the table and
 * header patched into their holes. Deterministic for equal plans.
 */
void
writeV2(Sink &sink, const WritePlan &plan)
{
    const std::size_t nSections =
        2 * plan.arches.size() + (plan.hasPredictions ? 1 : 0);
    {
        std::vector<std::uint8_t> zeros(
            kHeaderSizeV2 + nSections * sizeof(corpus::SectionEntry),
            0);
        sink.write(zeros.data(), zeros.size());
    }

    std::vector<corpus::SectionEntry> entries;
    entries.reserve(nSections);
    auto beginSection = [&](SectionType type, std::uint32_t tag,
                            std::uint64_t itemCount) {
        sink.padTo(corpus::kSectionAlign);
        corpus::SectionEntry e;
        e.type = static_cast<std::uint32_t>(type);
        e.tag = tag;
        e.offset = sink.offset();
        e.itemCount = itemCount;
        return e;
    };

    for (const PlanArch &pa : plan.arches) {
        for (const PlanArch &other : plan.arches)
            if (&other != &pa && other.archWord == pa.archWord)
                throw SnapshotError("duplicate arch in image");

        // Records section. Sizes first (they fix the whole geometry),
        // then head, records, and the index built alongside.
        corpus::SectionEntry e = beginSection(
            SectionType::Records, pa.archWord, pa.recs.size());
        RecordsSectionHead h;
        std::memset(&h, 0, sizeof h);
        h.recordCount = pa.recs.size();
        h.recordsOffset = sizeof(RecordsSectionHead);
        for (const auto &[key, rec] : pa.recs)
            h.recordsBytes += flatRecordSize(*rec);
        h.indexOffset = h.recordsOffset + h.recordsBytes;
        h.indexSlots = 8;
        while (h.indexSlots < 2 * h.recordCount)
            h.indexSlots <<= 1;

        corpus::Xxh64State hash;
        auto put = [&](const void *p, std::size_t n) {
            hash.update(p, n);
            sink.write(p, n);
        };
        put(&h, sizeof h);

        std::vector<IndexSlot> index(h.indexSlots);
        std::memset(index.data(), 0, index.size() * sizeof(IndexSlot));
        const std::uint64_t mask = h.indexSlots - 1;
        std::uint64_t off = h.recordsOffset;
        std::vector<std::uint8_t> buf;
        for (const auto &[key, rec] : pa.recs) {
            std::uint64_t lo, hi;
            std::memcpy(&lo, key.data(), 8);
            std::memcpy(&hi, key.data() + 8, 8);
            const std::uint64_t kh = corpus::xxh64(key.data(), 16);
            std::uint64_t slot = kh & mask;
            while (index[slot].recOffset != 0) {
                if (index[slot].keyLo == lo && index[slot].keyHi == hi)
                    throw SnapshotError("duplicate record key");
                slot = (slot + 1) & mask;
            }
            index[slot] = IndexSlot{lo, hi, off};
            buf.clear();
            encodeFlatRecord(buf, key.data(), *rec);
            put(buf.data(), buf.size());
            off += buf.size();
        }
        put(index.data(), index.size() * sizeof(IndexSlot));
        e.length = sizeof(RecordsSectionHead) + h.recordsBytes +
                   h.indexSlots * sizeof(IndexSlot);
        e.hash = hash.digest();
        entries.push_back(e);

        // FusedPairs tail (v1 payload codec).
        corpus::SectionEntry pe = beginSection(
            SectionType::FusedPairs, pa.archWord, pa.pairs.size());
        std::vector<std::uint8_t> pairSec;
        putU32(pairSec, static_cast<std::uint32_t>(pa.pairs.size()));
        for (const auto &[fi, si] : pa.pairs) {
            putU32(pairSec, fi);
            putU32(pairSec, si);
        }
        pe.length = pairSec.size();
        pe.hash = corpus::xxh64(pairSec.data(), pairSec.size());
        entries.push_back(pe);
        sink.write(pairSec.data(), pairSec.size());
    }

    if (plan.hasPredictions) {
        corpus::SectionEntry e = beginSection(
            SectionType::Predictions, 0, plan.predictions.size());
        std::vector<std::uint8_t> predSec;
        putU32(predSec,
               static_cast<std::uint32_t>(plan.predictions.size()));
        for (const auto &[key, enc] : plan.predictions) {
            putU32(predSec, static_cast<std::uint32_t>(key.size()));
            const auto *kp =
                reinterpret_cast<const std::uint8_t *>(key.data());
            predSec.insert(predSec.end(), kp, kp + key.size());
            putU32(predSec, static_cast<std::uint32_t>(enc.size()));
            predSec.insert(predSec.end(), enc.begin(), enc.end());
        }
        e.length = predSec.size();
        e.hash = corpus::xxh64(predSec.data(), predSec.size());
        entries.push_back(e);
        sink.write(predSec.data(), predSec.size());
    }

    const std::vector<std::uint8_t> table =
        corpus::encodeSectionTable(entries);
    sink.writeAt(kHeaderSizeV2, table.data(), table.size());

    std::vector<std::uint8_t> head;
    const auto *magic = reinterpret_cast<const std::uint8_t *>(kMagicV2);
    head.insert(head.end(), magic, magic + sizeof kMagicV2);
    putU32(head, kSnapshotVersionV2);
    putU32(head, corpus::kLittleEndianTag);
    putU32(head, corpus::kSectionAlign);
    putU32(head, static_cast<std::uint32_t>(nSections));
    putU64(head, sink.offset());
    putU64(head, kHeaderSizeV2);
    putU64(head, corpus::xxh64(table.data(), table.size()));
    putU64(head, corpus::xxh64(head.data(), 48));
    putU64(head, 0); // reserved
    sink.writeAt(0, head.data(), head.size());
}

// ---- lazy mmap machinery ---------------------------------------------------

struct SourceCounters
{
    std::atomic<std::uint64_t> imagesBound{0};
    std::atomic<std::uint64_t> sectionsVerified{0};
    std::atomic<std::uint64_t> sectionsPoisoned{0};
};

SourceCounters &
sourceCounters()
{
    static SourceCounters c;
    return c;
}

/**
 * One mmap'd Records section bound into an InstInterner. The section
 * hash is verified on the FIRST lookup (one O(section) pass, after
 * which every record the image holds is trusted); a section that
 * fails the check — or ever yields a malformed record despite it — is
 * poisoned: every lookup returns false and the interner's cold path
 * takes over, keeping predictions bit-identical to a cold start.
 */
class ArchRecordSource final : public RecordSource
{
  public:
    ArchRecordSource(
        const corpus::MappedFile *file, corpus::SectionEntry entry,
        std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs)
        : file_(file), entry_(entry), pairs_(std::move(pairs))
    {}

    bool
    lookup(const std::uint8_t *bytes, std::size_t len,
           InstRecord &out) override
    {
        if (len == 0 || len > 15 || !verifyOnce())
            return false;
        std::uint8_t key16[16];
        packKey16(bytes, len, key16);
        std::uint64_t lo, hi;
        std::memcpy(&lo, key16, 8);
        std::memcpy(&hi, key16 + 8, 8);

        const std::uint8_t *sec = file_->data() + entry_.offset;
        const std::uint8_t *idx = sec + head_.indexOffset;
        const std::uint64_t mask = head_.indexSlots - 1;
        const std::uint64_t hash = corpus::xxh64(key16, 16);
        for (std::uint64_t i = 0; i <= mask; ++i) {
            IndexSlot sl;
            std::memcpy(&sl, idx + ((hash + i) & mask) * sizeof sl,
                        sizeof sl);
            if (sl.recOffset == 0)
                return false;
            if (sl.keyLo != lo || sl.keyHi != hi)
                continue;
            // Materialize into a scratch record: on ANY failure the
            // caller's out-param must stay untouched (internAt would
            // otherwise run the cold path over half-filled state).
            try {
                InstRecord rec;
                std::uint8_t key[16];
                materializeFlatRecord(sec, head_.indexOffset,
                                      sl.recOffset, key, rec);
                if (std::memcmp(key, key16, 16) != 0)
                    throw SnapshotError("index key mismatch");
                out = std::move(rec);
                return true;
            } catch (const SnapshotError &) {
                poison();
                return false;
            }
        }
        return false;
    }

    void
    visitAll(const std::function<void(const std::uint8_t *,
                                      std::size_t, InstRecord &&)>
                 &visit) override
    {
        if (!verifyOnce())
            return;
        try {
            walkRecordsSection(
                file_->data() + entry_.offset, entry_,
                [&](const std::uint8_t key[16], InstRecord &&rec) {
                    visit(key, key[15], std::move(rec));
                });
        } catch (const SnapshotError &) {
            poison(); // records already visited stay valid
        }
    }

    void
    visitAllPairs(const std::function<void(std::uint32_t,
                                           std::uint32_t)> &visit)
        override
    {
        // The pair list was parsed and bounds-checked eagerly at
        // load; it only makes sense over a healthy records section.
        if (!verifyOnce())
            return;
        for (const auto &[fi, si] : pairs_)
            visit(fi, si);
    }

  private:
    bool
    verifyOnce()
    {
        const int s = state_.load(std::memory_order_acquire);
        if (s != 0)
            return s == 1;
        std::lock_guard<std::mutex> lock(mu_);
        const int again = state_.load(std::memory_order_relaxed);
        if (again != 0)
            return again == 1;
        const std::uint8_t *sec = file_->data() + entry_.offset;
        bool ok = corpus::xxh64(sec, entry_.length) == entry_.hash;
        if (ok) {
            try {
                validateRecordsHead(sec, entry_.length, head_);
                ok = head_.recordCount == entry_.itemCount;
            } catch (const SnapshotError &) {
                ok = false;
            }
        }
        if (ok)
            sourceCounters().sectionsVerified.fetch_add(
                1, std::memory_order_relaxed);
        else
            sourceCounters().sectionsPoisoned.fetch_add(
                1, std::memory_order_relaxed);
        state_.store(ok ? 1 : 2, std::memory_order_release);
        return ok;
    }

    void
    poison()
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (state_.load(std::memory_order_relaxed) != 2) {
            sourceCounters().sectionsPoisoned.fetch_add(
                1, std::memory_order_relaxed);
            state_.store(2, std::memory_order_release);
        }
    }

    const corpus::MappedFile *file_;
    corpus::SectionEntry entry_;
    // This arch's fused pairs (indices into the section's record
    // order), kept so materializeBoundSource can persist them through
    // a save — they are not imported at bind time.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs_;
    RecordsSectionHead head_{}; // valid once state_ == 1
    std::atomic<int> state_{0}; // 0 unverified, 1 good, 2 poisoned
    std::mutex mu_;
};

/**
 * A bound v2 image: the mapping plus its per-arch sources. Immortal
 * by design (RecordSource contract) — allocated once per successful
 * mmap load and deliberately leaked; rebinding on a later load merely
 * redirects future misses.
 */
struct MappedSnapshotV2
{
    corpus::MappedFile file;
    std::deque<ArchRecordSource> sources; // stable addresses
};

/**
 * The lazy v2 file load. Eager work is O(header + table + small
 * tails): validate the header/table, verify + parse the fused-pair
 * and prediction tails (staged, then imported only after everything
 * eager has passed — nothing is imported from a failing file), then
 * madvise + bind each Records section. Record bytes are not touched.
 *
 * Fallback ladder handled here: an unmappable file (mmap syscall
 * failure) or an unaligned Records section takes the eager parse of
 * the same bytes; header/table/tail corruption throws, sending the
 * caller's generation walk to the next candidate.
 */
SnapshotStats
loadV2File(const std::string &path, const SnapshotOptions &opts)
{
    auto mapped = std::make_unique<MappedSnapshotV2>();
    bool haveMap;
    try {
        haveMap = mapped->file.open(path, "snapshot.mmap");
    } catch (const corpus::SectionError &) {
        haveMap = false; // file exists but cannot be mapped
    }
    if (!haveMap) {
        const std::vector<std::uint8_t> file = readFile(path);
        return loadImageV2Eager(file.data(), file.size(), opts,
                                /*commit=*/true, path);
    }

    const std::uint8_t *data = mapped->file.data();
    const std::size_t size = mapped->file.size();
    const std::vector<corpus::SectionEntry> entries =
        parseV2HeaderAndTable(data, size, path);

    bool aligned = true;
    for (const corpus::SectionEntry &e : entries)
        if (e.type ==
                static_cast<std::uint32_t>(SectionType::Records) &&
            e.offset % corpus::kSectionAlign != 0)
            aligned = false;
    if (!aligned || opts.eagerLoad)
        return loadImageV2Eager(data, size, opts, /*commit=*/true,
                                path);

    SnapshotStats st;
    st.bytes = size;
    st.formatVersion = kSnapshotVersionV2;

    // Eagerly verify + parse the small tails; stage, don't import yet.
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
        stagedPreds;
    std::map<std::uint32_t,
             std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        pairsByTag;
    for (const corpus::SectionEntry &e : entries) {
        const std::uint8_t *sec = data + e.offset;
        switch (static_cast<SectionType>(e.type)) {
          case SectionType::Records:
            st.records += e.itemCount;
            break;
          case SectionType::FusedPairs: {
            if (corpus::xxh64(sec, e.length) != e.hash)
                throw SnapshotError("section checksum mismatch in " +
                                    path);
            // Bounds against the sibling Records section's itemCount
            // (the layout walk guaranteed it precedes this section).
            std::uint64_t recordCount = 0;
            for (const corpus::SectionEntry &r : entries)
                if (r.type == static_cast<std::uint32_t>(
                                  SectionType::Records) &&
                    r.tag == e.tag)
                    recordCount = r.itemCount;
            Reader rd{sec, static_cast<std::size_t>(e.length), 0};
            std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
            parsePairsPayload(rd, e.length, e.itemCount,
                              recordCount, path, pairs);
            st.fusedPairs += pairs.size();
            pairsByTag[e.tag] = std::move(pairs);
            break;
          }
          case SectionType::Predictions: {
            if (corpus::xxh64(sec, e.length) != e.hash)
                throw SnapshotError("section checksum mismatch in " +
                                    path);
            Reader rd{sec, static_cast<std::size_t>(e.length), 0};
            parsePredictionsPayload(rd, e.length, e.itemCount, path,
                                    stagedPreds);
            break;
          }
          default:
            break;
        }
    }
    st.predictions = stagedPreds.size();

    // Point of no return: bind. Fused pairs are NOT imported in mmap
    // mode — internFused re-derives them bit-identically on demand,
    // and importing them would materialize every record up front,
    // defeating the O(pages-touched) start. The parsed pair list
    // rides along in the source so materializeBoundSource (the save
    // path) can still persist it.
    for (const corpus::SectionEntry &e : entries) {
        if (e.type != static_cast<std::uint32_t>(SectionType::Records))
            continue;
        mapped->file.willNeed(e.offset, e.length);
        mapped->sources.emplace_back(&mapped->file, e,
                                     std::move(pairsByTag[e.tag]));
        InstInterner::forArch(static_cast<uarch::UArch>(e.tag))
            .bindRecordSource(&mapped->sources.back());
    }
    if (opts.engine)
        for (auto &[key, payload] : stagedPreds)
            opts.engine->importPredictionCacheEntry(
                std::move(key),
                decodePrediction(payload.data(), payload.size()));

    sourceCounters().imagesBound.fetch_add(1,
                                           std::memory_order_relaxed);
    mapped.release(); // immortal: sources are bound into interners
    st.newRecords = 0;
    st.loadMode = SnapshotLoadMode::MmapV2;
    return st;
}

} // namespace

// ---- public API ------------------------------------------------------------

SnapshotStats
saveSnapshot(const std::string &path, const SnapshotOptions &opts)
{
    if (opts.format != SnapshotFormat::V1 &&
        opts.format != SnapshotFormat::V2)
        throw SnapshotError("unknown snapshot format");
    const WritePlan plan = planFromLive(opts.engine);
    SnapshotStats st;
    statsOfPlan(plan, st);
    try {
        corpus::AtomicFileWriter writer(path, "snapshot",
                                        std::max(1, opts.generations));
        FileSink sink(writer);
        if (opts.format == SnapshotFormat::V1)
            writeV1(sink, plan);
        else
            writeV2(sink, plan);
        st.bytes = sink.offset();
        writer.commit();
    } catch (const corpus::SectionError &e) {
        // Keep the subsystem's exception type: callers (and the fault
        // matrices) catch SnapshotError for every failed save.
        throw SnapshotError(e.what());
    }
    st.formatVersion = static_cast<std::uint32_t>(opts.format);
    return st;
}

std::vector<std::uint8_t>
saveSnapshotToMemory(const SnapshotOptions &opts)
{
    if (opts.format != SnapshotFormat::V1 &&
        opts.format != SnapshotFormat::V2)
        throw SnapshotError("unknown snapshot format");
    const WritePlan plan = planFromLive(opts.engine);
    std::vector<std::uint8_t> out;
    VecSink sink(out);
    if (opts.format == SnapshotFormat::V1)
        writeV1(sink, plan);
    else
        writeV2(sink, plan);
    return out;
}

SnapshotStats
loadSnapshot(const std::string &path, const SnapshotOptions &opts)
{
    // Walk the generation chain newest-first and warm-start from the
    // first image that validates. Staging commits nothing on failure,
    // so a torn primary costs only the attempt — the fallback load
    // starts from pristine state.
    const int gens = std::max(1, opts.generations);
    std::string firstError;
    for (int g = 0; g < gens; ++g) {
        const std::string cand = snapshotGenerationPath(path, g);
        try {
            std::uint8_t magic[8];
            const int sniff = readMagic8(cand, magic);
            if (sniff < 0)
                throw SnapshotError("cannot open " + cand);
            SnapshotStats st;
            if (sniff > 0 &&
                std::memcmp(magic, kMagicV2, sizeof kMagicV2) == 0) {
                st = loadV2File(cand, opts);
            } else {
                const std::vector<std::uint8_t> file = readFile(cand);
                st = loadImageV1(file.data(), file.size(), opts,
                                 /*commit=*/true, cand);
            }
            st.generation = static_cast<std::size_t>(g);
            return st;
        } catch (const SnapshotError &e) {
            if (firstError.empty())
                firstError = e.what();
        }
    }
    throw SnapshotError("no loadable generation of " + path + " (" +
                        firstError + ")");
}

SnapshotStats
loadSnapshotFromMemory(const std::uint8_t *data, std::size_t size,
                       const SnapshotOptions &opts)
{
    if (size >= sizeof kMagicV2 &&
        std::memcmp(data, kMagicV2, sizeof kMagicV2) == 0)
        return loadImageV2Eager(data, size, opts, /*commit=*/true,
                                "<memory>");
    return loadImageV1(data, size, opts, /*commit=*/true, "<memory>");
}

SnapshotStats
validateSnapshot(const std::uint8_t *data, std::size_t size)
{
    if (size >= sizeof kMagicV2 &&
        std::memcmp(data, kMagicV2, sizeof kMagicV2) == 0)
        return loadImageV2Eager(data, size, {}, /*commit=*/false,
                                "<memory>");
    return loadImageV1(data, size, {}, /*commit=*/false, "<memory>");
}

SnapshotFormat
snapshotImageFormat(const std::uint8_t *data, std::size_t size)
{
    if (size >= sizeof kMagic &&
        std::memcmp(data, kMagic, sizeof kMagic) == 0)
        return SnapshotFormat::V1;
    if (size >= sizeof kMagicV2 &&
        std::memcmp(data, kMagicV2, sizeof kMagicV2) == 0)
        return SnapshotFormat::V2;
    throw SnapshotError("unrecognized snapshot magic");
}

SnapshotSourceStats
snapshotSourceStats()
{
    const SourceCounters &c = sourceCounters();
    SnapshotSourceStats st;
    st.imagesBound = c.imagesBound.load(std::memory_order_relaxed);
    st.sectionsVerified =
        c.sectionsVerified.load(std::memory_order_relaxed);
    st.sectionsPoisoned =
        c.sectionsPoisoned.load(std::memory_order_relaxed);
    return st;
}

SnapshotModel
parseSnapshotModel(const std::uint8_t *data, std::size_t size)
{
    if (size >= sizeof kMagicV2 &&
        std::memcmp(data, kMagicV2, sizeof kMagicV2) == 0)
        return parseV2Model(data, size, "<memory>");
    return parseV1Model(data, size, "<memory>");
}

std::vector<std::uint8_t>
buildSnapshotImage(const SnapshotModel &model, SnapshotFormat format)
{
    const WritePlan plan = planFromModel(model);
    std::vector<std::uint8_t> out;
    VecSink sink(out);
    if (format == SnapshotFormat::V1)
        writeV1(sink, plan);
    else if (format == SnapshotFormat::V2)
        writeV2(sink, plan);
    else
        throw SnapshotError("unknown snapshot format");
    return out;
}

void
SnapshotModelSet::accumulate(const SnapshotModel &m,
                             const std::string &name)
{
    for (const SnapshotModel::Arch &a : m.arches) {
        ArchSet &dst = arches[a.arch];
        for (const auto &[key, rec] : a.records) {
            std::vector<std::uint8_t> enc;
            InstRecordSnapshotCodec::encode(enc, rec);
            auto [it, inserted] = dst.records.try_emplace(key, enc, rec);
            if (!inserted && it->second.first != enc)
                throw SnapshotError(
                    "merge conflict: arch " + std::to_string(a.arch) +
                    " has two different records for one key (from " +
                    name + ")");
        }
        for (const auto &[ia, ib] : a.fusedPairs)
            dst.pairs.emplace(a.records[ia].first, a.records[ib].first);
    }
    hasPredictions = hasPredictions || m.hasPredictions;
    for (const auto &[key, payload] : m.predictions) {
        auto [it, inserted] = predictions.try_emplace(key, payload);
        if (!inserted && it->second != payload)
            throw SnapshotError(
                "merge conflict: two different cached predictions for "
                "one key (from " +
                name + ")");
    }
}

SnapshotModel
SnapshotModelSet::canonical() const
{
    SnapshotModel m;
    m.sourceVersion = 2;
    for (const auto &[archWord, as] : arches) {
        if (as.records.empty())
            continue;
        SnapshotModel::Arch arch;
        arch.arch = archWord;
        std::map<Key, std::uint32_t> index;
        for (const auto &[key, encRec] : as.records) {
            index.emplace(
                key, static_cast<std::uint32_t>(arch.records.size()));
            arch.records.emplace_back(key, encRec.second);
        }
        for (const auto &[ka, kb] : as.pairs)
            arch.fusedPairs.emplace_back(index.at(ka), index.at(kb));
        m.arches.push_back(std::move(arch));
    }
    m.hasPredictions = hasPredictions;
    for (const auto &[key, payload] : predictions)
        m.predictions.emplace_back(key, payload);
    return m;
}

SnapshotModel
mergeSnapshotModels(const std::vector<SnapshotModel> &models)
{
    SnapshotModelSet set;
    for (std::size_t i = 0; i < models.size(); ++i)
        set.accumulate(models[i], "input " + std::to_string(i));
    return set.canonical();
}

} // namespace facile::analysis
