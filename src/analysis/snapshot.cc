#include "analysis/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "engine/engine.h"
// The prediction-cache section reuses the wire codec (one Prediction
// body layout in the repo, not two drifting copies).
#include "server/protocol.h"
#include "testing/fault.h"

namespace facile::analysis {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'C', 'S', 'N', 'A', 'P', '\n'};
constexpr std::size_t kHeaderSize = 32;

enum class SectionType : std::uint32_t {
    Records = 1,
    FusedPairs = 2,
    Predictions = 3,
};

// ---- append helpers (little-endian; the host is asserted little-
// endian by the server protocol, and the snapshot shares that
// assumption via memcpy codecs) ---------------------------------------------

void
putU8(std::vector<std::uint8_t> &out, std::uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    const std::size_t n = out.size();
    out.resize(n + 2);
    std::memcpy(out.data() + n, &v, 2);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    const std::size_t n = out.size();
    out.resize(n + 4);
    std::memcpy(out.data() + n, &v, 4);
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    const std::size_t n = out.size();
    out.resize(n + 8);
    std::memcpy(out.data() + n, &v, 8);
}

void
putI32(std::vector<std::uint8_t> &out, std::int32_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
}

void
putI64(std::vector<std::uint8_t> &out, std::int64_t v)
{
    putU64(out, static_cast<std::uint64_t>(v));
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    putU64(out, bits);
}

/** Bounds-checked sequential reader; every overrun is a SnapshotError. */
struct Reader
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    void
    need(std::size_t n) const
    {
        if (size - pos < n)
            throw SnapshotError("truncated data");
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data[pos++];
    }

    std::uint16_t
    u16()
    {
        need(2);
        std::uint16_t v;
        std::memcpy(&v, data + pos, 2);
        pos += 2;
        return v;
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v;
        std::memcpy(&v, data + pos, 4);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v;
        std::memcpy(&v, data + pos, 8);
        pos += 8;
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    const std::uint8_t *
    bytes(std::size_t n)
    {
        need(n);
        const std::uint8_t *p = data + pos;
        pos += n;
        return p;
    }
};

// ---- isa/uops sub-codecs ---------------------------------------------------

void
encodeReg(std::vector<std::uint8_t> &out, const isa::Reg &r)
{
    putU8(out, static_cast<std::uint8_t>(r.cls));
    putU8(out, r.idx);
}

isa::Reg
decodeReg(Reader &rd)
{
    isa::Reg r;
    const std::uint8_t cls = rd.u8();
    if (cls > static_cast<std::uint8_t>(isa::RegClass::Ymm))
        throw SnapshotError("bad register class");
    r.cls = static_cast<isa::RegClass>(cls);
    r.idx = rd.u8();
    return r;
}

void
encodeOperand(std::vector<std::uint8_t> &out, const isa::Operand &op)
{
    putU8(out, static_cast<std::uint8_t>(op.kind));
    switch (op.kind) {
      case isa::Operand::Kind::Reg:
        encodeReg(out, op.reg);
        break;
      case isa::Operand::Kind::Mem:
        encodeReg(out, op.mem.base);
        encodeReg(out, op.mem.index);
        putU8(out, op.mem.scale);
        putI32(out, op.mem.disp);
        putU8(out, op.mem.width);
        break;
      case isa::Operand::Kind::Imm:
        putI64(out, op.imm);
        putU8(out, op.immWidth);
        break;
      case isa::Operand::Kind::None:
        break;
    }
}

isa::Operand
decodeOperand(Reader &rd)
{
    isa::Operand op;
    const std::uint8_t kind = rd.u8();
    if (kind > static_cast<std::uint8_t>(isa::Operand::Kind::Imm))
        throw SnapshotError("bad operand kind");
    op.kind = static_cast<isa::Operand::Kind>(kind);
    switch (op.kind) {
      case isa::Operand::Kind::Reg:
        op.reg = decodeReg(rd);
        break;
      case isa::Operand::Kind::Mem:
        op.mem.base = decodeReg(rd);
        op.mem.index = decodeReg(rd);
        op.mem.scale = rd.u8();
        op.mem.disp = rd.i32();
        op.mem.width = rd.u8();
        break;
      case isa::Operand::Kind::Imm:
        op.imm = rd.i64();
        op.immWidth = rd.u8();
        break;
      case isa::Operand::Kind::None:
        break;
    }
    return op;
}

// ---- Prediction codec (prediction-cache section) ---------------------------
//
// Snapshot entries carry exactly the wire protocol's PREDICT response
// payload: appendPredictResponse minus its frame header on the way
// out, decodePredictInto (which validates lengths and component
// ranges) on the way in. Raw IEEE-754 bit patterns either way.

void
encodePrediction(std::vector<std::uint8_t> &out,
                 const model::Prediction &p)
{
    std::vector<std::uint8_t> frame;
    server::appendPredictResponse(frame, 0, p);
    out.insert(out.end(),
               frame.begin() + server::kResponseHeaderSize, frame.end());
}

model::Prediction
decodePrediction(const std::uint8_t *data, std::size_t len)
{
    model::Prediction p;
    if (!server::decodePredictInto(data, len, p))
        throw SnapshotError("bad prediction entry");
    return p;
}

// ---- file I/O --------------------------------------------------------------

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *f;
    const auto fa = testing::faultPoint("snapshot.read", 0);
    if (fa.err) {
        errno = fa.err;
        f = nullptr;
    } else {
        f = std::fopen(path.c_str(), "rb");
    }
    if (!f)
        throw SnapshotError("cannot open " + path);
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> buf(sz > 0 ? static_cast<std::size_t>(sz)
                                         : 0);
    if (!buf.empty() && std::fread(buf.data(), 1, buf.size(), f) !=
                            buf.size()) {
        std::fclose(f);
        throw SnapshotError("short read on " + path);
    }
    std::fclose(f);
    return buf;
}

/**
 * Best-effort directory fsync after a rename: without it the rename
 * itself may not survive a power loss even though the file data would.
 * Failure is ignored — some filesystems refuse O_DIRECTORY fsync, and
 * the fallback generations cover the residual window.
 */
void
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

void
writeFileAtomic(const std::string &path, const std::uint8_t *data,
                std::size_t len, int generations)
{
    // Write-then-fsync-then-rename so a crash mid-save (SIGKILL, OOM
    // kill, power loss) never replaces the previous good snapshot with
    // a truncated one — the server saves to the same
    // operator-configured path on every SIGUSR1 and shutdown. The temp
    // name is pid-suffixed so concurrent savers (two processes sharing
    // a snapshot path) cannot tear each other's staging file.
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::FILE *f;
    {
        const auto fa = testing::faultPoint("snapshot.open", 0);
        if (fa.err) {
            errno = fa.err;
            f = nullptr;
        } else {
            f = std::fopen(tmp.c_str(), "wb");
        }
    }
    if (!f)
        throw SnapshotError("cannot create " + tmp);

    // Torn-write injection point: a clamp cuts the staging file short,
    // an errno fails the write outright — either way nothing has
    // touched `path` yet and every existing generation stays loadable.
    bool ok;
    {
        const auto fa = testing::faultPoint("snapshot.write", len);
        if (fa.err) {
            errno = fa.err;
            ok = false;
        } else {
            const std::size_t n = std::min(len, fa.clamp);
            ok = std::fwrite(data, 1, n, f) == n && n == len;
        }
    }
    // Durability before visibility: the bytes must be on stable
    // storage before the rename can make them the file readers see.
    if (ok) {
        const auto fa = testing::faultPoint("snapshot.fsync", 0);
        if (fa.err) {
            errno = fa.err;
            ok = false;
        } else {
            ok = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
        }
    }
    if (std::fclose(f) != 0)
        ok = false;
    if (!ok) {
        std::remove(tmp.c_str());
        throw SnapshotError("short write on " + tmp);
    }

    // Rotate prior generations (path -> .g1 -> .g2, oldest renamed
    // first). A missing generation is fine; any other failure aborts
    // the save with every existing generation intact.
    for (int g = generations - 1; g >= 1; --g) {
        const std::string from = snapshotGenerationPath(path, g - 1);
        const std::string to = snapshotGenerationPath(path, g);
        int rc;
        const auto fa = testing::faultPoint("snapshot.rotate", 0);
        if (fa.err) {
            errno = fa.err;
            rc = -1;
        } else {
            rc = std::rename(from.c_str(), to.c_str());
        }
        if (rc != 0 && errno != ENOENT) {
            std::remove(tmp.c_str());
            throw SnapshotError("cannot rotate " + from + " to " + to);
        }
    }

    // The commit point. If this fails after a rotation, the primary
    // name is vacant but `path.g1` holds the previous good image and
    // the loader's generation walk finds it.
    int rc;
    {
        const auto fa = testing::faultPoint("snapshot.rename", 0);
        if (fa.err) {
            errno = fa.err;
            rc = -1;
        } else {
            rc = std::rename(tmp.c_str(), path.c_str());
        }
    }
    if (rc != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError("cannot rename " + tmp + " to " + path);
    }
    fsyncParentDir(path);
}

} // namespace

std::string
snapshotGenerationPath(const std::string &path, int gen)
{
    return gen <= 0 ? path : path + ".g" + std::to_string(gen);
}

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t len, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
InstRecordSnapshotCodec::encode(std::vector<std::uint8_t> &out,
                                const InstRecord &rec)
{
    // DecodedInst.
    putU16(out, static_cast<std::uint16_t>(rec.dec.inst.mnem));
    putU8(out, static_cast<std::uint8_t>(rec.dec.inst.cc));
    putU8(out, rec.dec.inst.nopLen);
    putU8(out, static_cast<std::uint8_t>(rec.dec.inst.ops.size()));
    for (const isa::Operand &op : rec.dec.inst.ops)
        encodeOperand(out, op);
    putU8(out, rec.dec.length);
    putU8(out, rec.dec.opcodeOffset);
    putU8(out, rec.dec.lcp ? 1 : 0);

    // InstrInfo.
    putI32(out, rec.info.fusedUops);
    putI32(out, rec.info.issueUops);
    putI32(out, rec.info.latency);
    putI32(out, rec.info.nAvailableSimpleDecoders);
    putU8(out, rec.info.needsComplexDecoder ? 1 : 0);
    putU8(out, rec.info.macroFusible ? 1 : 0);
    putU8(out, rec.info.eliminated ? 1 : 0);
    putU16(out, static_cast<std::uint16_t>(rec.info.portUops.size()));
    for (const uops::Uop &u : rec.info.portUops) {
        putU16(out, u.ports);
        putU8(out, static_cast<std::uint8_t>(u.kind));
    }

    // RwSets (value ids fit a byte: 0..33).
    putU8(out, static_cast<std::uint8_t>(rec.rw.reads.size()));
    for (int v : rec.rw.reads)
        putU8(out, static_cast<std::uint8_t>(v));
    putU8(out, static_cast<std::uint8_t>(rec.rw.writes.size()));
    for (int v : rec.rw.writes)
        putU8(out, static_cast<std::uint8_t>(v));
    putU8(out, rec.rw.depBreaking ? 1 : 0);

    // Dependence templates and port masks.
    putU16(out, static_cast<std::uint16_t>(rec.depReads.size()));
    for (const DepRead &d : rec.depReads) {
        putI32(out, d.value);
        putF64(out, d.latency);
    }
    putU16(out, static_cast<std::uint16_t>(rec.portMasks.size()));
    for (uarch::PortMask m : rec.portMasks)
        putU16(out, m);

    // Scalars and inline dependence data (only the valid prefixes —
    // slots past the counts are uninitialized by construction).
    putU8(out, rec.stackOp ? 1 : 0);
    putU8(out, rec.depBreaking ? 1 : 0);
    putU8(out, rec.nWritesInl);
    if (rec.nWritesInl != InstRecord::kSpilled)
        for (std::uint8_t i = 0; i < rec.nWritesInl; ++i)
            putU8(out, rec.writesInl[i]);
    putU8(out, rec.nDepInl);
    if (rec.nDepInl != InstRecord::kSpilled)
        for (std::uint8_t i = 0; i < rec.nDepInl; ++i) {
            putI32(out, rec.depInl[i].value);
            putF64(out, rec.depInl[i].latency);
        }

    // Macro-fusion pair class.
    putU8(out, static_cast<std::uint8_t>(rec.fuseClass));
    putU8(out, rec.isJcc ? 1 : 0);
    putU8(out, rec.jccReadsCf ? 1 : 0);
    putU8(out, rec.jccTestsSOP ? 1 : 0);
}

InstRecord
InstRecordSnapshotCodec::decode(const std::uint8_t *data, std::size_t size,
                                std::size_t &pos)
{
    Reader rd{data, size, pos};
    InstRecord rec;

    // DecodedInst.
    const std::uint16_t mnem = rd.u16();
    if (mnem >= static_cast<std::uint16_t>(isa::Mnemonic::kNumMnemonics))
        throw SnapshotError("bad mnemonic");
    rec.dec.inst.mnem = static_cast<isa::Mnemonic>(mnem);
    const std::uint8_t cc = rd.u8();
    if (cc > static_cast<std::uint8_t>(isa::Cond::NLE) &&
        cc != static_cast<std::uint8_t>(isa::Cond::None))
        throw SnapshotError("bad condition code");
    rec.dec.inst.cc = static_cast<isa::Cond>(cc);
    rec.dec.inst.nopLen = rd.u8();
    const std::size_t nOps = rd.u8();
    rec.dec.inst.ops.reserve(nOps);
    for (std::size_t i = 0; i < nOps; ++i)
        rec.dec.inst.ops.push_back(decodeOperand(rd));
    rec.dec.length = rd.u8();
    rec.dec.opcodeOffset = rd.u8();
    rec.dec.lcp = rd.u8() != 0;

    // InstrInfo.
    rec.info.fusedUops = rd.i32();
    rec.info.issueUops = rd.i32();
    rec.info.latency = rd.i32();
    rec.info.nAvailableSimpleDecoders = rd.i32();
    rec.info.needsComplexDecoder = rd.u8() != 0;
    rec.info.macroFusible = rd.u8() != 0;
    rec.info.eliminated = rd.u8() != 0;
    const std::size_t nUops = rd.u16();
    rec.info.portUops.reserve(nUops);
    for (std::size_t i = 0; i < nUops; ++i) {
        uops::Uop u;
        u.ports = rd.u16();
        const std::uint8_t kind = rd.u8();
        if (kind > static_cast<std::uint8_t>(uops::UopKind::StoreData))
            throw SnapshotError("bad uop kind");
        u.kind = static_cast<uops::UopKind>(kind);
        rec.info.portUops.push_back(u);
    }

    // RwSets.
    const std::size_t nReads = rd.u8();
    rec.rw.reads.reserve(nReads);
    for (std::size_t i = 0; i < nReads; ++i)
        rec.rw.reads.push_back(rd.u8());
    const std::size_t nWrites = rd.u8();
    rec.rw.writes.reserve(nWrites);
    for (std::size_t i = 0; i < nWrites; ++i)
        rec.rw.writes.push_back(rd.u8());
    rec.rw.depBreaking = rd.u8() != 0;

    // Dependence templates and port masks.
    const std::size_t nDeps = rd.u16();
    rec.depReads.reserve(nDeps);
    for (std::size_t i = 0; i < nDeps; ++i) {
        DepRead d;
        d.value = rd.i32();
        d.latency = rd.f64();
        rec.depReads.push_back(d);
    }
    const std::size_t nMasks = rd.u16();
    rec.portMasks.reserve(nMasks);
    for (std::size_t i = 0; i < nMasks; ++i)
        rec.portMasks.push_back(rd.u16());

    // Scalars and inline dependence data.
    rec.stackOp = rd.u8() != 0;
    rec.depBreaking = rd.u8() != 0;
    rec.nWritesInl = rd.u8();
    if (rec.nWritesInl != InstRecord::kSpilled) {
        if (rec.nWritesInl > InstRecord::kInlineDeps)
            throw SnapshotError("bad inline write count");
        for (std::uint8_t i = 0; i < rec.nWritesInl; ++i)
            rec.writesInl[i] = rd.u8();
    }
    rec.nDepInl = rd.u8();
    if (rec.nDepInl != InstRecord::kSpilled) {
        if (rec.nDepInl > InstRecord::kInlineDeps)
            throw SnapshotError("bad inline dep count");
        for (std::uint8_t i = 0; i < rec.nDepInl; ++i) {
            rec.depInl[i].value = rd.i32();
            rec.depInl[i].latency = rd.f64();
        }
    }

    // Macro-fusion pair class.
    const std::uint8_t fuse = rd.u8();
    if (fuse > static_cast<std::uint8_t>(FuseClass::NoCarryNoSOP))
        throw SnapshotError("bad fuse class");
    rec.fuseClass = static_cast<FuseClass>(fuse);
    rec.isJcc = rd.u8() != 0;
    rec.jccReadsCf = rd.u8() != 0;
    rec.jccTestsSOP = rd.u8() != 0;

    pos = rd.pos;
    return rec;
}

SnapshotStats
saveSnapshot(const std::string &path, const SnapshotOptions &opts)
{
    SnapshotStats st;
    std::vector<std::uint8_t> payload;
    std::uint32_t sections = 0;

    for (uarch::UArch arch : uarch::allUArchs()) {
        const InstInterner &in = InstInterner::forArch(arch);

        // Records first; remember each record's index for the pairs.
        std::vector<std::uint8_t> recSec;
        std::unordered_map<const InstRecord *, std::uint32_t> indexOf;
        std::uint32_t count = 0;
        in.exportRecords([&](const std::uint8_t *bytes, std::size_t len,
                             const InstRecord &rec) {
            indexOf.emplace(&rec, count++);
            putU8(recSec, static_cast<std::uint8_t>(len));
            recSec.insert(recSec.end(), bytes, bytes + len);
            InstRecordSnapshotCodec::encode(recSec, rec);
        });
        if (count == 0)
            continue; // this arch saw no traffic
        st.records += count;

        std::vector<std::uint8_t> pairSec;
        std::uint32_t pairs = 0;
        in.exportFusedPairs([&](const InstRecord *first,
                                const InstRecord *second) {
            auto fi = indexOf.find(first);
            auto si = indexOf.find(second);
            if (fi == indexOf.end() || si == indexOf.end())
                return; // unreachable: bases are canonical records
            putU32(pairSec, fi->second);
            putU32(pairSec, si->second);
            ++pairs;
        });
        st.fusedPairs += pairs;

        putU32(payload, static_cast<std::uint32_t>(SectionType::Records));
        putU32(payload, static_cast<std::uint32_t>(arch));
        putU64(payload, recSec.size() + 4);
        putU32(payload, count);
        payload.insert(payload.end(), recSec.begin(), recSec.end());
        ++sections;

        putU32(payload,
               static_cast<std::uint32_t>(SectionType::FusedPairs));
        putU32(payload, static_cast<std::uint32_t>(arch));
        putU64(payload, pairSec.size() + 4);
        putU32(payload, pairs);
        payload.insert(payload.end(), pairSec.begin(), pairSec.end());
        ++sections;
    }

    if (opts.engine) {
        std::vector<std::uint8_t> predSec;
        std::uint32_t count = 0;
        opts.engine->exportPredictionCache(
            [&](const std::string &key, const model::Prediction &p) {
                putU32(predSec, static_cast<std::uint32_t>(key.size()));
                const auto *kp =
                    reinterpret_cast<const std::uint8_t *>(key.data());
                if (!key.empty())
                    predSec.insert(predSec.end(), kp, kp + key.size());
                std::vector<std::uint8_t> enc;
                encodePrediction(enc, p);
                putU32(predSec, static_cast<std::uint32_t>(enc.size()));
                predSec.insert(predSec.end(), enc.begin(), enc.end());
                ++count;
            });
        st.predictions = count;
        putU32(payload,
               static_cast<std::uint32_t>(SectionType::Predictions));
        putU32(payload, 0);
        putU64(payload, predSec.size() + 4);
        putU32(payload, count);
        payload.insert(payload.end(), predSec.begin(), predSec.end());
        ++sections;
    }

    std::vector<std::uint8_t> file;
    file.reserve(kHeaderSize + payload.size());
    const auto *magic = reinterpret_cast<const std::uint8_t *>(kMagic);
    file.insert(file.end(), magic, magic + sizeof kMagic);
    putU32(file, kSnapshotVersion);
    putU32(file, sections);
    putU64(file, payload.size());
    putU64(file, fnv1a64(payload.data(), payload.size()));
    file.insert(file.end(), payload.begin(), payload.end());
    writeFileAtomic(path, file.data(), file.size(),
                    std::max(1, opts.generations));
    st.bytes = file.size();
    return st;
}

namespace {

/**
 * The shared load path: validate the header, stage every section
 * (phase 1), and — only when @p commit is set — publish the staged
 * state to the process-wide arenas (phase 2). @p name labels error
 * messages (a path for file loads, "<memory>" for wire images).
 */
SnapshotStats
loadImage(const std::uint8_t *data, std::size_t size,
          const SnapshotOptions &opts, bool commit,
          const std::string &name)
{
    if (size < kHeaderSize)
        throw SnapshotError("truncated header in " + name);
    if (std::memcmp(data, kMagic, sizeof kMagic) != 0)
        throw SnapshotError("bad magic in " + name);

    Reader hd{data, size, sizeof kMagic};
    const std::uint32_t version = hd.u32();
    if (version != kSnapshotVersion)
        throw SnapshotError("unsupported version " +
                            std::to_string(version) + " in " + name);
    const std::uint32_t sections = hd.u32();
    const std::uint64_t payloadLen = hd.u64();
    const std::uint64_t checksum = hd.u64();
    if (size - kHeaderSize != payloadLen)
        throw SnapshotError("payload length mismatch in " + name);
    if (fnv1a64(data + kHeaderSize, payloadLen) != checksum)
        throw SnapshotError("checksum mismatch in " + name);

    SnapshotStats st;
    st.bytes = size;
    Reader rd{data + kHeaderSize, static_cast<std::size_t>(payloadLen),
              0};

    // Phase 1 — parse and validate EVERYTHING into staging before a
    // single record is published: the checksum only proves the bytes
    // match what was written, so logical validation failures (bad
    // enum, bad pair index, section-length mismatch) must also leave
    // the process untouched, as snapshot.h promises.
    struct StagedArch
    {
        std::vector<std::pair<std::vector<std::uint8_t>, InstRecord>>
            records; ///< (exact encoded bytes, decoded record)
        std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    };
    std::unordered_map<std::uint32_t, StagedArch> staged;
    std::vector<std::pair<std::string, model::Prediction>> stagedPreds;

    for (std::uint32_t s = 0; s < sections; ++s) {
        const std::uint32_t type = rd.u32();
        const std::uint32_t archWord = rd.u32();
        const std::uint64_t len = rd.u64();
        rd.need(len);
        const std::size_t sectionEnd = rd.pos + len;

        switch (static_cast<SectionType>(type)) {
          case SectionType::Records: {
            if (archWord >= uarch::allUArchs().size())
                throw SnapshotError("bad arch in " + name);
            const std::uint32_t count = rd.u32();
            auto &arch = staged[archWord];
            // Clamp the hint: `count` comes from the file, and each
            // record costs at least 8 section bytes, so a forged count
            // cannot reserve more memory than the section could hold.
            arch.records.reserve(std::min<std::size_t>(
                count, (sectionEnd - rd.pos) / 8 + 1));
            for (std::uint32_t i = 0; i < count; ++i) {
                const std::uint8_t keyLen = rd.u8();
                if (keyLen == 0 || keyLen > 15)
                    throw SnapshotError("bad key length in " + name);
                const std::uint8_t *key = rd.bytes(keyLen);
                std::size_t pos = rd.pos;
                InstRecord rec = InstRecordSnapshotCodec::decode(
                    rd.data, sectionEnd, pos);
                rd.pos = pos;
                arch.records.emplace_back(
                    std::vector<std::uint8_t>(key, key + keyLen),
                    std::move(rec));
            }
            st.records += count;
            break;
          }
          case SectionType::FusedPairs: {
            if (archWord >= uarch::allUArchs().size())
                throw SnapshotError("bad arch in " + name);
            const auto it = staged.find(archWord);
            const std::uint32_t count = rd.u32();
            for (std::uint32_t i = 0; i < count; ++i) {
                const std::uint32_t fi = rd.u32();
                const std::uint32_t si = rd.u32();
                if (it == staged.end() ||
                    fi >= it->second.records.size() ||
                    si >= it->second.records.size())
                    throw SnapshotError("bad fused pair index in " +
                                        name);
                it->second.pairs.emplace_back(fi, si);
            }
            st.fusedPairs += count;
            break;
          }
          case SectionType::Predictions: {
            const std::uint32_t count = rd.u32();
            for (std::uint32_t i = 0; i < count; ++i) {
                const std::uint32_t keyLen = rd.u32();
                const std::uint8_t *key = rd.bytes(keyLen);
                const std::uint32_t predLen = rd.u32();
                model::Prediction p =
                    decodePrediction(rd.bytes(predLen), predLen);
                if (opts.engine)
                    stagedPreds.emplace_back(
                        std::string(reinterpret_cast<const char *>(key),
                                    keyLen),
                        std::move(p));
            }
            st.predictions += count;
            break;
          }
          default:
            throw SnapshotError("unknown section type " +
                                std::to_string(type) + " in " + name);
        }
        if (rd.pos != sectionEnd)
            throw SnapshotError("section length mismatch in " + name);
    }
    if (rd.pos != payloadLen)
        throw SnapshotError("trailing garbage in " + name);

    if (!commit)
        return st; // validation-only: nothing published, newRecords 0

    // Phase 2 — commit. Nothing below can fail validation; imports go
    // through the same shard maps internAt fills (existing keys win).
    for (auto &[archWord, arch] : staged) {
        InstInterner &in =
            InstInterner::forArch(static_cast<uarch::UArch>(archWord));
        std::vector<const InstRecord *> byIndex;
        byIndex.reserve(arch.records.size());
        for (auto &[key, rec] : arch.records) {
            bool inserted = false;
            byIndex.push_back(in.importRecord(key.data(), key.size(),
                                              std::move(rec),
                                              &inserted));
            st.newRecords += inserted ? 1 : 0;
        }
        for (const auto &[fi, si] : arch.pairs)
            in.internFused(byIndex[fi], byIndex[si]);
    }
    for (auto &[key, pred] : stagedPreds)
        opts.engine->importPredictionCacheEntry(std::move(key),
                                                std::move(pred));
    return st;
}

} // namespace

SnapshotStats
loadSnapshot(const std::string &path, const SnapshotOptions &opts)
{
    // Walk the generation chain newest-first and warm-start from the
    // first image that validates end to end. Staging (phase 1) commits
    // nothing on failure, so a torn primary costs only the attempt —
    // the fallback load starts from pristine state.
    const int gens = std::max(1, opts.generations);
    std::string firstError;
    for (int g = 0; g < gens; ++g) {
        const std::string cand = snapshotGenerationPath(path, g);
        try {
            const std::vector<std::uint8_t> file = readFile(cand);
            SnapshotStats st = loadImage(file.data(), file.size(), opts,
                                         /*commit=*/true, cand);
            st.generation = static_cast<std::size_t>(g);
            return st;
        } catch (const SnapshotError &e) {
            if (firstError.empty())
                firstError = e.what();
        }
    }
    throw SnapshotError("no loadable generation of " + path + " (" +
                        firstError + ")");
}

SnapshotStats
loadSnapshotFromMemory(const std::uint8_t *data, std::size_t size,
                       const SnapshotOptions &opts)
{
    return loadImage(data, size, opts, /*commit=*/true, "<memory>");
}

SnapshotStats
validateSnapshot(const std::uint8_t *data, std::size_t size)
{
    return loadImage(data, size, {}, /*commit=*/false, "<memory>");
}

} // namespace facile::analysis
