/**
 * @file
 * Warm-start snapshots: persist the per-arch instruction intern arenas
 * (src/analysis/intern.h) — and optionally an engine's prediction
 * cache — to a versioned, checksummed binary file, so a new process
 * starts with the instruction universe already analyzed instead of
 * paying the decode + uops::lookup + read/write-set cold path per
 * first sighting.
 *
 * Two on-disk formats, both little-endian, both crash-safe (temp file
 * → fsync → generation rotation → atomic rename):
 *
 * Format v1 — sequential parse-and-copy, magic "FACSNAP\n":
 *
 *   offset 0   char[8]  magic     "FACSNAP\n"
 *   offset 8   u32      version   1
 *   offset 12  u32      sections  number of sections
 *   offset 16  u64      payload   total section bytes after the header
 *   offset 24  u64      checksum  FNV-1a 64 over the payload bytes
 *   offset 32  sections, back to back:
 *       u32 type   1 = intern records   2 = fused pairs
 *                  3 = prediction cache
 *       u32 arch   uarch::UArch value (types 1/2); 0 for type 3
 *       u64 len    section payload bytes
 *       len bytes  section payload
 *
 *   Section payloads:
 *     records:     u32 count, then per record: u8 keyLen, the exact
 *                  encoded instruction bytes, and the serialized
 *                  InstRecord (full analysis results — nothing is
 *                  recomputed on load).
 *     fused pairs: u32 count, then u32 (firstIdx, secondIdx) pairs
 *                  indexing the same arch's record section in file
 *                  order. The derived records are re-derived on load
 *                  via InstInterner::internFused, bit-for-bit.
 *     predictions: u32 count, then per entry: u32 keyLen + opaque
 *                  engine cache key, u32 predLen + serialized
 *                  Prediction (raw IEEE-754 bit patterns).
 *
 *   Loading v1 is O(records): every record is decoded through the
 *   codec and copied into the arenas.
 *
 * Format v2 — relocatable, page-aligned, mmap-able, magic "FACSNP2\n"
 * (full layout diagram in src/analysis/README.md):
 *
 *   offset 0   char[8]  magic       "FACSNP2\n"
 *   offset 8   u32      version     2
 *   offset 12  u32      endianTag   corpus::kLittleEndianTag — a
 *                                   foreign-endian image is rejected,
 *                                   never misparsed
 *   offset 16  u32      pageSize    corpus::kSectionAlign (4096)
 *   offset 20  u32      sectionCount
 *   offset 24  u64      fileBytes   total file size (truncation check)
 *   offset 32  u64      tableOffset 64
 *   offset 40  u64      tableHash   xxh64 over the section table
 *   offset 48  u64      headerHash  xxh64 over bytes [0, 48)
 *   offset 56  u64      reserved    0
 *   offset 64  section table: corpus::SectionEntry × sectionCount,
 *              each carrying a per-section xxh64 and a 4 KiB-aligned
 *              payload offset (section types as in v1)
 *
 *   Records sections hold a flat, position-independent arena: a
 *   64-byte section head, fixed-layout records (POD head + trailing
 *   arrays, every pointer replaced by an offset/count), and an
 *   open-addressed key index (keyLo/keyHi/recOffset slots, linear
 *   probing on xxh64 of the 16-byte packed instruction key — the same
 *   packing the interner's canonical maps use). Fused-pair and
 *   prediction sections keep the small v1 tail codecs.
 *
 *   Loading v2 is O(pages touched): open + mmap + header/table
 *   verification + madvise(MADV_WILLNEED) on the record sections +
 *   binding each section into its InstInterner as a RecordSource.
 *   Records materialize lazily on first canonical-map miss; section
 *   hashes are verified lazily on first touch of each section, and a
 *   section that fails verification (bit flips) is poisoned — lookups
 *   fall through to the cold analysis path, so predictions stay
 *   bit-identical to a cold start no matter what the image contains.
 *   Fused pairs are not imported at load; internFused re-derives them
 *   on demand, bit-identically. The prediction tail is parsed eagerly
 *   (it is the small parsed tail by design).
 *
 *   Graceful degradation, outermost first: a v2 image that is
 *   foreign-endian, version-mismatched, or fails header/table/
 *   structural validation throws and the generation walk falls back
 *   to older generations (which may be v1 — both formats stay fully
 *   readable); an image whose sections are unaligned, or whose mmap
 *   fails, is parsed eagerly through the same validated path instead
 *   of being mapped; a section that fails its lazy hash check merely
 *   poisons that section. SnapshotStats::loadMode reports which path
 *   actually served the load.
 *
 * Loading is append-only in every mode: records land in the same
 * arenas internAt fills, an already-interned key keeps its live
 * record, and published `const InstRecord *` values stay valid and
 * immutable.
 *
 * Corruption handling: a bad magic, unsupported version, truncated
 * file, out-of-bounds section, or checksum mismatch throws
 * SnapshotError; nothing is imported from a file that fails
 * validation.
 *
 * Crash safety (PR 8): saves of BOTH formats are atomic and durable —
 * streamed to a pid-suffixed temp file (incremental checksumming;
 * peak save memory is one section, not the whole image),
 * fflush+fsync'd, then rename(2)'d over the target with the parent
 * directory fsync'd after. Saves keep a bounded history of rotated
 * *generations* (`path` → `path.g1` → ... per
 * SnapshotOptions::generations); loadSnapshot walks that chain
 * newest-first and warm-starts from the first image that validates,
 * whichever format it is. SnapshotStats::generation reports which one
 * loaded.
 */
#ifndef FACILE_ANALYSIS_SNAPSHOT_H
#define FACILE_ANALYSIS_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "analysis/intern.h"

namespace facile::engine {
class PredictionEngine;
}

namespace facile::analysis {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::uint32_t kSnapshotVersionV2 = 2;

/** On-disk image format (see the file comment for both layouts). */
enum class SnapshotFormat : std::uint32_t {
    V1 = 1, ///< sequential parse-and-copy codec
    V2 = 2, ///< page-aligned, sectioned, mmap-able flat arenas
};

/** Which code path actually served a load. */
enum class SnapshotLoadMode : std::uint8_t {
    None = 0,    ///< nothing loaded (saves, or validation-only)
    ParseV1 = 1, ///< v1 image, record-by-record parse
    EagerV2 = 2, ///< v2 image, fully parsed (unaligned / mmap failed
                 ///< / SnapshotOptions::eagerLoad / wire image)
    MmapV2 = 3,  ///< v2 image mapped; records materialize lazily
};

/**
 * Default on-disk history depth: the primary file plus two rotated
 * prior generations (`path`, `path.g1`, `path.g2`).
 */
inline constexpr int kSnapshotGenerations = 3;

/** Thrown on malformed, truncated, or corrupted snapshot files. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error("snapshot: " + what)
    {}
};

/** What was written or read. */
struct SnapshotStats
{
    std::size_t records = 0;     ///< canonical InstRecords
    std::size_t fusedPairs = 0;  ///< macro-fused pair variants
    std::size_t predictions = 0; ///< engine prediction-cache entries
    std::size_t newRecords = 0;  ///< load: records actually appended
                                 ///< (0 in MmapV2 mode — records
                                 ///< materialize on first touch)
    std::size_t bytes = 0;       ///< file size
    /**
     * Which generation a load came from: 0 = the primary path, g > 0 =
     * the g-th rotated fallback (`path.gN`) after newer generations
     * failed validation. Always 0 for saves.
     */
    std::size_t generation = 0;
    /** How the image was consumed (None for saves). */
    SnapshotLoadMode loadMode = SnapshotLoadMode::None;
    /** Image format version written or read (0 when nothing loaded). */
    std::uint32_t formatVersion = 0;
};

struct SnapshotOptions
{
    /**
     * When set, save() also serializes this engine's prediction cache
     * and load() restores entries into it. The intern arenas are
     * process-wide and always included.
     */
    engine::PredictionEngine *engine = nullptr;

    /**
     * On-disk generations kept by save (and scanned by load). 1 means
     * no rotation — the pre-PR 8 single-file behavior. Values < 1 are
     * treated as 1.
     */
    int generations = kSnapshotGenerations;

    /** Format written by save (loads auto-detect from the magic). */
    SnapshotFormat format = SnapshotFormat::V2;

    /**
     * Load-side: force a v2 image through the fully-validated eager
     * parse (every section hash checked, every record decoded and
     * committed) instead of the lazy mmap bind. v1 images are always
     * parsed eagerly; this flag is how operators trade startup time
     * for up-front corruption detection.
     */
    bool eagerLoad = false;
};

/** Name of generation @p gen of @p path (gen 0 is @p path itself). */
std::string snapshotGenerationPath(const std::string &path, int gen);

/**
 * Serialize the intern arenas (all nine arches) to @p path, atomically
 * and durably (temp file + fsync + rename), rotating prior generations
 * per SnapshotOptions::generations. SnapshotOptions::format selects
 * the image format; sections stream to the temp file with incremental
 * checksumming, so peak save memory is one section (v1) or one record
 * plus the index (v2), not the whole image.
 */
SnapshotStats saveSnapshot(const std::string &path,
                           const SnapshotOptions &opts = {});

/**
 * As saveSnapshot, but into a byte vector instead of a file — the
 * entry point for snapshots that leave over a wire rather than to
 * disk (the SNAPSHOT-fetch admin op, replica convergence). The image
 * is byte-identical to what saveSnapshot would have written for the
 * same live state, so a replica that loads it warm-starts with a
 * bit-identical universe.
 */
std::vector<std::uint8_t>
saveSnapshotToMemory(const SnapshotOptions &opts = {});

/**
 * Validate and load @p path, appending to the process-wide arenas.
 * The format is detected from the magic: v1 images take the record-by-
 * record parse; v2 images are mmap'd and bound lazily (or parsed
 * eagerly — see SnapshotLoadMode for the fallback ladder). Falls back
 * through rotated generations (`path.g1`, ...) when newer files are
 * missing or fail validation; SnapshotStats::generation records which
 * one was used.
 * @throws SnapshotError when no generation validates (nothing
 * imported).
 */
SnapshotStats loadSnapshot(const std::string &path,
                           const SnapshotOptions &opts = {});

/**
 * As loadSnapshot, but from an in-memory image — the entry point for
 * snapshots that arrive over a wire rather than from disk. Both
 * formats accepted; v2 images take the eager parse (there is no
 * backing file to map).
 */
SnapshotStats loadSnapshotFromMemory(const std::uint8_t *data,
                                     std::size_t size,
                                     const SnapshotOptions &opts = {});

/**
 * Run the full parse-and-validate staging phase on an in-memory image
 * of either format and commit NOTHING: no records are interned, no
 * predictions imported, whatever the outcome. For v2 images this is
 * the deep eager walk — header, table, every section hash, every
 * record, full index-consistency probing — i.e. strictly stronger
 * than what the lazy mmap path checks at load time. Returns what a
 * load would have reported (with newRecords = 0); throws SnapshotError
 * exactly when an eager load would. This is the path the
 * fuzz_snapshot harness and `facile_snaptool verify` drive.
 */
SnapshotStats validateSnapshot(const std::uint8_t *data,
                               std::size_t size);

/**
 * Classify an image by magic. @throws SnapshotError when the bytes
 * start with neither snapshot magic.
 */
SnapshotFormat snapshotImageFormat(const std::uint8_t *data,
                                   std::size_t size);

/** Counters of the lazy (mmap-bound) record sources, process-wide. */
struct SnapshotSourceStats
{
    std::uint64_t imagesBound = 0;      ///< v2 images mmap'd + bound
    std::uint64_t sectionsVerified = 0; ///< lazy hash checks passed
    std::uint64_t sectionsPoisoned = 0; ///< failed checks / bad records
};

SnapshotSourceStats snapshotSourceStats();

// ---- snapshot-as-data (facile_snaptool, convert/merge/diff) ----------------

/**
 * A fully-parsed, format-independent view of one snapshot image: the
 * operand facile_snaptool's convert/diff/merge/compact subcommands
 * work on. File order is preserved exactly, so
 * buildSnapshotImage(parseSnapshotModel(img), sameFormat) reproduces
 * a canonically-written image byte for byte.
 */
struct SnapshotModel
{
    struct Arch
    {
        std::uint32_t arch = 0; ///< uarch::UArch value
        /** (exact encoded instruction bytes, full analysis record). */
        std::vector<std::pair<std::vector<std::uint8_t>, InstRecord>>
            records;
        /** Indices into records, in file order. */
        std::vector<std::pair<std::uint32_t, std::uint32_t>> fusedPairs;
    };
    std::vector<Arch> arches; ///< file order

    /** Present even when empty iff the image carried the section. */
    bool hasPredictions = false;
    /** (opaque engine cache key, v1-codec prediction payload). */
    std::vector<std::pair<std::string, std::vector<std::uint8_t>>>
        predictions;

    std::uint32_t sourceVersion = 0; ///< 1 or 2
};

/**
 * Deep-parse an image of either format into a SnapshotModel,
 * validating everything validateSnapshot validates. @throws
 * SnapshotError.
 */
SnapshotModel parseSnapshotModel(const std::uint8_t *data,
                                 std::size_t size);

/**
 * Serialize @p model as @p format. Deterministic: equal models yield
 * equal bytes. @throws SnapshotError on unrepresentable models (e.g.
 * duplicate record keys, or forged inline dependence data that does
 * not mirror the record's vectors).
 */
std::vector<std::uint8_t> buildSnapshotImage(const SnapshotModel &model,
                                             SnapshotFormat format);

/**
 * Order-independent set view over one or more SnapshotModels — the
 * merge layer behind `facile_snaptool merge|diff|compact` and the
 * cluster replica-convergence loop. accumulate() folds models in;
 * canonical() rebuilds a deterministic model, so the same input set
 * yields the same image whatever order the inputs arrived in (merge
 * commutativity — the property the convergence cadence relies on).
 */
class SnapshotModelSet
{
  public:
    /** Exact encoded instruction bytes: the comparison key. */
    using Key = std::vector<std::uint8_t>;

    /** One arch's contents keyed for order-independent set ops. */
    struct ArchSet
    {
        /** key → (encoded record bytes, record). */
        std::map<Key, std::pair<std::vector<std::uint8_t>, InstRecord>>
            records;
        /** Macro-fused pairs as (key, key) — index-free. */
        std::set<std::pair<Key, Key>> pairs;
    };

    std::map<std::uint32_t, ArchSet> arches;
    bool hasPredictions = false;
    std::map<std::string, std::vector<std::uint8_t>> predictions;

    /**
     * Fold @p m in; @p name labels the source in error messages.
     * @throws SnapshotError (message contains "merge conflict") when
     * two sources carry different content behind one key — two
     * records for one encoding, or two cached predictions for one
     * engine key. Union-compatible inputs (the normal replica case:
     * same analysis code, disjoint-or-equal universes) never conflict.
     */
    void accumulate(const SnapshotModel &m, const std::string &name);

    /**
     * Rebuild a SnapshotModel in canonical order: arches ascending,
     * records sorted by key bytes, pairs sorted, predictions sorted.
     * sourceVersion is 2 (the canonical on-disk format).
     */
    SnapshotModel canonical() const;
};

/**
 * accumulate() every model of @p models (named by index) into one set
 * and return its canonical union — commutative and associative.
 * @throws SnapshotError on content conflicts.
 */
SnapshotModel
mergeSnapshotModels(const std::vector<SnapshotModel> &models);

// ---- building blocks (exposed for tests) ----------------------------------

/** FNV-1a 64-bit over @p len bytes. */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t len,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

struct InstRecordSnapshotCodec
{
    /** Append the serialized form of @p rec to @p out. */
    static void encode(std::vector<std::uint8_t> &out,
                       const InstRecord &rec);

    /**
     * Decode one record from @p data at @p pos (bounds-checked against
     * @p size), advancing @p pos. @throws SnapshotError on truncation
     * or out-of-range enum values.
     */
    static InstRecord decode(const std::uint8_t *data, std::size_t size,
                             std::size_t &pos);
};

} // namespace facile::analysis

#endif // FACILE_ANALYSIS_SNAPSHOT_H
