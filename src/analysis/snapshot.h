/**
 * @file
 * Warm-start snapshots: persist the per-arch instruction intern arenas
 * (src/analysis/intern.h) — and optionally an engine's prediction
 * cache — to a versioned, checksummed binary file, so a new process
 * starts with the instruction universe already analyzed instead of
 * paying the decode + uops::lookup + read/write-set cold path per
 * first sighting.
 *
 * File format (little-endian throughout):
 *
 *   offset 0   char[8]  magic     "FACSNAP\n"
 *   offset 8   u32      version   kSnapshotVersion
 *   offset 12  u32      sections  number of sections
 *   offset 16  u64      payload   total section bytes after the header
 *   offset 24  u64      checksum  FNV-1a 64 over the payload bytes
 *   offset 32  sections, back to back:
 *       u32 type   1 = intern records   2 = fused pairs
 *                  3 = prediction cache
 *       u32 arch   uarch::UArch value (types 1/2); 0 for type 3
 *       u64 len    section payload bytes
 *       len bytes  section payload
 *
 * Section payloads:
 *   records:     u32 count, then per record: u8 keyLen, the exact
 *                encoded instruction bytes, and the serialized
 *                InstRecord (full analysis results — nothing is
 *                recomputed on load).
 *   fused pairs: u32 count, then u32 (firstIdx, secondIdx) pairs
 *                indexing the same arch's record section in file
 *                order. The derived records are re-derived on load via
 *                InstInterner::internFused, which matches the original
 *                derivation bit-for-bit.
 *   predictions: u32 count, then per entry: u32 keyLen + opaque engine
 *                cache key, u32 predLen + serialized Prediction (raw
 *                IEEE-754 bit patterns, so restored predictions are
 *                bit-identical).
 *
 * Loading is append-only: records land in the same arenas internAt
 * fills, an already-interned key keeps its live record, and published
 * `const InstRecord *` values stay valid and immutable. A snapshot is
 * therefore safe to load into a warm process (it is a no-op for keys
 * already seen) as well as a cold one.
 *
 * Corruption handling: a bad magic, unsupported version, truncated
 * file, out-of-bounds section, or checksum mismatch throws
 * SnapshotError; nothing is imported from a file that fails
 * validation (the checksum is verified before any section is parsed).
 *
 * Crash safety (PR 8): saveSnapshot is atomic and durable — the image
 * is written to a pid-suffixed temp file, fflush+fsync'd, and then
 * rename(2)'d over the target, with the parent directory fsync'd
 * after; a crash (SIGKILL, OOM, power loss) at ANY point leaves the
 * previous on-disk state untouched. Saves additionally keep a bounded
 * history of *generations*: before the rename, `path` is rotated to
 * `path.g1`, `path.g1` to `path.g2`, ... up to
 * SnapshotOptions::generations files. loadSnapshot walks that chain —
 * primary first, then older generations — and warm-starts from the
 * first one that validates, so even external corruption of the newest
 * file degrades warm start by one save interval instead of forcing a
 * cold start. SnapshotStats::generation reports which one loaded.
 */
#ifndef FACILE_ANALYSIS_SNAPSHOT_H
#define FACILE_ANALYSIS_SNAPSHOT_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/intern.h"

namespace facile::engine {
class PredictionEngine;
}

namespace facile::analysis {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/**
 * Default on-disk history depth: the primary file plus two rotated
 * prior generations (`path`, `path.g1`, `path.g2`).
 */
inline constexpr int kSnapshotGenerations = 3;

/** Thrown on malformed, truncated, or corrupted snapshot files. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error("snapshot: " + what)
    {}
};

/** What was written or read. */
struct SnapshotStats
{
    std::size_t records = 0;     ///< canonical InstRecords
    std::size_t fusedPairs = 0;  ///< macro-fused pair variants
    std::size_t predictions = 0; ///< engine prediction-cache entries
    std::size_t newRecords = 0;  ///< load: records actually appended
    std::size_t bytes = 0;       ///< file size
    /**
     * Which generation a load came from: 0 = the primary path, g > 0 =
     * the g-th rotated fallback (`path.gN`) after newer generations
     * failed validation. Always 0 for saves.
     */
    std::size_t generation = 0;
};

struct SnapshotOptions
{
    /**
     * When set, save() also serializes this engine's prediction cache
     * and load() restores entries into it. The intern arenas are
     * process-wide and always included.
     */
    engine::PredictionEngine *engine = nullptr;

    /**
     * On-disk generations kept by save (and scanned by load). 1 means
     * no rotation — the pre-PR 8 single-file behavior. Values < 1 are
     * treated as 1.
     */
    int generations = kSnapshotGenerations;
};

/** Name of generation @p gen of @p path (gen 0 is @p path itself). */
std::string snapshotGenerationPath(const std::string &path, int gen);

/**
 * Serialize the intern arenas (all nine arches) to @p path, atomically
 * and durably (temp file + fsync + rename), rotating prior generations
 * per SnapshotOptions::generations.
 */
SnapshotStats saveSnapshot(const std::string &path,
                           const SnapshotOptions &opts = {});

/**
 * Validate and load @p path, appending to the process-wide arenas.
 * Falls back through rotated generations (`path.g1`, ...) when newer
 * files are missing or fail validation; SnapshotStats::generation
 * records which one was used.
 * @throws SnapshotError when no generation validates (nothing
 * imported).
 */
SnapshotStats loadSnapshot(const std::string &path,
                           const SnapshotOptions &opts = {});

/**
 * As loadSnapshot, but from an in-memory image — the entry point for
 * snapshots that arrive over a wire rather than from disk
 * (loadSnapshot(path) is a thin read-file wrapper around this).
 */
SnapshotStats loadSnapshotFromMemory(const std::uint8_t *data,
                                     std::size_t size,
                                     const SnapshotOptions &opts = {});

/**
 * Run the full parse-and-validate staging phase on an in-memory image
 * and commit NOTHING: no records are interned, no predictions
 * imported, whatever the outcome. Returns what a load would have
 * reported (with newRecords = 0); throws SnapshotError exactly when
 * loadSnapshotFromMemory would. This is the path the fuzz_snapshot
 * harness drives — it exercises every byte of validation with zero
 * process-state growth across iterations.
 */
SnapshotStats validateSnapshot(const std::uint8_t *data,
                               std::size_t size);

// ---- building blocks (exposed for tests) ----------------------------------

/** FNV-1a 64-bit over @p len bytes. */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t len,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

struct InstRecordSnapshotCodec
{
    /** Append the serialized form of @p rec to @p out. */
    static void encode(std::vector<std::uint8_t> &out,
                       const InstRecord &rec);

    /**
     * Decode one record from @p data at @p pos (bounds-checked against
     * @p size), advancing @p pos. @throws SnapshotError on truncation
     * or out-of-range enum values.
     */
    static InstRecord decode(const std::uint8_t *data, std::size_t size,
                             std::size_t &pos);
};

} // namespace facile::analysis

#endif // FACILE_ANALYSIS_SNAPSHOT_H
