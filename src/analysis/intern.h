/**
 * @file
 * Instruction-granular interning cache (see src/analysis/README.md).
 *
 * BHive-style workloads share a small universe of instructions across
 * millions of *distinct* basic blocks, so the engine's block-level
 * analysis cache never helps fresh traffic. This subsystem memoizes the
 * per-instruction analysis results instead: the first time an encoded
 * instruction is seen on a microarchitecture — in *any* block — its
 * decode (isa::DecodedInst), µop decomposition (uops::InstrInfo), and
 * read/write sets (isa::RwSets) are computed once and stored in an
 * append-only arena; every later block holds pointers into that arena
 * and pays a thread-local cache probe per instruction instead of a
 * decode, a database lookup, and heap allocations.
 *
 * Two levels:
 *   - a *bounded*, thread-local, direct-mapped window cache keyed on
 *     the ≤15-byte decode lookahead (x86 instructions cannot exceed 15
 *     bytes and the decoder is position-independent, so equal windows
 *     decode equally). A hit skips even the decode; collisions simply
 *     overwrite — it is a pure accelerator;
 *   - the canonical sharded map keyed on the instruction's exact
 *     encoded bytes (≤ 15 B) + µarch, one interner per µarch. A shard
 *     is a mutex, a hash map, and a std::deque arena (pointer-stable
 *     growth). This is the durable, deduplicating level: its size is
 *     bounded by the true instruction universe, not by traffic volume.
 *
 * Ownership and lifetime: arenas are append-only and process-lifetime
 * (never evicted). Returned pointers are therefore stable forever and
 * safe to share across threads; records are immutable after
 * publication.
 *
 * Macro-fused pairs: bb::analyze merges a fusible instruction with a
 * following conditional branch into a combined unit and strips the
 * branch's µops. Both derived variants depend only on the two base
 * records, so they are interned too, keyed on the (already canonical)
 * pair of base-record pointers — analyzing a fused pair the second
 * time allocates nothing either.
 */
#ifndef FACILE_ANALYSIS_INTERN_H
#define FACILE_ANALYSIS_INTERN_H

#include <cstddef>
#include <cstdint>
#include <functional>

#include "isa/decoder.h"
#include "isa/semantics.h"
#include "uarch/config.h"
#include "uops/info.h"

namespace facile::analysis {

/**
 * One dependence-graph read template: the value consumed and the edge
 * latency its producer edge carries (instruction latency, plus the
 * load-to-use latency when the value is an address register of a
 * load). Block-independent, so precedence() streams these instead of
 * re-deriving them per block.
 */
struct DepRead
{
    int value;
    double latency;
};

/**
 * Macro-fusion capability of an instruction as the *first* of a pair,
 * with the memory/immediate-form and family restrictions already
 * folded in (records are per-arch). Mirrors uops::macroFusesWith.
 */
enum class FuseClass : std::uint8_t {
    None,
    All,          ///< fuses with every condition code (TEST/AND)
    NoSOP,        ///< not with sign/overflow/parity codes (CMP/ADD/SUB)
    NoCarryNoSOP, ///< additionally not with carry-reading codes (INC/DEC)
};

/** Everything block analysis derives from one (instruction, µarch). */
struct InstRecord
{
    isa::DecodedInst dec;
    uops::InstrInfo info;
    isa::RwSets rw;
    std::vector<DepRead> depReads;

    /** Port masks of the port-consuming µops, in portUops order. */
    std::vector<uarch::PortMask> portMasks;

    /** PUSH/POP/CALL/RET: rsp results come from the stack engine. */
    bool stackOp = false;

    /**
     * Inline copies of the dependence-graph inputs — every real
     * instruction of the subset has at most a handful of read/write
     * values, so precedence() streams these from the record itself
     * instead of chasing the rw/depReads heap blocks (one cache line
     * per instruction on the hot path). Count kSpilled means the data
     * did not fit: fall back to the vector fields.
     */
    static constexpr int kInlineDeps = 8;
    static constexpr std::uint8_t kSpilled = 255;
    std::uint8_t nWritesInl = kSpilled;
    std::uint8_t nDepInl = kSpilled;
    bool depBreaking = false;
    std::uint8_t writesInl[kInlineDeps];
    DepRead depInl[kInlineDeps];

    // Macro-fusion pair check, fully precomputed (see fusesWith()).
    FuseClass fuseClass = FuseClass::None;
    bool isJcc = false;
    bool jccReadsCf = false;  ///< condition code reads CF
    bool jccTestsSOP = false; ///< condition code tests S/O/P flags
};

/**
 * Precomputed equivalent of uops::macroFusesWith(first, second, cfg)
 * for two records of the same interner: a few flag tests instead of
 * operand-list walks.
 */
inline bool
fusesWith(const InstRecord &first, const InstRecord &second)
{
    if (!second.isJcc)
        return false;
    switch (first.fuseClass) {
      case FuseClass::All:
        return true;
      case FuseClass::NoSOP:
        return !second.jccTestsSOP;
      case FuseClass::NoCarryNoSOP:
        return !second.jccReadsCf && !second.jccTestsSOP;
      case FuseClass::None:
        break;
    }
    return false;
}

/** Hit/miss counters of one interner (monotonic, process lifetime). */
struct InternStats
{
    std::uint64_t hits = 0; ///< window-cache + canonical-map hits
    std::uint64_t misses = 0;
    std::uint64_t fusedHits = 0;
    std::uint64_t fusedMisses = 0;
    /**
     * Canonical-map misses satisfied by the bound RecordSource (an
     * mmap'd snapshot image) instead of the decode + uops::lookup cold
     * path. Always <= misses.
     */
    std::uint64_t borrowed = 0;

    double
    hitRate() const
    {
        const double total = static_cast<double>(hits + misses);
        return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
    }
};

/** The fused-pair variants of (first, second) as interned records. */
struct FusedRecords
{
    const InstRecord *first = nullptr;  ///< merged combined unit
    const InstRecord *second = nullptr; ///< stripped fused branch
};

/**
 * A borrowed, read-only record store consulted by internAt between the
 * canonical-map miss and the cold analysis path — the binding that
 * makes an mmap'd snapshot v2 image (src/analysis/snapshot.h) lazily
 * materialize records on first touch instead of parsing every record
 * at load time. A successful lookup must fill @p out with a record
 * bit-identical to what the cold path would derive for the same bytes
 * (snapshot images store the full analysis results, so this holds by
 * construction); returning false simply falls through to the cold
 * path, which keeps predictions correct even when the source is
 * corrupt, poisoned, or incomplete.
 *
 * Implementations must be thread-safe and immortal (the interner
 * keeps a raw pointer for the process lifetime; rebinding replaces
 * the pointer but never frees the previous source).
 */
class RecordSource
{
  public:
    virtual ~RecordSource() = default;

    /**
     * Look up the record for the exact encoded instruction @p bytes
     * (@p len <= 15). @return true and fill @p out on a hit.
     */
    virtual bool lookup(const std::uint8_t *bytes, std::size_t len,
                        InstRecord &out) = 0;

    /**
     * Enumerate every record the source can serve, in the source's
     * storage order. materializeBoundSource (and through it
     * saveSnapshot) uses this so a save taken after an mmap warm
     * start persists the image's *whole* universe, not just the
     * records touched so far. A poisoned or non-enumerable source
     * visits nothing — its records are simply absent, as if the
     * process had started cold.
     */
    virtual void
    visitAll(const std::function<void(const std::uint8_t *bytes,
                                      std::size_t len, InstRecord &&rec)>
                 & /*visit*/)
    {}

    /**
     * Enumerate the source's macro-fused pairs as index pairs into
     * the visitAll enumeration order.
     */
    virtual void
    visitAllPairs(const std::function<void(std::uint32_t first,
                                           std::uint32_t second)>
                      & /*visit*/)
    {}
};

class InstInterner
{
  public:
    /** The process-wide interner of @p arch (one per UArch, static). */
    static InstInterner &forArch(uarch::UArch arch);

    /**
     * Intern the instruction starting at data[pos] (buffer of @p size
     * bytes). On a window-cache hit no decoding happens at all; on the
     * first sighting the instruction is decoded and analyzed
     * (uops::lookup + isa::instRw) once, process-wide. The returned
     * record is immortal; advance by rec->dec.length.
     *
     * @throws isa::DecodeError on malformed input (never cached).
     */
    const InstRecord *internAt(const std::uint8_t *data, std::size_t size,
                               std::size_t pos);

    /**
     * Intern the macro-fused variants of the pair (first, second),
     * where both operands were returned by internAt on this interner.
     * Derivation matches bb::analyze's historical in-place merge
     * bit-for-bit.
     */
    FusedRecords internFused(const InstRecord *first,
                             const InstRecord *second);

    /** Counters accumulated since process start. */
    InternStats stats() const;

    /** Aggregated counters over all nine per-arch interners. */
    static InternStats statsAllArchs();

    // ---- snapshot support (src/analysis/snapshot.h) -----------------------
    //
    // The warm-start snapshot serializes the canonical arenas so a new
    // process can skip the decode + uops::lookup cold path entirely.
    // Export walks the existing state; import appends — the arenas stay
    // append-only, so every published `const InstRecord *` remains
    // valid and immutable throughout.

    /**
     * Visit every canonical record with its exact encoded instruction
     * bytes (the map key). Deterministic shard-major, insertion-order
     * walk; shard locks are held for the duration of each shard's
     * visits, so visitors must not re-enter this interner.
     */
    void exportRecords(
        const std::function<void(const std::uint8_t *bytes,
                                 std::size_t len, const InstRecord &rec)>
            &visit) const;

    /**
     * Visit every interned macro-fused pair as its canonical
     * base-record pointers (the derived variants are re-derived on
     * import via internFused, bit-identically).
     */
    void exportFusedPairs(
        const std::function<void(const InstRecord *first,
                                 const InstRecord *second)> &visit) const;

    /**
     * Publish @p rec under the exact encoded bytes (@p bytes, @p len)
     * without decoding or analyzing anything. If the key is already
     * interned the existing record wins (and @p rec is dropped), so a
     * snapshot loaded into a warm process never invalidates published
     * pointers. Returns the canonical record; @p inserted (optional)
     * reports whether @p rec was appended.
     */
    const InstRecord *importRecord(const std::uint8_t *bytes,
                                   std::size_t len, InstRecord &&rec,
                                   bool *inserted = nullptr);

    /**
     * Bind @p source as this interner's borrowed record store (see
     * RecordSource). internAt consults it on every canonical-map miss
     * before falling back to decode + analysis, so records of an
     * mmap'd snapshot materialize on first touch — O(1) work at bind
     * time regardless of universe size. @p source must outlive the
     * process (snapshot images are immortal once bound); passing
     * nullptr unbinds. Rebinding replaces the previous source for
     * *future* misses; already-materialized records are unaffected
     * (arenas stay append-only).
     */
    void bindRecordSource(RecordSource *source);

    /**
     * Import every record (and fused pair) the bound source can
     * enumerate into the canonical arenas, deduplicating through the
     * usual importRecord path (live records win). No-op without a
     * bound source. saveSnapshot calls this before exporting so a
     * process warm-started from an mmap'd image saves the full
     * universe — the lazy views are invisible to exportRecords, and
     * without this step a save-after-mmap-start would silently shrink
     * the snapshot to the records touched so far. O(records) time and
     * memory, which a save already pays to write the file.
     */
    void materializeBoundSource();

    InstInterner(const InstInterner &) = delete;
    InstInterner &operator=(const InstInterner &) = delete;

  private:
    explicit InstInterner(uarch::UArch arch);
    ~InstInterner();

    /** Decode-to-record analysis (the cold path); consumes @p dec. */
    void analyzeCold(isa::DecodedInst &dec, InstRecord &fresh);

    struct Impl;
    Impl *impl_; ///< raw: interners are immortal statics
};

} // namespace facile::analysis

#endif // FACILE_ANALYSIS_INTERN_H
