#include "analysis/intern.h"

#include <atomic>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace facile::analysis {

namespace {

/**
 * Fixed-size key: up to 15 bytes (zero-padded) with the byte count in
 * the 16th byte, viewed as two little-endian words. Used both for the
 * canonical map (exact instruction bytes) and the window cache (decode
 * lookahead); x86 instructions cannot exceed 15 bytes, so the mapping
 * is injective in both roles.
 */
struct InstKey
{
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;

    bool
    operator==(const InstKey &o) const
    {
        return lo == o.lo && hi == o.hi;
    }
};

InstKey
makeKey(const std::uint8_t *bytes, std::size_t len)
{
    std::uint8_t buf[16] = {};
    // Fixed-size copy on the common path (mid-block windows are always
    // 15 bytes) so the compiler inlines it; tails take the variable
    // copy.
    if (len >= 15)
        std::memcpy(buf, bytes, 15);
    else
        std::memcpy(buf, bytes, len);
    buf[15] = static_cast<std::uint8_t>(len);
    InstKey k;
    std::memcpy(&k.lo, buf, 8);
    std::memcpy(&k.hi, buf + 8, 8);
    return k;
}

/** splitmix64-style mix of both words. */
struct InstKeyHash
{
    std::size_t
    operator()(const InstKey &k) const
    {
        std::uint64_t x = k.lo ^ (k.hi * 0x9e3779b97f4a7c15ULL);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }
};

struct PairKey
{
    const InstRecord *first;
    const InstRecord *second;

    bool
    operator==(const PairKey &o) const
    {
        return first == o.first && second == o.second;
    }
};

struct PairKeyHash
{
    std::size_t
    operator()(const PairKey &k) const
    {
        auto a = reinterpret_cast<std::uintptr_t>(k.first);
        auto b = reinterpret_cast<std::uintptr_t>(k.second);
        std::uint64_t x = a ^ (b * 0x9e3779b97f4a7c15ULL);
        x ^= x >> 29;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 32;
        return static_cast<std::size_t>(x);
    }
};

constexpr std::size_t kInternShards = 16;
constexpr std::size_t kNumArchs = 9;

/**
 * Per-thread direct-mapped window cache in front of the canonical
 * maps: keyed on the ≤15-byte decode lookahead, so the common case
 * (window seen before by *this thread*) costs a key compare instead of
 * a decode plus a locked map probe. Bounded by construction — a
 * collision overwrites the slot; record pointers are immortal, so
 * stale entries are merely misses, never dangling. Unlike the
 * canonical level, distinct *windows* (instruction + successor-byte
 * prefix) can outnumber distinct instructions; eviction keeps that
 * from turning into unbounded memory.
 */
constexpr std::size_t kWindowSets = 8192; // power of two, 2 ways/set

/** Key and record pointer packed into one cache line's worth. */
struct alignas(32) WindowEntry
{
    InstKey key{};
    const InstRecord *rec = nullptr;
};

/**
 * One 2-way set per 64-byte cache line: way 0 is most recent (hits in
 * way 1 swap forward, inserts demote way 0). Two ways cut the conflict
 * rate by an order of magnitude versus direct mapping at the same
 * footprint — conflicts fall through to a decode + locked map probe.
 */
struct alignas(64) WindowSet
{
    WindowEntry way[2];
};

/**
 * Per-thread, per-arch window tables, heap-allocated on first touch:
 * a static TLS array of all nine arches would commit ~4.7 MB of
 * zero-initialized TLS for every thread in the process (connection
 * readers, test threads, ...), so each thread instead pays only for
 * the arches it actually analyzes (~512 KB each, faulted lazily).
 */
struct WindowCache
{
    std::unique_ptr<WindowSet[]> perArch[kNumArchs];
};

WindowSet *
tlsWindows(std::size_t arch)
{
    thread_local WindowCache cache;
    auto &table = cache.perArch[arch];
    if (!table)
        table.reset(new WindowSet[kWindowSets]{});
    return table.get();
}

/**
 * Thread-local direct-mapped cache for fused-pair variants, fronting
 * the (unsharded) fused map so the common case — a loop block ending
 * in an already-seen cmp/jcc pair — takes no lock. Same eviction and
 * lifetime reasoning as the window cache.
 */
constexpr std::size_t kFusedSlots = 512; // power of two

struct FusedEntry
{
    PairKey key{nullptr, nullptr};
    FusedRecords rec;
};

struct FusedCache
{
    std::unique_ptr<FusedEntry[]> perArch[kNumArchs];
};

FusedEntry *
tlsFused(std::size_t arch)
{
    thread_local FusedCache cache;
    auto &table = cache.perArch[arch];
    if (!table)
        table.reset(new FusedEntry[kFusedSlots]{});
    return table.get();
}

/**
 * Per-thread hit counters, linked into a global list so statsAllArchs
 * can aggregate them without putting a shared atomic on the per-
 * instruction hot path. Nodes are immortal (threads in the engine pool
 * live for the process; a counter leak per short-lived thread is
 * bounded and harmless).
 */
struct TlsCounters
{
    std::atomic<std::uint64_t> windowHits[kNumArchs] = {};
    TlsCounters *next = nullptr;
};

std::atomic<TlsCounters *> g_tlsCounters{nullptr};

TlsCounters &
tlsCounters()
{
    thread_local TlsCounters *node = [] {
        auto *n = new TlsCounters;
        n->next = g_tlsCounters.load(std::memory_order_relaxed);
        while (!g_tlsCounters.compare_exchange_weak(
            n->next, n, std::memory_order_release,
            std::memory_order_relaxed)) {
        }
        return n;
    }();
    return *node;
}

std::uint64_t
sumWindowHits(std::size_t archIndex)
{
    std::uint64_t total = 0;
    for (TlsCounters *n = g_tlsCounters.load(std::memory_order_acquire); n;
         n = n->next)
        total += n->windowHits[archIndex].load(std::memory_order_relaxed);
    return total;
}

} // namespace

struct InstInterner::Impl
{
    const uarch::MicroArchConfig &cfg;
    std::size_t archIndex;

    struct Shard
    {
        std::mutex mu;
        std::unordered_map<InstKey, const InstRecord *, InstKeyHash> map;
        std::deque<InstRecord> arena; ///< append-only, pointer-stable
    };
    Shard shards[kInternShards];

    struct FusedShard
    {
        std::mutex mu;
        std::unordered_map<PairKey, FusedRecords, PairKeyHash> map;
        std::deque<InstRecord> arena;
    };
    FusedShard fused;

    std::atomic<std::uint64_t> hits{0}, misses{0};
    std::atomic<std::uint64_t> fusedHits{0}, fusedMisses{0};
    std::atomic<std::uint64_t> borrowed{0};

    /** Borrowed record store (mmap'd snapshot), nullptr when unbound. */
    std::atomic<RecordSource *> source{nullptr};

    explicit Impl(uarch::UArch arch)
        : cfg(uarch::config(arch)),
          archIndex(static_cast<std::size_t>(arch))
    {}
};

InstInterner::InstInterner(uarch::UArch arch) : impl_(new Impl(arch)) {}

InstInterner::~InstInterner()
{
    delete impl_;
}

InstInterner &
InstInterner::forArch(uarch::UArch arch)
{
    // Immortal per-arch singletons: returned record pointers must stay
    // valid for the process lifetime (blocks cache them), so the
    // interners are never destroyed.
    static InstInterner *const interners[] = {
        new InstInterner(uarch::UArch::SNB), new InstInterner(uarch::UArch::IVB),
        new InstInterner(uarch::UArch::HSW), new InstInterner(uarch::UArch::BDW),
        new InstInterner(uarch::UArch::SKL), new InstInterner(uarch::UArch::CLX),
        new InstInterner(uarch::UArch::ICL), new InstInterner(uarch::UArch::TGL),
        new InstInterner(uarch::UArch::RKL),
    };
    return *interners[static_cast<std::size_t>(arch)];
}

const InstRecord *
InstInterner::internAt(const std::uint8_t *data, std::size_t size,
                       std::size_t pos)
{
    const std::size_t remaining = size - pos;
    const std::size_t window = remaining < 15 ? remaining : 15;
    const InstKey winKey = makeKey(data + pos, window);
    const std::size_t arch = impl_->archIndex;

    // Window cache: thread-local, lock-free, no decode on a hit. The
    // decoder is position-independent (the subset has no RIP-relative
    // operands) and never reads past the instruction end, so an equal
    // lookahead implies an equal decode.
    WindowSet *wc = tlsWindows(arch);
    WindowSet &ws = wc[InstKeyHash{}(winKey) & (kWindowSets - 1)];
    if (ws.way[0].rec && ws.way[0].key == winKey) {
        tlsCounters().windowHits[arch].fetch_add(
            1, std::memory_order_relaxed);
        return ws.way[0].rec;
    }
    if (ws.way[1].rec && ws.way[1].key == winKey) {
        tlsCounters().windowHits[arch].fetch_add(
            1, std::memory_order_relaxed);
        std::swap(ws.way[0], ws.way[1]); // MRU to the front
        return ws.way[0].rec;
    }

    // Decode (may throw DecodeError — nothing is cached then), then
    // intern on the exact instruction bytes.
    isa::DecodedInst dec = isa::decodeOne(data, size, pos);
    const InstKey key = makeKey(data + pos, dec.length);
    Impl::Shard &shard = impl_->shards[InstKeyHash{}(key) % kInternShards];

    const InstRecord *rec = nullptr;
    {
        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            impl_->hits.fetch_add(1, std::memory_order_relaxed);
            rec = it->second;
        }
    }

    if (!rec) {
        // Borrowed store first: an mmap'd snapshot image can hand us
        // the full analysis results for these exact bytes, skipping
        // uops::lookup + isa::instRw entirely. A source miss (or a
        // poisoned/corrupt image) falls through to the cold path, so
        // correctness never depends on the image.
        InstRecord fresh;
        bool haveFresh = false;
        if (RecordSource *src =
                impl_->source.load(std::memory_order_acquire)) {
            if (src->lookup(data + pos, dec.length, fresh)) {
                impl_->borrowed.fetch_add(1, std::memory_order_relaxed);
                haveFresh = true;
            }
        }
        if (!haveFresh)
            analyzeCold(dec, fresh);
        impl_->misses.fetch_add(1, std::memory_order_relaxed);

        std::lock_guard<std::mutex> lock(shard.mu);
        auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            shard.arena.push_back(std::move(fresh));
            it = shard.map.emplace(key, &shard.arena.back()).first;
        }
        // (On a lost race: use the already-published record.)
        rec = it->second;
    }

    ws.way[1] = ws.way[0];
    ws.way[0].key = winKey;
    ws.way[0].rec = rec;
    return rec;
}

/**
 * The analysis cold path: everything derived from one decoded
 * instruction on this µarch. Factored out of internAt so the borrowed
 * (snapshot-backed) path can bypass it wholesale. Consumes @p dec.
 */
void
InstInterner::analyzeCold(isa::DecodedInst &dec, InstRecord &fresh)
{
    fresh.info = uops::lookup(dec.inst, impl_->cfg);
    isa::instRw(dec.inst, fresh.rw);

    // Precedence edge templates: per-read producer-edge latencies
    // (identical arithmetic to the historical per-block
    // derivation, so edge weights stay bit-identical).
    const isa::MemOp *m = dec.inst.memOperand();
    const bool loads = dec.inst.isLoad();
    fresh.stackOp = dec.inst.mnem == isa::Mnemonic::PUSH ||
                    dec.inst.mnem == isa::Mnemonic::POP ||
                    dec.inst.mnem == isa::Mnemonic::CALL ||
                    dec.inst.mnem == isa::Mnemonic::RET;
    fresh.depReads.reserve(fresh.rw.reads.size());
    for (int r : fresh.rw.reads) {
        double lat = static_cast<double>(fresh.info.latency);
        if (m && loads &&
            ((m->base.valid() && m->base.family() == r) ||
             (m->index.valid() && m->index.family() == r)))
            lat += impl_->cfg.loadLatency;
        fresh.depReads.push_back({r, lat});
    }

    // Inline dependence data (see InstRecord::kInlineDeps).
    fresh.depBreaking = fresh.rw.depBreaking;
    if (fresh.rw.writes.size() <= InstRecord::kInlineDeps) {
        fresh.nWritesInl =
            static_cast<std::uint8_t>(fresh.rw.writes.size());
        for (std::size_t i = 0; i < fresh.rw.writes.size(); ++i)
            fresh.writesInl[i] =
                static_cast<std::uint8_t>(fresh.rw.writes[i]);
    }
    if (fresh.depReads.size() <= InstRecord::kInlineDeps) {
        fresh.nDepInl =
            static_cast<std::uint8_t>(fresh.depReads.size());
        for (std::size_t i = 0; i < fresh.depReads.size(); ++i)
            fresh.depInl[i] = fresh.depReads[i];
    }

    // Port masks of the port-consuming µops (ports() fast path).
    fresh.portMasks.reserve(fresh.info.portUops.size());
    for (const auto &u : fresh.info.portUops)
        if (u.ports)
            fresh.portMasks.push_back(u.ports);

    // Macro-fusion flags, mirroring uops::macroFusesWith exactly.
    {
        using isa::Cond;
        using isa::Mnemonic;
        const bool hasMem = dec.inst.hasMemOperand();
        const bool hasImm =
            !dec.inst.ops.empty() && dec.inst.ops.back().isImm();
        const bool memBlocked =
            hasMem &&
            (hasImm || impl_->cfg.family == uarch::UArchFamily::SnB);
        if (!memBlocked) {
            switch (dec.inst.mnem) {
              case Mnemonic::TEST:
              case Mnemonic::AND:
                fresh.fuseClass = FuseClass::All;
                break;
              case Mnemonic::CMP:
              case Mnemonic::ADD:
              case Mnemonic::SUB:
                fresh.fuseClass = FuseClass::NoSOP;
                break;
              case Mnemonic::INC:
              case Mnemonic::DEC:
                fresh.fuseClass = FuseClass::NoCarryNoSOP;
                break;
              default:
                break;
            }
        }
        fresh.isJcc = dec.inst.mnem == Mnemonic::JCC;
        switch (dec.inst.cc) {
          case Cond::B: case Cond::NB: case Cond::BE: case Cond::NBE:
            fresh.jccReadsCf = true;
            break;
          default:
            break;
        }
        switch (dec.inst.cc) {
          case Cond::S: case Cond::NS: case Cond::P: case Cond::NP:
          case Cond::O: case Cond::NO:
            fresh.jccTestsSOP = true;
            break;
          default:
            break;
        }
    }

    fresh.dec = std::move(dec);
}

FusedRecords
InstInterner::internFused(const InstRecord *first, const InstRecord *second)
{
    const PairKey key{first, second};
    const std::size_t arch = impl_->archIndex;
    Impl::FusedShard &fs = impl_->fused;

    FusedEntry &fe = tlsFused(arch)[PairKeyHash{}(key) & (kFusedSlots - 1)];
    if (fe.rec.first && fe.key == key) {
        impl_->fusedHits.fetch_add(1, std::memory_order_relaxed);
        return fe.rec;
    }

    {
        std::lock_guard<std::mutex> lock(fs.mu);
        auto it = fs.map.find(key);
        if (it != fs.map.end()) {
            impl_->fusedHits.fetch_add(1, std::memory_order_relaxed);
            fe.key = key;
            fe.rec = it->second;
            return it->second;
        }
    }

    // Derive both variants exactly as bb::analyze's historical in-place
    // merge did, so predictions stay bit-identical.
    InstRecord merged;
    merged.dec = first->dec;
    merged.info = first->info;
    merged.rw = first->rw;
    // Fusion keeps each instruction's latency and semantics, so the
    // dependence templates carry over unchanged.
    merged.depReads = first->depReads;
    merged.stackOp = first->stackOp;
    merged.depBreaking = first->depBreaking;
    merged.nWritesInl = first->nWritesInl;
    merged.nDepInl = first->nDepInl;
    std::memcpy(merged.writesInl, first->writesInl,
                sizeof merged.writesInl);
    std::memcpy(merged.depInl, first->depInl, sizeof merged.depInl);
    merged.fuseClass = first->fuseClass;
    merged.isJcc = first->isJcc;
    merged.jccReadsCf = first->jccReadsCf;
    merged.jccTestsSOP = first->jccTestsSOP;
    {
        std::vector<uops::Uop> uops;
        for (const auto &u : merged.info.portUops)
            if (u.kind != uops::UopKind::Compute)
                uops.push_back(u);
        for (const auto &u : second->info.portUops)
            uops.push_back(u);
        merged.info.portUops = std::move(uops);
    }
    merged.portMasks.clear();
    for (const auto &u : merged.info.portUops)
        if (u.ports)
            merged.portMasks.push_back(u.ports);

    InstRecord stripped;
    stripped.dec = second->dec;
    stripped.info = second->info;
    stripped.rw = second->rw;
    stripped.depReads = second->depReads;
    stripped.stackOp = second->stackOp;
    stripped.depBreaking = second->depBreaking;
    stripped.nWritesInl = second->nWritesInl;
    stripped.nDepInl = second->nDepInl;
    std::memcpy(stripped.writesInl, second->writesInl,
                sizeof stripped.writesInl);
    std::memcpy(stripped.depInl, second->depInl, sizeof stripped.depInl);
    stripped.fuseClass = second->fuseClass;
    stripped.isJcc = second->isJcc;
    stripped.jccReadsCf = second->jccReadsCf;
    stripped.jccTestsSOP = second->jccTestsSOP;
    stripped.info.fusedUops = 0;
    stripped.info.issueUops = 0;
    stripped.info.portUops.clear();
    stripped.info.needsComplexDecoder = false;
    stripped.portMasks.clear(); // no µops left

    impl_->fusedMisses.fetch_add(1, std::memory_order_relaxed);

    FusedRecords out;
    {
        std::lock_guard<std::mutex> lock(fs.mu);
        auto it = fs.map.find(key);
        if (it == fs.map.end()) {
            fs.arena.push_back(std::move(merged));
            const InstRecord *m = &fs.arena.back();
            fs.arena.push_back(std::move(stripped));
            const InstRecord *s = &fs.arena.back();
            it = fs.map.emplace(key, FusedRecords{m, s}).first;
        }
        // (On a lost race: use the already-published records.)
        out = it->second;
    }
    fe.key = key;
    fe.rec = out;
    return out;
}

void
InstInterner::exportRecords(
    const std::function<void(const std::uint8_t *bytes, std::size_t len,
                             const InstRecord &rec)> &visit) const
{
    for (std::size_t s = 0; s < kInternShards; ++s) {
        Impl::Shard &shard = impl_->shards[s];
        std::lock_guard<std::mutex> lock(shard.mu);
        // Arena order is insertion order (deterministic per traffic);
        // recover each record's key from the map.
        std::unordered_map<const InstRecord *, const InstKey *> keyOf;
        keyOf.reserve(shard.map.size());
        for (const auto &[key, rec] : shard.map)
            keyOf.emplace(rec, &key);
        for (const InstRecord &rec : shard.arena) {
            auto it = keyOf.find(&rec);
            if (it == keyOf.end())
                continue; // unreachable: every arena record is mapped
            std::uint8_t buf[16];
            std::memcpy(buf, &it->second->lo, 8);
            std::memcpy(buf + 8, &it->second->hi, 8);
            visit(buf, buf[15], rec);
        }
    }
}

void
InstInterner::exportFusedPairs(
    const std::function<void(const InstRecord *first,
                             const InstRecord *second)> &visit) const
{
    Impl::FusedShard &fs = impl_->fused;
    std::lock_guard<std::mutex> lock(fs.mu);
    for (const auto &[key, recs] : fs.map) {
        (void)recs;
        visit(key.first, key.second);
    }
}

const InstRecord *
InstInterner::importRecord(const std::uint8_t *bytes, std::size_t len,
                           InstRecord &&rec, bool *inserted)
{
    const InstKey key = makeKey(bytes, len);
    Impl::Shard &shard = impl_->shards[InstKeyHash{}(key) % kInternShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
        if (inserted)
            *inserted = false;
        return it->second; // warm process: the live record wins
    }
    shard.arena.push_back(std::move(rec));
    shard.map.emplace(key, &shard.arena.back());
    if (inserted)
        *inserted = true;
    return &shard.arena.back();
}

void
InstInterner::bindRecordSource(RecordSource *source)
{
    impl_->source.store(source, std::memory_order_release);
}

void
InstInterner::materializeBoundSource()
{
    RecordSource *src = impl_->source.load(std::memory_order_acquire);
    if (!src)
        return;
    std::vector<const InstRecord *> byIndex;
    src->visitAll([&](const std::uint8_t *bytes, std::size_t len,
                      InstRecord &&rec) {
        byIndex.push_back(importRecord(bytes, len, std::move(rec)));
    });
    src->visitAllPairs([&](std::uint32_t fi, std::uint32_t si) {
        if (fi < byIndex.size() && si < byIndex.size())
            internFused(byIndex[fi], byIndex[si]);
    });
}

InternStats
InstInterner::stats() const
{
    InternStats st;
    st.hits = impl_->hits.load(std::memory_order_relaxed) +
              sumWindowHits(impl_->archIndex);
    st.misses = impl_->misses.load(std::memory_order_relaxed);
    st.fusedHits = impl_->fusedHits.load(std::memory_order_relaxed);
    st.fusedMisses = impl_->fusedMisses.load(std::memory_order_relaxed);
    st.borrowed = impl_->borrowed.load(std::memory_order_relaxed);
    return st;
}

InternStats
InstInterner::statsAllArchs()
{
    InternStats total;
    for (uarch::UArch a : uarch::allUArchs()) {
        InternStats st = forArch(a).stats();
        total.hits += st.hits;
        total.misses += st.misses;
        total.fusedHits += st.fusedHits;
        total.fusedMisses += st.fusedMisses;
        total.borrowed += st.borrowed;
    }
    return total;
}

} // namespace facile::analysis
