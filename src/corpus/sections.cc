#include "corpus/sections.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "testing/fault.h"

namespace facile::corpus {

// ---- xxHash64 --------------------------------------------------------------

namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t
rotl64(std::uint64_t x, int r)
{
    return (x << r) | (x >> (64 - r));
}

inline std::uint64_t
readU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

inline std::uint32_t
readU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline std::uint64_t
round1(std::uint64_t acc, std::uint64_t input)
{
    acc += input * kPrime2;
    acc = rotl64(acc, 31);
    acc *= kPrime1;
    return acc;
}

inline std::uint64_t
mergeRound(std::uint64_t acc, std::uint64_t val)
{
    acc ^= round1(0, val);
    acc = acc * kPrime1 + kPrime4;
    return acc;
}

} // namespace

std::uint64_t
xxh64(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    const std::uint8_t *const end = p + len;
    std::uint64_t h;

    if (len >= 32) {
        const std::uint8_t *const limit = end - 32;
        std::uint64_t v1 = seed + kPrime1 + kPrime2;
        std::uint64_t v2 = seed + kPrime2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - kPrime1;
        do {
            v1 = round1(v1, readU64(p));
            v2 = round1(v2, readU64(p + 8));
            v3 = round1(v3, readU64(p + 16));
            v4 = round1(v4, readU64(p + 24));
            p += 32;
        } while (p <= limit);
        h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) +
            rotl64(v4, 18);
        h = mergeRound(h, v1);
        h = mergeRound(h, v2);
        h = mergeRound(h, v3);
        h = mergeRound(h, v4);
    } else {
        h = seed + kPrime5;
    }

    h += static_cast<std::uint64_t>(len);
    while (p + 8 <= end) {
        h ^= round1(0, readU64(p));
        h = rotl64(h, 27) * kPrime1 + kPrime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<std::uint64_t>(readU32(p)) * kPrime1;
        h = rotl64(h, 23) * kPrime2 + kPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<std::uint64_t>(*p) * kPrime5;
        h = rotl64(h, 11) * kPrime1;
        ++p;
    }

    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
}

Xxh64State::Xxh64State(std::uint64_t seed) : seed_(seed)
{
    v_[0] = seed + kPrime1 + kPrime2;
    v_[1] = seed + kPrime2;
    v_[2] = seed;
    v_[3] = seed - kPrime1;
}

void
Xxh64State::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    total_ += len;

    if (bufLen_ + len < 32) {
        std::memcpy(buf_ + bufLen_, p, len);
        bufLen_ += len;
        return;
    }
    if (bufLen_ > 0) {
        // Complete the pending 32-byte stripe from the new input.
        const std::size_t fill = 32 - bufLen_;
        std::memcpy(buf_ + bufLen_, p, fill);
        v_[0] = round1(v_[0], readU64(buf_));
        v_[1] = round1(v_[1], readU64(buf_ + 8));
        v_[2] = round1(v_[2], readU64(buf_ + 16));
        v_[3] = round1(v_[3], readU64(buf_ + 24));
        p += fill;
        len -= fill;
        bufLen_ = 0;
    }
    while (len >= 32) {
        v_[0] = round1(v_[0], readU64(p));
        v_[1] = round1(v_[1], readU64(p + 8));
        v_[2] = round1(v_[2], readU64(p + 16));
        v_[3] = round1(v_[3], readU64(p + 24));
        p += 32;
        len -= 32;
    }
    if (len > 0) {
        std::memcpy(buf_, p, len);
        bufLen_ = len;
    }
}

std::uint64_t
Xxh64State::digest() const
{
    std::uint64_t h;
    if (total_ >= 32) {
        h = rotl64(v_[0], 1) + rotl64(v_[1], 7) + rotl64(v_[2], 12) +
            rotl64(v_[3], 18);
        h = mergeRound(h, v_[0]);
        h = mergeRound(h, v_[1]);
        h = mergeRound(h, v_[2]);
        h = mergeRound(h, v_[3]);
    } else {
        h = seed_ + kPrime5;
    }
    h += total_;

    const std::uint8_t *p = buf_;
    const std::uint8_t *const end = buf_ + bufLen_;
    while (p + 8 <= end) {
        h ^= round1(0, readU64(p));
        h = rotl64(h, 27) * kPrime1 + kPrime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<std::uint64_t>(readU32(p)) * kPrime1;
        h = rotl64(h, 23) * kPrime2 + kPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<std::uint64_t>(*p) * kPrime5;
        h = rotl64(h, 11) * kPrime1;
        ++p;
    }

    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
}

// ---- section table codec ---------------------------------------------------

std::vector<std::uint8_t>
encodeSectionTable(const std::vector<SectionEntry> &entries)
{
    std::vector<std::uint8_t> out(entries.size() * sizeof(SectionEntry));
    if (!entries.empty())
        std::memcpy(out.data(), entries.data(), out.size());
    return out;
}

std::vector<SectionEntry>
decodeSectionTable(const std::uint8_t *data, std::size_t size,
                   std::uint32_t count, std::uint64_t fileBytes)
{
    if (size / sizeof(SectionEntry) < count)
        throw SectionError("truncated section table");
    std::vector<SectionEntry> entries(count);
    if (count)
        std::memcpy(entries.data(), data,
                    count * sizeof(SectionEntry));
    for (const SectionEntry &e : entries) {
        if (e.offset > fileBytes || e.length > fileBytes - e.offset)
            throw SectionError("section payload out of bounds");
        if (e.reserved[0] || e.reserved[1] || e.reserved[2])
            throw SectionError("nonzero reserved section field");
    }
    return entries;
}

// ---- durable streaming writer ----------------------------------------------

std::string
generationPath(const std::string &path, int gen)
{
    return gen <= 0 ? path : path + ".g" + std::to_string(gen);
}

void
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

AtomicFileWriter::AtomicFileWriter(std::string path,
                                   std::string sitePrefix,
                                   int generations)
    : path_(std::move(path)),
      site_(std::move(sitePrefix)),
      generations_(std::max(1, generations))
{
    // Pid-suffixed temp name so concurrent savers sharing a target
    // path cannot tear each other's staging file.
    tmp_ = path_ + ".tmp." +
           std::to_string(static_cast<long>(::getpid()));
    const auto fa = testing::faultPoint((site_ + ".open").c_str(), 0);
    if (fa.err) {
        errno = fa.err;
        f_ = nullptr;
    } else {
        f_ = std::fopen(tmp_.c_str(), "wb");
    }
    if (!f_)
        throw SectionError("cannot create " + tmp_);
}

AtomicFileWriter::~AtomicFileWriter()
{
    if (!committed_)
        abort();
}

void
AtomicFileWriter::abort() noexcept
{
    if (f_) {
        std::fclose(f_);
        f_ = nullptr;
    }
    std::remove(tmp_.c_str());
}

void
AtomicFileWriter::write(const void *data, std::size_t len)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    while (len > 0) {
        if (buf_.size() == kWriteBuf)
            flush();
        const std::size_t take = std::min(len, kWriteBuf - buf_.size());
        buf_.insert(buf_.end(), p, p + take);
        p += take;
        len -= take;
        offset_ += take;
    }
}

void
AtomicFileWriter::flush()
{
    if (buf_.empty())
        return;
    // Torn-write injection point: a clamp cuts the staging file short,
    // an errno fails the write outright — either way nothing has
    // touched the target path yet and every generation stays loadable.
    const auto fa =
        testing::faultPoint((site_ + ".write").c_str(), buf_.size());
    bool ok;
    if (fa.err) {
        errno = fa.err;
        ok = false;
    } else {
        const std::size_t n = std::min(buf_.size(), fa.clamp);
        ok = std::fwrite(buf_.data(), 1, n, f_) == n && n == buf_.size();
    }
    if (!ok) {
        abort();
        throw SectionError("short write on " + tmp_);
    }
    buf_.clear();
}

void
AtomicFileWriter::padTo(std::uint64_t align)
{
    static const std::uint8_t zeros[512] = {};
    std::uint64_t need = alignUp(offset_, align) - offset_;
    while (need > 0) {
        const std::size_t n =
            static_cast<std::size_t>(std::min<std::uint64_t>(
                need, sizeof zeros));
        write(zeros, n);
        need -= n;
    }
}

void
AtomicFileWriter::writeAt(std::uint64_t off, const void *data,
                          std::size_t len)
{
    if (off + len > offset_) {
        abort();
        throw SectionError("patch past end of " + tmp_);
    }
    flush(); // the patched range must already be in the file
    const auto fa = testing::faultPoint((site_ + ".write").c_str(), len);
    bool ok;
    if (fa.err) {
        errno = fa.err;
        ok = false;
    } else {
        const std::size_t n = std::min(len, fa.clamp);
        ok = std::fseek(f_, static_cast<long>(off), SEEK_SET) == 0 &&
             std::fwrite(data, 1, n, f_) == n && n == len &&
             std::fseek(f_, static_cast<long>(offset_), SEEK_SET) == 0;
    }
    if (!ok) {
        abort();
        throw SectionError("short patch write on " + tmp_);
    }
}

void
AtomicFileWriter::commit()
{
    flush();
    // Durability before visibility: the bytes must be on stable
    // storage before the rename can make them the file readers see.
    bool ok;
    {
        const auto fa =
            testing::faultPoint((site_ + ".fsync").c_str(), 0);
        if (fa.err) {
            errno = fa.err;
            ok = false;
        } else {
            ok = std::fflush(f_) == 0 && ::fsync(::fileno(f_)) == 0;
        }
    }
    if (std::fclose(f_) != 0)
        ok = false;
    f_ = nullptr;
    if (!ok) {
        std::remove(tmp_.c_str());
        throw SectionError("fsync failed on " + tmp_);
    }

    // Rotate prior generations (path -> .g1 -> .g2, oldest renamed
    // first). A missing generation is fine; any other failure aborts
    // the save with every existing generation intact.
    for (int g = generations_ - 1; g >= 1; --g) {
        const std::string from = generationPath(path_, g - 1);
        const std::string to = generationPath(path_, g);
        int rc;
        const auto fa =
            testing::faultPoint((site_ + ".rotate").c_str(), 0);
        if (fa.err) {
            errno = fa.err;
            rc = -1;
        } else {
            rc = std::rename(from.c_str(), to.c_str());
        }
        if (rc != 0 && errno != ENOENT) {
            std::remove(tmp_.c_str());
            throw SectionError("cannot rotate " + from + " to " + to);
        }
    }

    // The commit point. If this fails after a rotation, the primary
    // name is vacant but `path.g1` holds the previous good image and
    // the loader's generation walk finds it.
    int rc;
    {
        const auto fa =
            testing::faultPoint((site_ + ".rename").c_str(), 0);
        if (fa.err) {
            errno = fa.err;
            rc = -1;
        } else {
            rc = std::rename(tmp_.c_str(), path_.c_str());
        }
    }
    if (rc != 0) {
        std::remove(tmp_.c_str());
        throw SectionError("cannot rename " + tmp_ + " to " + path_);
    }
    fsyncParentDir(path_);
    committed_ = true;
}

// ---- MappedFile ------------------------------------------------------------

MappedFile::~MappedFile()
{
    close();
}

MappedFile::MappedFile(MappedFile &&o) noexcept
    : base_(o.base_), size_(o.size_)
{
    o.base_ = nullptr;
    o.size_ = 0;
}

MappedFile &
MappedFile::operator=(MappedFile &&o) noexcept
{
    if (this != &o) {
        close();
        base_ = o.base_;
        size_ = o.size_;
        o.base_ = nullptr;
        o.size_ = 0;
    }
    return *this;
}

void
MappedFile::close() noexcept
{
    if (base_) {
        ::munmap(base_, size_);
        base_ = nullptr;
        size_ = 0;
    }
}

bool
MappedFile::open(const std::string &path, const char *faultSite)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    struct ::stat sb;
    if (::fstat(fd, &sb) != 0 || sb.st_size <= 0) {
        ::close(fd);
        return false;
    }
    void *p;
    const auto fa = testing::faultPoint(faultSite, 0);
    if (fa.err) {
        errno = fa.err;
        p = MAP_FAILED;
    } else {
        p = ::mmap(nullptr, static_cast<std::size_t>(sb.st_size),
                   PROT_READ, MAP_PRIVATE, fd, 0);
    }
    ::close(fd); // the mapping keeps its own reference
    if (p == MAP_FAILED)
        throw SectionError("cannot mmap " + path);
    base_ = static_cast<std::uint8_t *>(p);
    size_ = static_cast<std::size_t>(sb.st_size);
    return true;
}

void
MappedFile::willNeed(std::uint64_t off, std::uint64_t len) const
{
    if (!base_ || off >= size_)
        return;
    const std::uint64_t page = kSectionAlign;
    const std::uint64_t start = off & ~(page - 1);
    const std::uint64_t end =
        std::min<std::uint64_t>(size_, alignUp(off + len, page));
    ::madvise(base_ + start, static_cast<std::size_t>(end - start),
              MADV_WILLNEED);
}

} // namespace facile::corpus
