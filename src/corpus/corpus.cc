#include "corpus/corpus.h"

#include <algorithm>
#include <cstring>

namespace facile::corpus {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'C', 'C', 'O', 'R', 'P', '\n'};
constexpr std::size_t kHeaderSize = 24;
constexpr long kCountOffset = 16;

constexpr std::uint8_t kFlagMeasured = 1u << 0;
constexpr std::uint8_t kFlagLoop = 1u << 1;

} // namespace

Writer::Writer(const std::string &path) : path_(path)
{
    f_ = std::fopen(path.c_str(), "wb");
    if (!f_)
        throw CorpusError("cannot create " + path);
    std::uint8_t header[kHeaderSize] = {};
    std::memcpy(header, kMagic, sizeof kMagic);
    std::uint32_t version = kCorpusVersion;
    std::memcpy(header + 8, &version, 4);
    std::uint64_t count = kUnknownCount;
    std::memcpy(header + kCountOffset, &count, 8);
    if (std::fwrite(header, 1, sizeof header, f_) != sizeof header) {
        std::fclose(f_);
        f_ = nullptr;
        throw CorpusError("short write on " + path);
    }
}

Writer::~Writer()
{
    try {
        close();
    } catch (const CorpusError &) {
        // Destructors must not throw; the file stays marked
        // kUnknownCount, which readers handle.
    }
}

void
Writer::append(const Entry &e)
{
    if (!f_)
        throw CorpusError("writer closed: " + path_);
    if (e.bytes.size() > kMaxCorpusBlockBytes)
        throw CorpusError("block too large (" +
                          std::to_string(e.bytes.size()) + " bytes)");
    std::uint8_t head[4];
    head[0] = static_cast<std::uint8_t>(e.arch);
    head[1] = static_cast<std::uint8_t>((e.hasMeasured ? kFlagMeasured : 0) |
                                        (e.loop ? kFlagLoop : 0));
    const std::uint16_t len = static_cast<std::uint16_t>(e.bytes.size());
    std::memcpy(head + 2, &len, 2);
    bool ok = std::fwrite(head, 1, sizeof head, f_) == sizeof head;
    if (ok && len)
        ok = std::fwrite(e.bytes.data(), 1, len, f_) == len;
    if (ok && e.hasMeasured)
        ok = std::fwrite(&e.measured, 1, 8, f_) == 8;
    if (!ok)
        throw CorpusError("short write on " + path_);
    ++count_;
}

void
Writer::close()
{
    if (!f_)
        return;
    std::FILE *f = f_;
    f_ = nullptr;
    bool ok = std::fseek(f, kCountOffset, SEEK_SET) == 0 &&
              std::fwrite(&count_, 1, 8, f) == 8;
    ok = (std::fclose(f) == 0) && ok;
    if (!ok)
        throw CorpusError("cannot finalize " + path_);
}

Reader::Reader(const std::string &path) : path_(path)
{
    f_ = std::fopen(path.c_str(), "rb");
    if (!f_)
        throw CorpusError("cannot open " + path);
    readHeader();
}

Reader::Reader(const std::uint8_t *data, std::size_t size)
    : path_("<memory>")
{
    // fmemopen never writes through the buffer in "rb" mode; the cast
    // only satisfies its non-const signature.
    f_ = ::fmemopen(const_cast<std::uint8_t *>(data), size, "rb");
    if (!f_)
        throw CorpusError("cannot open in-memory corpus (" +
                          std::to_string(size) + " bytes)");
    readHeader();
}

void
Reader::readHeader()
{
    std::uint8_t header[kHeaderSize];
    if (std::fread(header, 1, sizeof header, f_) != sizeof header) {
        std::fclose(f_);
        f_ = nullptr;
        throw CorpusError("truncated header in " + path_);
    }
    if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
        std::fclose(f_);
        f_ = nullptr;
        throw CorpusError("bad magic in " + path_);
    }
    std::uint32_t version;
    std::memcpy(&version, header + 8, 4);
    if (version != kCorpusVersion) {
        std::fclose(f_);
        f_ = nullptr;
        throw CorpusError("unsupported version " +
                          std::to_string(version) + " in " + path_);
    }
    std::memcpy(&declared_, header + kCountOffset, 8);
}

Reader::~Reader()
{
    if (f_)
        std::fclose(f_);
}

bool
Reader::next(Entry &out)
{
    if (!f_)
        return false;
    std::uint8_t head[4];
    const std::size_t got = std::fread(head, 1, sizeof head, f_);
    if (got == 0 && std::feof(f_)) {
        if (declared_ != kUnknownCount && read_ != declared_)
            throw CorpusError("record count mismatch in " + path_ +
                              " (header says " +
                              std::to_string(declared_) + ", found " +
                              std::to_string(read_) + ")");
        return false; // clean EOF
    }
    if (got != sizeof head)
        throw CorpusError("truncated record header in " + path_);
    if (head[0] >= uarch::allUArchs().size())
        throw CorpusError("bad arch in " + path_);
    out.arch = static_cast<uarch::UArch>(head[0]);
    out.hasMeasured = (head[1] & kFlagMeasured) != 0;
    out.loop = (head[1] & kFlagLoop) != 0;
    if ((head[1] & ~(kFlagMeasured | kFlagLoop)) != 0)
        throw CorpusError("unknown record flags in " + path_);
    std::uint16_t len;
    std::memcpy(&len, head + 2, 2);
    if (len > kMaxCorpusBlockBytes)
        throw CorpusError("oversized block in " + path_);
    out.bytes.resize(len);
    if (len && std::fread(out.bytes.data(), 1, len, f_) != len)
        throw CorpusError("truncated block bytes in " + path_);
    if (out.hasMeasured) {
        if (std::fread(&out.measured, 1, 8, f_) != 8)
            throw CorpusError("truncated measured value in " + path_);
    } else {
        out.measured = 0.0;
    }
    ++read_;
    return true;
}

std::vector<Entry>
readAll(const std::string &path)
{
    Reader r(path);
    std::vector<Entry> entries;
    // The header count is unauthenticated (there is no corpus
    // checksum), so cap the reserve: a corrupted count field must
    // surface as a CorpusError from next(), not as bad_alloc here.
    constexpr std::uint64_t kMaxReserve = 1u << 20;
    if (r.declaredCount() != kUnknownCount)
        entries.reserve(static_cast<std::size_t>(
            std::min(r.declaredCount(), kMaxReserve)));
    Entry e;
    while (r.next(e))
        entries.push_back(e);
    return entries;
}

} // namespace facile::corpus
