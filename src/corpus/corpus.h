/**
 * @file
 * Compact binary corpus format for offline batch evaluation: a stream
 * of (arch, block bytes, optional measured cycles) records, written
 * and read sequentially so corpora larger than memory stream through
 * the facile_batch pipeline.
 *
 * File format (little-endian):
 *
 *   offset 0   char[8]  magic    "FACCORP\n"
 *   offset 8   u32      version  kCorpusVersion
 *   offset 12  u32      reserved 0
 *   offset 16  u64      count    records in the file; kUnknownCount
 *                                while a writer is still appending
 *                                (patched on Writer::close)
 *   offset 24  records, back to back:
 *       u8  arch      uarch::UArch value
 *       u8  flags     bit 0: record carries a measured value
 *                     bit 1: loop notion (TPL; unset = TPU)
 *       u16 len       block bytes (<= kMaxCorpusBlockBytes)
 *       len bytes     raw machine code
 *       f64 measured  cycles per iteration; present iff flag bit 0
 *
 * The reader validates the header and every record boundary; a
 * truncated or malformed file throws CorpusError at the offending
 * record, never yields a partial Entry.
 */
#ifndef FACILE_CORPUS_CORPUS_H
#define FACILE_CORPUS_CORPUS_H

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "uarch/config.h"

namespace facile::corpus {

inline constexpr std::uint32_t kCorpusVersion = 1;
inline constexpr std::uint64_t kUnknownCount = ~0ULL;

/** Upper bound on block bytes per record (matches the server limit). */
inline constexpr std::size_t kMaxCorpusBlockBytes = 4096;

/** Thrown on malformed or truncated corpus files. */
class CorpusError : public std::runtime_error
{
  public:
    explicit CorpusError(const std::string &what)
        : std::runtime_error("corpus: " + what)
    {}
};

/** One corpus record. */
struct Entry
{
    uarch::UArch arch = uarch::UArch::SKL;
    bool loop = false;
    bool hasMeasured = false;
    double measured = 0.0; ///< cycles per iteration (ground truth)
    std::vector<std::uint8_t> bytes;
};

/** Sequential corpus writer; append() streams, close() patches count. */
class Writer
{
  public:
    /** Create/truncate @p path and write the header. @throws CorpusError. */
    explicit Writer(const std::string &path);

    /** Closes (and patches the header count) if still open. */
    ~Writer();

    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;

    /** Append one record. @throws CorpusError on oversized blocks / IO. */
    void append(const Entry &e);

    std::uint64_t count() const { return count_; }

    /** Flush, patch the header record count, and close the file. */
    void close();

  private:
    std::FILE *f_ = nullptr;
    std::string path_;
    std::uint64_t count_ = 0;
};

/** Streaming corpus reader. */
class Reader
{
  public:
    /** Open @p path and validate the header. @throws CorpusError. */
    explicit Reader(const std::string &path);

    /**
     * Read from an in-memory image instead of a file (no copy; the
     * bytes must outlive the reader). Same header validation and
     * per-record error contract as the file constructor — this is
     * what the fuzz_corpus harness drives.
     */
    Reader(const std::uint8_t *data, std::size_t size);

    ~Reader();

    Reader(const Reader &) = delete;
    Reader &operator=(const Reader &) = delete;

    /**
     * Header record count; kUnknownCount if the writer never closed
     * (the stream is still fully readable — next() hits clean EOF).
     */
    std::uint64_t declaredCount() const { return declared_; }

    /**
     * Read the next record into @p out (vector capacity reused).
     * Returns false on clean EOF. @throws CorpusError on a malformed
     * or truncated record.
     */
    bool next(Entry &out);

  private:
    /** Read + validate the 24-byte header from f_ (both ctors). */
    void readHeader();

    std::FILE *f_ = nullptr;
    std::string path_;
    std::uint64_t declared_ = 0;
    std::uint64_t read_ = 0;
};

/** Read an entire corpus into memory. */
std::vector<Entry> readAll(const std::string &path);

} // namespace facile::corpus

#endif // FACILE_CORPUS_CORPUS_H
