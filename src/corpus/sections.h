/**
 * @file
 * Shared building blocks for sectioned container files (the mmap-able
 * snapshot v2 image today; sectioned corpora next): a 64-bit xxHash,
 * a fixed 64-byte section-table entry with page-aligned payload
 * offsets and a per-section hash, and a streaming atomic file writer
 * that keeps the crash-safety contract of snapshot saves (temp file →
 * incremental writes → fsync → generation rotation → rename → parent
 * dir fsync) without ever materializing the whole image in memory.
 *
 * Everything here is format-agnostic: the container owner supplies the
 * magic/header layout and the meaning of SectionEntry::type/tag; this
 * layer owns alignment, hashing, the table codec, and durable IO.
 *
 * All multi-byte fields are little-endian (the host is asserted
 * little-endian by the server protocol; sectioned files share that
 * assumption and carry an endian tag so a foreign-endian image is
 * rejected instead of misparsed).
 */
#ifndef FACILE_CORPUS_SECTIONS_H
#define FACILE_CORPUS_SECTIONS_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

namespace facile::corpus {

/** Thrown on IO failures and malformed section tables. */
class SectionError : public std::runtime_error
{
  public:
    explicit SectionError(const std::string &what)
        : std::runtime_error("sections: " + what)
    {}
};

/**
 * Section payloads start on this boundary so a file mapped at a
 * page-aligned base address yields page-aligned (hence safely
 * memcpy/overlay-able) section views on every mainstream kernel.
 */
inline constexpr std::uint64_t kSectionAlign = 4096;

/** Value all sectioned containers stamp as their endianness witness. */
inline constexpr std::uint32_t kLittleEndianTag = 0x0A0B0C0D;

/** @return @p v rounded up to the next multiple of @p align (pow 2). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/**
 * xxHash64 (Yann Collet's XXH64, the standard single-shot variant) —
 * implemented in-repo because the toolchain image carries no xxhash
 * package. Verified against the reference vectors in test_corpus.
 */
std::uint64_t xxh64(const void *data, std::size_t len,
                    std::uint64_t seed = 0);

/**
 * Streaming XXH64: feed bytes incrementally, digest() at any point.
 * digest(state fed X) == xxh64(X) for every split of X — the property
 * that lets writers checksum sections while streaming them to disk
 * instead of materializing them in memory.
 */
class Xxh64State
{
  public:
    explicit Xxh64State(std::uint64_t seed = 0);

    void update(const void *data, std::size_t len);

    /** Hash of everything fed so far (does not consume the state). */
    std::uint64_t digest() const;

  private:
    std::uint64_t v_[4];
    std::uint64_t total_ = 0;
    std::uint64_t seed_;
    std::uint8_t buf_[32];
    std::size_t bufLen_ = 0;
};

/**
 * One section-table entry, exactly 64 bytes on disk and in memory
 * (plain little-endian PODs, memcpy-codec'd):
 *
 *   offset 0   u32  type       container-defined section type
 *   offset 4   u32  tag        container-defined (e.g. uarch value)
 *   offset 8   u64  offset     payload start from file byte 0;
 *                              kSectionAlign-aligned for mappable types
 *   offset 16  u64  length     payload bytes (excludes padding)
 *   offset 24  u64  hash       xxh64 over the payload bytes
 *   offset 32  u64  itemCount  container-defined logical item count
 *   offset 40  u64  reserved[3]  zero; readers ignore
 */
struct SectionEntry
{
    std::uint32_t type = 0;
    std::uint32_t tag = 0;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::uint64_t hash = 0;
    std::uint64_t itemCount = 0;
    std::uint64_t reserved[3] = {0, 0, 0};
};
static_assert(sizeof(SectionEntry) == 64,
              "SectionEntry is the on-disk layout");

/** Serialize @p entries back to back (64 bytes each). */
std::vector<std::uint8_t>
encodeSectionTable(const std::vector<SectionEntry> &entries);

/**
 * Decode a section table of @p count entries from @p data (@p size
 * bytes) and validate every entry against the containing file size:
 * payload in bounds, no overflow, mappable offsets aligned when
 * @p requireAligned. @throws SectionError.
 */
std::vector<SectionEntry>
decodeSectionTable(const std::uint8_t *data, std::size_t size,
                   std::uint32_t count, std::uint64_t fileBytes);

/**
 * Streaming durable writer with the snapshot crash-safety contract.
 * Bytes go to `path.tmp.<pid>`; commit() fsyncs, rotates existing
 * generations (`path` → `path.g1` → ...), renames the temp file over
 * @p path and fsyncs the parent directory. Abandoning the writer
 * (destructor without commit) removes the temp file and leaves every
 * existing generation untouched.
 *
 * Fault injection: each syscall boundary consults the named hook
 * `<sitePrefix>.{open,write,fsync,rotate,rename}` via
 * testing::faultPoint, so the existing torn-write / failed-rename
 * matrices exercise v2 saves identically to v1. Appends are staged
 * through a fixed buffer and the write hook fires once per flushed
 * chunk, not once per append — a streamed save hits the fault site
 * O(bytes / kWriteBuf) times like the old whole-image write did, so
 * seeded chaos (1-in-N per hit) doesn't make large saves
 * statistically impossible.
 */
class AtomicFileWriter
{
  public:
    AtomicFileWriter(std::string path, std::string sitePrefix,
                     int generations);
    ~AtomicFileWriter();

    AtomicFileWriter(const AtomicFileWriter &) = delete;
    AtomicFileWriter &operator=(const AtomicFileWriter &) = delete;

    /** Append @p len bytes at the current offset. @throws SectionError. */
    void write(const void *data, std::size_t len);

    /** Zero-fill forward until offset() is @p align-aligned. */
    void padTo(std::uint64_t align);

    /**
     * Overwrite @p len bytes at absolute offset @p off (must already
     * have been written) — used to patch headers and tables whose
     * contents are only known once the payload has streamed out.
     * Restores the append position.
     */
    void writeAt(std::uint64_t off, const void *data, std::size_t len);

    /** Bytes appended so far (== the final file size at commit). */
    std::uint64_t offset() const { return offset_; }

    /** Flush + fsync + rotate + rename + dir fsync. @throws SectionError. */
    void commit();

  private:
    /** Stage @p buf_ to the file (one write-hook hit). @throws. */
    void flush();
    void abort() noexcept;

    static constexpr std::size_t kWriteBuf = 256 * 1024;

    std::string path_;
    std::string tmp_;
    std::string site_;
    int generations_;
    std::FILE *f_ = nullptr;
    std::uint64_t offset_ = 0; ///< logical bytes appended (incl. buffered)
    std::vector<std::uint8_t> buf_;
    bool committed_ = false;
};

/** Name of generation @p gen of @p path (gen 0 is @p path itself). */
std::string generationPath(const std::string &path, int gen);

/**
 * Best-effort parent-directory fsync after a rename (without it the
 * rename itself may not survive power loss). Failure is ignored.
 */
void fsyncParentDir(const std::string &path);

/**
 * A read-only mmap(2) view of a whole file. open() returns false when
 * the file cannot be opened; it throws SectionError when the file
 * exists but cannot be mapped (callers fall back to a read() path).
 * The mapping is MAP_PRIVATE: on-disk mutation after open never
 * changes the view's validity, only its contents (which per-section
 * hashes catch).
 */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;
    MappedFile(MappedFile &&o) noexcept;
    MappedFile &operator=(MappedFile &&o) noexcept;

    /**
     * Map @p path read-only. @p faultSite names the injection hook
     * consulted before the mmap syscall. @return false when the file
     * cannot be opened or stat'd; @throws SectionError when mmap
     * itself fails (fallback-worthy, not fatal).
     */
    bool open(const std::string &path, const char *faultSite);

    /** Hint the kernel to prefetch [off, off+len) of the mapping. */
    void willNeed(std::uint64_t off, std::uint64_t len) const;

    const std::uint8_t *data() const { return base_; }
    std::size_t size() const { return size_; }
    bool valid() const { return base_ != nullptr; }

  private:
    void close() noexcept;

    std::uint8_t *base_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace facile::corpus

#endif // FACILE_CORPUS_SECTIONS_H
