/**
 * @file
 * Precedence-constraint predictor (paper section 4.9).
 *
 * Builds a weighted dependence graph over the values produced and
 * consumed by the block's instructions. Intra-iteration edges carry
 * iteration count 0, loop-carried edges count 1; edge weights are
 * instruction latencies (plus the load-to-use latency for address
 * registers of loads). The throughput bound is the maximum ratio of
 * cycle latency to cycle iteration count over all cycles of the graph
 * — the recurrence-constrained minimum initiation interval of modulo
 * scheduling.
 */
#ifndef FACILE_FACILE_PRECEDENCE_H
#define FACILE_FACILE_PRECEDENCE_H

#include <vector>

#include "bb/basic_block.h"

namespace facile::model {

/** Result of the precedence analysis, with interpretability data. */
struct PrecedenceResult
{
    double throughput = 0.0;

    /**
     * Instruction indices along the critical dependence cycle, for
     * interpretable feedback when Precedence is the bottleneck.
     */
    std::vector<int> criticalChain;
};

/** Throughput bound due to loop-carried dependence chains. */
PrecedenceResult precedence(const bb::BasicBlock &blk);

/**
 * Maximum cycle ratio sum(weight)/sum(count) over all cycles of a
 * directed graph; 0 if the graph is acyclic. Exposed for testing.
 *
 * Every cycle must contain at least one edge with count > 0 (guaranteed
 * by the dependence-graph construction; asserted here).
 */
struct RatioEdge
{
    int from;
    int to;
    double weight;
    int count;
};

struct CycleRatioResult
{
    double ratio = 0.0;
    std::vector<int> cycleNodes; ///< nodes on a critical cycle
};

CycleRatioResult maxCycleRatio(int n_nodes,
                               const std::vector<RatioEdge> &edges);

/**
 * Howard's value/policy-iteration algorithm for the maximum cycle
 * ratio (the algorithm the paper employs, [16, 18]). Used as the
 * default engine inside maxCycleRatio; exposed for testing against the
 * binary-search engine and brute force.
 */
CycleRatioResult maxCycleRatioHoward(int n_nodes,
                                     const std::vector<RatioEdge> &edges);

/**
 * Lawler-style binary search with Bellman-Ford positive-cycle
 * detection; the cross-check engine.
 */
CycleRatioResult maxCycleRatioLawler(int n_nodes,
                                     const std::vector<RatioEdge> &edges);

} // namespace facile::model

#endif // FACILE_FACILE_PRECEDENCE_H
