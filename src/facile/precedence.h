/**
 * @file
 * Precedence-constraint predictor (paper section 4.9).
 *
 * Builds a weighted dependence graph over the values produced and
 * consumed by the block's instructions. Intra-iteration edges carry
 * iteration count 0, loop-carried edges count 1; edge weights are
 * instruction latencies (plus the load-to-use latency for address
 * registers of loads). The throughput bound is the maximum ratio of
 * cycle latency to cycle iteration count over all cycles of the graph
 * — the recurrence-constrained minimum initiation interval of modulo
 * scheduling.
 */
#ifndef FACILE_FACILE_PRECEDENCE_H
#define FACILE_FACILE_PRECEDENCE_H

#include <vector>

#include "bb/basic_block.h"
#include "isa/semantics.h"

namespace facile::model {

/** Result of the precedence analysis, with interpretability data. */
struct PrecedenceResult
{
    double throughput = 0.0;

    /**
     * Instruction indices along the critical dependence cycle, for
     * interpretable feedback when Precedence is the bottleneck.
     */
    std::vector<int> criticalChain;
};

/**
 * One edge of a cycle-ratio problem, as accepted by the public
 * maxCycleRatio entry points (convenient for tests and callers).
 * Internally edges are held as struct-of-arrays (EdgeArrays) so the
 * Bellman-Ford and Howard inner loops stream contiguous data.
 */
struct RatioEdge
{
    int from;
    int to;
    double weight;
    int count;
};

/**
 * Struct-of-arrays edge list: from/to/weight/count in separate
 * contiguous arrays. The cycle-ratio inner loops touch only the arrays
 * they need per pass (Bellman-Ford reads all four sequentially; the
 * SCC passes read only from/to), so the hot data stays cache-dense.
 * Indexing is shared: edge j is (from[j], to[j], weight[j], count[j]).
 */
struct EdgeArrays
{
    std::vector<int> from, to, count;
    std::vector<double> weight;

    std::size_t size() const { return from.size(); }
    bool empty() const { return from.empty(); }

    void
    clear()
    {
        from.clear();
        to.clear();
        count.clear();
        weight.clear();
    }

    void
    reserve(std::size_t n)
    {
        from.reserve(n);
        to.reserve(n);
        count.reserve(n);
        weight.reserve(n);
    }

    void
    push(int f, int t, double w, int c)
    {
        from.push_back(f);
        to.push_back(t);
        weight.push_back(w);
        count.push_back(c);
    }

    void
    assignFrom(const std::vector<RatioEdge> &edges)
    {
        clear();
        reserve(edges.size());
        for (const auto &e : edges)
            push(e.from, e.to, e.weight, e.count);
    }
};

struct CycleRatioResult
{
    double ratio = 0.0;
    std::vector<int> cycleNodes; ///< nodes on a critical cycle
};

/**
 * Reusable workspace for precedence() and the cycle-ratio engines.
 *
 * All per-call temporaries (dependence-graph buffers, Bellman-Ford
 * dist/pred arrays, CSR adjacency, SCC bookkeeping) live here and keep
 * their capacity between calls, so repeated analysis allocates nothing
 * in steady state — the only allocations left are the criticalChain /
 * cycleNodes the caller receives and owns. One scratch may not be
 * shared between threads; the scratch-less entry points below use a
 * thread_local instance, which gives every engine worker its own
 * buffers for free.
 *
 * The fields are an implementation detail: treat the object as opaque
 * and merely keep it alive across calls.
 */
struct PrecedenceScratch
{
    // Dependence-graph construction.
    std::vector<isa::RwSets> rw; ///< fallback for blocks without ai.rw
    std::vector<const isa::RwSets *> rwPtr;
    std::vector<int> nodeInst;
    std::vector<int> nodeValue;
    EdgeArrays edges;

    // Staging area for the public AoS entry points.
    EdgeArrays inputEdges;

    // Bellman-Ford positive-cycle detection (Lawler engine and the
    // per-SCC early-exit probe). probeW holds the per-probe modified
    // weights w(e) - lambda * count(e), precomputed once so the n
    // relaxation rounds stream a single array.
    std::vector<double> dist;
    std::vector<double> probeW;
    std::vector<int> pred;
    std::vector<int> cycle;

    // Tarjan SCC (single pass): forward CSR adjacency, DFS frames,
    // index/lowlink arrays, the Tarjan node stack (order) and on-stack
    // flags (seen), component ids.
    std::vector<int> fwdStart, fwdAdj;
    std::vector<int> order;
    std::vector<int> comp;
    std::vector<int> stackNode, stackIter;
    std::vector<char> seen;
    std::vector<int> tjIndex, tjLow;

    // Per-component edge grouping and dense renumbering.
    std::vector<int> compStart, compEdgeIdx;
    std::vector<int> localId, globalId;
    EdgeArrays localEdges;

    // Engine output staging (critical cycles, global node ids).
    std::vector<int> engineCycle;
    std::vector<int> bestCycle;

    // Howard policy iteration.
    std::vector<int> howStart, howEdge, howPos;
    std::vector<int> howPolicy, howMark, howAnchor, howPath;
    std::vector<int> howBestCycle, howCycle;
    std::vector<double> howD;
    std::vector<char> howSolved;
};

/** Throughput bound due to loop-carried dependence chains. */
PrecedenceResult precedence(const bb::BasicBlock &blk);

/**
 * As above, with caller-owned scratch buffers (zero allocations in
 * steady state). The scratch-less overload uses a thread_local scratch.
 */
PrecedenceResult precedence(const bb::BasicBlock &blk,
                            PrecedenceScratch &scratch);

/**
 * The bound alone, without the criticalChain payload — the staged
 * pipeline's cheap path.
 *
 * When the dependence graph carries no cross-instruction loop-carried
 * edge (every loop-carried dependence is an instruction depending on
 * its own previous iteration), every dependence cycle is confined to a
 * single instruction's write nodes and the maximum self-loop ratio is
 * the exact bound; the max-cycle-ratio engines are skipped entirely
 * and @p shortCircuited (if non-null) is set. The returned double is
 * bit-identical to the full engine's in that case: loop-carried edges
 * have iteration count 1 and integer-valued latency weights, so the
 * engines' converged per-cycle ratio is exactly the winning self-loop
 * weight (the tolerance windows of the Howard / Bellman-Ford engines
 * only matter for ratio gaps below 1e-9, which integer-valued weights
 * with small cycle lengths cannot produce). Blocks where a stack-op
 * instruction carries more than one self-dependence fall back to the
 * full engine (the rsp special case makes a cross-value cycle's ratio
 * potentially exceed every self-loop; no such instruction exists in
 * the ISA model, but the guard keeps the short-circuit conservative).
 */
double precedenceBound(const bb::BasicBlock &blk, PrecedenceScratch &scratch,
                       bool *shortCircuited = nullptr);

/**
 * Maximum cycle ratio sum(weight)/sum(count) over all cycles of a
 * directed graph; 0 if the graph is acyclic. Exposed for testing.
 *
 * Every cycle must contain at least one edge with count > 0 (guaranteed
 * by the dependence-graph construction; asserted here).
 */
CycleRatioResult maxCycleRatio(int n_nodes,
                               const std::vector<RatioEdge> &edges);

/**
 * Howard's value/policy-iteration algorithm for the maximum cycle
 * ratio (the algorithm the paper employs, [16, 18]). Used as the
 * default engine inside maxCycleRatio; exposed for testing against the
 * binary-search engine and brute force.
 */
CycleRatioResult maxCycleRatioHoward(int n_nodes,
                                     const std::vector<RatioEdge> &edges);

/**
 * Lawler-style binary search with Bellman-Ford positive-cycle
 * detection; the cross-check engine. The per-SCC driver seeds each
 * component's search with the best ratio found so far and skips
 * components that cannot beat it (one Bellman-Ford probe), so later
 * components cost a fraction of a full search.
 */
CycleRatioResult maxCycleRatioLawler(int n_nodes,
                                     const std::vector<RatioEdge> &edges);

} // namespace facile::model

#endif // FACILE_FACILE_PRECEDENCE_H
