#include "facile/ports.h"

#include <algorithm>
#include <map>

#include "uarch/config.h"

namespace facile::model {

namespace {

using uarch::PortMask;

/** Collect the port masks of all port-consuming µops of the block. */
std::vector<std::pair<PortMask, int>>
collectUopMasks(const bb::BasicBlock &blk)
{
    std::vector<std::pair<PortMask, int>> uops; // (mask, instruction index)
    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        const auto &ai = blk.insts[i];
        if (ai.fusedWithPrev || ai.info.eliminated)
            continue;
        for (const auto &u : ai.info.portUops)
            if (u.ports)
                uops.emplace_back(u.ports, static_cast<int>(i));
    }
    return uops;
}

PortsResult
boundForCombinations(const bb::BasicBlock &blk,
                     const std::vector<PortMask> &combinations)
{
    auto uops = collectUopMasks(blk);
    PortsResult best;
    for (PortMask pc : combinations) {
        int u = 0;
        for (const auto &[mask, idx] : uops)
            if ((mask & ~pc) == 0)
                ++u;
        if (u == 0)
            continue;
        double tp = static_cast<double>(u) / uarch::portCount(pc);
        if (tp > best.throughput) {
            best.throughput = tp;
            best.bottleneckPorts = pc;
        }
    }
    // Extract the contending instructions for interpretability.
    if (best.bottleneckPorts) {
        for (const auto &[mask, idx] : uops)
            if ((mask & ~best.bottleneckPorts) == 0)
                best.contendingInsts.push_back(idx);
        best.contendingInsts.erase(std::unique(best.contendingInsts.begin(),
                                               best.contendingInsts.end()),
                                   best.contendingInsts.end());
    }
    return best;
}

} // namespace

PortsResult
ports(const bb::BasicBlock &blk)
{
    auto uops = collectUopMasks(blk);

    // PC: distinct port combinations used by µops of the benchmark.
    std::vector<PortMask> pcs;
    for (const auto &[mask, idx] : uops)
        pcs.push_back(mask);
    std::sort(pcs.begin(), pcs.end());
    pcs.erase(std::unique(pcs.begin(), pcs.end()), pcs.end());

    // PC' = { pc | pc' : pc, pc' in PC } (includes singletons: pc | pc).
    std::vector<PortMask> pairs;
    for (std::size_t a = 0; a < pcs.size(); ++a)
        for (std::size_t b = a; b < pcs.size(); ++b)
            pairs.push_back(static_cast<PortMask>(pcs[a] | pcs[b]));
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

    return boundForCombinations(blk, pairs);
}

PortsResult
portsExact(const bb::BasicBlock &blk)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    const unsigned nSubsets = 1u << cfg.nPorts;
    std::vector<PortMask> all;
    all.reserve(nSubsets - 1);
    for (unsigned s = 1; s < nSubsets; ++s)
        all.push_back(static_cast<PortMask>(s));
    return boundForCombinations(blk, all);
}

} // namespace facile::model
