#include "facile/ports.h"

#include <algorithm>
#include <utility>

#include "uarch/config.h"

namespace facile::model {

namespace {

using uarch::PortMask;

/**
 * The pairwise port bound is a pure function of the mask histogram —
 * and workloads reuse a small set of histograms across millions of
 * distinct blocks. A small thread-local memo keyed on the histogram
 * skips the combination search on repeats (the per-block
 * contendingInsts extraction still runs). Direct-mapped, overwrite on
 * collision; histograms with more than kMemoMasks distinct masks (or
 * huge counts) bypass the memo.
 */
constexpr std::size_t kMemoMasks = 8;
constexpr std::size_t kMemoSlots = 512; // power of two

struct PortsMemoEntry
{
    PortMask masks[kMemoMasks];
    std::uint16_t counts[kMemoMasks];
    std::uint8_t n = 0; ///< 0 = empty slot
    double throughput;
    PortMask bottleneckPorts;
};

struct PortsMemo
{
    PortsMemoEntry slot[kMemoSlots] = {};
};

PortsMemo &
tlsMemo()
{
    thread_local PortsMemo memo;
    return memo;
}

PortsScratch &
tlsScratch()
{
    thread_local PortsScratch s;
    return s;
}

/** Collect the port masks of all port-consuming µops of the block. */
void
collectUopMasks(const bb::BasicBlock &blk,
                std::vector<std::pair<PortMask, int>> &uops)
{
    uops.clear();
    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        const auto &ai = blk.insts[i];
        if (ai.fusedWithPrev || ai.info->eliminated)
            continue;
        if (ai.rec) {
            // Interned: the non-zero masks are pre-filtered.
            for (PortMask m : ai.rec->portMasks)
                uops.emplace_back(m, static_cast<int>(i));
        } else {
            for (const auto &u : ai.info->portUops)
                if (u.ports)
                    uops.emplace_back(u.ports, static_cast<int>(i));
        }
    }
}

/** Fill contendingInsts for the winning port combination. */
void
extractContending(const std::vector<std::pair<PortMask, int>> &uops,
                  PortsResult &best)
{
    if (!best.bottleneckPorts)
        return;
    for (const auto &[mask, idx] : uops)
        if ((mask & ~best.bottleneckPorts) == 0)
            best.contendingInsts.push_back(idx);
    best.contendingInsts.erase(std::unique(best.contendingInsts.begin(),
                                           best.contendingInsts.end()),
                               best.contendingInsts.end());
}

/**
 * @p masks / @p maskCount: the distinct µop port masks (ascending) with
 * their multiplicities — counting over the histogram instead of every
 * µop makes the pc loop O(|combos| x |distinct|).
 */
PortsResult
boundForCombinations(const std::vector<std::pair<PortMask, int>> &uops,
                     const std::vector<PortMask> &masks,
                     const std::vector<int> &maskCount,
                     const std::vector<PortMask> &combinations,
                     bool collectContending = true)
{
    PortsResult best;
    for (PortMask pc : combinations) {
        int u = 0;
        for (std::size_t i = 0; i < masks.size(); ++i)
            if ((masks[i] & ~pc) == 0)
                u += maskCount[i];
        if (u == 0)
            continue;
        double tp = static_cast<double>(u) / uarch::portCount(pc);
        if (tp > best.throughput) {
            best.throughput = tp;
            best.bottleneckPorts = pc;
        }
    }
    if (collectContending)
        extractContending(uops, best);
    return best;
}

} // namespace

namespace {

/** Distinct masks (ascending, matching the historical sort) + counts. */
void
buildMaskHistogram(const std::vector<std::pair<PortMask, int>> &uops,
                   std::vector<PortMask> &masks, std::vector<int> &count)
{
    masks.clear();
    count.clear();
    for (const auto &[mask, idx] : uops) {
        // Sorted insertion into the (tiny) distinct-mask list.
        auto it = std::lower_bound(masks.begin(), masks.end(), mask);
        const std::size_t pos =
            static_cast<std::size_t>(it - masks.begin());
        if (it != masks.end() && *it == mask) {
            ++count[pos];
        } else {
            masks.insert(it, mask);
            count.insert(count.begin() + pos, 1);
        }
    }
}

} // namespace

PortsResult
ports(const bb::BasicBlock &blk)
{
    return ports(blk, tlsScratch(), true);
}

PortsResult
ports(const bb::BasicBlock &blk, PortsScratch &s, bool collectContending)
{
    collectUopMasks(blk, s.uops);
    buildMaskHistogram(s.uops, s.pcs, s.pcsCount);

    // Memo probe: the bound depends only on the histogram. Cross-
    // request memoization is an interning-family optimization, so
    // InternMode::Off blocks (the pre-interning baseline in
    // bench_coldpath) skip it and pay the full search like the
    // historical code did.
    const bool interned =
        !blk.insts.empty() && blk.insts.front().rec != nullptr;
    const std::size_t nDistinct = s.pcs.size();
    PortsMemoEntry *slot = nullptr;
    if (interned && nDistinct > 0 && nDistinct <= kMemoMasks) {
        bool fits = true;
        std::uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (std::size_t i = 0; i < nDistinct; ++i) {
            if (s.pcsCount[i] > 0xffff) {
                fits = false;
                break;
            }
            h = (h ^ s.pcs[i]) * 0x100000001b3ULL;
            h = (h ^ static_cast<std::uint64_t>(s.pcsCount[i])) *
                0x100000001b3ULL;
        }
        if (fits) {
            h ^= h >> 29;
            slot = &tlsMemo().slot[h & (kMemoSlots - 1)];
            if (slot->n == nDistinct) {
                bool match = true;
                for (std::size_t i = 0; i < nDistinct; ++i)
                    if (slot->masks[i] != s.pcs[i] ||
                        slot->counts[i] != s.pcsCount[i]) {
                        match = false;
                        break;
                    }
                if (match) {
                    PortsResult best;
                    best.throughput = slot->throughput;
                    best.bottleneckPorts = slot->bottleneckPorts;
                    if (collectContending)
                        extractContending(s.uops, best);
                    return best;
                }
            }
        }
    }

    // PC' = { pc | pc' : pc, pc' in PC } (includes singletons: pc | pc).
    s.pairs.clear();
    for (std::size_t a = 0; a < s.pcs.size(); ++a)
        for (std::size_t b = a; b < s.pcs.size(); ++b)
            s.pairs.push_back(static_cast<PortMask>(s.pcs[a] | s.pcs[b]));
    std::sort(s.pairs.begin(), s.pairs.end());
    s.pairs.erase(std::unique(s.pairs.begin(), s.pairs.end()),
                  s.pairs.end());

    PortsResult best = boundForCombinations(s.uops, s.pcs, s.pcsCount,
                                            s.pairs, collectContending);
    if (slot) {
        slot->n = static_cast<std::uint8_t>(nDistinct);
        for (std::size_t i = 0; i < nDistinct; ++i) {
            slot->masks[i] = s.pcs[i];
            slot->counts[i] = static_cast<std::uint16_t>(s.pcsCount[i]);
        }
        slot->throughput = best.throughput;
        slot->bottleneckPorts = best.bottleneckPorts;
    }
    return best;
}

PortsResult
portsExact(const bb::BasicBlock &blk)
{
    PortsScratch &s = tlsScratch();
    collectUopMasks(blk, s.uops);
    buildMaskHistogram(s.uops, s.pcs, s.pcsCount);

    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    const unsigned nSubsets = 1u << cfg.nPorts;
    std::vector<PortMask> all;
    all.reserve(nSubsets - 1);
    for (unsigned sub = 1; sub < nSubsets; ++sub)
        all.push_back(static_cast<PortMask>(sub));
    return boundForCombinations(s.uops, s.pcs, s.pcsCount, all);
}

} // namespace facile::model
