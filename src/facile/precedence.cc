#include "facile/precedence.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "isa/semantics.h"
#include "uarch/config.h"

namespace facile::model {

namespace {

/** Thread-local scratch backing the scratch-less public entry points. */
PrecedenceScratch &
tlsScratch()
{
    thread_local PrecedenceScratch s;
    return s;
}

/**
 * Detect a cycle of strictly positive total weight under the modified
 * weights w(e) = weight(e) - lambda * count(e), using Bellman-Ford in
 * the max-plus semiring. On success the node indices of one such cycle
 * are left in s.cycle; on failure s.cycle is empty.
 */
bool
positiveCycle(int n, const std::vector<RatioEdge> &edges, double lambda,
              PrecedenceScratch &s)
{
    s.cycle.clear();
    if (n == 0)
        return false;
    s.dist.assign(static_cast<std::size_t>(n), 0.0);
    s.pred.assign(static_cast<std::size_t>(n), -1);
    int updatedNode = -1;
    for (int round = 0; round < n; ++round) {
        updatedNode = -1;
        for (const auto &e : edges) {
            double w = e.weight - lambda * e.count;
            if (s.dist[e.from] + w > s.dist[e.to] + 1e-12) {
                s.dist[e.to] = s.dist[e.from] + w;
                s.pred[e.to] = e.from;
                updatedNode = e.to;
            }
        }
        if (updatedNode < 0)
            return false;
    }
    // A node updated in round n lies on or is reachable from a positive
    // cycle; walk back n steps to land inside the cycle, then collect it.
    int v = updatedNode;
    for (int i = 0; i < n; ++i)
        v = s.pred[v];
    int start = v;
    do {
        s.cycle.push_back(v);
        v = s.pred[v];
    } while (v != start && static_cast<int>(s.cycle.size()) <= n);
    std::reverse(s.cycle.begin(), s.cycle.end());
    return true;
}

/**
 * Binary-search cycle-ratio maximization on one (small) subgraph.
 * @p seed is a lower bound known from previously solved subgraphs: the
 * search starts there, and a subgraph without a cycle beating the seed
 * is rejected by the very first Bellman-Ford probe. @p seedFeasible
 * declares that the caller already probed a cycle beating the seed,
 * skipping the redundant feasibility pass.
 */
CycleRatioResult
maxCycleRatioDense(int n_nodes, const std::vector<RatioEdge> &edges,
                   double seed, bool seedFeasible, PrecedenceScratch &s)
{
    CycleRatioResult result;

    double lo = std::max(0.0, seed), hi = 0.0;
    for (const auto &e : edges)
        hi += std::max(0.0, e.weight);
    if (hi == 0.0)
        hi = 1.0;

    // Is there a cycle that beats the seed at all? With no seed, probe
    // with lambda slightly below zero so zero-weight cycles register as
    // positive.
    if (!seedFeasible &&
        !positiveCycle(n_nodes, edges, lo > 0.0 ? lo : -1e-6, s))
        return result;

    // Binary search for the largest lambda admitting a positive cycle.
    for (int it = 0; it < 64 && hi - lo > 1e-10 * (1.0 + hi); ++it) {
        double mid = 0.5 * (lo + hi);
        if (positiveCycle(n_nodes, edges, mid, s))
            lo = mid;
        else
            hi = mid;
    }
    result.ratio = 0.5 * (lo + hi);
    if (result.ratio < 1e-9)
        result.ratio = 0.0;

    // Extract a critical cycle just below the optimum.
    double probe = result.ratio - std::max(1e-7, result.ratio * 1e-6);
    positiveCycle(n_nodes, edges, probe, s);
    result.cycleNodes = s.cycle;
    return result;
}

/**
 * Kosaraju strongly-connected components; fills s.comp with a component
 * id per node (ids are arbitrary but equal within a component).
 */
void
sccIds(int n, const std::vector<RatioEdge> &edges, PrecedenceScratch &s)
{
    const int m = static_cast<int>(edges.size());

    // CSR adjacency for the forward and reverse graphs (stable counting
    // sort, so neighbor order matches edge order).
    s.fwdStart.assign(static_cast<std::size_t>(n) + 1, 0);
    s.revStart.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const auto &e : edges) {
        ++s.fwdStart[e.from + 1];
        ++s.revStart[e.to + 1];
    }
    std::partial_sum(s.fwdStart.begin(), s.fwdStart.end(),
                     s.fwdStart.begin());
    std::partial_sum(s.revStart.begin(), s.revStart.end(),
                     s.revStart.begin());
    s.fwdAdj.resize(static_cast<std::size_t>(m));
    s.revAdj.resize(static_cast<std::size_t>(m));
    s.howPos.assign(s.fwdStart.begin(), s.fwdStart.end() - 1);
    for (const auto &e : edges)
        s.fwdAdj[s.howPos[e.from]++] = e.to;
    s.howPos.assign(s.revStart.begin(), s.revStart.end() - 1);
    for (const auto &e : edges)
        s.revAdj[s.howPos[e.to]++] = e.from;

    // First pass: finish order on the forward graph (iterative DFS).
    s.order.clear();
    s.seen.assign(static_cast<std::size_t>(n), 0);
    s.stackNode.clear();
    s.stackIter.clear();
    for (int root = 0; root < n; ++root) {
        if (s.seen[root])
            continue;
        s.stackNode.push_back(root);
        s.stackIter.push_back(s.fwdStart[root]);
        s.seen[root] = 1;
        while (!s.stackNode.empty()) {
            int v = s.stackNode.back();
            int &i = s.stackIter.back();
            if (i < s.fwdStart[v + 1]) {
                int w = s.fwdAdj[i++];
                if (!s.seen[w]) {
                    s.seen[w] = 1;
                    s.stackNode.push_back(w);
                    s.stackIter.push_back(s.fwdStart[w]);
                }
            } else {
                s.order.push_back(v);
                s.stackNode.pop_back();
                s.stackIter.pop_back();
            }
        }
    }

    // Second pass: components on the reverse graph.
    s.comp.assign(static_cast<std::size_t>(n), -1);
    int nComp = 0;
    for (auto it = s.order.rbegin(); it != s.order.rend(); ++it) {
        if (s.comp[*it] >= 0)
            continue;
        s.stackNode.clear();
        s.stackNode.push_back(*it);
        s.comp[*it] = nComp;
        while (!s.stackNode.empty()) {
            int v = s.stackNode.back();
            s.stackNode.pop_back();
            for (int i = s.revStart[v]; i < s.revStart[v + 1]; ++i) {
                int w = s.revAdj[i];
                if (s.comp[w] < 0) {
                    s.comp[w] = nComp;
                    s.stackNode.push_back(w);
                }
            }
        }
        ++nComp;
    }
}

/**
 * Howard's policy iteration for the maximum cycle ratio on one strongly
 * connected subgraph (every node must lie on a cycle). Maintains a
 * policy (one out-edge per node); each round evaluates the policy's
 * cycles, takes the best ratio r, solves the value function d under r,
 * and switches any edge (u,v) with d[u] < w(u,v) - r*t(u,v) + d[v].
 * Terminates when no edge improves; guarded by an iteration cap with a
 * binary-search fallback (never observed to trigger on dependence
 * graphs, but cheap insurance).
 */
CycleRatioResult
howardDense(int n, const std::vector<RatioEdge> &edges, double seed,
            bool seedFeasible, PrecedenceScratch &s)
{
    CycleRatioResult result;

    // CSR adjacency of edge indices grouped by source node.
    s.howStart.assign(static_cast<std::size_t>(n) + 1, 0);
    for (const auto &e : edges)
        ++s.howStart[e.from + 1];
    std::partial_sum(s.howStart.begin(), s.howStart.end(),
                     s.howStart.begin());
    for (int v = 0; v < n; ++v)
        if (s.howStart[v + 1] == s.howStart[v])
            return result; // not strongly connected: caller filtered SCCs
    s.howEdge.resize(edges.size());
    s.howPos.assign(s.howStart.begin(), s.howStart.end() - 1);
    for (std::size_t e = 0; e < edges.size(); ++e)
        s.howEdge[s.howPos[edges[e].from]++] = static_cast<int>(e);

    s.howPolicy.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
        s.howPolicy[v] = s.howEdge[s.howStart[v]];

    s.howD.assign(static_cast<std::size_t>(n), 0.0);
    s.howMark.resize(static_cast<std::size_t>(n));
    s.howAnchor.resize(static_cast<std::size_t>(n));
    s.howSolved.resize(static_cast<std::size_t>(n));

    const int maxRounds = 4 * n + 16;
    for (int round = 0; round < maxRounds; ++round) {
        // --- evaluate: find the cycles of the policy graph ----------------
        double r = -1.0;
        s.howBestCycle.clear();
        std::fill(s.howMark.begin(), s.howMark.end(), -1);
        std::fill(s.howAnchor.begin(), s.howAnchor.end(), -1);
        for (int start = 0; start < n; ++start) {
            if (s.howMark[start] >= 0)
                continue;
            // Walk the policy path until we hit something visited.
            int v = start;
            while (s.howMark[v] < 0) {
                s.howMark[v] = start;
                v = edges[s.howPolicy[v]].to;
            }
            if (s.howMark[v] == start && s.howAnchor[v] < 0) {
                // Found a new cycle; extract it.
                s.howCycle.clear();
                double w = 0.0;
                int t = 0;
                int u = v;
                do {
                    s.howCycle.push_back(u);
                    w += edges[s.howPolicy[u]].weight;
                    t += edges[s.howPolicy[u]].count;
                    u = edges[s.howPolicy[u]].to;
                } while (u != v);
                double ratio = t > 0 ? w / t : 0.0;
                for (int c : s.howCycle)
                    s.howAnchor[c] = v;
                if (ratio > r) {
                    r = ratio;
                    s.howBestCycle = s.howCycle;
                }
            }
        }
        if (r < 0)
            break;

        // --- value determination under the global ratio r -----------------
        // d is consistent along policy edges: d[u] = w - r*t + d[succ].
        // Solve by walking each node's policy path to its cycle; anchor
        // nodes get d = 0 (per-cycle drift is absorbed by improvement).
        std::fill(s.howSolved.begin(), s.howSolved.end(), 0);
        for (int v = 0; v < n; ++v) {
            if (s.howAnchor[v] == v) {
                s.howD[v] = 0.0;
                s.howSolved[v] = 1;
            }
        }
        for (int start = 0; start < n; ++start) {
            if (s.howSolved[start])
                continue;
            s.howPath.clear();
            int v = start;
            while (!s.howSolved[v]) {
                s.howPath.push_back(v);
                v = edges[s.howPolicy[v]].to;
            }
            for (auto it = s.howPath.rbegin(); it != s.howPath.rend();
                 ++it) {
                const RatioEdge &e = edges[s.howPolicy[*it]];
                s.howD[*it] = e.weight - r * e.count + s.howD[e.to];
                s.howSolved[*it] = 1;
            }
        }

        // --- improvement --------------------------------------------------
        bool improved = false;
        for (int v = 0; v < n; ++v) {
            for (int i = s.howStart[v]; i < s.howStart[v + 1]; ++i) {
                const RatioEdge &e = edges[s.howEdge[i]];
                double cand = e.weight - r * e.count + s.howD[e.to];
                if (cand > s.howD[v] + 1e-9) {
                    s.howD[v] = cand;
                    s.howPolicy[v] = s.howEdge[i];
                    improved = true;
                }
            }
        }
        if (!improved) {
            result.ratio = std::max(0.0, r);
            result.cycleNodes = s.howBestCycle;
            return result;
        }
    }
    // Fallback: the guard fired; use the exhaustive engine.
    return maxCycleRatioDense(n, edges, seed, seedFeasible, s);
}

/**
 * Solve per SCC with the given dense engine; take the maximum.
 *
 * Components are solved in discovery order; the best ratio found so far
 * seeds the next component's search, and a single Bellman-Ford probe
 * rejects components that cannot beat it — the common case once the
 * critical component has been seen.
 */
template <typename Engine>
CycleRatioResult
perScc(int n_nodes, const std::vector<RatioEdge> &edges, Engine engine,
       PrecedenceScratch &s)
{
    CycleRatioResult result;
    if (n_nodes == 0 || edges.empty())
        return result;

    // Cycles live entirely within strongly connected components; solve
    // each component separately (they are typically tiny) and take the
    // maximum. Self-loops are components of size one with an edge.
    sccIds(n_nodes, edges, s);
    const int nComp =
        *std::max_element(s.comp.begin(), s.comp.end()) + 1;

    // Group intra-component edge indices by component (counting sort).
    s.compStart.assign(static_cast<std::size_t>(nComp) + 1, 0);
    for (const auto &e : edges)
        if (s.comp[e.from] == s.comp[e.to])
            ++s.compStart[s.comp[e.from] + 1];
    std::partial_sum(s.compStart.begin(), s.compStart.end(),
                     s.compStart.begin());
    s.compEdgeIdx.resize(static_cast<std::size_t>(s.compStart.back()));
    s.howPos.assign(s.compStart.begin(), s.compStart.end() - 1);
    for (std::size_t e = 0; e < edges.size(); ++e)
        if (s.comp[edges[e].from] == s.comp[edges[e].to])
            s.compEdgeIdx[s.howPos[s.comp[edges[e].from]]++] =
                static_cast<int>(e);

    s.localId.assign(static_cast<std::size_t>(n_nodes), -1);
    for (int c = 0; c < nComp; ++c) {
        if (s.compStart[c] == s.compStart[c + 1])
            continue;
        // Renumber nodes of this component densely.
        s.globalId.clear();
        s.localEdges.clear();
        for (int i = s.compStart[c]; i < s.compStart[c + 1]; ++i) {
            const RatioEdge &e = edges[s.compEdgeIdx[i]];
            for (int v : {e.from, e.to}) {
                if (s.localId[v] < 0) {
                    s.localId[v] = static_cast<int>(s.globalId.size());
                    s.globalId.push_back(v);
                }
            }
            s.localEdges.push_back({s.localId[e.from], s.localId[e.to],
                                    e.weight, e.count});
        }
        const int localN = static_cast<int>(s.globalId.size());

        // Early exit: can this component beat the best ratio so far?
        // (With no positive ratio yet the probe is left to the engine,
        // which handles the zero-weight-cycle case itself.)
        const bool probed = result.ratio > 0.0;
        const bool worthSolving =
            !probed || positiveCycle(localN, s.localEdges, result.ratio, s);
        if (worthSolving) {
            CycleRatioResult sub =
                engine(localN, s.localEdges, result.ratio, probed, s);
            if (sub.ratio > result.ratio ||
                (result.cycleNodes.empty() && !sub.cycleNodes.empty())) {
                result.ratio = std::max(result.ratio, sub.ratio);
                result.cycleNodes.clear();
                for (int v : sub.cycleNodes)
                    result.cycleNodes.push_back(s.globalId[v]);
            }
        }

        for (int v : s.globalId)
            s.localId[v] = -1;
    }
    return result;
}

CycleRatioResult
maxCycleRatioImpl(int n_nodes, const std::vector<RatioEdge> &edges,
                  PrecedenceScratch &s)
{
    // Howard's algorithm is the paper's engine of choice [16, 18] and is
    // the fastest in practice; it carries its own exhaustive fallback.
    return perScc(n_nodes, edges, howardDense, s);
}

} // namespace

CycleRatioResult
maxCycleRatioHoward(int n_nodes, const std::vector<RatioEdge> &edges)
{
    return perScc(n_nodes, edges, howardDense, tlsScratch());
}

CycleRatioResult
maxCycleRatioLawler(int n_nodes, const std::vector<RatioEdge> &edges)
{
    return perScc(n_nodes, edges, maxCycleRatioDense, tlsScratch());
}

CycleRatioResult
maxCycleRatio(int n_nodes, const std::vector<RatioEdge> &edges)
{
    return maxCycleRatioImpl(n_nodes, edges, tlsScratch());
}

PrecedenceResult
precedence(const bb::BasicBlock &blk)
{
    return precedence(blk, tlsScratch());
}

PrecedenceResult
precedence(const bb::BasicBlock &blk, PrecedenceScratch &s)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);

    // One node per (instruction, written value): nodeInst/nodeValue.
    s.nodeInst.clear();
    s.nodeValue.clear();
    s.edges.clear();
    if (s.rw.size() < blk.insts.size())
        s.rw.resize(blk.insts.size());

    std::array<int, isa::kNumValues> lastWriterEnd;
    lastWriterEnd.fill(-1);

    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        isa::instRw(blk.insts[i].dec.inst, s.rw[i]);
        for (int v : s.rw[i].writes) {
            lastWriterEnd[v] = static_cast<int>(s.nodeInst.size());
            s.nodeInst.push_back(static_cast<int>(i));
            s.nodeValue.push_back(v);
        }
    }

    std::array<int, isa::kNumValues> lastWriter;
    lastWriter.fill(-1);

    int nodeCursor = 0;
    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        const auto &ai = blk.insts[i];
        const auto &sets = s.rw[i];
        const int firstWriteNode = nodeCursor;
        const int nWrites = static_cast<int>(sets.writes.size());

        if (!sets.depBreaking && nWrites > 0) {
            // Determine which reads are address registers of a load.
            const isa::MemOp *m = ai.dec.inst.memOperand();
            const bool loads = ai.dec.inst.isLoad();
            auto isAddrReg = [&](int v) {
                if (!m || !loads)
                    return false;
                return (m->base.valid() && m->base.family() == v) ||
                       (m->index.valid() && m->index.family() == v);
            };
            const bool stackOp =
                ai.dec.inst.mnem == isa::Mnemonic::PUSH ||
                ai.dec.inst.mnem == isa::Mnemonic::POP ||
                ai.dec.inst.mnem == isa::Mnemonic::CALL ||
                ai.dec.inst.mnem == isa::Mnemonic::RET;

            for (int r : sets.reads) {
                int producer = lastWriter[r];
                int iterCount = 0;
                if (producer < 0) {
                    producer = lastWriterEnd[r];
                    iterCount = 1;
                }
                if (producer < 0)
                    continue; // loop-invariant input
                double lat = static_cast<double>(ai.info.latency);
                if (isAddrReg(r))
                    lat += cfg.loadLatency;
                for (int w = 0; w < nWrites; ++w) {
                    double edgeLat = lat;
                    // The stack engine updates rsp outside the execution
                    // core; rsp results of stack ops are available
                    // immediately.
                    if (stackOp && s.nodeValue[firstWriteNode + w] == 4)
                        edgeLat = 0.0;
                    s.edges.push_back({producer, firstWriteNode + w,
                                       edgeLat, iterCount});
                }
            }
        }

        for (int w = 0; w < nWrites; ++w)
            lastWriter[s.nodeValue[firstWriteNode + w]] =
                firstWriteNode + w;
        nodeCursor += nWrites;
    }

    CycleRatioResult crr = maxCycleRatioImpl(
        static_cast<int>(s.nodeInst.size()), s.edges, s);

    PrecedenceResult result;
    result.throughput = crr.ratio;
    for (int n : crr.cycleNodes) {
        int inst = s.nodeInst[n];
        if (result.criticalChain.empty() ||
            result.criticalChain.back() != inst)
            result.criticalChain.push_back(inst);
    }
    return result;
}

} // namespace facile::model
