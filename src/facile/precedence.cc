#include "facile/precedence.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "isa/semantics.h"
#include "uarch/config.h"

namespace facile::model {

namespace {

/** Thread-local scratch backing the scratch-less public entry points. */
PrecedenceScratch &
tlsScratch()
{
    thread_local PrecedenceScratch s;
    return s;
}

/*
 * The engines below operate on EdgeArrays (struct-of-arrays) and follow
 * a common contract: they return the maximum cycle ratio and leave the
 * node indices of one critical cycle in s.engineCycle (empty if none).
 * All staging lives in the scratch, so a warm scratch makes every call
 * allocation-free.
 */

/**
 * Detect a cycle of strictly positive total weight under the modified
 * weights w(e) = weight(e) - lambda * count(e), using Bellman-Ford in
 * the max-plus semiring. On success the node indices of one such cycle
 * are left in s.cycle; on failure s.cycle is empty.
 */
bool
positiveCycle(int n, const EdgeArrays &edges, double lambda,
              PrecedenceScratch &s)
{
    s.cycle.clear();
    if (n == 0)
        return false;
    const std::size_t m = edges.size();
    const int *from = edges.from.data();
    const int *to = edges.to.data();

    // Modified weights w(e) - lambda * count(e), precomputed once; the
    // relaxation rounds then stream one contiguous array. Same
    // arithmetic per edge as computing it in the loop, so results are
    // bit-identical.
    s.probeW.resize(m);
    for (std::size_t j = 0; j < m; ++j)
        s.probeW[j] = edges.weight[j] - lambda * edges.count[j];
    const double *w = s.probeW.data();

    s.dist.assign(static_cast<std::size_t>(n), 0.0);
    s.pred.assign(static_cast<std::size_t>(n), -1);
    int updatedNode = -1;
    for (int round = 0; round < n; ++round) {
        updatedNode = -1;
        for (std::size_t j = 0; j < m; ++j) {
            if (s.dist[from[j]] + w[j] > s.dist[to[j]] + 1e-12) {
                s.dist[to[j]] = s.dist[from[j]] + w[j];
                s.pred[to[j]] = from[j];
                updatedNode = to[j];
            }
        }
        if (updatedNode < 0)
            return false;
    }
    // A node updated in round n lies on or is reachable from a positive
    // cycle; walk back n steps to land inside the cycle, then collect it.
    int v = updatedNode;
    for (int i = 0; i < n; ++i)
        v = s.pred[v];
    int start = v;
    do {
        s.cycle.push_back(v);
        v = s.pred[v];
    } while (v != start && static_cast<int>(s.cycle.size()) <= n);
    std::reverse(s.cycle.begin(), s.cycle.end());
    return true;
}

/**
 * Binary-search cycle-ratio maximization on one (small) subgraph.
 * @p seed is a lower bound known from previously solved subgraphs: the
 * search starts there, and a subgraph without a cycle beating the seed
 * is rejected by the very first Bellman-Ford probe. @p seedFeasible
 * declares that the caller already probed a cycle beating the seed,
 * skipping the redundant feasibility pass.
 */
double
maxCycleRatioDense(int n_nodes, const EdgeArrays &edges, double seed,
                   bool seedFeasible, PrecedenceScratch &s)
{
    s.engineCycle.clear();

    double lo = std::max(0.0, seed), hi = 0.0;
    for (double w : edges.weight)
        hi += std::max(0.0, w);
    if (hi == 0.0)
        hi = 1.0;

    // Is there a cycle that beats the seed at all? With no seed, probe
    // with lambda slightly below zero so zero-weight cycles register as
    // positive.
    if (!seedFeasible &&
        !positiveCycle(n_nodes, edges, lo > 0.0 ? lo : -1e-6, s))
        return 0.0;

    // Binary search for the largest lambda admitting a positive cycle.
    for (int it = 0; it < 64 && hi - lo > 1e-10 * (1.0 + hi); ++it) {
        double mid = 0.5 * (lo + hi);
        if (positiveCycle(n_nodes, edges, mid, s))
            lo = mid;
        else
            hi = mid;
    }
    double ratio = 0.5 * (lo + hi);
    if (ratio < 1e-9)
        ratio = 0.0;

    // Extract a critical cycle just below the optimum.
    double probe = ratio - std::max(1e-7, ratio * 1e-6);
    positiveCycle(n_nodes, edges, probe, s);
    s.engineCycle.assign(s.cycle.begin(), s.cycle.end());
    return ratio;
}

/**
 * Strongly-connected components in one pass (iterative Tarjan); fills
 * s.comp with a component id per node (ids are arbitrary but equal
 * within a component) and returns the component count. Needs only the
 * forward CSR adjacency — half the bookkeeping of the previous
 * Kosaraju two-pass implementation, and sccIds is a third of the
 * precedence cost on the cold path.
 */
int
sccIds(int n, const EdgeArrays &edges, PrecedenceScratch &s)
{
    const int m = static_cast<int>(edges.size());
    const int *eFrom = edges.from.data();
    const int *eTo = edges.to.data();

    // Forward CSR adjacency (stable counting sort, so neighbor order
    // matches edge order).
    s.fwdStart.assign(static_cast<std::size_t>(n) + 1, 0);
    for (int j = 0; j < m; ++j)
        ++s.fwdStart[eFrom[j] + 1];
    std::partial_sum(s.fwdStart.begin(), s.fwdStart.end(),
                     s.fwdStart.begin());
    s.fwdAdj.resize(static_cast<std::size_t>(m));
    s.howPos.assign(s.fwdStart.begin(), s.fwdStart.end() - 1);
    for (int j = 0; j < m; ++j)
        s.fwdAdj[s.howPos[eFrom[j]]++] = eTo[j];

    s.comp.assign(static_cast<std::size_t>(n), -1);
    s.tjIndex.assign(static_cast<std::size_t>(n), -1);
    s.tjLow.resize(static_cast<std::size_t>(n));
    s.order.clear(); // Tarjan node stack
    s.seen.assign(static_cast<std::size_t>(n), 0); // on-stack flags
    s.stackNode.clear();
    s.stackIter.clear();

    int idx = 0;
    int nComp = 0;
    for (int root = 0; root < n; ++root) {
        if (s.tjIndex[root] >= 0)
            continue;
        s.tjIndex[root] = s.tjLow[root] = idx++;
        s.order.push_back(root);
        s.seen[root] = 1;
        s.stackNode.push_back(root);
        s.stackIter.push_back(s.fwdStart[root]);
        while (!s.stackNode.empty()) {
            int v = s.stackNode.back();
            int &i = s.stackIter.back();
            if (i < s.fwdStart[v + 1]) {
                int w = s.fwdAdj[i++];
                if (s.tjIndex[w] < 0) {
                    s.tjIndex[w] = s.tjLow[w] = idx++;
                    s.order.push_back(w);
                    s.seen[w] = 1;
                    s.stackNode.push_back(w);
                    s.stackIter.push_back(s.fwdStart[w]);
                } else if (s.seen[w] && s.tjIndex[w] < s.tjLow[v]) {
                    s.tjLow[v] = s.tjIndex[w];
                }
            } else {
                if (s.tjLow[v] == s.tjIndex[v]) {
                    int u;
                    do {
                        u = s.order.back();
                        s.order.pop_back();
                        s.seen[u] = 0;
                        s.comp[u] = nComp;
                    } while (u != v);
                    ++nComp;
                }
                s.stackNode.pop_back();
                s.stackIter.pop_back();
                if (!s.stackNode.empty()) {
                    int parent = s.stackNode.back();
                    if (s.tjLow[v] < s.tjLow[parent])
                        s.tjLow[parent] = s.tjLow[v];
                }
            }
        }
    }
    return nComp;
}

/**
 * Howard's policy iteration for the maximum cycle ratio on one strongly
 * connected subgraph (every node must lie on a cycle). Maintains a
 * policy (one out-edge per node); each round evaluates the policy's
 * cycles, takes the best ratio r, solves the value function d under r,
 * and switches any edge (u,v) with d[u] < w(u,v) - r*t(u,v) + d[v].
 * Terminates when no edge improves; guarded by an iteration cap with a
 * binary-search fallback (never observed to trigger on dependence
 * graphs, but cheap insurance).
 */
double
howardDense(int n, const EdgeArrays &edges, double seed, bool seedFeasible,
            PrecedenceScratch &s)
{
    s.engineCycle.clear();
    const int *eFrom = edges.from.data();
    const int *eTo = edges.to.data();
    const double *eW = edges.weight.data();
    const int *eC = edges.count.data();

    // CSR adjacency of edge indices grouped by source node.
    s.howStart.assign(static_cast<std::size_t>(n) + 1, 0);
    for (std::size_t j = 0; j < edges.size(); ++j)
        ++s.howStart[eFrom[j] + 1];
    std::partial_sum(s.howStart.begin(), s.howStart.end(),
                     s.howStart.begin());
    for (int v = 0; v < n; ++v)
        if (s.howStart[v + 1] == s.howStart[v])
            return 0.0; // not strongly connected: caller filtered SCCs
    s.howEdge.resize(edges.size());
    s.howPos.assign(s.howStart.begin(), s.howStart.end() - 1);
    for (std::size_t e = 0; e < edges.size(); ++e)
        s.howEdge[s.howPos[eFrom[e]]++] = static_cast<int>(e);

    s.howPolicy.resize(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v)
        s.howPolicy[v] = s.howEdge[s.howStart[v]];

    s.howD.assign(static_cast<std::size_t>(n), 0.0);
    s.howMark.resize(static_cast<std::size_t>(n));
    s.howAnchor.resize(static_cast<std::size_t>(n));
    s.howSolved.resize(static_cast<std::size_t>(n));

    const int maxRounds = 4 * n + 16;
    for (int round = 0; round < maxRounds; ++round) {
        // --- evaluate: find the cycles of the policy graph ----------------
        double r = -1.0;
        s.howBestCycle.clear();
        std::fill(s.howMark.begin(), s.howMark.end(), -1);
        std::fill(s.howAnchor.begin(), s.howAnchor.end(), -1);
        for (int start = 0; start < n; ++start) {
            if (s.howMark[start] >= 0)
                continue;
            // Walk the policy path until we hit something visited.
            int v = start;
            while (s.howMark[v] < 0) {
                s.howMark[v] = start;
                v = eTo[s.howPolicy[v]];
            }
            if (s.howMark[v] == start && s.howAnchor[v] < 0) {
                // Found a new cycle; extract it.
                s.howCycle.clear();
                double w = 0.0;
                int t = 0;
                int u = v;
                do {
                    s.howCycle.push_back(u);
                    w += eW[s.howPolicy[u]];
                    t += eC[s.howPolicy[u]];
                    u = eTo[s.howPolicy[u]];
                } while (u != v);
                double ratio = t > 0 ? w / t : 0.0;
                for (int c : s.howCycle)
                    s.howAnchor[c] = v;
                if (ratio > r) {
                    r = ratio;
                    s.howBestCycle = s.howCycle;
                }
            }
        }
        if (r < 0)
            break;

        // --- value determination under the global ratio r -----------------
        // d is consistent along policy edges: d[u] = w - r*t + d[succ].
        // Solve by walking each node's policy path to its cycle; anchor
        // nodes get d = 0 (per-cycle drift is absorbed by improvement).
        std::fill(s.howSolved.begin(), s.howSolved.end(), 0);
        for (int v = 0; v < n; ++v) {
            if (s.howAnchor[v] == v) {
                s.howD[v] = 0.0;
                s.howSolved[v] = 1;
            }
        }
        for (int start = 0; start < n; ++start) {
            if (s.howSolved[start])
                continue;
            s.howPath.clear();
            int v = start;
            while (!s.howSolved[v]) {
                s.howPath.push_back(v);
                v = eTo[s.howPolicy[v]];
            }
            for (auto it = s.howPath.rbegin(); it != s.howPath.rend();
                 ++it) {
                const int e = s.howPolicy[*it];
                s.howD[*it] = eW[e] - r * eC[e] + s.howD[eTo[e]];
                s.howSolved[*it] = 1;
            }
        }

        // --- improvement --------------------------------------------------
        bool improved = false;
        for (int v = 0; v < n; ++v) {
            for (int i = s.howStart[v]; i < s.howStart[v + 1]; ++i) {
                const int e = s.howEdge[i];
                double cand = eW[e] - r * eC[e] + s.howD[eTo[e]];
                if (cand > s.howD[v] + 1e-9) {
                    s.howD[v] = cand;
                    s.howPolicy[v] = s.howEdge[i];
                    improved = true;
                }
            }
        }
        if (!improved) {
            s.engineCycle.assign(s.howBestCycle.begin(),
                                 s.howBestCycle.end());
            return std::max(0.0, r);
        }
    }
    // Fallback: the guard fired; use the exhaustive engine.
    return maxCycleRatioDense(n, edges, seed, seedFeasible, s);
}

/**
 * Solve per SCC with the given dense engine; take the maximum. Returns
 * the best ratio and leaves the critical cycle's global node ids in
 * s.bestCycle.
 *
 * Components are solved in discovery order; the best ratio found so far
 * seeds the next component's search, and a single Bellman-Ford probe
 * rejects components that cannot beat it — the common case once the
 * critical component has been seen.
 */
template <typename Engine>
double
perScc(int n_nodes, const EdgeArrays &edges, Engine engine,
       PrecedenceScratch &s)
{
    s.bestCycle.clear();
    double bestRatio = 0.0;
    if (n_nodes == 0 || edges.empty())
        return bestRatio;

    // Cycles live entirely within strongly connected components; solve
    // each component separately (they are typically tiny) and take the
    // maximum. Self-loops are components of size one with an edge.
    const int nComp = sccIds(n_nodes, edges, s);

    const int *eFrom = edges.from.data();
    const int *eTo = edges.to.data();

    // Group intra-component edge indices by component (counting sort).
    s.compStart.assign(static_cast<std::size_t>(nComp) + 1, 0);
    for (std::size_t j = 0; j < edges.size(); ++j)
        if (s.comp[eFrom[j]] == s.comp[eTo[j]])
            ++s.compStart[s.comp[eFrom[j]] + 1];
    std::partial_sum(s.compStart.begin(), s.compStart.end(),
                     s.compStart.begin());
    s.compEdgeIdx.resize(static_cast<std::size_t>(s.compStart.back()));
    s.howPos.assign(s.compStart.begin(), s.compStart.end() - 1);
    for (std::size_t e = 0; e < edges.size(); ++e)
        if (s.comp[eFrom[e]] == s.comp[eTo[e]])
            s.compEdgeIdx[s.howPos[s.comp[eFrom[e]]]++] =
                static_cast<int>(e);

    s.localId.assign(static_cast<std::size_t>(n_nodes), -1);
    for (int c = 0; c < nComp; ++c) {
        if (s.compStart[c] == s.compStart[c + 1])
            continue;
        // Renumber nodes of this component densely.
        s.globalId.clear();
        s.localEdges.clear();
        for (int i = s.compStart[c]; i < s.compStart[c + 1]; ++i) {
            const int e = s.compEdgeIdx[i];
            for (int v : {eFrom[e], eTo[e]}) {
                if (s.localId[v] < 0) {
                    s.localId[v] = static_cast<int>(s.globalId.size());
                    s.globalId.push_back(v);
                }
            }
            s.localEdges.push(s.localId[eFrom[e]], s.localId[eTo[e]],
                              edges.weight[e], edges.count[e]);
        }
        const int localN = static_cast<int>(s.globalId.size());
        const bool probed = bestRatio > 0.0;

        if (localN == 1) {
            // Self-loop fast path: ~3/4 of solvable components are a
            // single node whose cycles are its individual self-edges.
            // Replicates the Bellman-Ford probe and howardDense
            // specialized to n == 1 (same rounds, same thresholds, so
            // the resulting doubles are identical), skipping the CSR
            // and bookkeeping.
            const double *w = s.localEdges.weight.data();
            const int *c = s.localEdges.count.data();
            const std::size_t m = s.localEdges.size();
            bool worth = !probed;
            if (probed) {
                for (std::size_t j = 0; j < m; ++j)
                    if (w[j] - bestRatio * c[j] > 1e-12) {
                        worth = true;
                        break;
                    }
            }
            if (worth) {
                int policy = 0;
                double r = 0.0;
                bool solved = false;
                for (int round = 0; round < 20; ++round) {
                    r = c[policy] > 0 ? w[policy] / c[policy] : 0.0;
                    // Improvement exactly as howardDense at n == 1:
                    // cand = w - r*c + d (the self-edge ends at the
                    // node itself, so d appears on both sides and the
                    // LAST edge with positive reduced cost wins).
                    double d = 0.0;
                    bool improved = false;
                    for (std::size_t j = 0; j < m; ++j) {
                        double cand = w[j] - r * c[j] + d;
                        if (cand > d + 1e-9) {
                            d = cand;
                            policy = static_cast<int>(j);
                            improved = true;
                        }
                    }
                    if (!improved) {
                        solved = true;
                        break;
                    }
                }
                double sub;
                if (solved) {
                    sub = std::max(0.0, r);
                    s.engineCycle.assign(1, 0);
                } else {
                    sub = maxCycleRatioDense(1, s.localEdges, bestRatio,
                                             probed, s);
                }
                if (sub > bestRatio ||
                    (s.bestCycle.empty() && !s.engineCycle.empty())) {
                    bestRatio = std::max(bestRatio, sub);
                    s.bestCycle.assign(1, s.globalId[0]);
                }
            }
            s.localId[s.globalId[0]] = -1;
            continue;
        }

        // Early exit: can this component beat the best ratio so far?
        // (With no positive ratio yet the probe is left to the engine,
        // which handles the zero-weight-cycle case itself.)
        const bool worthSolving =
            !probed || positiveCycle(localN, s.localEdges, bestRatio, s);
        if (worthSolving) {
            double sub = engine(localN, s.localEdges, bestRatio, probed, s);
            if (sub > bestRatio ||
                (s.bestCycle.empty() && !s.engineCycle.empty())) {
                bestRatio = std::max(bestRatio, sub);
                s.bestCycle.clear();
                for (int v : s.engineCycle)
                    s.bestCycle.push_back(s.globalId[v]);
            }
        }

        for (int v : s.globalId)
            s.localId[v] = -1;
    }
    return bestRatio;
}

double
maxCycleRatioImpl(int n_nodes, const EdgeArrays &edges,
                  PrecedenceScratch &s)
{
    // Howard's algorithm is the paper's engine of choice [16, 18] and is
    // the fastest in practice; it carries its own exhaustive fallback.
    return perScc(n_nodes, edges, howardDense, s);
}

template <typename Engine>
CycleRatioResult
solveAos(int n_nodes, const std::vector<RatioEdge> &edges, Engine engine)
{
    PrecedenceScratch &s = tlsScratch();
    s.inputEdges.assignFrom(edges);
    CycleRatioResult result;
    result.ratio = perScc(n_nodes, s.inputEdges, engine, s);
    result.cycleNodes.assign(s.bestCycle.begin(), s.bestCycle.end());
    return result;
}

} // namespace

CycleRatioResult
maxCycleRatioHoward(int n_nodes, const std::vector<RatioEdge> &edges)
{
    return solveAos(n_nodes, edges,
                    [](int n, const EdgeArrays &e, double seed,
                       bool feasible, PrecedenceScratch &s) {
                        return howardDense(n, e, seed, feasible, s);
                    });
}

CycleRatioResult
maxCycleRatioLawler(int n_nodes, const std::vector<RatioEdge> &edges)
{
    return solveAos(n_nodes, edges,
                    [](int n, const EdgeArrays &e, double seed,
                       bool feasible, PrecedenceScratch &s) {
                        return maxCycleRatioDense(n, e, seed, feasible, s);
                    });
}

CycleRatioResult
maxCycleRatio(int n_nodes, const std::vector<RatioEdge> &edges)
{
    PrecedenceScratch &s = tlsScratch();
    s.inputEdges.assignFrom(edges);
    CycleRatioResult result;
    result.ratio = maxCycleRatioImpl(n_nodes, s.inputEdges, s);
    result.cycleNodes.assign(s.bestCycle.begin(), s.bestCycle.end());
    return result;
}

namespace {

/**
 * Facts about the dependence graph collected while building it, enough
 * to decide whether the max-cycle-ratio engines can be skipped.
 */
struct DepGraphInfo
{
    int nNodes = 0;

    /**
     * No loop-carried edge crosses instructions (and no stack-op
     * instruction carries more than one self-dependence): every cycle
     * is confined to one instruction's write nodes and maxSelfRatio is
     * the exact bound. See precedenceBound() in the header.
     */
    bool selfCarriedOnly = true;

    /** Max weight/count over node-level self-loop edges (count is 1). */
    double maxSelfRatio = 0.0;
};

/**
 * Build the dependence graph of @p blk into s.edges / s.nodeInst /
 * s.nodeValue (shared by precedence() and precedenceBound()).
 */
DepGraphInfo
buildDepGraph(const bb::BasicBlock &blk, PrecedenceScratch &s)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    DepGraphInfo g;

    // One node per (instruction, written value): nodeInst/nodeValue.
    s.nodeInst.clear();
    s.nodeValue.clear();
    s.edges.clear();
    s.edges.reserve(blk.insts.size() * 4);
    s.rwPtr.clear();
    if (s.rw.size() < blk.insts.size())
        s.rw.resize(blk.insts.size());

    std::array<int, isa::kNumValues> lastWriterEnd;
    lastWriterEnd.fill(-1);

    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        const analysis::InstRecord *rec = blk.insts[i].rec;
        if (rec && rec->nWritesInl != analysis::InstRecord::kSpilled) {
            // Interned fast path: write values inline in the record.
            s.rwPtr.push_back(&rec->rw);
            for (std::uint8_t k = 0; k < rec->nWritesInl; ++k) {
                const int v = rec->writesInl[k];
                lastWriterEnd[v] = static_cast<int>(s.nodeInst.size());
                s.nodeInst.push_back(static_cast<int>(i));
                s.nodeValue.push_back(v);
            }
            continue;
        }
        // Interned blocks carry precomputed read/write sets; compute
        // them only for hand-built blocks.
        const isa::RwSets *rw = blk.insts[i].rw;
        if (!rw) {
            isa::instRw(blk.insts[i].dec->inst, s.rw[i]);
            rw = &s.rw[i];
        }
        s.rwPtr.push_back(rw);
        for (int v : rw->writes) {
            lastWriterEnd[v] = static_cast<int>(s.nodeInst.size());
            s.nodeInst.push_back(static_cast<int>(i));
            s.nodeValue.push_back(v);
        }
    }

    std::array<int, isa::kNumValues> lastWriter;
    lastWriter.fill(-1);

    int nodeCursor = 0;
    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        const auto &ai = blk.insts[i];
        const analysis::InstRecord *irec = ai.rec;

        if (irec && irec->nWritesInl != analysis::InstRecord::kSpilled &&
            irec->nDepInl != analysis::InstRecord::kSpilled) {
            // Interned fast path: everything the edge builder needs is
            // inline in the record (values identical to the vector
            // path by construction).
            const int firstWriteNode = nodeCursor;
            const int nWrites = irec->nWritesInl;
            if (!irec->depBreaking && nWrites > 0) {
                int selfCarried = 0;
                for (std::uint8_t k = 0; k < irec->nDepInl; ++k) {
                    const analysis::DepRead &dr = irec->depInl[k];
                    int producer = lastWriter[dr.value];
                    int iterCount = 0;
                    if (producer < 0) {
                        producer = lastWriterEnd[dr.value];
                        iterCount = 1;
                    }
                    if (producer < 0)
                        continue; // loop-invariant input
                    if (iterCount) {
                        if (s.nodeInst[producer] != static_cast<int>(i))
                            g.selfCarriedOnly = false;
                        else if (irec->stackOp && ++selfCarried > 1)
                            g.selfCarriedOnly = false;
                    }
                    for (int w = 0; w < nWrites; ++w) {
                        double edgeLat = dr.latency;
                        if (irec->stackOp &&
                            s.nodeValue[firstWriteNode + w] == 4)
                            edgeLat = 0.0;
                        if (iterCount && producer == firstWriteNode + w &&
                            edgeLat > g.maxSelfRatio)
                            g.maxSelfRatio = edgeLat;
                        s.edges.push(producer, firstWriteNode + w,
                                     edgeLat, iterCount);
                    }
                }
            }
            for (int w = 0; w < nWrites; ++w)
                lastWriter[s.nodeValue[firstWriteNode + w]] =
                    firstWriteNode + w;
            nodeCursor += nWrites;
            continue;
        }

        const auto &sets = *s.rwPtr[i];
        const int firstWriteNode = nodeCursor;
        const int nWrites = static_cast<int>(sets.writes.size());

        if (!sets.depBreaking && nWrites > 0 && ai.rec) {
            // Interned fast path: the per-read producer-edge latencies
            // (including the address-register load latency) and the
            // stack-op flag were derived once at intern time.
            const analysis::InstRecord &rec = *ai.rec;
            int selfCarried = 0;
            for (const analysis::DepRead &dr : rec.depReads) {
                int producer = lastWriter[dr.value];
                int iterCount = 0;
                if (producer < 0) {
                    producer = lastWriterEnd[dr.value];
                    iterCount = 1;
                }
                if (producer < 0)
                    continue; // loop-invariant input
                if (iterCount) {
                    if (s.nodeInst[producer] != static_cast<int>(i))
                        g.selfCarriedOnly = false;
                    else if (rec.stackOp && ++selfCarried > 1)
                        g.selfCarriedOnly = false;
                }
                for (int w = 0; w < nWrites; ++w) {
                    double edgeLat = dr.latency;
                    // The stack engine updates rsp outside the execution
                    // core; rsp results of stack ops are available
                    // immediately.
                    if (rec.stackOp &&
                        s.nodeValue[firstWriteNode + w] == 4)
                        edgeLat = 0.0;
                    if (iterCount && producer == firstWriteNode + w &&
                        edgeLat > g.maxSelfRatio)
                        g.maxSelfRatio = edgeLat;
                    s.edges.push(producer, firstWriteNode + w, edgeLat,
                                 iterCount);
                }
            }
        } else if (!sets.depBreaking && nWrites > 0) {
            // Determine which reads are address registers of a load.
            const isa::MemOp *m = ai.dec->inst.memOperand();
            const bool loads = ai.dec->inst.isLoad();
            auto isAddrReg = [&](int v) {
                if (!m || !loads)
                    return false;
                return (m->base.valid() && m->base.family() == v) ||
                       (m->index.valid() && m->index.family() == v);
            };
            const bool stackOp =
                ai.dec->inst.mnem == isa::Mnemonic::PUSH ||
                ai.dec->inst.mnem == isa::Mnemonic::POP ||
                ai.dec->inst.mnem == isa::Mnemonic::CALL ||
                ai.dec->inst.mnem == isa::Mnemonic::RET;

            int selfCarried = 0;
            for (int r : sets.reads) {
                int producer = lastWriter[r];
                int iterCount = 0;
                if (producer < 0) {
                    producer = lastWriterEnd[r];
                    iterCount = 1;
                }
                if (producer < 0)
                    continue; // loop-invariant input
                if (iterCount) {
                    if (s.nodeInst[producer] != static_cast<int>(i))
                        g.selfCarriedOnly = false;
                    else if (stackOp && ++selfCarried > 1)
                        g.selfCarriedOnly = false;
                }
                double lat = static_cast<double>(ai.info->latency);
                if (isAddrReg(r))
                    lat += cfg.loadLatency;
                for (int w = 0; w < nWrites; ++w) {
                    double edgeLat = lat;
                    // The stack engine updates rsp outside the execution
                    // core; rsp results of stack ops are available
                    // immediately.
                    if (stackOp && s.nodeValue[firstWriteNode + w] == 4)
                        edgeLat = 0.0;
                    if (iterCount && producer == firstWriteNode + w &&
                        edgeLat > g.maxSelfRatio)
                        g.maxSelfRatio = edgeLat;
                    s.edges.push(producer, firstWriteNode + w, edgeLat,
                                 iterCount);
                }
            }
        }

        for (int w = 0; w < nWrites; ++w)
            lastWriter[s.nodeValue[firstWriteNode + w]] =
                firstWriteNode + w;
        nodeCursor += nWrites;
    }

    g.nNodes = static_cast<int>(s.nodeInst.size());
    return g;
}

} // namespace

PrecedenceResult
precedence(const bb::BasicBlock &blk)
{
    return precedence(blk, tlsScratch());
}

PrecedenceResult
precedence(const bb::BasicBlock &blk, PrecedenceScratch &s)
{
    const DepGraphInfo g = buildDepGraph(blk, s);
    PrecedenceResult result;
    result.throughput = maxCycleRatioImpl(g.nNodes, s.edges, s);
    for (int n : s.bestCycle) {
        int inst = s.nodeInst[n];
        if (result.criticalChain.empty() ||
            result.criticalChain.back() != inst)
            result.criticalChain.push_back(inst);
    }
    return result;
}

double
precedenceBound(const bb::BasicBlock &blk, PrecedenceScratch &s,
                bool *shortCircuited)
{
    const DepGraphInfo g = buildDepGraph(blk, s);
    if (g.selfCarriedOnly) {
        // Every cycle is an instruction self-dependence; the max
        // self-loop ratio is the exact bound and matches the engines
        // bit for bit (see the header contract).
        if (shortCircuited)
            *shortCircuited = true;
        return g.maxSelfRatio;
    }
    if (shortCircuited)
        *shortCircuited = false;
    return maxCycleRatioImpl(g.nNodes, s.edges, s);
}

} // namespace facile::model
