#include "facile/precedence.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "isa/semantics.h"
#include "uarch/config.h"

namespace facile::model {

namespace {

/**
 * Detect a cycle of strictly positive total weight under the modified
 * weights w(e) = weight(e) - lambda * count(e), using Bellman-Ford in
 * the max-plus semiring. Returns the node indices of one such cycle,
 * or an empty vector if none exists.
 */
std::vector<int>
positiveCycle(int n, const std::vector<RatioEdge> &edges, double lambda)
{
    std::vector<double> dist(n, 0.0);
    std::vector<int> pred(n, -1);
    int updatedNode = -1;
    for (int round = 0; round < n; ++round) {
        updatedNode = -1;
        for (const auto &e : edges) {
            double w = e.weight - lambda * e.count;
            if (dist[e.from] + w > dist[e.to] + 1e-12) {
                dist[e.to] = dist[e.from] + w;
                pred[e.to] = e.from;
                updatedNode = e.to;
            }
        }
        if (updatedNode < 0)
            return {};
    }
    // A node updated in round n lies on or is reachable from a positive
    // cycle; walk back n steps to land inside the cycle, then collect it.
    int v = updatedNode;
    for (int i = 0; i < n; ++i)
        v = pred[v];
    std::vector<int> cycle;
    int start = v;
    do {
        cycle.push_back(v);
        v = pred[v];
    } while (v != start && static_cast<int>(cycle.size()) <= n);
    std::reverse(cycle.begin(), cycle.end());
    return cycle;
}

/**
 * Kosaraju strongly-connected components; returns component id per node
 * (ids are arbitrary but equal within a component).
 */
std::vector<int>
sccIds(int n, const std::vector<RatioEdge> &edges)
{
    std::vector<std::vector<int>> fwd(n), rev(n);
    for (const auto &e : edges) {
        fwd[e.from].push_back(e.to);
        rev[e.to].push_back(e.from);
    }

    // First pass: finish order on the forward graph (iterative DFS).
    std::vector<int> order;
    order.reserve(n);
    std::vector<char> seen(n, 0);
    std::vector<std::pair<int, std::size_t>> stack;
    for (int s = 0; s < n; ++s) {
        if (seen[s])
            continue;
        stack.emplace_back(s, 0);
        seen[s] = 1;
        while (!stack.empty()) {
            auto &[v, i] = stack.back();
            if (i < fwd[v].size()) {
                int w = fwd[v][i++];
                if (!seen[w]) {
                    seen[w] = 1;
                    stack.emplace_back(w, 0);
                }
            } else {
                order.push_back(v);
                stack.pop_back();
            }
        }
    }

    // Second pass: components on the reverse graph.
    std::vector<int> comp(n, -1);
    int nComp = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        if (comp[*it] >= 0)
            continue;
        std::vector<int> work = {*it};
        comp[*it] = nComp;
        while (!work.empty()) {
            int v = work.back();
            work.pop_back();
            for (int w : rev[v]) {
                if (comp[w] < 0) {
                    comp[w] = nComp;
                    work.push_back(w);
                }
            }
        }
        ++nComp;
    }
    return comp;
}

/** Binary-search cycle-ratio maximization on one (small) subgraph. */
CycleRatioResult
maxCycleRatioDense(int n_nodes, const std::vector<RatioEdge> &edges)
{
    CycleRatioResult result;

    double lo = 0.0, hi = 0.0;
    for (const auto &e : edges)
        hi += std::max(0.0, e.weight);
    if (hi == 0.0)
        hi = 1.0;

    // Is there a cycle at all? Probe with lambda slightly below zero so
    // zero-weight cycles register as positive.
    if (positiveCycle(n_nodes, edges, -1e-6).empty())
        return result;

    // Binary search for the largest lambda admitting a positive cycle.
    for (int it = 0; it < 64 && hi - lo > 1e-10 * (1.0 + hi); ++it) {
        double mid = 0.5 * (lo + hi);
        if (!positiveCycle(n_nodes, edges, mid).empty())
            lo = mid;
        else
            hi = mid;
    }
    result.ratio = 0.5 * (lo + hi);
    if (result.ratio < 1e-9)
        result.ratio = 0.0;

    // Extract a critical cycle just below the optimum.
    double probe = result.ratio - std::max(1e-7, result.ratio * 1e-6);
    result.cycleNodes = positiveCycle(n_nodes, edges, probe);
    return result;
}

/**
 * Howard's policy iteration for the maximum cycle ratio on one strongly
 * connected subgraph (every node must lie on a cycle). Maintains a
 * policy (one out-edge per node); each round evaluates the policy's
 * cycles, takes the best ratio r, solves the value function d under r,
 * and switches any edge (u,v) with d[u] < w(u,v) - r*t(u,v) + d[v].
 * Terminates when no edge improves; guarded by an iteration cap with a
 * binary-search fallback (never observed to trigger on dependence
 * graphs, but cheap insurance).
 */
CycleRatioResult
howardDense(int n, const std::vector<RatioEdge> &edges)
{
    CycleRatioResult result;
    std::vector<std::vector<int>> adj(n); // edge indices
    for (std::size_t e = 0; e < edges.size(); ++e)
        adj[edges[e].from].push_back(static_cast<int>(e));
    for (int v = 0; v < n; ++v)
        if (adj[v].empty())
            return result; // not strongly connected: caller filtered SCCs

    std::vector<int> policy(n); // chosen edge index per node
    for (int v = 0; v < n; ++v)
        policy[v] = adj[v][0];

    std::vector<double> d(n, 0.0);
    std::vector<int> mark(n, -1);
    std::vector<int> bestCycle;

    const int maxRounds = 4 * n + 16;
    for (int round = 0; round < maxRounds; ++round) {
        // --- evaluate: find the cycles of the policy graph ----------------
        double r = -1.0;
        bestCycle.clear();
        std::fill(mark.begin(), mark.end(), -1);
        std::vector<int> cycleAnchor(n, -1); // anchor node of v's cycle
        for (int s = 0; s < n; ++s) {
            if (mark[s] >= 0)
                continue;
            // Walk the policy path until we hit something visited.
            std::vector<int> path;
            int v = s;
            while (mark[v] < 0) {
                mark[v] = s;
                path.push_back(v);
                v = edges[policy[v]].to;
            }
            if (mark[v] == s && cycleAnchor[v] < 0) {
                // Found a new cycle; extract it.
                std::vector<int> cycle;
                double w = 0.0;
                int t = 0;
                int u = v;
                do {
                    cycle.push_back(u);
                    w += edges[policy[u]].weight;
                    t += edges[policy[u]].count;
                    u = edges[policy[u]].to;
                } while (u != v);
                double ratio = t > 0 ? w / t : 0.0;
                for (int c : cycle)
                    cycleAnchor[c] = v;
                if (ratio > r) {
                    r = ratio;
                    bestCycle = cycle;
                }
            }
        }
        if (r < 0)
            break;

        // --- value determination under the global ratio r -----------------
        // d is consistent along policy edges: d[u] = w - r*t + d[succ].
        // Solve by walking each node's policy path to its cycle; anchor
        // nodes get d = 0 (per-cycle drift is absorbed by improvement).
        std::vector<char> solved(n, 0);
        for (int v = 0; v < n; ++v) {
            if (cycleAnchor[v] == v) {
                d[v] = 0.0;
                solved[v] = 1;
            }
        }
        for (int s = 0; s < n; ++s) {
            if (solved[s])
                continue;
            std::vector<int> path;
            int v = s;
            while (!solved[v]) {
                path.push_back(v);
                v = edges[policy[v]].to;
            }
            for (auto it = path.rbegin(); it != path.rend(); ++it) {
                const RatioEdge &e = edges[policy[*it]];
                d[*it] = e.weight - r * e.count + d[e.to];
                solved[*it] = 1;
            }
        }

        // --- improvement ------------------------------------------------------
        bool improved = false;
        for (int v = 0; v < n; ++v) {
            for (int ei : adj[v]) {
                const RatioEdge &e = edges[ei];
                double cand = e.weight - r * e.count + d[e.to];
                if (cand > d[v] + 1e-9) {
                    d[v] = cand;
                    policy[v] = ei;
                    improved = true;
                }
            }
        }
        if (!improved) {
            result.ratio = std::max(0.0, r);
            result.cycleNodes = bestCycle;
            return result;
        }
    }
    // Fallback: the guard fired; use the exhaustive engine.
    return maxCycleRatioDense(n, edges);
}

/** Solve per SCC with the given dense engine; take the maximum. */
template <typename Engine>
CycleRatioResult
perScc(int n_nodes, const std::vector<RatioEdge> &edges, Engine engine)
{
    CycleRatioResult result;
    if (n_nodes == 0 || edges.empty())
        return result;

    // Cycles live entirely within strongly connected components; solve
    // each component separately (they are typically tiny) and take the
    // maximum. Self-loops are components of size one with an edge.
    std::vector<int> comp = sccIds(n_nodes, edges);
    int nComp = *std::max_element(comp.begin(), comp.end()) + 1;

    std::vector<std::vector<RatioEdge>> compEdges(nComp);
    for (const auto &e : edges)
        if (comp[e.from] == comp[e.to])
            compEdges[comp[e.from]].push_back(e);

    for (int c = 0; c < nComp; ++c) {
        if (compEdges[c].empty())
            continue;
        // Renumber nodes of this component densely.
        std::vector<int> localId(n_nodes, -1), globalId;
        std::vector<RatioEdge> local;
        local.reserve(compEdges[c].size());
        for (const auto &e : compEdges[c]) {
            for (int v : {e.from, e.to}) {
                if (localId[v] < 0) {
                    localId[v] = static_cast<int>(globalId.size());
                    globalId.push_back(v);
                }
            }
            local.push_back({localId[e.from], localId[e.to], e.weight,
                             e.count});
        }
        CycleRatioResult sub =
            engine(static_cast<int>(globalId.size()), local);
        if (sub.ratio > result.ratio ||
            (result.cycleNodes.empty() && !sub.cycleNodes.empty())) {
            result.ratio = std::max(result.ratio, sub.ratio);
            result.cycleNodes.clear();
            for (int v : sub.cycleNodes)
                result.cycleNodes.push_back(globalId[v]);
        }
    }
    return result;
}

} // namespace

CycleRatioResult
maxCycleRatioHoward(int n_nodes, const std::vector<RatioEdge> &edges)
{
    return perScc(n_nodes, edges, howardDense);
}

CycleRatioResult
maxCycleRatioLawler(int n_nodes, const std::vector<RatioEdge> &edges)
{
    return perScc(n_nodes, edges, maxCycleRatioDense);
}

CycleRatioResult
maxCycleRatio(int n_nodes, const std::vector<RatioEdge> &edges)
{
    // Howard's algorithm is the paper's engine of choice [16, 18] and is
    // the fastest in practice; it carries its own exhaustive fallback.
    return maxCycleRatioHoward(n_nodes, edges);
}

PrecedenceResult
precedence(const bb::BasicBlock &blk)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);

    // One node per (instruction, written value).
    struct WriteNode
    {
        int instIdx;
        int value;
    };
    std::vector<WriteNode> nodes;
    std::vector<isa::RwSets> rw(blk.insts.size());

    std::array<int, isa::kNumValues> lastWriterEnd;
    lastWriterEnd.fill(-1);

    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        rw[i] = isa::instRw(blk.insts[i].dec.inst);
        for (int v : rw[i].writes) {
            lastWriterEnd[v] = static_cast<int>(nodes.size());
            nodes.push_back({static_cast<int>(i), v});
        }
    }

    std::vector<RatioEdge> edges;
    std::array<int, isa::kNumValues> lastWriter;
    lastWriter.fill(-1);

    int nodeCursor = 0;
    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        const auto &ai = blk.insts[i];
        const auto &sets = rw[i];
        const int firstWriteNode = nodeCursor;
        const int nWrites = static_cast<int>(sets.writes.size());

        if (!sets.depBreaking && nWrites > 0) {
            // Determine which reads are address registers of a load.
            const isa::MemOp *m = ai.dec.inst.memOperand();
            const bool loads = ai.dec.inst.isLoad();
            auto isAddrReg = [&](int v) {
                if (!m || !loads)
                    return false;
                return (m->base.valid() && m->base.family() == v) ||
                       (m->index.valid() && m->index.family() == v);
            };
            const bool stackOp =
                ai.dec.inst.mnem == isa::Mnemonic::PUSH ||
                ai.dec.inst.mnem == isa::Mnemonic::POP ||
                ai.dec.inst.mnem == isa::Mnemonic::CALL ||
                ai.dec.inst.mnem == isa::Mnemonic::RET;

            for (int r : sets.reads) {
                int producer = lastWriter[r];
                int iterCount = 0;
                if (producer < 0) {
                    producer = lastWriterEnd[r];
                    iterCount = 1;
                }
                if (producer < 0)
                    continue; // loop-invariant input
                double lat = static_cast<double>(ai.info.latency);
                if (isAddrReg(r))
                    lat += cfg.loadLatency;
                for (int w = 0; w < nWrites; ++w) {
                    double edgeLat = lat;
                    // The stack engine updates rsp outside the execution
                    // core; rsp results of stack ops are available
                    // immediately.
                    if (stackOp && nodes[firstWriteNode + w].value == 4)
                        edgeLat = 0.0;
                    edges.push_back(
                        {producer, firstWriteNode + w, edgeLat, iterCount});
                }
            }
        }

        for (int w = 0; w < nWrites; ++w)
            lastWriter[nodes[firstWriteNode + w].value] =
                firstWriteNode + w;
        nodeCursor += nWrites;
    }

    CycleRatioResult crr =
        maxCycleRatio(static_cast<int>(nodes.size()), edges);

    PrecedenceResult result;
    result.throughput = crr.ratio;
    for (int n : crr.cycleNodes) {
        int inst = nodes[n].instIdx;
        if (result.criticalChain.empty() ||
            result.criticalChain.back() != inst)
            result.criticalChain.push_back(inst);
    }
    return result;
}

} // namespace facile::model
