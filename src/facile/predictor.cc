#include "facile/predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "facile/dec.h"
#include "facile/predec.h"
#include "facile/simple_components.h"
#include "uarch/config.h"

namespace facile::model {

std::string_view
componentName(Component c)
{
    switch (c) {
      case Component::Predec: return "Predec";
      case Component::Dec: return "Dec";
      case Component::DSB: return "DSB";
      case Component::LSD: return "LSD";
      case Component::Issue: return "Issue";
      case Component::Ports: return "Ports";
      case Component::Precedence: return "Precedence";
      case Component::kNumComponents: break;
    }
    return "<bad>";
}

bool &
ModelConfig::flag(Component c)
{
    switch (c) {
      case Component::Predec: return usePredec;
      case Component::Dec: return useDec;
      case Component::DSB: return useDsb;
      case Component::LSD: return useLsd;
      case Component::Issue: return useIssue;
      case Component::Ports: return usePorts;
      case Component::Precedence:
      default: return usePrecedence;
    }
}

ModelConfig
ModelConfig::only(Component c)
{
    ModelConfig cfg;
    cfg.usePredec = cfg.useDec = cfg.useDsb = cfg.useLsd = cfg.useIssue =
        cfg.usePorts = cfg.usePrecedence = false;
    cfg.flag(c) = true;
    return cfg;
}

ModelConfig
ModelConfig::without(Component c)
{
    ModelConfig cfg;
    cfg.flag(c) = false;
    return cfg;
}

std::uint16_t
ModelConfig::packBits() const
{
    std::uint16_t b = 0;
    b |= usePredec ? 1u << 0 : 0u;
    b |= useDec ? 1u << 1 : 0u;
    b |= useDsb ? 1u << 2 : 0u;
    b |= useLsd ? 1u << 3 : 0u;
    b |= useIssue ? 1u << 4 : 0u;
    b |= usePorts ? 1u << 5 : 0u;
    b |= usePrecedence ? 1u << 6 : 0u;
    b |= simplePredec ? 1u << 7 : 0u;
    b |= simpleDec ? 1u << 8 : 0u;
    return b;
}

ModelConfig
ModelConfig::fromBits(std::uint16_t bits)
{
    ModelConfig c;
    c.usePredec = bits & (1u << 0);
    c.useDec = bits & (1u << 1);
    c.useDsb = bits & (1u << 2);
    c.useLsd = bits & (1u << 3);
    c.useIssue = bits & (1u << 4);
    c.usePorts = bits & (1u << 5);
    c.usePrecedence = bits & (1u << 6);
    c.simplePredec = bits & (1u << 7);
    c.simpleDec = bits & (1u << 8);
    return c;
}

Prediction::Prediction()
{
    componentValue.fill(std::numeric_limits<double>::quiet_NaN());
}

double
Prediction::idealized(Component c) const
{
    double best = 0.0;
    for (int i = 0; i < kNumComponents; ++i) {
        if (i == static_cast<int>(c))
            continue;
        double v = componentValue[i];
        if (!std::isnan(v))
            best = std::max(best, v);
    }
    return best;
}

namespace {

/** Record a component bound and keep the running maximum. */
void
record(Prediction &p, Component c, double value)
{
    p.componentValue[static_cast<int>(c)] = value;
    p.throughput = std::max(p.throughput, value);
}

/** Fill bottleneck list and primary bottleneck after all bounds are in. */
void
finalize(Prediction &p)
{
    // Front-end-first priority for ties (paper section 6.4 / Figure 6).
    static const Component priority[] = {
        Component::Predec, Component::Dec,        Component::DSB,
        Component::LSD,    Component::Issue,      Component::Ports,
        Component::Precedence,
    };
    bool primarySet = false;
    for (Component c : priority) {
        double v = p.componentValue[static_cast<int>(c)];
        if (std::isnan(v))
            continue;
        if (v >= p.throughput - 1e-9 && p.throughput > 0.0) {
            p.bottlenecks.push_back(c);
            if (!primarySet) {
                p.primaryBottleneck = c;
                primarySet = true;
            }
        }
    }
}

/** Evaluate Ports and Precedence (shared by TPU and TPL). */
void
backEndBounds(Prediction &p, const bb::BasicBlock &blk,
              const ModelConfig &config)
{
    if (config.useIssue)
        record(p, Component::Issue, issue(blk));
    if (config.usePorts) {
        PortsResult pr = ports(blk);
        record(p, Component::Ports, pr.throughput);
        p.contendedPorts = pr.bottleneckPorts;
        p.contendingInsts = std::move(pr.contendingInsts);
    }
    if (config.usePrecedence) {
        PrecedenceResult pr = precedence(blk);
        record(p, Component::Precedence, pr.throughput);
        p.criticalChain = std::move(pr.criticalChain);
    }
}

} // namespace

Prediction
predictUnrolled(const bb::BasicBlock &blk, const ModelConfig &config)
{
    Prediction p;
    if (config.usePredec)
        record(p, Component::Predec,
               config.simplePredec ? simplePredec(blk) : predec(blk, true));
    if (config.useDec)
        record(p, Component::Dec,
               config.simpleDec ? simpleDec(blk) : dec(blk));
    backEndBounds(p, blk, config);
    finalize(p);
    return p;
}

Prediction
predictLoop(const bb::BasicBlock &blk, const ModelConfig &config)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    Prediction p;

    // Front end (paper equation 3): with the JCC erratum triggered,
    // neither the DSB nor the LSD are usable and the loop is fed by the
    // legacy decode path; otherwise the LSD serves loops that fit the
    // IDQ, and the DSB everything else.
    const bool jccAffected =
        cfg.jccErratum && blk.touchesJccErratumBoundary();
    if (jccAffected) {
        if (config.usePredec)
            record(p, Component::Predec,
                   config.simplePredec ? simplePredec(blk)
                                       : predec(blk, false));
        if (config.useDec)
            record(p, Component::Dec,
                   config.simpleDec ? simpleDec(blk) : dec(blk));
    } else if (cfg.lsdEnabled && config.useLsd && lsdEligible(blk)) {
        record(p, Component::LSD, lsd(blk));
    } else if (config.useDsb) {
        record(p, Component::DSB, dsb(blk));
    }

    backEndBounds(p, blk, config);
    finalize(p);
    return p;
}

Prediction
predict(const bb::BasicBlock &blk, bool loop, const ModelConfig &config)
{
    return loop ? predictLoop(blk, config) : predictUnrolled(blk, config);
}

} // namespace facile::model
