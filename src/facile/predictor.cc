#include "facile/predictor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "facile/component.h"
#include "facile/simple_components.h"
#include "uarch/config.h"

namespace facile::model {

std::string_view
componentName(Component c)
{
    switch (c) {
      case Component::Predec: return "Predec";
      case Component::Dec: return "Dec";
      case Component::DSB: return "DSB";
      case Component::LSD: return "LSD";
      case Component::Issue: return "Issue";
      case Component::Ports: return "Ports";
      case Component::Precedence: return "Precedence";
      case Component::kNumComponents: break;
    }
    return "<bad>";
}

bool &
ModelConfig::flag(Component c)
{
    switch (c) {
      case Component::Predec: return usePredec;
      case Component::Dec: return useDec;
      case Component::DSB: return useDsb;
      case Component::LSD: return useLsd;
      case Component::Issue: return useIssue;
      case Component::Ports: return usePorts;
      case Component::Precedence:
      default: return usePrecedence;
    }
}

ModelConfig
ModelConfig::only(Component c)
{
    ModelConfig cfg;
    cfg.usePredec = cfg.useDec = cfg.useDsb = cfg.useLsd = cfg.useIssue =
        cfg.usePorts = cfg.usePrecedence = false;
    cfg.flag(c) = true;
    return cfg;
}

ModelConfig
ModelConfig::without(Component c)
{
    ModelConfig cfg;
    cfg.flag(c) = false;
    return cfg;
}

std::uint16_t
ModelConfig::packBits() const
{
    std::uint16_t b = 0;
    b |= usePredec ? 1u << 0 : 0u;
    b |= useDec ? 1u << 1 : 0u;
    b |= useDsb ? 1u << 2 : 0u;
    b |= useLsd ? 1u << 3 : 0u;
    b |= useIssue ? 1u << 4 : 0u;
    b |= usePorts ? 1u << 5 : 0u;
    b |= usePrecedence ? 1u << 6 : 0u;
    b |= simplePredec ? 1u << 7 : 0u;
    b |= simpleDec ? 1u << 8 : 0u;
    return b;
}

ModelConfig
ModelConfig::fromBits(std::uint16_t bits)
{
    ModelConfig c;
    c.usePredec = bits & (1u << 0);
    c.useDec = bits & (1u << 1);
    c.useDsb = bits & (1u << 2);
    c.useLsd = bits & (1u << 3);
    c.useIssue = bits & (1u << 4);
    c.usePorts = bits & (1u << 5);
    c.usePrecedence = bits & (1u << 6);
    c.simplePredec = bits & (1u << 7);
    c.simpleDec = bits & (1u << 8);
    return c;
}

Prediction::Prediction()
{
    componentValue.fill(std::numeric_limits<double>::quiet_NaN());
}

double
Prediction::idealized(Component c) const
{
    double best = 0.0;
    for (int i = 0; i < kNumComponents; ++i) {
        if (i == static_cast<int>(c))
            continue;
        double v = componentValue[i];
        if (!std::isnan(v))
            best = std::max(best, v);
    }
    return best;
}

const std::array<Component, kNumComponents> &
bottleneckPriority()
{
    // Front-end-first priority for ties (paper section 6.4 / Figure 6):
    // the µop-delivery components DSB and LSD rank after the legacy
    // decode pipe and before the back end.
    static const std::array<Component, kNumComponents> priority = {
        Component::Predec, Component::Dec,   Component::DSB,
        Component::LSD,    Component::Issue, Component::Ports,
        Component::Precedence,
    };
    return priority;
}

namespace {

/** Record a component bound and keep the running maximum. */
void
record(Prediction &p, Component c, double value)
{
    p.componentValue[static_cast<int>(c)] = value;
    p.throughput = std::max(p.throughput, value);
}

/** Fill bottleneck list and primary bottleneck after all bounds are in. */
void
finalize(Prediction &p)
{
    bool primarySet = false;
    for (Component c : bottleneckPriority()) {
        double v = p.componentValue[static_cast<int>(c)];
        if (std::isnan(v))
            continue;
        if (v >= p.throughput - 1e-9 && p.throughput > 0.0) {
            p.bottlenecks.push_back(c);
            if (!primarySet) {
                p.primaryBottleneck = c;
                primarySet = true;
            }
        }
    }
}

/**
 * The staged driver: walk the resolved registry view in stages —
 * cheap arithmetic bounds first (Issue and the TPL µop-delivery
 * bound), then the front-end decode simulations where the notion
 * selects them, then Ports, then the precedence pass (which itself
 * short-circuits self-carried-only graphs). Evaluation order does not
 * affect any Prediction field: throughput is a running max and the
 * bottleneck classification is derived from componentValue under the
 * fixed bottleneckPriority() order.
 */
Prediction
predictStaged(const bb::BasicBlock &blk, bool loop,
              const ModelConfig &config, PredictScratch &scratch,
              Payload payload)
{
    const RegistryView &view = Registry::forArch(blk.arch).view(config);
    const PredictContext ctx{blk, uarch::config(blk.arch), loop, payload,
                             scratch};

    Prediction p;
    auto eval = [&](const ComponentPredictor *c) {
        if (!c)
            return;
        const double v = payload == Payload::Full
                             ? c->boundWithExplain(ctx, p)
                             : c->bound(ctx);
        record(p, c->id(), v);
    };

    // Stage 1: pure-arithmetic bounds.
    eval(view.issue);

    // Front end. TPU is always fed by the legacy decode pipe; a TPL
    // loop is fed by it only under the JCC erratum (paper equation 3),
    // by the LSD when present and the loop fits the IDQ, and by the
    // DSB otherwise.
    if (!loop) {
        for (int i = 0; i < view.nFront; ++i)
            eval(view.front[i]);
    } else if (view.jccPossible && blk.touchesJccErratumBoundary()) {
        for (int i = 0; i < view.nFront; ++i)
            eval(view.front[i]);
    } else if (view.lsd && lsdEligible(blk)) {
        eval(view.lsd);
    } else {
        eval(view.dsb);
    }

    // Stage 2: port contention. Stage 3: precedence (most expensive,
    // short-circuited inside for self-carried-only dependence graphs).
    eval(view.ports);
    eval(view.precedence);

    finalize(p);
    detail::countPredict(payload);
    return p;
}

} // namespace

Prediction
predict(const bb::BasicBlock &blk, bool loop, const ModelConfig &config,
        PredictScratch &scratch, Payload payload)
{
    return predictStaged(blk, loop, config, scratch, payload);
}

Prediction
predictUnrolled(const bb::BasicBlock &blk, const ModelConfig &config)
{
    return predictStaged(blk, false, config, tlsPredictScratch(),
                         Payload::Full);
}

Prediction
predictLoop(const bb::BasicBlock &blk, const ModelConfig &config)
{
    return predictStaged(blk, true, config, tlsPredictScratch(),
                         Payload::Full);
}

Prediction
predict(const bb::BasicBlock &blk, bool loop, const ModelConfig &config)
{
    return predictStaged(blk, loop, config, tlsPredictScratch(),
                         Payload::Full);
}

void
explain(const bb::BasicBlock &blk, const ModelConfig &config,
        PredictScratch &scratch, Prediction &p)
{
    const RegistryView &view = Registry::forArch(blk.arch).view(config);
    // The payload components are notion-independent (both notions run
    // the same back end), so the loop flag is irrelevant here.
    const PredictContext ctx{blk, uarch::config(blk.arch), false,
                             Payload::Full, scratch};
    if (view.ports)
        view.ports->explain(ctx, p);
    if (view.precedence)
        view.precedence->explain(ctx, p);
    detail::countExplain();
}

} // namespace facile::model
