#include "facile/component.h"

#include <atomic>
#include <limits>
#include <stdexcept>
#include <utility>

#include "facile/simple_components.h"
#include "uarch/config.h"

namespace facile::model {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Process-wide pipeline counters (relaxed: they are statistics, not
// synchronization; a couple of increments per prediction is noise next
// to the component math).
std::atomic<std::uint64_t> gBoundPredicts{0};
std::atomic<std::uint64_t> gFullPredicts{0};
std::atomic<std::uint64_t> gExplainCalls{0};
std::atomic<std::uint64_t> gPrecedenceEvals{0};
std::atomic<std::uint64_t> gPrecedenceShortCircuits{0};

inline void
bump(std::atomic<std::uint64_t> &c)
{
    c.fetch_add(1, std::memory_order_relaxed);
}

// ---- the component singletons ---------------------------------------------

class PredecComponent final : public ComponentPredictor
{
  public:
    Component id() const override { return Component::Predec; }
    double
    bound(const PredictContext &ctx) const override
    {
        // TPU analyzes the unrolled layout; the TPL JCC-erratum leg
        // the fixed-placement one.
        return predec(ctx.blk, !ctx.loop, ctx.scratch.predec);
    }
    Notions notions() const override { return {true, false}; }
};

class SimplePredecComponent final : public ComponentPredictor
{
  public:
    Component id() const override { return Component::Predec; }
    std::string_view displayName() const override { return "SimplePredec"; }
    double
    bound(const PredictContext &ctx) const override
    {
        return simplePredec(ctx.blk);
    }
    double
    cheapUpperBound(const PredictContext &ctx) const override
    {
        return bound(ctx);
    }
    Notions notions() const override { return {true, false}; }
};

class DecComponent final : public ComponentPredictor
{
  public:
    Component id() const override { return Component::Dec; }
    double
    bound(const PredictContext &ctx) const override
    {
        return dec(ctx.blk, ctx.scratch.dec);
    }
    Notions notions() const override { return {true, false}; }
};

class SimpleDecComponent final : public ComponentPredictor
{
  public:
    Component id() const override { return Component::Dec; }
    std::string_view displayName() const override { return "SimpleDec"; }
    double
    bound(const PredictContext &ctx) const override
    {
        return simpleDec(ctx.blk);
    }
    Notions notions() const override { return {true, false}; }
};

class DsbComponent final : public ComponentPredictor
{
  public:
    Component id() const override { return Component::DSB; }
    double
    bound(const PredictContext &ctx) const override
    {
        return dsb(ctx.blk);
    }
    double
    cheapUpperBound(const PredictContext &ctx) const override
    {
        return bound(ctx);
    }
    Notions notions() const override { return {false, true}; }
};

class LsdComponent final : public ComponentPredictor
{
  public:
    Component id() const override { return Component::LSD; }
    double
    bound(const PredictContext &ctx) const override
    {
        return lsd(ctx.blk);
    }
    double
    cheapUpperBound(const PredictContext &ctx) const override
    {
        return bound(ctx);
    }
    Notions notions() const override { return {false, true}; }
};

class IssueComponent final : public ComponentPredictor
{
  public:
    Component id() const override { return Component::Issue; }
    double
    bound(const PredictContext &ctx) const override
    {
        return issue(ctx.blk);
    }
    double
    cheapUpperBound(const PredictContext &ctx) const override
    {
        return bound(ctx);
    }
    Notions notions() const override { return {true, true}; }
};

class PortsComponent final : public ComponentPredictor
{
  public:
    Component id() const override { return Component::Ports; }

    double
    bound(const PredictContext &ctx) const override
    {
        return ports(ctx.blk, ctx.scratch.ports, false).throughput;
    }

    double
    cheapUpperBound(const PredictContext &ctx) const override
    {
        // All port µops forced onto a single port. O(n) over the
        // annotations, no combination search.
        int uops = 0;
        for (const auto &ai : ctx.blk.insts) {
            if (ai.fusedWithPrev || ai.info->eliminated)
                continue;
            if (ai.rec) {
                uops += static_cast<int>(ai.rec->portMasks.size());
            } else {
                for (const auto &u : ai.info->portUops)
                    if (u.ports)
                        ++uops;
            }
        }
        return static_cast<double>(uops);
    }

    void
    explain(const PredictContext &ctx, Prediction &out) const override
    {
        PortsResult pr = ports(ctx.blk, ctx.scratch.ports, true);
        out.contendedPorts = pr.bottleneckPorts;
        out.contendingInsts = std::move(pr.contendingInsts);
    }

    double
    boundWithExplain(const PredictContext &ctx,
                     Prediction &out) const override
    {
        PortsResult pr = ports(ctx.blk, ctx.scratch.ports, true);
        out.contendedPorts = pr.bottleneckPorts;
        out.contendingInsts = std::move(pr.contendingInsts);
        return pr.throughput;
    }

    Notions notions() const override { return {true, true}; }
};

class PrecedenceComponent final : public ComponentPredictor
{
  public:
    Component id() const override { return Component::Precedence; }

    double
    bound(const PredictContext &ctx) const override
    {
        bool shortCircuited = false;
        const double v = precedenceBound(ctx.blk, ctx.scratch.precedence,
                                         &shortCircuited);
        bump(gPrecedenceEvals);
        if (shortCircuited)
            bump(gPrecedenceShortCircuits);
        return v;
    }

    void
    explain(const PredictContext &ctx, Prediction &out) const override
    {
        PrecedenceResult pr = precedence(ctx.blk, ctx.scratch.precedence);
        out.criticalChain = std::move(pr.criticalChain);
    }

    double
    boundWithExplain(const PredictContext &ctx,
                     Prediction &out) const override
    {
        PrecedenceResult pr = precedence(ctx.blk, ctx.scratch.precedence);
        out.criticalChain = std::move(pr.criticalChain);
        bump(gPrecedenceEvals);
        return pr.throughput;
    }

    Notions notions() const override { return {true, true}; }
};

const PredecComponent kPredec{};
const SimplePredecComponent kSimplePredec{};
const DecComponent kDec{};
const SimpleDecComponent kSimpleDec{};
const DsbComponent kDsb{};
const LsdComponent kLsd{};
const IssueComponent kIssue{};
const PortsComponent kPorts{};
const PrecedenceComponent kPrecedence{};

} // namespace

std::string_view
ComponentPredictor::displayName() const
{
    return componentName(id());
}

double
ComponentPredictor::cheapUpperBound(const PredictContext &) const
{
    return kInf;
}

void
ComponentPredictor::explain(const PredictContext &, Prediction &) const
{}

double
ComponentPredictor::boundWithExplain(const PredictContext &ctx,
                                     Prediction &out) const
{
    const double v = bound(ctx);
    explain(ctx, out);
    return v;
}

const ComponentPredictor &
component(Component c)
{
    switch (c) {
      case Component::Predec: return kPredec;
      case Component::Dec: return kDec;
      case Component::DSB: return kDsb;
      case Component::LSD: return kLsd;
      case Component::Issue: return kIssue;
      case Component::Ports: return kPorts;
      case Component::Precedence: return kPrecedence;
      case Component::kNumComponents: break;
    }
    throw std::invalid_argument("component(): bad Component");
}

const ComponentPredictor &
simpleVariant(Component c)
{
    if (c == Component::Predec)
        return kSimplePredec;
    if (c == Component::Dec)
        return kSimpleDec;
    throw std::invalid_argument("simpleVariant(): only Predec and Dec "
                                "have Simple* substitutes");
}

Registry::Registry(uarch::UArch arch) : arch_(arch)
{
    const uarch::MicroArchConfig &cfg = uarch::config(arch);

    // The primary component set of this arch, in enum order. The LSD
    // exists only where the hardware has it enabled (SKL150 disables
    // it on SKL/CLX).
    for (int c = 0; c < kNumComponents; ++c) {
        const Component comp = static_cast<Component>(c);
        if (comp == Component::LSD && !cfg.lsdEnabled)
            continue;
        components_.push_back(&component(comp));
    }

    // Resolve every ModelConfig bit pattern to its view once, so the
    // per-call driver never branches on config flags.
    views_.resize(kNumViews);
    for (std::size_t bits = 0; bits < kNumViews; ++bits) {
        const ModelConfig config =
            ModelConfig::fromBits(static_cast<std::uint16_t>(bits));
        RegistryView &v = views_[bits];
        if (config.usePredec)
            v.front[v.nFront++] =
                config.simplePredec
                    ? static_cast<const ComponentPredictor *>(&kSimplePredec)
                    : &kPredec;
        if (config.useDec)
            v.front[v.nFront++] =
                config.simpleDec
                    ? static_cast<const ComponentPredictor *>(&kSimpleDec)
                    : &kDec;
        v.lsd = cfg.lsdEnabled && config.useLsd ? &kLsd : nullptr;
        v.dsb = config.useDsb ? &kDsb : nullptr;
        v.issue = config.useIssue ? &kIssue : nullptr;
        v.ports = config.usePorts ? &kPorts : nullptr;
        v.precedence = config.usePrecedence ? &kPrecedence : nullptr;
        v.jccPossible = cfg.jccErratum;
    }
}

const Registry &
Registry::forArch(uarch::UArch arch)
{
    // One static registry per arch, built on first use (thread-safe
    // magic statics), immutable afterwards.
    static const Registry registries[] = {
        Registry(uarch::UArch::SNB), Registry(uarch::UArch::IVB),
        Registry(uarch::UArch::HSW), Registry(uarch::UArch::BDW),
        Registry(uarch::UArch::SKL), Registry(uarch::UArch::CLX),
        Registry(uarch::UArch::ICL), Registry(uarch::UArch::TGL),
        Registry(uarch::UArch::RKL),
    };
    // Fast path assumes the array is in enum order; the arch() check
    // (plus the scan fallback) keeps a future enum reorder or
    // extension from silently returning the wrong registry.
    const auto idx = static_cast<std::size_t>(arch);
    if (idx < std::size(registries) && registries[idx].arch() == arch)
        return registries[idx];
    for (const Registry &r : registries)
        if (r.arch() == arch)
            return r;
    throw std::invalid_argument("Registry::forArch: unknown arch");
}

PredictScratch &
tlsPredictScratch()
{
    thread_local PredictScratch s;
    return s;
}

std::vector<AblationVariant>
ablationVariants()
{
    std::vector<AblationVariant> v;
    v.push_back({"Facile", {}, true, true});

    // Simple* substitution rows, derived from the components that have
    // a simple variant (TPU rows in the paper).
    for (Component c : {Component::Predec, Component::Dec}) {
        ModelConfig cfg;
        (c == Component::Predec ? cfg.simplePredec : cfg.simpleDec) = true;
        v.push_back({"Facile w/ " +
                         std::string(simpleVariant(c).displayName()),
                     cfg, true, false});
    }

    // "only X": one row per component, marked per notion from the
    // component's own metadata.
    for (int c = 0; c < kNumComponents; ++c) {
        const Component comp = static_cast<Component>(c);
        const ComponentPredictor::Notions n = component(comp).notions();
        v.push_back({"only " + std::string(componentName(comp)),
                     ModelConfig::only(comp), n.unrolled, n.loop});
    }

    // Combination rows of Table 3.
    ModelConfig predecPorts = ModelConfig::only(Component::Predec);
    predecPorts.usePorts = true;
    v.push_back({"only Predec+Ports", predecPorts, true, false});

    ModelConfig precPorts = ModelConfig::only(Component::Precedence);
    precPorts.usePorts = true;
    v.push_back({"only Precedence+Ports", precPorts, true, true});

    // "w/o X" leave-one-out rows.
    for (int c = 0; c < kNumComponents; ++c) {
        const Component comp = static_cast<Component>(c);
        const ComponentPredictor::Notions n = component(comp).notions();
        v.push_back({"Facile w/o " + std::string(componentName(comp)),
                     ModelConfig::without(comp), n.unrolled, n.loop});
    }
    return v;
}

PredictCountersSnapshot
predictCounters()
{
    PredictCountersSnapshot s;
    s.boundPredicts = gBoundPredicts.load(std::memory_order_relaxed);
    s.fullPredicts = gFullPredicts.load(std::memory_order_relaxed);
    s.explainCalls = gExplainCalls.load(std::memory_order_relaxed);
    s.precedenceEvals = gPrecedenceEvals.load(std::memory_order_relaxed);
    s.precedenceShortCircuits =
        gPrecedenceShortCircuits.load(std::memory_order_relaxed);
    return s;
}

namespace detail {

void
countPredict(Payload payload)
{
    bump(payload == Payload::Full ? gFullPredicts : gBoundPredicts);
}

void
countExplain()
{
    bump(gExplainCalls);
}

} // namespace detail

} // namespace facile::model
