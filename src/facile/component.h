/**
 * @file
 * The componentized predictor core: a uniform ComponentPredictor
 * interface over the per-resource bounds (paper section 4), a
 * per-microarchitecture component registry derived from
 * uarch::MicroArchConfig, and the explicit PredictContext that carries
 * everything one staged evaluation needs — the analyzed block, the
 * arch config, the resolved registry view, and the caller's per-thread
 * scratch.
 *
 * Ablation configurations (ModelConfig) are resolved ONCE per (arch,
 * config) into an immutable RegistryView — a table of component
 * pointers per pipeline leg — so the per-call driver has no
 * `if (config.useX)` branches left; it just walks the view in staged
 * order (cheap arithmetic bounds, then the front-end simulations, then
 * ports, then precedence). See src/facile/README.md for the
 * architecture and for how to add a component or a µarch quirk.
 */
#ifndef FACILE_FACILE_COMPONENT_H
#define FACILE_FACILE_COMPONENT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "facile/dec.h"
#include "facile/ports.h"
#include "facile/precedence.h"
#include "facile/predec.h"
#include "facile/predictor.h"

namespace facile::model {

/**
 * Per-thread scratch for the whole component pipeline. Replaces the
 * thread_local buffers previously scattered across predec/dec/ports/
 * precedence: ownership is explicit — the engine keeps one instance
 * per pool worker, the eval harness one per worker lane, serial tools
 * one per thread (or tlsPredictScratch()). All buffers keep their
 * capacity across calls, so steady-state prediction allocates nothing
 * beyond what the caller asks for (payload vectors).
 *
 * A PredictScratch may not be used from two threads at once; it is
 * deliberately non-copyable.
 */
struct PredictScratch
{
    PrecedenceScratch precedence;
    PortsScratch ports;
    DecScratch dec;
    PredecScratch predec;

    PredictScratch() = default;
    PredictScratch(const PredictScratch &) = delete;
    PredictScratch &operator=(const PredictScratch &) = delete;
};

/**
 * Everything one prediction evaluation needs, threaded explicitly from
 * the analyzed block (bb layer) through the component pipeline:
 * interned block annotations, the microarchitecture configuration, the
 * throughput notion, the requested payload depth, and the per-thread
 * scratch. Cheap to construct per call (three pointers and two flags);
 * components receive it by const reference.
 */
struct PredictContext
{
    const bb::BasicBlock &blk;
    const uarch::MicroArchConfig &cfg;
    bool loop;
    Payload payload;
    PredictScratch &scratch;
};

/**
 * One per-resource throughput bound (Predec, Dec, DSB, LSD, Issue,
 * Ports, Precedence, or a Simple* substitute). Implementations are
 * stateless singletons — all mutable state lives in the context's
 * scratch — so one instance serves every thread and every view.
 */
class ComponentPredictor
{
  public:
    virtual ~ComponentPredictor() = default;

    /** Which Prediction::componentValue slot this bound fills. */
    virtual Component id() const = 0;

    /** Display name; Simple* variants override ("SimplePredec"). */
    virtual std::string_view displayName() const;

    /** The exact throughput bound in cycles per iteration. */
    virtual double bound(const PredictContext &ctx) const = 0;

    /**
     * Optional: an upper bound on bound() that is cheap to compute
     * (O(1) on an analyzed block), or +infinity when none is
     * available. Arithmetic components return their exact bound; Ports
     * returns the µop count (all µops on one port). Search-style
     * callers can use it to rank candidates without a full evaluation.
     */
    virtual double cheapUpperBound(const PredictContext &ctx) const;

    /**
     * Optional: fill this component's interpretability payload into
     * @p out (criticalChain for Precedence, contendedPorts /
     * contendingInsts for Ports). Idempotent; byte-identical whether
     * run eagerly (Payload::Full) or on demand (model::explain).
     */
    virtual void explain(const PredictContext &ctx, Prediction &out) const;

    /**
     * Bound and payload in one pass where the implementation can share
     * work (Ports computes both from a single combination search).
     * Default: bound() then explain().
     */
    virtual double boundWithExplain(const PredictContext &ctx,
                                    Prediction &out) const;

    /** Which throughput notions the component participates in. */
    struct Notions
    {
        bool unrolled; ///< evaluated under TPU
        bool loop;     ///< evaluated under TPL
    };
    virtual Notions notions() const = 0;
};

/**
 * A ModelConfig resolved against one microarchitecture: the component
 * pointers to evaluate per pipeline leg, in staged order. Immutable
 * and cached inside the Registry — the per-call driver only reads it.
 * Null pointers mean "component disabled" (by the config or by the
 * arch itself, e.g. no LSD on Skylake).
 */
struct RegistryView
{
    /**
     * Legacy decode front end (Predec and/or Dec, with Simple*
     * substitution applied): evaluated under TPU, and under TPL when
     * the JCC erratum forces the loop onto the legacy pipe.
     */
    const ComponentPredictor *front[2] = {nullptr, nullptr};
    int nFront = 0;

    /** TPL µop-delivery choices; see predictLoop's selection rule. */
    const ComponentPredictor *lsd = nullptr; ///< arch has LSD + useLsd
    const ComponentPredictor *dsb = nullptr; ///< useDsb

    /** Back end, staged cheap-to-expensive. */
    const ComponentPredictor *issue = nullptr;
    const ComponentPredictor *ports = nullptr;
    const ComponentPredictor *precedence = nullptr;

    /** The arch runs the JCC-erratum mitigation (block test needed). */
    bool jccPossible = false;
};

/**
 * The component registry of one microarchitecture, derived from its
 * MicroArchConfig (e.g. Skylake's registry carries no LSD component —
 * SKL150 — and flags the JCC erratum leg). Holds the 512 resolved
 * RegistryViews, one per ModelConfig bit pattern, built eagerly at
 * first use so view() is a lock-free table lookup on the hot path.
 */
class Registry
{
  public:
    /** The registry of @p arch (built on first use, then immutable). */
    static const Registry &forArch(uarch::UArch arch);

    /** Resolve an ablation config to its precomputed view. O(1). */
    const RegistryView &view(const ModelConfig &config) const
    {
        return views_[config.packBits() & kViewMask];
    }

    /**
     * The primary components present on this arch, in Component enum
     * order (the iteration surface for the Table 3/4 drivers, Figure
     * 4, and tests).
     */
    const std::vector<const ComponentPredictor *> &components() const
    {
        return components_;
    }

    uarch::UArch arch() const { return arch_; }

  private:
    explicit Registry(uarch::UArch arch);

    static constexpr std::size_t kNumViews = 512; // 9 config bits
    static constexpr std::uint16_t kViewMask = kNumViews - 1;

    uarch::UArch arch_;
    std::vector<const ComponentPredictor *> components_;
    std::vector<RegistryView> views_;
};

/**
 * The canonical (full-model) predictor of component @p c — the same
 * singleton every registry references. Valid for all seven components.
 */
const ComponentPredictor &component(Component c);

/**
 * The Simple* substitute of @p c; only Predec and Dec have one
 * (throws std::invalid_argument otherwise).
 */
const ComponentPredictor &simpleVariant(Component c);

/** One Table 3 row: a named ablation of the full model. */
struct AblationVariant
{
    std::string name;
    ModelConfig config;
    bool runU; ///< meaningful under TPU (else the paper leaves a dash)
    bool runL; ///< meaningful under TPL
};

/**
 * The Table 3 variant list (full model, Simple* substitutions, the
 * "only X" / "w/o X" rows and the paper's combination rows), derived
 * by iterating the component registry rather than hand-rolled per
 * driver. Row order matches the paper's table.
 */
std::vector<AblationVariant> ablationVariants();

/**
 * Monotonic process-wide counters for the staged pipeline, used by the
 * perf benches to report the precedence-skip rate and the lazy-payload
 * split machine-readably (BENCH_*.json). Take a snapshot before and
 * after a measured region and subtract.
 */
struct PredictCountersSnapshot
{
    std::uint64_t boundPredicts = 0; ///< Payload::None evaluations
    std::uint64_t fullPredicts = 0;  ///< Payload::Full evaluations
    std::uint64_t explainCalls = 0;  ///< on-demand explain() fills
    std::uint64_t precedenceEvals = 0;
    std::uint64_t precedenceShortCircuits = 0; ///< self-carried-only hits
};

PredictCountersSnapshot predictCounters();

namespace detail {

/** Counter hooks for the predict drivers (internal). */
void countPredict(Payload payload);
void countExplain();

} // namespace detail

} // namespace facile::model

#endif // FACILE_FACILE_COMPONENT_H
