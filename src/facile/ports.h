/**
 * @file
 * Execution-port contention predictor (paper section 4.8).
 *
 * Under the idealizing assumption that the renamer distributes µops
 * optimally across their admissible ports, the throughput bound induced
 * by a set of µops that can collectively only use the ports in pc is
 * u/|pc|. The paper's heuristic considers the port combinations of all
 * *pairs* of µops; this module implements that heuristic as well as the
 * exact bound (maximum over all port subsets, equivalent to the linear
 * program of [8] by LP duality), which is used for validation.
 */
#ifndef FACILE_FACILE_PORTS_H
#define FACILE_FACILE_PORTS_H

#include <string>
#include <utility>
#include <vector>

#include "bb/basic_block.h"

namespace facile::model {

/** Result of the port-contention analysis, with interpretability data. */
struct PortsResult
{
    double throughput = 0.0;

    /** The port combination achieving the bound. */
    uarch::PortMask bottleneckPorts = 0;

    /** Indices of instructions whose µops contend on bottleneckPorts. */
    std::vector<int> contendingInsts;
};

/**
 * Reusable workspace for ports(): µop masks and the port-combination
 * work lists keep their capacity across calls, so steady-state port
 * analysis allocates nothing beyond the result's contendingInsts. One
 * scratch may not be shared between threads; treat the fields as
 * opaque and merely keep the object alive across calls.
 */
struct PortsScratch
{
    std::vector<std::pair<uarch::PortMask, int>> uops; ///< (mask, inst)
    std::vector<uarch::PortMask> pcs;
    std::vector<int> pcsCount; ///< µops per distinct mask (histogram)
    std::vector<uarch::PortMask> pairs;
};

/** Pairwise port-combination heuristic (the model Facile uses). */
PortsResult ports(const bb::BasicBlock &blk);

/**
 * As above, with caller-owned scratch. With @p collectContending
 * false, the contendingInsts payload is skipped (the bound and
 * bottleneckPorts are computed identically either way) — the staged
 * pipeline's cheap path; explain() re-runs with true on demand.
 */
PortsResult ports(const bb::BasicBlock &blk, PortsScratch &scratch,
                  bool collectContending = true);

/**
 * Exact port-contention bound: max over every subset S of ports of
 * (µops dispatchable only within S) / |S|. Exponential in the port
 * count (at most 2^10 subsets), used in tests and ablations to confirm
 * the heuristic is exact on the benchmark suite, as the paper reports
 * for BHive.
 */
PortsResult portsExact(const bb::BasicBlock &blk);

} // namespace facile::model

#endif // FACILE_FACILE_PORTS_H
