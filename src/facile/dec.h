/**
 * @file
 * Decoder throughput predictor (paper section 4.4, Algorithm 1).
 *
 * The decoding unit has one complex decoder (instructions with more than
 * one fused-domain µop) and nDecoders-1 simple decoders. The predictor
 * simulates the allocation of instructions to decoders until the first
 * instruction of the benchmark lands on the same decoder for the second
 * time; the cycle count between those two events divided by the number
 * of benchmark iterations in between is the steady-state throughput.
 */
#ifndef FACILE_FACILE_DEC_H
#define FACILE_FACILE_DEC_H

#include "bb/basic_block.h"

namespace facile::model {

/** Steady-state decoder throughput in cycles per iteration. */
double dec(const bb::BasicBlock &blk);

/**
 * Simple decoder model: max(n/d, c) where n is the number of
 * instructions (macro-fused pairs count once), d the number of decoders,
 * and c the number of instructions requiring the complex decoder.
 */
double simpleDec(const bb::BasicBlock &blk);

} // namespace facile::model

#endif // FACILE_FACILE_DEC_H
