/**
 * @file
 * Decoder throughput predictor (paper section 4.4, Algorithm 1).
 *
 * The decoding unit has one complex decoder (instructions with more than
 * one fused-domain µop) and nDecoders-1 simple decoders. The predictor
 * simulates the allocation of instructions to decoders until the first
 * instruction of the benchmark lands on the same decoder for the second
 * time; the cycle count between those two events divided by the number
 * of benchmark iterations in between is the steady-state throughput.
 */
#ifndef FACILE_FACILE_DEC_H
#define FACILE_FACILE_DEC_H

#include <vector>

#include "bb/basic_block.h"

namespace facile::model {

/** One decode unit: macro-fused pairs occupy a single decoder slot. */
struct DecUnit
{
    bool complex;
    int nAvailSimple;
    bool macroFusible;
    bool branch;
};

/**
 * Reusable workspace for dec(); capacity persists across calls so
 * steady-state decode analysis allocates nothing. One scratch may not
 * be shared between threads; treat the fields as opaque.
 */
struct DecScratch
{
    std::vector<DecUnit> units;
    std::vector<int> nComplexDecInIteration;
    std::vector<int> firstInstrOnDecInIteration;
};

/** Steady-state decoder throughput in cycles per iteration. */
double dec(const bb::BasicBlock &blk);

/** As above, with caller-owned scratch (zero steady-state allocation). */
double dec(const bb::BasicBlock &blk, DecScratch &scratch);

/**
 * Simple decoder model: max(n/d, c) where n is the number of
 * instructions (macro-fused pairs count once), d the number of decoders,
 * and c the number of instructions requiring the complex decoder.
 */
double simpleDec(const bb::BasicBlock &blk);

} // namespace facile::model

#endif // FACILE_FACILE_DEC_H
