#include "facile/dec.h"

#include <algorithm>
#include <numeric>

#include "uarch/config.h"

namespace facile::model {

namespace {

DecScratch &
tlsScratch()
{
    thread_local DecScratch s;
    return s;
}

} // namespace

double
dec(const bb::BasicBlock &blk)
{
    return dec(blk, tlsScratch());
}

double
dec(const bb::BasicBlock &blk, DecScratch &s)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    const int nDec = cfg.nDecoders;

    std::vector<DecUnit> &units = s.units;
    units.clear();
    for (const auto &ai : blk.insts) {
        if (ai.fusedWithPrev) {
            // The fused branch rides along with its predecessor; it still
            // ends the decode group (it is a branch).
            if (!units.empty())
                units.back().branch = true;
            continue;
        }
        units.push_back({ai.info->needsComplexDecoder,
                         ai.info->nAvailableSimpleDecoders,
                         ai.info->macroFusible, ai.dec->inst.isBranch()});
    }
    if (units.empty())
        return 0.0;

    // Algorithm 1.
    int curDec = nDec - 1;
    int nAvailableSimpleDecoders = 0;
    std::vector<int> &nComplexDecInIteration = s.nComplexDecInIteration;
    nComplexDecInIteration.assign(1, 0); // index 0 unused
    std::vector<int> &firstInstrOnDecInIteration =
        s.firstInstrOnDecInIteration;
    firstInstrOnDecInIteration.assign(nDec, -1);
    int iteration = 0;

    constexpr int kMaxIterations = 256; // safety net; steady state is fast
    while (iteration < kMaxIterations) {
        ++iteration;
        nComplexDecInIteration.push_back(0);
        for (std::size_t idx = 0; idx < units.size(); ++idx) {
            const DecUnit &i = units[idx];
            if (i.complex) {
                curDec = 0;
                nAvailableSimpleDecoders = i.nAvailSimple;
            } else {
                const bool mustRestart =
                    nAvailableSimpleDecoders == 0 ||
                    (curDec + 1 == nDec - 1 && i.macroFusible &&
                     !cfg.macroFusibleOnLastDecoder);
                if (mustRestart) {
                    curDec = 0;
                    nAvailableSimpleDecoders = nDec - 1;
                } else {
                    curDec = curDec + 1;
                    nAvailableSimpleDecoders = nAvailableSimpleDecoders - 1;
                }
            }
            if (i.branch)
                nAvailableSimpleDecoders = 0;
            if (curDec == 0)
                nComplexDecInIteration[iteration] += 1;

            if (idx == 0) {
                const int f = firstInstrOnDecInIteration[curDec];
                if (f >= 0) {
                    const int u = iteration - f;
                    std::int64_t cycles = 0;
                    for (int r = f; r <= iteration - 1; ++r)
                        cycles += nComplexDecInIteration[r];
                    return static_cast<double>(cycles) /
                           static_cast<double>(u);
                }
                firstInstrOnDecInIteration[curDec] = iteration;
            }
        }
    }
    // Unreachable for sane inputs: with nDec decoders the first
    // instruction can only land on nDec distinct decoders.
    return simpleDec(blk);
}

double
simpleDec(const bb::BasicBlock &blk)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    int n = 0, c = 0;
    for (const auto &ai : blk.insts) {
        if (ai.fusedWithPrev)
            continue;
        ++n;
        if (ai.info->needsComplexDecoder)
            ++c;
    }
    return std::max(static_cast<double>(n) / cfg.nDecoders,
                    static_cast<double>(c));
}

} // namespace facile::model
