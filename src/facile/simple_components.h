/**
 * @file
 * The arithmetic component predictors: DSB (paper 4.5), LSD (4.6),
 * and Issue (4.7).
 */
#ifndef FACILE_FACILE_SIMPLE_COMPONENTS_H
#define FACILE_FACILE_SIMPLE_COMPONENTS_H

#include "bb/basic_block.h"

namespace facile::model {

/**
 * DSB (µop cache) throughput in cycles per iteration:
 * ceil(n/w) for blocks shorter than 32 bytes (after a branch, no
 * further µops from the same 32-byte window can be delivered in the
 * same cycle), n/w otherwise; n counts fused-domain µops.
 */
double dsb(const bb::BasicBlock &blk);

/**
 * LSD throughput in cycles per iteration: ceil(n*u/i)/u, where u is the
 * microarchitecture's unroll factor for an n-µop loop and i the issue
 * width. The last µop of an iteration and the first µop of the next
 * cannot be streamed in the same cycle, which the ceiling captures.
 */
double lsd(const bb::BasicBlock &blk);

/** True if the loop's µops fit into the IDQ, making it LSD-eligible. */
bool lsdEligible(const bb::BasicBlock &blk);

/**
 * Issue-stage throughput in cycles per iteration: n/i with n the
 * fused-domain µop count after unlamination.
 */
double issue(const bb::BasicBlock &blk);

} // namespace facile::model

#endif // FACILE_FACILE_SIMPLE_COMPONENTS_H
