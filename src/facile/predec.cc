#include "facile/predec.h"

#include <algorithm>

#include "support/math_util.h"

namespace facile::model {

namespace {

PredecScratch &
tlsScratch()
{
    thread_local PredecScratch s;
    return s;
}

} // namespace

double
predec(const bb::BasicBlock &blk, bool unrolled)
{
    return predec(blk, unrolled, tlsScratch());
}

double
predec(const bb::BasicBlock &blk, bool unrolled, PredecScratch &s)
{
    const std::int64_t l = blk.lengthBytes();
    if (l == 0 || blk.insts.empty())
        return 0.0;

    // Number of unrolled copies until the byte layout repeats.
    const std::int64_t u = unrolled ? lcm(l, 16) / l : 1;
    // Number of 16-byte blocks covered by u copies.
    const std::int64_t n = ceilDiv(u * l, 16);

    // Per-block instruction-instance counts.
    //   L(b):   instructions whose last byte is in block b
    //   O(b):   instructions whose nominal opcode starts in block b but
    //           whose last byte is in a later block
    //   LCP(b): LCP instructions whose nominal opcode starts in block b
    std::vector<int> &L = s.L, &O = s.O, &LCP = s.LCP;
    L.assign(n, 0);
    O.assign(n, 0);
    LCP.assign(n, 0);

    for (std::int64_t c = 0; c < u; ++c) {
        const std::int64_t base = c * l;
        for (const auto &ai : blk.insts) {
            const std::int64_t opcodeByte = base + ai.opcodePos;
            const std::int64_t lastByte = base + ai.end - 1;
            const std::int64_t bOpc = opcodeByte / 16;
            const std::int64_t bLast = lastByte / 16;
            ++L[bLast];
            if (bOpc != bLast)
                ++O[bOpc];
            if (ai.dec->lcp)
                ++LCP[bOpc];
        }
    }

    // cycleNLCP(b) = ceil((L(b) + O(b)) / 5)
    std::vector<std::int64_t> &cycleNLCP = s.cycleNLCP;
    cycleNLCP.assign(n, 0);
    for (std::int64_t b = 0; b < n; ++b)
        cycleNLCP[b] = ceilDiv(L[b] + O[b], 5);

    // cycleLCP(b) = max(0, 3*LCP(b) - (cycleNLCP(b-1) - 1)),
    // with block -1 wrapping around to block n-1 (steady state).
    std::int64_t total = 0;
    for (std::int64_t b = 0; b < n; ++b) {
        const std::int64_t prev = cycleNLCP[(b + n - 1) % n];
        const std::int64_t lcpCycles =
            std::max<std::int64_t>(0, 3 * LCP[b] - (prev - 1));
        total += cycleNLCP[b] + lcpCycles;
    }

    return static_cast<double>(total) / static_cast<double>(u);
}

double
simplePredec(const bb::BasicBlock &blk)
{
    return static_cast<double>(blk.lengthBytes()) / 16.0;
}

} // namespace facile::model
