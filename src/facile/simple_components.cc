#include "facile/simple_components.h"

#include "support/math_util.h"
#include "uarch/config.h"

namespace facile::model {

double
dsb(const bb::BasicBlock &blk)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    const int n = blk.fusedUops();
    const int w = cfg.dsbWidth;
    if (blk.lengthBytes() < 32)
        return static_cast<double>(ceilDiv(n, w));
    return static_cast<double>(n) / w;
}

bool
lsdEligible(const bb::BasicBlock &blk)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    return blk.fusedUops() <= cfg.idqWidth;
}

double
lsd(const bb::BasicBlock &blk)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    const int n = blk.fusedUops();
    if (n == 0)
        return 0.0;
    const int u = cfg.lsdUnrollFactor(n);
    const int i = cfg.issueWidth;
    return static_cast<double>(ceilDiv(static_cast<std::int64_t>(n) * u, i)) /
           static_cast<double>(u);
}

double
issue(const bb::BasicBlock &blk)
{
    const uarch::MicroArchConfig &cfg = uarch::config(blk.arch);
    return static_cast<double>(blk.issueUops()) /
           static_cast<double>(cfg.issueWidth);
}

} // namespace facile::model
