/**
 * @file
 * The Facile throughput model: combination of the component predictors
 * (paper sections 4.1 and 4.2), bottleneck identification, ablation
 * switches (Table 3), and the counterfactual "idealize one component"
 * analysis (Table 4).
 */
#ifndef FACILE_FACILE_PREDICTOR_H
#define FACILE_FACILE_PREDICTOR_H

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "bb/basic_block.h"
#include "facile/ports.h"
#include "facile/precedence.h"

namespace facile::model {

/** The potential bottleneck components. */
enum class Component : int {
    Predec = 0,
    Dec,
    DSB,
    LSD,
    Issue,
    Ports,
    Precedence,
    kNumComponents,
};

inline constexpr int kNumComponents =
    static_cast<int>(Component::kNumComponents);

/**
 * Short component name ("Predec", "Dec", ...). The view refers to
 * static, null-terminated storage, so .data() is a valid C string.
 */
std::string_view componentName(Component c);

/** Ablation switches (Table 3 variants). All-default is full Facile. */
struct ModelConfig
{
    bool usePredec = true;
    bool useDec = true;
    bool useDsb = true;
    bool useLsd = true;
    bool useIssue = true;
    bool usePorts = true;
    bool usePrecedence = true;

    /** Replace the Predec component with the SimplePredec model. */
    bool simplePredec = false;

    /** Replace the Dec component with the SimpleDec model. */
    bool simpleDec = false;

    /** Disable every component except @p c ("only X" rows of Table 3). */
    static ModelConfig only(Component c);

    /** Disable a single component ("w/o X" rows of Table 3). */
    static ModelConfig without(Component c);

    bool &flag(Component c);

    /**
     * Pack the nine switches into a stable bit pattern, used by the
     * engine's cache keys and the server wire protocol. packBits and
     * fromBits are exact inverses.
     */
    std::uint16_t packBits() const;
    static ModelConfig fromBits(std::uint16_t bits);
};

/** A throughput prediction with full interpretability payload. */
struct Prediction
{
    /** Predicted throughput in cycles per iteration. */
    double throughput = 0.0;

    /** Per-component bounds; NaN where the component was not evaluated. */
    std::array<double, kNumComponents> componentValue;

    /** Components whose bound equals the predicted throughput. */
    std::vector<Component> bottlenecks;

    /**
     * The single bottleneck under the paper's front-end-first tie-break
     * (Predec > Dec > Issue > Ports > Precedence; Figure 6).
     */
    Component primaryBottleneck = Component::Ports;

    /** Interpretability: critical dependence chain (instruction indices). */
    std::vector<int> criticalChain;

    /** Interpretability: contended ports and contending instructions. */
    uarch::PortMask contendedPorts = 0;
    std::vector<int> contendingInsts;

    /**
     * Counterfactual: throughput if @p c were infinitely fast, i.e. the
     * maximum over the remaining components (paper section 6.4).
     */
    double idealized(Component c) const;

    Prediction();
};

/** Predict TPU: throughput under unrolling (paper equation 1). */
Prediction predictUnrolled(const bb::BasicBlock &blk,
                           const ModelConfig &config = {});

/**
 * Predict TPL: throughput when executed as a loop (paper equations 2/3).
 * The front end is served by the predecoder+decoder when the block
 * triggers the JCC erratum, by the LSD when enabled and the loop fits
 * the IDQ, and by the DSB otherwise.
 */
Prediction predictLoop(const bb::BasicBlock &blk,
                       const ModelConfig &config = {});

/** Dispatch on the throughput notion. */
Prediction predict(const bb::BasicBlock &blk, bool loop,
                   const ModelConfig &config = {});

} // namespace facile::model

#endif // FACILE_FACILE_PREDICTOR_H
