/**
 * @file
 * The Facile throughput model: combination of the component predictors
 * (paper sections 4.1 and 4.2), bottleneck identification, ablation
 * switches (Table 3), and the counterfactual "idealize one component"
 * analysis (Table 4).
 *
 * Since the componentization refactor the model is evaluated through a
 * per-microarchitecture component registry (facile/component.h): each
 * bound is a ComponentPredictor, ablation configs resolve to a
 * precomputed RegistryView, and evaluation is staged (cheap arithmetic
 * bounds first, the max-cycle-ratio precedence pass last, short-
 * circuited when the dependence graph only carries self-dependences)
 * and lazy (the interpretability payload is built only on request).
 * The entry points below are thin drivers over that pipeline;
 * Prediction::throughput is bit-identical across all of them.
 */
#ifndef FACILE_FACILE_PREDICTOR_H
#define FACILE_FACILE_PREDICTOR_H

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "bb/basic_block.h"
#include "facile/ports.h"
#include "facile/precedence.h"

namespace facile::model {

/** The potential bottleneck components. */
enum class Component : int {
    Predec = 0,
    Dec,
    DSB,
    LSD,
    Issue,
    Ports,
    Precedence,
    kNumComponents,
};

inline constexpr int kNumComponents =
    static_cast<int>(Component::kNumComponents);

/**
 * Short component name ("Predec", "Dec", ...). The view refers to
 * static, null-terminated storage, so .data() is a valid C string.
 */
std::string_view componentName(Component c);

/**
 * How much of a Prediction to build.
 *
 * Bound mode fills throughput, componentValue, bottlenecks and
 * primaryBottleneck — everything the serving and evaluation paths
 * consume — and leaves the interpretability payload (criticalChain,
 * contendedPorts, contendingInsts) empty; explain() can fill it in
 * later, producing exactly the bytes a Payload::Full call would have.
 */
enum class Payload : std::uint8_t {
    None, ///< bound + bottleneck classification only (the cheap path)
    Full, ///< additionally build the interpretability payload
};

/**
 * Per-thread scratch bundle for the whole component pipeline (defined
 * in facile/component.h). One instance per thread; ownership is
 * explicit — the engine keeps one per pool worker, serial callers
 * either keep their own or use tlsPredictScratch().
 */
struct PredictScratch;

/** The calling thread's scratch (for context-less convenience calls). */
PredictScratch &tlsPredictScratch();

/** Ablation switches (Table 3 variants). All-default is full Facile. */
struct ModelConfig
{
    bool usePredec = true;
    bool useDec = true;
    bool useDsb = true;
    bool useLsd = true;
    bool useIssue = true;
    bool usePorts = true;
    bool usePrecedence = true;

    /** Replace the Predec component with the SimplePredec model. */
    bool simplePredec = false;

    /** Replace the Dec component with the SimpleDec model. */
    bool simpleDec = false;

    /** Disable every component except @p c ("only X" rows of Table 3). */
    static ModelConfig only(Component c);

    /** Disable a single component ("w/o X" rows of Table 3). */
    static ModelConfig without(Component c);

    bool &flag(Component c);

    /**
     * Pack the nine switches into a stable bit pattern, used by the
     * engine's cache keys, the server wire protocol, and the registry's
     * view table. packBits and fromBits are exact inverses.
     */
    std::uint16_t packBits() const;
    static ModelConfig fromBits(std::uint16_t bits);
};

/** A throughput prediction with optional interpretability payload. */
struct Prediction
{
    /** Predicted throughput in cycles per iteration. */
    double throughput = 0.0;

    /** Per-component bounds; NaN where the component was not evaluated. */
    std::array<double, kNumComponents> componentValue;

    /** Components whose bound equals the predicted throughput. */
    std::vector<Component> bottlenecks;

    /**
     * The single bottleneck under the paper's front-end-first tie-break
     * (Figure 6). The full priority order over all seven components is
     * Predec > Dec > DSB > LSD > Issue > Ports > Precedence — the two
     * µop-delivery components DSB and LSD sit between the legacy decode
     * pipe and the back end, i.e. still front-end-before-back-end; see
     * bottleneckPriority().
     */
    Component primaryBottleneck = Component::Ports;

    /**
     * Interpretability: critical dependence chain (instruction indices).
     * Filled under Payload::Full or by explain(); empty otherwise.
     */
    std::vector<int> criticalChain;

    /**
     * Interpretability: contended ports and contending instructions.
     * Filled under Payload::Full or by explain(); empty otherwise.
     */
    uarch::PortMask contendedPorts = 0;
    std::vector<int> contendingInsts;

    /**
     * Counterfactual: throughput if @p c were infinitely fast, i.e. the
     * maximum over the remaining components (paper section 6.4).
     */
    double idealized(Component c) const;

    Prediction();
};

/**
 * The tie-break priority used to pick primaryBottleneck, front end
 * first: Predec, Dec, DSB, LSD, Issue, Ports, Precedence.
 * Prediction::bottlenecks is listed in this order.
 */
const std::array<Component, kNumComponents> &bottleneckPriority();

/**
 * Predict TPU: throughput under unrolling (paper equation 1). Builds
 * the full interpretability payload (the paper-facing default).
 */
Prediction predictUnrolled(const bb::BasicBlock &blk,
                           const ModelConfig &config = {});

/**
 * Predict TPL: throughput when executed as a loop (paper equations 2/3).
 * The front end is served by the predecoder+decoder when the block
 * triggers the JCC erratum, by the LSD when enabled and the loop fits
 * the IDQ, and by the DSB otherwise. Builds the full payload.
 */
Prediction predictLoop(const bb::BasicBlock &blk,
                       const ModelConfig &config = {});

/** Dispatch on the throughput notion. Builds the full payload. */
Prediction predict(const bb::BasicBlock &blk, bool loop,
                   const ModelConfig &config = {});

/**
 * The explicit-context entry point used by the serving paths: predict
 * with caller-owned scratch, building only as much of the Prediction
 * as @p payload asks for. Payload::None is the engine/server default —
 * throughput, componentValue and the bottleneck classification are
 * bit-identical to the payload-building overloads above.
 */
Prediction predict(const bb::BasicBlock &blk, bool loop,
                   const ModelConfig &config, PredictScratch &scratch,
                   Payload payload = Payload::None);

/**
 * Fill the interpretability payload of @p p in place, as if it had
 * been predicted with Payload::Full: criticalChain, contendedPorts and
 * contendingInsts become byte-identical to an eager full prediction of
 * the same (block, notion, config). @p p must come from a predict call
 * on the same block and config.
 */
void explain(const bb::BasicBlock &blk, const ModelConfig &config,
             PredictScratch &scratch, Prediction &p);

} // namespace facile::model

#endif // FACILE_FACILE_PREDICTOR_H
