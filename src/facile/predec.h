/**
 * @file
 * Predecoder throughput predictor (paper section 4.3).
 *
 * The predecoder fetches aligned 16-byte blocks from the instruction
 * cache and identifies up to five instruction starts per cycle. Penalties
 * arise when more than five instructions end in one block, when an
 * instruction straddles a block boundary (modeled through the O(b)
 * opcode-position counts), and — at three cycles each — for instructions
 * with a length-changing prefix (LCP).
 */
#ifndef FACILE_FACILE_PREDEC_H
#define FACILE_FACILE_PREDEC_H

#include <cstdint>
#include <vector>

#include "bb/basic_block.h"

namespace facile::model {

/**
 * Reusable workspace for predec(); capacity persists across calls so
 * steady-state predecode analysis allocates nothing. One scratch may
 * not be shared between threads; treat the fields as opaque.
 */
struct PredecScratch
{
    std::vector<int> L, O, LCP;
    std::vector<std::int64_t> cycleNLCP;
};

/**
 * Steady-state predecoder throughput in cycles per iteration.
 *
 * @param blk the analyzed basic block
 * @param unrolled true for the TPU notion (the block is replicated
 *        contiguously; alignment shifts per copy and the analysis spans
 *        u = lcm(l,16)/l copies), false for TPL (the block sits at a
 *        fixed 16-byte-aligned address)
 */
double predec(const bb::BasicBlock &blk, bool unrolled);

/** As above, with caller-owned scratch (zero steady-state allocation). */
double predec(const bb::BasicBlock &blk, bool unrolled,
              PredecScratch &scratch);

/**
 * Simple predecoder model: one 16-byte block per cycle, i.e. l/16
 * (paper's SimplePredec comparison model).
 */
double simplePredec(const bb::BasicBlock &blk);

} // namespace facile::model

#endif // FACILE_FACILE_PREDEC_H
