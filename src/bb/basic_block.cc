#include "bb/basic_block.h"

#include <utility>

#include "isa/encoder.h"

namespace facile::bb {

int
BasicBlock::fusedUops() const
{
    int n = 0;
    for (const auto &ai : insts)
        n += ai.info.fusedUops;
    return n;
}

int
BasicBlock::issueUops() const
{
    int n = 0;
    for (const auto &ai : insts)
        n += ai.info.issueUops;
    return n;
}

bool
BasicBlock::touchesJccErratumBoundary() const
{
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const AnnotatedInst &ai = insts[i];
        if (!ai.dec.inst.isBranch())
            continue;
        // For a macro-fused pair, the fused unit starts at the first
        // instruction of the pair.
        int start = ai.start;
        if (ai.fusedWithPrev && i > 0)
            start = insts[i - 1].start;
        int lastByte = ai.end - 1;
        if (start / 32 != lastByte / 32 || ai.end % 32 == 0)
            return true;
    }
    return false;
}

BasicBlock
analyze(std::vector<std::uint8_t> bytes, uarch::UArch arch)
{
    const uarch::MicroArchConfig &cfg = uarch::config(arch);

    BasicBlock blk;
    blk.bytes = std::move(bytes);
    blk.arch = arch;

    std::size_t pos = 0;
    while (pos < blk.bytes.size()) {
        AnnotatedInst ai;
        ai.dec = isa::decodeOne(blk.bytes.data(), blk.bytes.size(), pos);
        ai.start = static_cast<int>(pos);
        ai.opcodePos = static_cast<int>(pos) + ai.dec.opcodeOffset;
        ai.end = static_cast<int>(pos) + ai.dec.length;
        ai.info = uops::lookup(ai.dec.inst, cfg);
        pos += ai.dec.length;
        blk.insts.push_back(std::move(ai));
    }

    // Macro-fusion pairing: fold a fusible instruction and the directly
    // following conditional branch into one unit. The combined unit lives
    // in the first instruction; the branch is marked fusedWithPrev and
    // carries no µops of its own.
    for (std::size_t i = 0; i + 1 < blk.insts.size(); ++i) {
        AnnotatedInst &first = blk.insts[i];
        AnnotatedInst &second = blk.insts[i + 1];
        if (first.fusedWithPrev || !first.info.macroFusible)
            continue;
        if (!uops::macroFusesWith(first.dec.inst, second.dec.inst, cfg))
            continue;

        uops::InstrInfo branchInfo = second.info;

        // The pair executes as a single µop on the branch ports; a
        // micro-fused load of the first instruction is retained.
        uops::InstrInfo merged = first.info;
        std::vector<uops::Uop> uops;
        for (const auto &u : merged.portUops)
            if (u.kind != uops::UopKind::Compute)
                uops.push_back(u);
        for (const auto &u : branchInfo.portUops)
            uops.push_back(u);
        merged.portUops = std::move(uops);
        // Fused-domain counts stay those of the first instruction: the
        // branch no longer occupies a decode, issue, or retire slot.
        first.info = std::move(merged);

        second.fusedWithPrev = true;
        second.info.fusedUops = 0;
        second.info.issueUops = 0;
        second.info.portUops.clear();
        second.info.needsComplexDecoder = false;
        ++i; // a branch cannot itself start another pair
    }

    return blk;
}

BasicBlock
analyze(const std::vector<isa::Inst> &insts, uarch::UArch arch)
{
    return analyze(isa::encodeBlock(insts), arch);
}

} // namespace facile::bb
