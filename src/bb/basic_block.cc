#include "bb/basic_block.h"

#include <utility>

#include "isa/encoder.h"

namespace facile::bb {

int
BasicBlock::fusedUops() const
{
    if (cachedFusedUops >= 0)
        return cachedFusedUops;
    int n = 0;
    for (const auto &ai : insts)
        n += ai.info->fusedUops;
    return n;
}

int
BasicBlock::issueUops() const
{
    if (cachedIssueUops >= 0)
        return cachedIssueUops;
    int n = 0;
    for (const auto &ai : insts)
        n += ai.info->issueUops;
    return n;
}

bool
BasicBlock::touchesJccErratumBoundary() const
{
    if (cachedJccTouch >= 0)
        return cachedJccTouch != 0;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const AnnotatedInst &ai = insts[i];
        if (!ai.dec->inst.isBranch())
            continue;
        // For a macro-fused pair, the fused unit starts at the first
        // instruction of the pair.
        int start = ai.start;
        if (ai.fusedWithPrev && i > 0)
            start = insts[i - 1].start;
        int lastByte = ai.end - 1;
        if (start / 32 != lastByte / 32 || ai.end % 32 == 0)
            return true;
    }
    return false;
}

uops::InstrInfo &
BasicBlock::mutableInfo(std::size_t i)
{
    if (!ownedRecords)
        ownedRecords = std::make_shared<std::deque<analysis::InstRecord>>();
    analysis::InstRecord rec;
    rec.dec = *insts[i].dec;
    rec.info = *insts[i].info;
    const bool hadRw = insts[i].rw != nullptr;
    if (hadRw)
        rec.rw = *insts[i].rw;
    ownedRecords->push_back(std::move(rec));
    insts[i].dec = &ownedRecords->back().dec;
    insts[i].info = &ownedRecords->back().info;
    insts[i].rw = hadRw ? &ownedRecords->back().rw : nullptr;
    insts[i].rec = nullptr; // no longer the canonical interned record
    cachedFusedUops = cachedIssueUops = -1; // counts may change
    return ownedRecords->back().info;
}

namespace {

/**
 * InternMode::Off record source: fresh per-instruction decode and
 * lookups stored in the block's own deque — behaviorally the
 * pre-interning path, used by tests to certify that interning changes
 * nothing and by bench_coldpath as the before/after baseline. Read/
 * write sets are deliberately NOT precomputed (rw stays null on the
 * annotation): the pre-interning code computed them per consumer call,
 * and the consumers' fallback reproduces exactly that.
 */
const analysis::InstRecord *
freshRecord(BasicBlock &blk, std::size_t pos,
            const uarch::MicroArchConfig &cfg)
{
    analysis::InstRecord rec;
    rec.dec = isa::decodeOne(blk.bytes.data(), blk.bytes.size(), pos);
    rec.info = uops::lookup(rec.dec.inst, cfg);
    blk.ownedRecords->push_back(std::move(rec));
    return &blk.ownedRecords->back();
}

} // namespace

BasicBlock
analyze(std::vector<std::uint8_t> bytes, uarch::UArch arch, InternMode mode)
{
    const uarch::MicroArchConfig &cfg = uarch::config(arch);
    const bool interned = mode == InternMode::Shared;
    analysis::InstInterner &interner = analysis::InstInterner::forArch(arch);

    BasicBlock blk;
    blk.bytes = std::move(bytes);
    blk.arch = arch;
    if (!interned)
        blk.ownedRecords =
            std::make_shared<std::deque<analysis::InstRecord>>();
    else
        // Typical x86 instructions are 3-4 bytes; one growth step at
        // most. (Interned mode only: the Off baseline reproduces the
        // pre-interning analysis, which grew the vector organically.)
        blk.insts.reserve(blk.bytes.size() / 3 + 1);

    std::size_t pos = 0;
    while (pos < blk.bytes.size()) {
        const analysis::InstRecord *rec =
            interned
                ? interner.internAt(blk.bytes.data(), blk.bytes.size(), pos)
                : freshRecord(blk, pos, cfg);
        AnnotatedInst ai;
        ai.dec = &rec->dec;
        ai.info = &rec->info;
        ai.rw = interned ? &rec->rw : nullptr;
        ai.rec = interned ? rec : nullptr;
        ai.start = static_cast<int>(pos);
        ai.opcodePos = static_cast<int>(pos) + rec->dec.opcodeOffset;
        ai.end = static_cast<int>(pos) + rec->dec.length;
        pos += rec->dec.length;
        blk.insts.push_back(ai);
    }

    // Macro-fusion pairing: fold a fusible instruction and the directly
    // following conditional branch into one unit. The combined unit lives
    // in the first instruction; the branch is marked fusedWithPrev and
    // carries no µops of its own. The derived records are interned on
    // the pair identity (or block-owned when interning is off).
    for (std::size_t i = 0; i + 1 < blk.insts.size(); ++i) {
        AnnotatedInst &first = blk.insts[i];
        AnnotatedInst &second = blk.insts[i + 1];
        if (first.fusedWithPrev || !first.info->macroFusible)
            continue;
        // Interned records carry the pair check precomputed; the Off
        // path keeps the original per-pair derivation.
        const bool fuses =
            first.rec && second.rec
                ? analysis::fusesWith(*first.rec, *second.rec)
                : uops::macroFusesWith(first.dec->inst, second.dec->inst,
                                       cfg);
        if (!fuses)
            continue;

        if (interned) {
            // The base records are canonical arena pointers, so the
            // pair of pointers identifies the fused variants.
            analysis::FusedRecords fr =
                interner.internFused(first.rec, second.rec);
            first.rec = fr.first;
            first.info = &fr.first->info;
            first.rw = &fr.first->rw;
            second.rec = fr.second;
            second.info = &fr.second->info;
            second.rw = &fr.second->rw;
        } else {
            // The pair executes as a single µop on the branch ports; a
            // micro-fused load of the first instruction is retained.
            uops::InstrInfo merged = *first.info;
            std::vector<uops::Uop> uops;
            for (const auto &u : merged.portUops)
                if (u.kind != uops::UopKind::Compute)
                    uops.push_back(u);
            for (const auto &u : second.info->portUops)
                uops.push_back(u);
            merged.portUops = std::move(uops);
            // Fused-domain counts stay those of the first instruction:
            // the branch no longer occupies a decode, issue, or retire
            // slot. Off-mode records are exclusively block-owned (one
            // per instruction, in order) and not yet shared, so mutate
            // them in place — the annotation pointers already target
            // them.
            uops::InstrInfo &firstInfo = (*blk.ownedRecords)[i].info;
            firstInfo = std::move(merged);

            uops::InstrInfo &secondInfo = (*blk.ownedRecords)[i + 1].info;
            secondInfo.fusedUops = 0;
            secondInfo.issueUops = 0;
            secondInfo.portUops.clear();
            secondInfo.needsComplexDecoder = false;
        }

        second.fusedWithPrev = true;
        ++i; // a branch cannot itself start another pair
    }

    // Precompute the block-level µop totals (one pass here instead of
    // one per component on every predict). Interned analysis only:
    // InternMode::Off reproduces the pre-interning behavior, which
    // summed on every use.
    if (interned) {
        int fused = 0, issue = 0;
        for (const auto &ai : blk.insts) {
            fused += ai.info->fusedUops;
            issue += ai.info->issueUops;
        }
        blk.cachedFusedUops = fused;
        blk.cachedIssueUops = issue;
        // The JCC-boundary test is layout-only; compute it once (after
        // fusion pairing, which moves a fused pair's start) instead of
        // rescanning on every TPL predict.
        const bool jcc = blk.touchesJccErratumBoundary();
        blk.cachedJccTouch = jcc ? 1 : 0;
    }

    return blk;
}

BasicBlock
analyze(const std::vector<isa::Inst> &insts, uarch::UArch arch,
        InternMode mode)
{
    return analyze(isa::encodeBlock(insts), arch, mode);
}

} // namespace facile::bb
