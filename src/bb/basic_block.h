/**
 * @file
 * Basic-block representation used by all predictors.
 *
 * A BasicBlock bundles the raw bytes, the decoded instructions with
 * their byte-layout facts, and the per-instruction characteristics
 * resolved against one microarchitecture — including macro-fusion
 * pairing, which merges a fusible instruction with a directly
 * following conditional branch into a single unit for everything
 * downstream of the instruction queue.
 *
 * Annotations are *interned*: an AnnotatedInst points at an immutable
 * InstRecord in the process-wide per-arch instruction cache
 * (src/analysis/intern.h), so analyzing a never-seen block reuses the
 * µop decomposition and read/write sets of every instruction seen
 * before in any block, and allocates nothing per instruction.
 */
#ifndef FACILE_BB_BASIC_BLOCK_H
#define FACILE_BB_BASIC_BLOCK_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "analysis/intern.h"
#include "isa/decoder.h"
#include "uarch/config.h"
#include "uops/info.h"

namespace facile::bb {

/** One instruction with layout and microarchitectural annotations. */
struct AnnotatedInst
{
    /**
     * Decoded form plus byte-layout facts. Same interned lifetime and
     * ownership as info/rw below (decode results are memoized per
     * instruction encoding, not recomputed per block).
     */
    const isa::DecodedInst *dec = nullptr;

    /**
     * Characteristics of the instruction on the block's µarch. Points
     * into the process-wide intern arena (or, for blocks analyzed with
     * InternMode::Off or locally mutated annotations, into the block's
     * ownedRecords). Never null on an analyzed block; immutable through
     * this pointer — use BasicBlock::mutableInfo to change a copy.
     */
    const uops::InstrInfo *info = nullptr;

    /**
     * Precomputed read/write sets of the instruction (same lifetime and
     * ownership as info). Unaffected by macro-fusion: each instruction
     * of a fused pair keeps its own architectural semantics. Null on
     * InternMode::Off blocks — consumers (precedence, sim) fall back to
     * computing the sets per call, exactly like the pre-interning code.
     */
    const isa::RwSets *rw = nullptr;

    /**
     * The interned base record behind info/rw — the instruction's
     * canonical identity in the per-arch arena, used to key derived
     * (macro-fused) variants. Null on InternMode::Off blocks and after
     * mutableInfo.
     */
    const analysis::InstRecord *rec = nullptr;

    /** Byte offset of the instruction within the block. */
    int start = 0;

    /** Byte offset of the nominal opcode within the block. */
    int opcodePos = 0;

    /** Byte offset one past the last byte. */
    int end = 0;

    /**
     * True if this (conditional branch) instruction is macro-fused with
     * the preceding instruction. Its µop counts have been folded into
     * the predecessor; components that count instructions skip it.
     */
    bool fusedWithPrev = false;
};

/** Whether analysis may use the process-wide instruction intern cache. */
enum class InternMode {
    Shared, ///< default: annotations point into the per-arch arena
    Off,    ///< fresh lookups, block-owned records (testing / baselines)
};

/** A basic block analyzed for one microarchitecture. */
struct BasicBlock
{
    std::vector<std::uint8_t> bytes;
    std::vector<AnnotatedInst> insts;
    uarch::UArch arch;

    /**
     * Block-owned annotation records: filled by InternMode::Off
     * analysis and by mutableInfo. A std::deque for pointer stability;
     * shared_ptr so copied blocks keep their annotation pointers valid
     * (copies share the storage — copying is cheap and safe, but
     * concurrent mutableInfo calls on copies sharing storage are not).
     */
    std::shared_ptr<std::deque<analysis::InstRecord>> ownedRecords;

    /**
     * Block-level µop totals, precomputed by analyze() so the DSB /
     * LSD / Issue components don't re-sum the annotations on every
     * predict. -1 = not cached (hand-built blocks, or after
     * mutableInfo) — the accessors then fall back to summing.
     */
    int cachedFusedUops = -1;
    int cachedIssueUops = -1;

    /**
     * Precomputed touchesJccErratumBoundary() (layout-only, so never
     * invalidated by mutableInfo). -1 = not cached (hand-built blocks)
     * — the accessor then falls back to scanning the instructions.
     */
    std::int8_t cachedJccTouch = -1;

    int lengthBytes() const { return static_cast<int>(bytes.size()); }

    bool
    endsInBranch() const
    {
        return !insts.empty() && insts.back().dec->inst.isBranch();
    }

    /** Fused-domain µops at decode (DSB/LSD counting, paper 4.5/4.6). */
    int fusedUops() const;

    /** Fused-domain µops after unlamination (Issue counting, paper 4.7). */
    int issueUops() const;

    /**
     * True if a branch instruction (or a macro-fused pair ending in one)
     * crosses or ends on a 32-byte boundary, assuming the block is placed
     * at a 32-byte-aligned address — the JCC-erratum trigger condition.
     */
    bool touchesJccErratumBoundary() const;

    /**
     * Copy-on-write escape hatch for consumers that must perturb an
     * annotation (e.g. the CQA-like baseline's latency clamp): copies
     * instruction @p i's record into ownedRecords, repoints insts[i] at
     * the copy, and returns it mutable. The shared intern arena is
     * never written through.
     */
    uops::InstrInfo &mutableInfo(std::size_t i);
};

/**
 * Decode @p bytes and annotate every instruction for @p arch, applying
 * macro-fusion pairing. Taken by value and moved into the block, so
 * callers with an expiring buffer pay no copy.
 *
 * @throws isa::DecodeError on malformed input.
 */
BasicBlock analyze(std::vector<std::uint8_t> bytes, uarch::UArch arch,
                   InternMode mode = InternMode::Shared);

/** Convenience: encode @p insts and analyze the result. */
BasicBlock analyze(const std::vector<isa::Inst> &insts, uarch::UArch arch,
                   InternMode mode = InternMode::Shared);

} // namespace facile::bb

#endif // FACILE_BB_BASIC_BLOCK_H
