/**
 * @file
 * Basic-block representation used by all predictors.
 *
 * A BasicBlock bundles the raw bytes, the decoded instructions with
 * their byte-layout facts, and the per-instruction characteristics
 * resolved against one microarchitecture — including macro-fusion
 * pairing, which merges a fusible instruction with a directly
 * following conditional branch into a single unit for everything
 * downstream of the instruction queue.
 */
#ifndef FACILE_BB_BASIC_BLOCK_H
#define FACILE_BB_BASIC_BLOCK_H

#include <cstdint>
#include <vector>

#include "isa/decoder.h"
#include "uarch/config.h"
#include "uops/info.h"

namespace facile::bb {

/** One instruction with layout and microarchitectural annotations. */
struct AnnotatedInst
{
    isa::DecodedInst dec;
    uops::InstrInfo info;

    /** Byte offset of the instruction within the block. */
    int start = 0;

    /** Byte offset of the nominal opcode within the block. */
    int opcodePos = 0;

    /** Byte offset one past the last byte. */
    int end = 0;

    /**
     * True if this (conditional branch) instruction is macro-fused with
     * the preceding instruction. Its µop counts have been folded into
     * the predecessor; components that count instructions skip it.
     */
    bool fusedWithPrev = false;
};

/** A basic block analyzed for one microarchitecture. */
struct BasicBlock
{
    std::vector<std::uint8_t> bytes;
    std::vector<AnnotatedInst> insts;
    uarch::UArch arch;

    int lengthBytes() const { return static_cast<int>(bytes.size()); }

    bool
    endsInBranch() const
    {
        return !insts.empty() && insts.back().dec.inst.isBranch();
    }

    /** Fused-domain µops at decode (DSB/LSD counting, paper 4.5/4.6). */
    int fusedUops() const;

    /** Fused-domain µops after unlamination (Issue counting, paper 4.7). */
    int issueUops() const;

    /**
     * True if a branch instruction (or a macro-fused pair ending in one)
     * crosses or ends on a 32-byte boundary, assuming the block is placed
     * at a 32-byte-aligned address — the JCC-erratum trigger condition.
     */
    bool touchesJccErratumBoundary() const;
};

/**
 * Decode @p bytes and annotate every instruction for @p arch, applying
 * macro-fusion pairing. Taken by value and moved into the block, so
 * callers with an expiring buffer pay no copy.
 *
 * @throws isa::DecodeError on malformed input.
 */
BasicBlock analyze(std::vector<std::uint8_t> bytes, uarch::UArch arch);

/** Convenience: encode @p insts and analyze the result. */
BasicBlock analyze(const std::vector<isa::Inst> &insts, uarch::UArch arch);

} // namespace facile::bb

#endif // FACILE_BB_BASIC_BLOCK_H
