/**
 * @file
 * Deterministic pseudo-random number generator (PCG32).
 *
 * The benchmark-suite generator must be reproducible across platforms and
 * standard-library versions, so we avoid std::mt19937 + distribution objects
 * (whose outputs are implementation-defined for distributions) and ship a
 * tiny, fully specified generator instead.
 */
#ifndef FACILE_SUPPORT_RNG_H
#define FACILE_SUPPORT_RNG_H

#include <cstdint>
#include <vector>

namespace facile {

/** PCG32 (Melissa O'Neill's pcg32_random_r), fixed stream constant. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(0), inc_((54u << 1) | 1u)
    {
        next();
        state_ += seed;
        next();
    }

    /** Uniform 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Uniform 64-bit value (two next() draws, high word first). */
    std::uint64_t
    next64()
    {
        std::uint64_t hi = next();
        return (hi << 32) | next();
    }

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /**
     * Uniform integer in [0, bound) via 64-bit rejection sampling.
     * bound == 0 means the full 2^64 range.
     */
    std::uint64_t
    below64(std::uint64_t bound)
    {
        if (bound == 0)
            return next64();
        if (bound <= 1)
            return 0;
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /**
     * Uniform integer in [lo, hi] inclusive; requires lo <= hi.
     *
     * Spans that fit in 32 bits draw exactly one below() sample, keeping
     * the historical output sequence (the deterministic BHive suite).
     * Wider spans — including hi - lo + 1 overflowing int64, where the
     * unsigned span wraps to 0 and encodes the full 2^64 range — sample
     * in 64 bits instead of silently truncating the span to uint32.
     */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        std::uint64_t span = static_cast<std::uint64_t>(hi) -
                             static_cast<std::uint64_t>(lo) + 1;
        if (span != 0 && span <= 0xffffffffULL)
            return lo + static_cast<std::int64_t>(
                            below(static_cast<std::uint32_t>(span)));
        return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                         below64(span));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** True with probability p. */
    bool chance(double p) { return uniform() < p; }

    /** Pick a uniformly random element from a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        return v[below(static_cast<std::uint32_t>(v.size()))];
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace facile

#endif // FACILE_SUPPORT_RNG_H
