/**
 * @file
 * Accuracy metrics used by the evaluation (paper section 6.2):
 * mean absolute percentage error and Kendall's tau rank correlation.
 */
#ifndef FACILE_SUPPORT_STATS_H
#define FACILE_SUPPORT_STATS_H

#include <cstddef>
#include <vector>

namespace facile {

/**
 * Mean Absolute Percentage Error over pairs of (measured, predicted)
 * throughputs, as defined in the paper:
 *   MAPE(S) = (1/n) * sum |m_i - p_i| / m_i.
 * Pairs with measured value zero are skipped (the relative error is
 * undefined for them); the number of skipped pairs is reported through
 * @p skipped when non-null. If no pair survives — all-zero measured
 * input, or empty vectors — the metric is undefined and NaN is
 * returned, never a (vacuously perfect) 0.
 */
double mape(const std::vector<double> &measured,
            const std::vector<double> &predicted,
            std::size_t *skipped = nullptr);

/**
 * Kendall's tau-b rank correlation coefficient.
 *
 * Computed in O(n log n) with Knight's algorithm (merge-sort inversion
 * counting), with the tau-b tie correction, which is what scipy's
 * kendalltau — used by the paper's evaluation scripts — reports.
 */
double kendallTau(const std::vector<double> &x, const std::vector<double> &y);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Geometric mean; 0 for an empty vector. Values must be positive. */
double geoMean(const std::vector<double> &v);

/** p-th percentile (0..100) using linear interpolation; 0 if empty. */
double percentile(std::vector<double> v, double p);

} // namespace facile

#endif // FACILE_SUPPORT_STATS_H
