#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace facile {

double
mape(const std::vector<double> &measured, const std::vector<double> &predicted,
     std::size_t *skipped)
{
    if (measured.size() != predicted.size())
        throw std::invalid_argument("mape: size mismatch");
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < measured.size(); ++i) {
        if (measured[i] == 0.0)
            continue;
        sum += std::abs(measured[i] - predicted[i]) / measured[i];
        ++n;
    }
    if (skipped)
        *skipped = measured.size() - n;
    if (n == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return sum / static_cast<double>(n);
}

namespace {

/**
 * Count inversions in v (number of index pairs i<j with v[i] > v[j])
 * via bottom-up merge sort. v is sorted in place.
 */
std::int64_t
countInversions(std::vector<double> &v)
{
    std::int64_t inversions = 0;
    std::vector<double> buf(v.size());
    for (std::size_t width = 1; width < v.size(); width *= 2) {
        for (std::size_t left = 0; left + width < v.size(); left += 2 * width) {
            std::size_t mid = left + width;
            std::size_t right = std::min(left + 2 * width, v.size());
            std::size_t i = left, j = mid, k = left;
            while (i < mid && j < right) {
                if (v[i] <= v[j]) {
                    buf[k++] = v[i++];
                } else {
                    inversions += static_cast<std::int64_t>(mid - i);
                    buf[k++] = v[j++];
                }
            }
            while (i < mid)
                buf[k++] = v[i++];
            while (j < right)
                buf[k++] = v[j++];
            std::copy(buf.begin() + left, buf.begin() + right,
                      v.begin() + left);
        }
    }
    return inversions;
}

/** Sum over groups of equal values of g*(g-1)/2. Input must be sorted. */
std::int64_t
tiedPairs(const std::vector<double> &sorted)
{
    std::int64_t ties = 0;
    std::size_t i = 0;
    while (i < sorted.size()) {
        std::size_t j = i;
        while (j < sorted.size() && sorted[j] == sorted[i])
            ++j;
        std::int64_t g = static_cast<std::int64_t>(j - i);
        ties += g * (g - 1) / 2;
        i = j;
    }
    return ties;
}

} // namespace

double
kendallTau(const std::vector<double> &x, const std::vector<double> &y)
{
    if (x.size() != y.size())
        throw std::invalid_argument("kendallTau: size mismatch");
    const std::size_t n = x.size();
    if (n < 2)
        return 0.0;

    // Sort pairs by x, breaking ties by y.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (x[a] != x[b])
            return x[a] < x[b];
        return y[a] < y[b];
    });

    std::vector<double> xs(n), ys(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = x[order[i]];
        ys[i] = y[order[i]];
    }

    // Joint ties: pairs tied in both x and y.
    std::int64_t tiesXY = 0;
    {
        std::size_t i = 0;
        while (i < n) {
            std::size_t j = i;
            while (j < n && xs[j] == xs[i] && ys[j] == ys[i])
                ++j;
            std::int64_t g = static_cast<std::int64_t>(j - i);
            tiesXY += g * (g - 1) / 2;
            i = j;
        }
    }

    std::int64_t tiesX = tiedPairs(xs);

    // Discordant pairs among x-distinct pairs = inversions of y in x-order.
    std::vector<double> ysCopy = ys;
    std::int64_t discordant = countInversions(ysCopy);
    // ysCopy is now sorted; count y ties on it.
    std::int64_t tiesY = tiedPairs(ysCopy);

    const std::int64_t total =
        static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n - 1) / 2;

    // Knight's algorithm bookkeeping (tau-b):
    //   concordant + discordant = total - tiesX - tiesY + tiesXY
    const double num = static_cast<double>(total - tiesX - tiesY + tiesXY) -
                       2.0 * static_cast<double>(discordant);
    const double den =
        std::sqrt(static_cast<double>(total - tiesX)) *
        std::sqrt(static_cast<double>(total - tiesY));
    if (den == 0.0)
        return 0.0;
    return num / den;
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
}

double
geoMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double logSum = 0.0;
    for (double e : v)
        logSum += std::log(e);
    return std::exp(logSum / static_cast<double>(v.size()));
}

double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v[0];
    double rank = p / 100.0 * static_cast<double>(v.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, v.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
}

} // namespace facile
