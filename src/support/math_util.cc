#include "support/math_util.h"

#include <cmath>

namespace facile {

double
round2(double v)
{
    return std::round(v * 100.0) / 100.0;
}

} // namespace facile
