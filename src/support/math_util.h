/**
 * @file
 * Small integer/rational math helpers used throughout the Facile model.
 */
#ifndef FACILE_SUPPORT_MATH_UTIL_H
#define FACILE_SUPPORT_MATH_UTIL_H

#include <cstdint>
#include <numeric>

namespace facile {

/** Ceiling division of two positive integers. */
constexpr std::int64_t
ceilDiv(std::int64_t num, std::int64_t den)
{
    return (num + den - 1) / den;
}

/** Least common multiple (behaves like std::lcm, wrapped for readability). */
constexpr std::int64_t
lcm(std::int64_t a, std::int64_t b)
{
    return std::lcm(a, b);
}

/**
 * Round a throughput value to two decimal digits.
 *
 * The paper rounds both measurements and predictions to two decimals
 * before computing error metrics; all published numbers follow this
 * convention, so we reproduce it exactly.
 */
double round2(double v);

} // namespace facile

#endif // FACILE_SUPPORT_MATH_UTIL_H
