/**
 * @file
 * Cycle-level reference pipeline simulator — the measurement substitute.
 *
 * Plays the role hardware measurements (and uiCA's validated simulation)
 * play in the paper: the ground truth all predictors are scored against.
 * It models the pipeline of Figure 1 structurally, cycle by cycle:
 *
 *   front end:  16-byte fetch windows -> 5-wide predecode with LCP
 *               stalls -> instruction queue -> 1 complex + k simple
 *               decoders with macro-fusion steering; or the DSB
 *               (w µops/cycle, 32-byte-window rule); or the LSD
 *               (locked loop with hardware unrolling)
 *   back end:   rename/issue (width-limited, unlamination, move
 *               elimination, stack engine) -> reservation station ->
 *               per-port dispatch, oldest-ready-first, with real
 *               latencies -> in-order retirement through the ROB
 *
 * The simulator shares the microarchitecture configurations and the
 * instruction database with Facile but none of Facile's analytical
 * shortcuts; its throughput emerges from the cycle-by-cycle interaction
 * of all components and buffers.
 */
#ifndef FACILE_SIM_PIPELINE_H
#define FACILE_SIM_PIPELINE_H

#include "bb/basic_block.h"

namespace facile::sim {

/** Simulation outcome. */
struct SimResult
{
    /** Steady-state throughput in cycles per iteration. */
    double cyclesPerIteration = 0.0;

    /** Number of iterations used for the steady-state window. */
    int measuredIterations = 0;

    /** Front-end source used in steady state. */
    enum class FeMode { Legacy, Dsb, Lsd } feMode = FeMode::Legacy;
};

/**
 * Simulate repeated execution of @p blk on the microarchitecture it was
 * analyzed for.
 *
 * @param loop true for the TPL notion (block ends in a branch and is
 *        executed as a loop: DSB/LSD-fed unless the JCC erratum bites);
 *        false for TPU (block replicated back to back, legacy-decode-fed)
 */
SimResult simulate(const bb::BasicBlock &blk, bool loop);

/** Convenience: the throughput value only. */
double measuredThroughput(const bb::BasicBlock &blk, bool loop);

} // namespace facile::sim

#endif // FACILE_SIM_PIPELINE_H
