#include "sim/pipeline.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <limits>

#include "isa/semantics.h"
#include "uarch/config.h"

namespace facile::sim {

namespace {

using bb::AnnotatedInst;
using bb::BasicBlock;
using uarch::MicroArchConfig;
using uarch::PortMask;
using uops::UopKind;

constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max() / 4;

/** An unfused µop in flight. */
struct ExecUop
{
    PortMask ports = 0;
    int latency = 1;
    std::int64_t baseReady = 0;     ///< earliest dispatch from static inputs
    std::int64_t completesAt = kNever;
    std::vector<int> deps;          ///< producer exec-µop ids
    bool dispatched = false;
};

/** A renamed instruction occupying ROB slots. */
struct RobEntry
{
    int iteration = 0;
    int firstExec = -1;
    int nExec = 0;
    int slots = 1; ///< issue-domain µops (ROB occupancy)
    bool lastOfIteration = false;
};

/**
 * Per-instruction static decomposition into exec µops with dependence
 * templates against abstract values.
 */
struct InstTemplate
{
    struct ExecTemplate
    {
        PortMask ports;
        int latency;
        UopKind kind;
        std::vector<int> readValues;
        bool dependsOnLoad = false;
        bool dependsOnPrevCompute = false;
    };

    std::vector<ExecTemplate> exec;
    std::vector<int> writeValues;
    int writeLatencySourceUop = -1;
    int fusedUops = 1;
    int issueUops = 1;
    bool eliminated = false;
    bool moveElimCopy = false;
    int moveSrcValue = -1;
    bool skipped = false; ///< macro-fused into predecessor
};

InstTemplate
buildTemplate(const AnnotatedInst &ai, const MicroArchConfig &cfg)
{
    InstTemplate t;
    const auto &info = *ai.info;
    t.fusedUops = info.fusedUops;
    t.issueUops = info.issueUops;
    t.eliminated = info.eliminated;
    if (ai.fusedWithPrev && info.fusedUops == 0) {
        t.skipped = true;
        return t;
    }

    // Interned blocks carry precomputed read/write sets; fall back to
    // computing them for hand-built blocks.
    isa::RwSets rwLocal;
    if (!ai.rw)
        isa::instRw(ai.dec->inst, rwLocal);
    const isa::RwSets &rw = ai.rw ? *ai.rw : rwLocal;
    const isa::MemOp *m = ai.dec->inst.memOperand();
    const bool loads = ai.dec->inst.isLoad();
    const bool stackOp = ai.dec->inst.mnem == isa::Mnemonic::PUSH ||
                         ai.dec->inst.mnem == isa::Mnemonic::POP ||
                         ai.dec->inst.mnem == isa::Mnemonic::CALL ||
                         ai.dec->inst.mnem == isa::Mnemonic::RET;

    std::vector<int> addrValues, dataValues;
    for (int r : rw.reads) {
        bool isAddr = m && ((m->base.valid() && m->base.family() == r) ||
                            (m->index.valid() && m->index.family() == r));
        if (stackOp && r == 4)
            continue; // rsp is renamed by the stack engine
        if (isAddr)
            addrValues.push_back(r);
        else
            dataValues.push_back(r);
    }
    if (rw.depBreaking)
        dataValues.clear();

    // If no µop consumes the address registers (LEA: the compute µop does
    // the address arithmetic itself), feed them to the compute µops.
    bool hasAddrConsumer = false;
    for (const auto &u : info.portUops)
        if (u.kind == UopKind::Load || u.kind == UopKind::StoreAddr)
            hasAddrConsumer = true;
    if (!hasAddrConsumer && !addrValues.empty()) {
        dataValues.insert(dataValues.end(), addrValues.begin(),
                          addrValues.end());
        addrValues.clear();
    }

    for (int w : rw.writes) {
        if (stackOp && w == 4)
            continue;
        t.writeValues.push_back(w);
    }

    if (t.eliminated) {
        if (!rw.depBreaking && dataValues.size() == 1 &&
            !t.writeValues.empty()) {
            t.moveElimCopy = true;
            t.moveSrcValue = dataValues[0];
        }
        return t;
    }

    int nCompute = 0;
    for (const auto &u : info.portUops)
        if (u.kind == UopKind::Compute)
            ++nCompute;
    int firstLat = std::max(1, info.latency - std::max(0, nCompute - 1));

    int computeSeen = 0;
    for (const auto &u : info.portUops) {
        InstTemplate::ExecTemplate et;
        et.ports = u.ports;
        et.kind = u.kind;
        switch (u.kind) {
          case UopKind::Load:
            et.latency = cfg.loadLatency;
            et.readValues = addrValues;
            break;
          case UopKind::StoreAddr:
            et.latency = 1;
            et.readValues = addrValues;
            break;
          case UopKind::StoreData:
            et.latency = 1;
            et.readValues = dataValues;
            et.dependsOnPrevCompute = nCompute > 0;
            break;
          case UopKind::Compute:
            et.latency = computeSeen == 0 ? firstLat : 1;
            if (computeSeen == 0)
                et.readValues = dataValues;
            et.dependsOnLoad = loads;
            et.dependsOnPrevCompute = computeSeen > 0;
            ++computeSeen;
            break;
        }
        t.exec.push_back(std::move(et));
    }

    for (int i = static_cast<int>(t.exec.size()) - 1; i >= 0; --i) {
        if (t.exec[i].kind == UopKind::Compute) {
            t.writeLatencySourceUop = i;
            break;
        }
    }
    if (t.writeLatencySourceUop < 0) {
        for (int i = 0; i < static_cast<int>(t.exec.size()); ++i) {
            if (t.exec[i].kind == UopKind::Load) {
                t.writeLatencySourceUop = i;
                break;
            }
        }
    }
    return t;
}

/**
 * Legacy decode path: predecoder (16-byte windows, 5 slots/cycle, LCP
 * stalls) feeding an instruction queue, and decode-group formation with
 * the complex/simple steering and macro-fusion rules.
 */
class LegacyFrontEnd
{
  public:
    LegacyFrontEnd(const BasicBlock &blk, const MicroArchConfig &cfg,
                   bool unrolled)
        : blk_(blk), cfg_(cfg), unrolled_(unrolled)
    {
        for (std::size_t i = 0; i < blk.insts.size(); ++i) {
            const auto &ai = blk.insts[i];
            if (ai.fusedWithPrev)
                continue;
            const bool pairWithNext = i + 1 < blk.insts.size() &&
                                      blk.insts[i + 1].fusedWithPrev;
            Unit u;
            u.instIdx = static_cast<int>(i);
            u.complex = ai.info->needsComplexDecoder;
            u.nAvailSimple = ai.info->nAvailableSimpleDecoders;
            u.macroFusible = ai.info->macroFusible;
            u.branch = ai.dec->inst.isBranch() || pairWithNext;
            u.iqCost = pairWithNext ? 2 : 1;
            units_.push_back(u);
        }
    }

    /** One predecode cycle; returns instructions pushed into the IQ. */
    void
    predecodeCycle()
    {
        if (iq_ >= kIqCapacity)
            return;
        if (lcpStall_ > 0) {
            --lcpStall_;
            return;
        }
        // The predecoder fetches at most one 16-byte window per cycle and
        // predecodes up to five instruction slots from it.
        int emitted = 0;
        while (emitted < cfg_.predecodeWidth) {
            if (slotCursor_ >= slotIsEnd_.size()) {
                if (emitted > 0)
                    break; // the next window is fetched next cycle
                advanceWindow();
                if (lcpStall_ > 0)
                    break; // length-decode stall for the new window
                if (slotIsEnd_.empty())
                    break;
                continue;
            }
            if (slotIsEnd_[slotCursor_])
                ++iq_;
            ++slotCursor_;
            ++emitted;
        }
        if (emitted > 0)
            ++cyclesOnCurrentWindow_;
    }

    /**
     * Form one decode group; appends decoded instruction indices (into
     * the block) to @p decoded.
     */
    void
    decodeCycle(std::vector<int> &decoded)
    {
        int curDec = 0;
        int availSimple = cfg_.nDecoders - 1;
        bool first = true;
        while (true) {
            const Unit &u = units_[decodeCursor_ % units_.size()];
            if (iq_ < u.iqCost)
                break; // wait for the (possibly fused) pair to predecode
            if (u.complex) {
                if (!first)
                    break; // the complex decoder only leads a group
                availSimple = u.nAvailSimple;
            } else if (!first) {
                if (availSimple == 0)
                    break;
                if (curDec + 1 == cfg_.nDecoders - 1 && u.macroFusible &&
                    !cfg_.macroFusibleOnLastDecoder)
                    break;
                ++curDec;
                --availSimple;
            }
            first = false;
            iq_ -= u.iqCost;
            decoded.push_back(u.instIdx);
            ++decodeCursor_;
            if (u.branch)
                break;
            if (u.complex && availSimple == 0)
                break;
        }
    }

  private:
    struct Unit
    {
        int instIdx;
        bool complex;
        int nAvailSimple;
        bool macroFusible;
        bool branch;
        int iqCost;
    };

    static constexpr int kIqCapacity = 25;

    /** Lay out the next 16-byte window of the instruction stream. */
    void
    advanceWindow()
    {
        const std::int64_t l = blk_.lengthBytes();
        slotIsEnd_.clear();
        slotCursor_ = 0;
        if (l == 0)
            return;

        const std::int64_t winStart = windowIdx_ * 16;
        const std::int64_t winEnd = winStart + 16;
        int lcpCount = 0;

        const std::int64_t cFirst =
            std::max<std::int64_t>(0, winStart / l - 1);
        const std::int64_t cLast = winEnd / l + 1;
        for (std::int64_t c = cFirst; c <= cLast; ++c) {
            if (!unrolled_ && c > 0)
                break;
            const std::int64_t base = c * l;
            for (const auto &ai : blk_.insts) {
                const std::int64_t opc = base + ai.opcodePos;
                const std::int64_t last = base + ai.end - 1;
                const bool endsHere = last >= winStart && last < winEnd;
                const bool opcHere = opc >= winStart && opc < winEnd;
                if (endsHere)
                    slotIsEnd_.push_back(true);
                else if (opcHere)
                    slotIsEnd_.push_back(false); // O-slot (boundary cross)
                if (opcHere && ai.dec->lcp)
                    ++lcpCount;
            }
        }

        if (!unrolled_ && winEnd >= l)
            windowIdx_ = 0; // loop: refetch the same fixed windows
        else
            ++windowIdx_;

        // LCP length-decode overlaps all but one cycle of the previous
        // window's predecoding.
        if (lcpCount > 0) {
            int overlap = std::max(0, cyclesOnCurrentWindow_ - 1);
            lcpStall_ = std::max(0, 3 * lcpCount - overlap);
        }
        cyclesOnCurrentWindow_ = 0;
    }

    const BasicBlock &blk_;
    const MicroArchConfig &cfg_;
    bool unrolled_;
    std::vector<Unit> units_;

    std::int64_t windowIdx_ = 0;
    std::vector<bool> slotIsEnd_;
    std::size_t slotCursor_ = 0;
    int lcpStall_ = 0;
    int cyclesOnCurrentWindow_ = 0;
    int iq_ = 0;
    std::size_t decodeCursor_ = 0;
};

} // namespace

SimResult
simulate(const BasicBlock &blk, bool loop)
{
    const MicroArchConfig &cfg = uarch::config(blk.arch);
    SimResult result;
    if (blk.insts.empty())
        return result;

    // ---- static decomposition -------------------------------------------
    std::vector<InstTemplate> templates;
    templates.reserve(blk.insts.size());
    for (const auto &ai : blk.insts)
        templates.push_back(buildTemplate(ai, cfg));

    // Fused-domain µop sequence of one iteration (instruction per µop).
    std::vector<int> fusedSeq;
    for (std::size_t i = 0; i < blk.insts.size(); ++i) {
        if (templates[i].skipped)
            continue;
        for (int k = 0; k < std::max(1, templates[i].fusedUops); ++k)
            fusedSeq.push_back(static_cast<int>(i));
    }
    if (fusedSeq.empty())
        return result;
    const int seqLen = static_cast<int>(fusedSeq.size());
    const int lastInstIdx = fusedSeq.back();

    // ---- front-end mode -----------------------------------------------
    using FeMode = SimResult::FeMode;
    FeMode mode = FeMode::Legacy;
    if (loop) {
        const bool jccAffected =
            cfg.jccErratum && blk.touchesJccErratumBoundary();
        if (jccAffected)
            mode = FeMode::Legacy;
        else if (cfg.lsdEnabled && seqLen <= cfg.idqWidth)
            mode = FeMode::Lsd;
        else
            mode = FeMode::Dsb;
    }
    result.feMode = mode;

    const int iterations = static_cast<int>(
        std::clamp<std::int64_t>(6000 / seqLen, 64, 512));
    const int warmup = iterations / 4;

    // ---- dynamic state -----------------------------------------------------
    LegacyFrontEnd legacy(blk, cfg, /*unrolled=*/!loop);

    struct IdqEntry
    {
        int instIdx;
        int iteration;
    };
    std::deque<IdqEntry> idq;

    std::vector<RobEntry> rob;
    std::size_t robHead = 0;
    int robOccupancy = 0;
    std::vector<ExecUop> execUops;
    std::vector<int> waiting;

    struct ValueState
    {
        std::int64_t readyAt = 0;
        int producer = -1;
    };
    std::array<ValueState, isa::kNumValues> values{};

    std::vector<std::int64_t> iterEnd(iterations + 2, -1);

    std::vector<int> decodedUnits;
    int legacyIter = 0;
    std::size_t legacyInstInIter = 0;
    std::size_t nonSkippedInsts = 0;
    for (const auto &t : templates)
        if (!t.skipped)
            ++nonSkippedInsts;

    int streamPos = 0;
    int streamIter = 0;
    int lsdUnroll =
        mode == FeMode::Lsd ? cfg.lsdUnrollFactor(seqLen) : 1;
    int lsdPos = 0;

    std::int64_t cycle = 0;
    int completedIters = 0;
    int issueDebt = 0;
    const std::int64_t cycleLimit =
        static_cast<std::int64_t>(iterations) * 800 + 20000;

    while (completedIters < iterations && cycle < cycleLimit) {
        // ---- retire ------------------------------------------------------
        int retired = 0;
        while (robHead < rob.size() && retired < cfg.retireWidth) {
            RobEntry &f = rob[robHead];
            bool done = true;
            for (int k = 0; k < f.nExec; ++k) {
                const ExecUop &e = execUops[f.firstExec + k];
                if (!e.dispatched || e.completesAt > cycle) {
                    done = false;
                    break;
                }
            }
            if (!done)
                break;
            if (f.lastOfIteration &&
                f.iteration < static_cast<int>(iterEnd.size()) &&
                iterEnd[f.iteration] < 0) {
                iterEnd[f.iteration] = cycle;
                completedIters = f.iteration;
            }
            robOccupancy -= f.slots;
            ++robHead;
            ++retired;
        }

        // ---- dispatch: oldest ready µop per free port --------------------
        PortMask freePorts = cfg.allPorts();
        for (std::size_t wi = 0; wi < waiting.size() && freePorts;) {
            ExecUop &e = execUops[waiting[wi]];
            bool ready = e.baseReady <= cycle;
            if (ready) {
                for (int d : e.deps) {
                    const ExecUop &p = execUops[d];
                    if (!p.dispatched || p.completesAt > cycle) {
                        ready = false;
                        break;
                    }
                }
            }
            if (ready && (e.ports & freePorts)) {
                PortMask usable = e.ports & freePorts;
                PortMask chosen = usable & (~usable + 1);
                freePorts &= static_cast<PortMask>(~chosen);
                e.dispatched = true;
                e.completesAt = cycle + e.latency;
                waiting.erase(waiting.begin() +
                              static_cast<std::ptrdiff_t>(wi));
                continue;
            }
            ++wi;
        }

        // ---- rename / issue ----------------------------------------------
        int slots = cfg.issueWidth;
        // Pay off issue slots still owed by a wide (microcoded)
        // instruction issued in a previous cycle.
        if (issueDebt > 0) {
            const int pay = std::min(slots, issueDebt);
            slots -= pay;
            issueDebt -= pay;
        }
        while (slots > 0 && issueDebt == 0 && !idq.empty()) {
            const IdqEntry entry = idq.front();
            const InstTemplate &t = templates[entry.instIdx];
            const int instFused = std::max(1, t.fusedUops);
            if (static_cast<int>(idq.size()) < instFused)
                break; // the instruction's µops are not all in the IDQ yet
            const int cost = std::max(1, t.issueUops);
            if (robOccupancy + cost > cfg.robSize)
                break;
            if (static_cast<int>(waiting.size()) +
                    static_cast<int>(t.exec.size()) >
                cfg.rsSize)
                break;
            if (cost > slots) {
                if (slots < cfg.issueWidth)
                    break; // start wide instructions on a fresh cycle
                issueDebt = cost - slots;
                slots = 0;
            } else {
                slots -= cost;
            }

            for (int k = 0; k < instFused; ++k)
                idq.pop_front();

            RobEntry f;
            f.iteration = entry.iteration;
            f.slots = cost;
            f.firstExec = static_cast<int>(execUops.size());
            f.nExec = static_cast<int>(t.exec.size());
            f.lastOfIteration = entry.instIdx == lastInstIdx;

            int loadUopId = -1;
            int prevComputeId = -1;
            for (const auto &et : t.exec) {
                ExecUop e;
                e.ports = et.ports;
                e.latency = et.latency;
                e.baseReady = cycle + 1;
                for (int v : et.readValues) {
                    const ValueState &vs = values[v];
                    if (vs.producer >= 0)
                        e.deps.push_back(vs.producer);
                    else
                        e.baseReady = std::max(e.baseReady, vs.readyAt);
                }
                if (et.dependsOnLoad && loadUopId >= 0)
                    e.deps.push_back(loadUopId);
                if (et.dependsOnPrevCompute && prevComputeId >= 0)
                    e.deps.push_back(prevComputeId);
                const int id = static_cast<int>(execUops.size());
                if (et.kind == UopKind::Load && loadUopId < 0)
                    loadUopId = id;
                if (et.kind == UopKind::Compute)
                    prevComputeId = id;
                execUops.push_back(std::move(e));
                waiting.push_back(id);
            }

            if (t.eliminated) {
                for (int w : t.writeValues) {
                    if (t.moveElimCopy)
                        values[w] = values[t.moveSrcValue];
                    else
                        values[w] = {cycle + 1, -1};
                }
            } else if (!t.writeValues.empty() &&
                       t.writeLatencySourceUop >= 0) {
                const int prod = f.firstExec + t.writeLatencySourceUop;
                for (int w : t.writeValues)
                    values[w] = {0, prod};
            }

            robOccupancy += cost;
            rob.push_back(f);
        }

        // ---- front end ------------------------------------------------------
        const int idqCapacity = cfg.idqWidth;
        switch (mode) {
          case FeMode::Legacy: {
            legacy.predecodeCycle();
            if (static_cast<int>(idq.size()) < idqCapacity) {
                decodedUnits.clear();
                legacy.decodeCycle(decodedUnits);
                for (int instIdx : decodedUnits) {
                    const int n = std::max(1, templates[instIdx].fusedUops);
                    for (int k = 0; k < n; ++k)
                        idq.push_back({instIdx, legacyIter + 1});
                    ++legacyInstInIter;
                    if (legacyInstInIter == nonSkippedInsts) {
                        legacyInstInIter = 0;
                        ++legacyIter;
                    }
                }
            }
            break;
          }
          case FeMode::Dsb: {
            int delivered = 0;
            while (delivered < cfg.dsbWidth &&
                   static_cast<int>(idq.size()) < idqCapacity) {
                idq.push_back({fusedSeq[streamPos], streamIter + 1});
                ++delivered;
                if (++streamPos == seqLen) {
                    streamPos = 0;
                    ++streamIter;
                    // After the taken branch, no further µops from the
                    // same 32-byte window can be loaded this cycle.
                    if (blk.lengthBytes() < 32)
                        break;
                }
            }
            break;
          }
          case FeMode::Lsd: {
            const int total = seqLen * lsdUnroll;
            int delivered = 0;
            while (delivered < cfg.issueWidth &&
                   static_cast<int>(idq.size()) < idqCapacity) {
                idq.push_back({fusedSeq[lsdPos % seqLen], streamIter + 1});
                ++delivered;
                ++lsdPos;
                if (lsdPos % seqLen == 0)
                    ++streamIter;
                if (lsdPos == total) {
                    lsdPos = 0;
                    break; // the locked body cannot wrap within a cycle
                }
            }
            break;
          }
        }

        ++cycle;
    }

    // ---- steady-state throughput ---------------------------------------
    int firstIter = warmup;
    int lastIter = completedIters;
    while (firstIter > 1 && iterEnd[firstIter] < 0)
        --firstIter;
    while (lastIter > firstIter && iterEnd[lastIter] < 0)
        --lastIter;
    if (lastIter <= firstIter || iterEnd[firstIter] < 0) {
        result.cyclesPerIteration = static_cast<double>(cycle);
        return result;
    }
    result.cyclesPerIteration =
        static_cast<double>(iterEnd[lastIter] - iterEnd[firstIter]) /
        static_cast<double>(lastIter - firstIter);
    result.measuredIterations = lastIter - firstIter;
    return result;
}

double
measuredThroughput(const bb::BasicBlock &blk, bool loop)
{
    return simulate(blk, loop).cyclesPerIteration;
}

} // namespace facile::sim
