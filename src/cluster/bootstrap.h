/**
 * @file
 * Replica bootstrap and convergence: the two snapshot-over-the-wire
 * consumers that turn N independent prediction servers into a fleet
 * with a shared warm universe.
 *
 * Bootstrap: a starting replica fetches a peer's live v2 image over
 * the SNAPSHOT-fetch admin op (Client::fetchSnapshot, retried through
 * ResilientClient — the peer may itself be starting or shedding) and
 * stages it to its own snapshot path via the same atomic temp-file +
 * fsync + generation-rotation writer the save path uses. The staged
 * bytes are exactly what the peer's saveSnapshot would have written,
 * so the replica's ordinary loadSnapshot() — mmap bind, lazy
 * materialization, the whole PR 6 fallback ladder — serves the warm
 * start unchanged, in milliseconds. A torn or corrupted fetch is
 * rejected by the full deep validation BEFORE anything touches disk:
 * the replica falls back to a cold start, never to a poisoned one.
 *
 * Convergence: replicas behind a hashing router each analyze only
 * their shard of the instruction universe. The ConvergenceLoop is the
 * background cadence that periodically fetches each peer's image and
 * folds the UNION into the local process through the snapshot model
 * set (SnapshotModelSet — order-independent, commutative, the same
 * layer facile_snaptool merge drives), then loads the merged image
 * back through the append-only loadSnapshotFromMemory path: records
 * already interned keep their live pointers, new ones appear, nothing
 * is ever dropped. Conflicts (two replicas carrying different records
 * behind one key — impossible unless they run different analysis
 * code) abort that round and are counted, not propagated.
 */
#ifndef FACILE_CLUSTER_BOOTSTRAP_H
#define FACILE_CLUSTER_BOOTSTRAP_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/membership.h"
#include "server/resilient_client.h"

namespace facile::engine {
class PredictionEngine;
}

namespace facile::cluster {

/**
 * Deep-validate @p size bytes of fetched snapshot image and stage them
 * atomically (temp file + fsync + rename, rotating prior generations)
 * at @p localPath. Nothing reaches disk unless the image passes the
 * same full validation `facile_snaptool verify` runs — a torn stream
 * or bit-flipped chunk returns false and leaves any existing
 * generations untouched.
 */
bool stageFetchedImage(const std::uint8_t *data, std::size_t size,
                       const std::string &localPath);

/**
 * Fetch @p peer's live snapshot over the wire (with ResilientClient
 * retries per @p policy) and stage it at @p localPath via
 * stageFetchedImage. Returns true when a validated image landed;
 * false on transport exhaustion, an old peer that rejects the subop,
 * or a corrupt image. Callers fall back to a cold start on false —
 * bootstrap is an optimization, never a correctness dependency.
 */
bool fetchSnapshotFromPeer(const Endpoint &peer,
                           const std::string &localPath,
                           server::RetryPolicy policy = {});

/** Counters of one ConvergenceLoop (and convergeWithImage rounds). */
struct ConvergenceStats
{
    std::uint64_t rounds = 0;       ///< peer sweeps completed
    std::uint64_t merges = 0;       ///< images folded in successfully
    std::uint64_t conflicts = 0;    ///< rounds aborted on merge conflict
    std::uint64_t peerFailures = 0; ///< fetches that exhausted retries
};

/**
 * Fold one peer image into this process: parse it, parse our own live
 * state (saveSnapshotToMemory), union both through SnapshotModelSet,
 * and load the canonical merged image back through the append-only
 * in-memory path — existing records keep their published pointers,
 * the peer's novel records and cached predictions appear. Returns
 * false (and folds nothing) on a malformed image or a merge conflict.
 */
bool convergeWithImage(const std::uint8_t *data, std::size_t size,
                       engine::PredictionEngine *engine);

/**
 * The background convergence cadence: every intervalMs, fetch each
 * peer's snapshot and convergeWithImage it. One ResilientClient per
 * peer (kept across rounds, so its breaker state and reconnect logic
 * carry over). stop() is prompt — the sleep is a condition variable,
 * not a blind clock wait.
 */
class ConvergenceLoop
{
  public:
    struct Options
    {
        std::vector<Endpoint> peers;
        int intervalMs = 2000;
        /** Engine whose prediction cache participates in the union. */
        engine::PredictionEngine *engine = nullptr;
        server::RetryPolicy policy;
    };

    explicit ConvergenceLoop(Options opts);
    ~ConvergenceLoop();
    ConvergenceLoop(const ConvergenceLoop &) = delete;
    ConvergenceLoop &operator=(const ConvergenceLoop &) = delete;

    void start();
    /** Stop and join. Idempotent. */
    void stop();

    /** Thread-safe counters; merges maps to the STATS field
     *  convergenceMerges. */
    ConvergenceStats stats() const;

    /** One synchronous sweep over all peers (also what the thread
     *  runs per tick) — exposed so tests converge deterministically. */
    void runOnce();

  private:
    Options opts_;
    std::vector<server::ResilientClient> clients_;
    std::thread thr_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
    bool running_ = false;
    ConvergenceStats stats_;
};

} // namespace facile::cluster

#endif // FACILE_CLUSTER_BOOTSTRAP_H
