/**
 * @file
 * Cluster membership and request routing primitives: backend
 * endpoints, the attribute-based routing key, and the rendezvous
 * (highest-random-weight) hash that assigns keys to backends.
 *
 * Routing is keyed on request ATTRIBUTES, not connection identity:
 * every PREDICT hashes (arch, xxh64(block bytes)), so the same block
 * always lands on the same backend regardless of which client sent it
 * — that backend's analysis and prediction caches stay hot for its
 * shard of the instruction universe, and N backends approximate one
 * N-times-larger cache instead of N copies of the same one.
 *
 * Rendezvous hashing beats a ring of virtual nodes here because the
 * backend count is small (2-16 local processes): score every backend
 * per key with an xxh64 seeded by the backend's label and take the
 * max. When a backend leaves, exactly the keys whose max it was move
 * (each to its second-highest scorer); every other key's argmax is
 * unchanged — the minimal-disruption property tests/test_cluster.cc
 * pins. Membership itself is static configuration (the backend list)
 * plus liveness (the router's HEALTH probing flips states); there is
 * no gossip or discovery protocol.
 */
#ifndef FACILE_CLUSTER_MEMBERSHIP_H
#define FACILE_CLUSTER_MEMBERSHIP_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace facile::cluster {

/** One backend address: TCP (host:port) or Unix-domain (unix:PATH). */
struct Endpoint
{
    std::string host; ///< dotted-quad; empty for UDS
    int port = -1;
    std::string path; ///< UDS socket path; empty for TCP

    bool isUnix() const { return !path.empty(); }

    /**
     * Canonical display form ("unix:PATH" or "host:port") — also the
     * backend's rendezvous identity, so a backend keeps its share of
     * the key space across router restarts.
     */
    std::string label() const;
};

/**
 * Parse "unix:PATH" or "HOST:PORT" (dotted-quad host).
 * @throws std::invalid_argument on anything else.
 */
Endpoint parseEndpoint(const std::string &spec);

/** Liveness as the router sees it. */
enum class BackendState : std::uint8_t {
    Up,       ///< routable: connected (or connecting) and not draining
    Down,     ///< dead or unreachable; reconnect pending
    Draining, ///< answered HEALTH=Draining: finish in-flight work,
              ///< route nothing new to it
};

/**
 * Routing key for one PREDICT: xxh64 over the 9-byte tuple
 * (arch, xxh64(block bytes)). Hashing the content hash rather than
 * the raw bytes keeps the outer hash O(1) per backend-score while
 * still keying on the full block identity.
 */
std::uint64_t routeKey(std::uint8_t arch, const std::uint8_t *data,
                       std::size_t len);

/**
 * The rendezvous pool: a fixed endpoint list with mutable liveness.
 * Not thread-safe — the router owns one and touches it only from its
 * io thread.
 */
class BackendPool
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    explicit BackendPool(std::vector<Endpoint> endpoints);

    std::size_t size() const { return entries_.size(); }
    const Endpoint &endpoint(std::size_t i) const
    {
        return entries_[i].ep;
    }
    BackendState state(std::size_t i) const { return entries_[i].state; }
    void setState(std::size_t i, BackendState s)
    {
        entries_[i].state = s;
    }

    /**
     * Highest-scoring Up backend for @p key, optionally excluding one
     * index (failover: re-pick for a request whose first choice just
     * died). npos when no backend is routable.
     */
    std::size_t pick(std::uint64_t key, std::size_t exclude = npos) const;

  private:
    struct Entry
    {
        Endpoint ep;
        std::uint64_t seed = 0; ///< xxh64(label): per-backend score seed
        BackendState state = BackendState::Up;
    };
    std::vector<Entry> entries_;
};

} // namespace facile::cluster

#endif // FACILE_CLUSTER_MEMBERSHIP_H
