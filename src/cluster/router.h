/**
 * @file
 * facile_lb's engine: a thin consistent-hash router that shards
 * PREDICT traffic across N prediction-server backends.
 *
 * Data plane (one epoll thread, reusing the server's building blocks):
 * client connections are read through FrameParser and written through
 * WriteQueue exactly like a PredictionServer connection; each backend
 * gets ONE pipelined nonblocking connection that multiplexes every
 * client's forwarded frames. Forwarding rewrites the request id to a
 * router-unique id (clients pick ids independently, so two clients'
 * id 1 must not collide on the shared backend pipe); the pending map
 * routerId → (client, original id) rewrites it back on the response,
 * so responses can never leak across clients.
 *
 * Routing: PREDICT frames hash to routeKey(arch, block bytes) and go
 * to the rendezvous pick among Up backends (membership.h) — the same
 * block always lands on the same backend, keeping its caches hot for
 * its shard of the universe. PING/STATS/HEALTH are answered locally
 * (STATS reports the router's own counters, including the append-only
 * routedPredicts/backendFailovers fields backends leave 0). SNAPSHOT
 * is answered BadRequest: snapshot administration addresses a
 * specific replica, so point the client at the backend directly.
 *
 * Liveness and failover: every healthIntervalMs the router sends a
 * HEALTH probe down each backend pipe; healthMissLimit consecutive
 * unanswered probes — or any transport error — declare the backend
 * dead. Its in-flight requests are REPLAYED to the next rendezvous
 * pick (predictions are pure, so replay is idempotent — the same
 * argument ResilientClient makes), and only when no backend remains
 * routable does the caller see OVERLOADED, which ResilientClient
 * already treats as retryable backpressure. A backend that answers
 * HEALTH with Draining keeps its in-flight work but receives nothing
 * new — the drain handshake a fleet rollout needs. Dead backends are
 * re-dialed with exponential backoff.
 */
#ifndef FACILE_CLUSTER_ROUTER_H
#define FACILE_CLUSTER_ROUTER_H

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "server/protocol.h"

namespace facile::cluster {

struct RouterOptions
{
    /** Unix-domain listener path; empty disables. */
    std::string unixPath;
    /** TCP listener port; -1 disables, 0 binds ephemeral. */
    int tcpPort = -1;
    std::string tcpHost = "127.0.0.1";

    /** Backend prediction servers (at least one). */
    std::vector<Endpoint> backends;

    /** HEALTH probe cadence per backend. */
    int healthIntervalMs = 250;
    /** Consecutive unanswered probes that declare a backend dead. */
    int healthMissLimit = 3;
    /** First re-dial delay after a backend dies; doubles per failure. */
    int reconnectBackoffMs = 50;
    int reconnectBackoffMaxMs = 2000;

    /** Per-client-connection cap on buffered unparsed bytes. */
    std::size_t maxBufferedPerConn = 1u << 20;
};

class Router
{
  public:
    explicit Router(RouterOptions opts);
    ~Router();
    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** Bind listeners, dial backends, spawn the io thread. @throws. */
    void start();
    /** Stop the io thread and close every socket. Idempotent. */
    void stop();

    /** Bound TCP port (after start(); ephemeral binds resolve here). */
    int tcpPort() const;
    const std::string &unixPath() const;

    /**
     * The router's own counters in the shared ServerStats shape:
     * requests/routedPredicts/backendFailovers plus the connection
     * fields. Thread-safe.
     */
    server::ServerStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace facile::cluster

#endif // FACILE_CLUSTER_ROUTER_H
