#include "cluster/bootstrap.h"

#include <cstdio>
#include <exception>
#include <utility>

#include "analysis/snapshot.h"
#include "corpus/sections.h"
#include "engine/engine.h"

namespace facile::cluster {

bool
stageFetchedImage(const std::uint8_t *data, std::size_t size,
                  const std::string &localPath)
{
    try {
        analysis::validateSnapshot(data, size);
        corpus::AtomicFileWriter w(localPath, "snapshot",
                                   analysis::kSnapshotGenerations);
        w.write(data, size);
        w.commit();
        return true;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bootstrap: rejected fetched image: %s\n",
                     e.what());
        return false;
    }
}

bool
fetchSnapshotFromPeer(const Endpoint &peer, const std::string &localPath,
                      server::RetryPolicy policy)
{
    try {
        auto client =
            peer.isUnix()
                ? server::ResilientClient::forUnix(peer.path, policy)
                : server::ResilientClient::forTcp(peer.host, peer.port,
                                                  policy);
        const std::vector<std::uint8_t> img = client.fetchSnapshot();
        return stageFetchedImage(img.data(), img.size(), localPath);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bootstrap: fetch from %s failed: %s\n",
                     peer.label().c_str(), e.what());
        return false;
    }
}

bool
convergeWithImage(const std::uint8_t *data, std::size_t size,
                  engine::PredictionEngine *engine)
{
    try {
        const analysis::SnapshotModel peer =
            analysis::parseSnapshotModel(data, size);
        const std::vector<std::uint8_t> localImg =
            analysis::saveSnapshotToMemory(
                {engine, 1, analysis::SnapshotFormat::V2});
        const analysis::SnapshotModel local =
            analysis::parseSnapshotModel(localImg.data(),
                                         localImg.size());
        analysis::SnapshotModelSet set;
        set.accumulate(local, "local");
        set.accumulate(peer, "peer");
        const std::vector<std::uint8_t> merged =
            analysis::buildSnapshotImage(set.canonical(),
                                         analysis::SnapshotFormat::V2);
        // Append-only fold: keys we already hold keep their live
        // records, the peer's novelty is interned, its cached
        // predictions land in the engine's cache.
        analysis::loadSnapshotFromMemory(merged.data(), merged.size(),
                                         {engine});
        return true;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "convergence: round aborted: %s\n",
                     e.what());
        return false;
    }
}

ConvergenceLoop::ConvergenceLoop(Options opts) : opts_(std::move(opts))
{
    clients_.reserve(opts_.peers.size());
    for (const Endpoint &ep : opts_.peers)
        clients_.push_back(
            ep.isUnix()
                ? server::ResilientClient::forUnix(ep.path, opts_.policy)
                : server::ResilientClient::forTcp(ep.host, ep.port,
                                                  opts_.policy));
}

ConvergenceLoop::~ConvergenceLoop()
{
    stop();
}

void
ConvergenceLoop::runOnce()
{
    ConvergenceStats delta;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
        std::vector<std::uint8_t> img;
        try {
            img = clients_[i].fetchSnapshot();
        } catch (const std::exception &e) {
            std::fprintf(stderr, "convergence: fetch from %s failed: %s\n",
                         opts_.peers[i].label().c_str(), e.what());
            ++delta.peerFailures;
            continue;
        }
        if (convergeWithImage(img.data(), img.size(), opts_.engine))
            ++delta.merges;
        else
            ++delta.conflicts;
    }
    ++delta.rounds;
    std::lock_guard<std::mutex> lock(mu_);
    stats_.rounds += delta.rounds;
    stats_.merges += delta.merges;
    stats_.conflicts += delta.conflicts;
    stats_.peerFailures += delta.peerFailures;
}

void
ConvergenceLoop::start()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (running_)
            return;
        running_ = true;
        stopping_ = false;
    }
    thr_ = std::thread([this] {
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait_for(lock,
                             std::chrono::milliseconds(opts_.intervalMs),
                             [this] { return stopping_; });
                if (stopping_)
                    return;
            }
            runOnce();
        }
    });
}

void
ConvergenceLoop::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!running_)
            return;
        running_ = false;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thr_.joinable())
        thr_.join();
}

ConvergenceStats
ConvergenceLoop::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace facile::cluster
