#include "cluster/router.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/frame_parser.h"
#include "server/net_util.h"
#include "server/write_queue.h"
#include "uarch/config.h"

namespace facile::cluster {

namespace {

using Clock = std::chrono::steady_clock;
using namespace facile::server;

/** Router-generated HEALTH probe ids live above every forwarded id. */
constexpr std::uint64_t kProbeIdBit = 1ULL << 63;

int
msUntil(Clock::time_point t, Clock::time_point now, int cap)
{
    if (t <= now)
        return 0;
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(t - now)
            .count();
    const long long ms = (us + 999) / 1000;
    return static_cast<int>(std::min<long long>(ms, cap));
}

} // namespace

struct Router::Impl
{
    /** Epoll registration tag, dispatched on kind (server.cc idiom). */
    struct EvSource
    {
        enum class Kind : std::uint8_t {
            TcpListen,
            UnixListen,
            Wake,
            Client,
            Backend
        };
        Kind kind;
        explicit EvSource(Kind k) : kind(k) {}
    };

    /** One downstream client connection. Io-thread-owned. */
    struct ClientConn : EvSource
    {
        ClientConn() : EvSource(Kind::Client) {}
        int fd = -1;
        bool open = true;
        bool wantWrite = false;
        FrameParser parser;
        WriteQueue outq;
        /** Responses staged during one event; flushed in one sendmsg. */
        std::vector<std::uint8_t> stage;
    };

    enum class ConnState : std::uint8_t { Down, Connecting, Up };

    /**
     * One upstream backend: a single pipelined connection shared by
     * every client, re-dialed with backoff across its lifetimes.
     */
    struct BackendConn : EvSource
    {
        BackendConn() : EvSource(Kind::Backend) {}
        std::size_t idx = 0;
        int fd = -1;
        ConnState connState = ConnState::Down;
        bool draining = false;  ///< last HEALTH answer was Draining
        bool wantWrite = false; ///< EPOLLOUT armed (Up state)
        WriteQueue outq;
        /** Frames staged during one event; flushed in one sendmsg. */
        std::vector<std::uint8_t> stage;
        /** Frames produced while the connect is still in flight. */
        std::vector<std::uint8_t> preConnect;

        /** RESPONSE-frame reassembly (12-byte headers, not requests). */
        std::vector<std::uint8_t> inbuf;
        std::size_t parsed = 0;

        bool probeOutstanding = false;
        int missedProbes = 0;

        int backoffMs = 0;
        Clock::time_point reconnectAt{};
    };

    /** One forwarded PREDICT awaiting its backend response. */
    struct Pending
    {
        std::shared_ptr<ClientConn> conn;
        std::uint64_t origId = 0;
        std::uint64_t key = 0; ///< routeKey, for failover re-picks
        std::size_t backendIdx = 0;
        /** Full request frame, router id already written — the replay
         *  unit when its backend dies. */
        std::vector<std::uint8_t> frame;
    };

    RouterOptions opts;
    BackendPool pool;

    std::atomic<bool> running{false};
    std::atomic<bool> stopping{false};
    Clock::time_point startTime;

    int epfd = -1;
    int wakeFd = -1;
    int tcpFd = -1;
    int unixFd = -1;
    int boundTcpPort = -1;
    EvSource tcpTag{EvSource::Kind::TcpListen};
    EvSource unixTag{EvSource::Kind::UnixListen};
    EvSource wakeTag{EvSource::Kind::Wake};
    std::thread thr;

    std::vector<std::shared_ptr<ClientConn>> clients;
    std::vector<std::unique_ptr<BackendConn>> backends;
    std::unordered_map<std::uint64_t, Pending> pending;
    std::uint64_t nextId = 1;
    std::uint64_t nextProbeId = kProbeIdBit;
    /** Backends that died mid-dispatch; failover runs between events. */
    std::deque<std::size_t> deadQueue;

    std::atomic<std::uint64_t> requestCount{0};
    std::atomic<std::uint64_t> routedPredicts{0};
    std::atomic<std::uint64_t> backendFailovers{0};
    std::atomic<std::uint64_t> noBackendSheds{0};
    std::atomic<std::uint64_t> connectionsAccepted{0};
    std::atomic<std::uint64_t> connectionsOpen{0};

    explicit Impl(RouterOptions o)
        : opts(std::move(o)), pool(opts.backends)
    {
        if (opts.backends.empty())
            throw std::invalid_argument("router needs >= 1 backend");
        backends.reserve(opts.backends.size());
        for (std::size_t i = 0; i < opts.backends.size(); ++i) {
            auto b = std::make_unique<BackendConn>();
            b->idx = i;
            b->backoffMs = opts.reconnectBackoffMs;
            backends.push_back(std::move(b));
        }
    }

    // ---- listeners (same setup as PredictionServer) ------------------------

    int
    listenTcp()
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK |
                                             SOCK_CLOEXEC,
                                0);
        if (fd < 0)
            throwErrno("socket(AF_INET)");
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(opts.tcpPort));
        if (::inet_pton(AF_INET, opts.tcpHost.c_str(), &addr.sin_addr) !=
            1) {
            ::close(fd);
            throw std::runtime_error("bad tcp host " + opts.tcpHost);
        }
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) < 0 ||
            ::listen(fd, 512) < 0) {
            const int e = errno;
            ::close(fd);
            errno = e;
            throwErrno("bind/listen tcp");
        }
        sockaddr_in bound{};
        socklen_t blen = sizeof bound;
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&bound), &blen);
        boundTcpPort = ntohs(bound.sin_port);
        return fd;
    }

    int
    listenUnix()
    {
        sockaddr_un addr{};
        if (opts.unixPath.size() >= sizeof addr.sun_path)
            throw std::runtime_error("unix path too long");
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK |
                                             SOCK_CLOEXEC,
                                0);
        if (fd < 0)
            throwErrno("socket(AF_UNIX)");
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts.unixPath.c_str(),
                     sizeof addr.sun_path - 1);
        ::unlink(opts.unixPath.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) < 0 ||
            ::listen(fd, 512) < 0) {
            const int e = errno;
            ::close(fd);
            errno = e;
            throwErrno("bind/listen unix " + opts.unixPath);
        }
        return fd;
    }

    // ---- backend lifecycle -------------------------------------------------

    void
    setBackendEvents(BackendConn &b, std::uint32_t events, bool add)
    {
        epoll_event ev{};
        ev.events = events;
        ev.data.ptr = static_cast<EvSource *>(&b);
        ::epoll_ctl(epfd, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, b.fd, &ev);
    }

    /** True once @p b may receive forwarded frames. */
    bool
    routable(const BackendConn &b) const
    {
        return b.connState != ConnState::Down && !b.draining;
    }

    void
    refreshPoolState(BackendConn &b)
    {
        pool.setState(b.idx, b.connState == ConnState::Down
                                 ? BackendState::Down
                                 : (b.draining ? BackendState::Draining
                                               : BackendState::Up));
    }

    void
    dialBackend(std::size_t i)
    {
        BackendConn &b = *backends[i];
        const Endpoint &ep = pool.endpoint(i);
        const int fd =
            ::socket(ep.isUnix() ? AF_UNIX : AF_INET,
                     SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            scheduleRetry(b);
            return;
        }
        int rc;
        if (ep.isUnix()) {
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            std::strncpy(addr.sun_path, ep.path.c_str(),
                         sizeof addr.sun_path - 1);
            rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof addr);
        } else {
            sockaddr_in addr{};
            addr.sin_family = AF_INET;
            addr.sin_port = htons(static_cast<std::uint16_t>(ep.port));
            if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) !=
                1) {
                ::close(fd);
                scheduleRetry(b);
                return;
            }
            rc = ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                           sizeof addr);
        }
        if (rc < 0 && errno != EINPROGRESS) {
            ::close(fd);
            scheduleRetry(b);
            return;
        }
        if (!ep.isUnix()) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        }
        b.fd = fd;
        if (rc == 0) {
            b.connState = ConnState::Up;
            setBackendEvents(b, EPOLLIN, /*add=*/true);
            onBackendConnected(b);
        } else {
            // Routable while connecting: frames queue in preConnect
            // and flush the moment the handshake completes, so early
            // traffic is buffered instead of shed.
            b.connState = ConnState::Connecting;
            setBackendEvents(b, EPOLLIN | EPOLLOUT, /*add=*/true);
        }
        refreshPoolState(b);
    }

    void
    onBackendConnected(BackendConn &b)
    {
        b.connState = ConnState::Up;
        b.backoffMs = opts.reconnectBackoffMs;
        b.missedProbes = 0;
        b.probeOutstanding = false;
        refreshPoolState(b);
        if (!b.preConnect.empty()) {
            std::vector<std::uint8_t> out;
            out.swap(b.preConnect);
            writeBackend(b, out.data(), out.size());
        }
        sendProbe(b);
    }

    void
    scheduleRetry(BackendConn &b)
    {
        b.connState = ConnState::Down;
        b.fd = -1;
        b.reconnectAt =
            Clock::now() + std::chrono::milliseconds(b.backoffMs);
        b.backoffMs =
            std::min(b.backoffMs * 2, opts.reconnectBackoffMaxMs);
        refreshPoolState(b);
    }

    /**
     * Declare @p b dead: close, reset stream state, queue its pendings
     * for failover (drained by drainDeadBackends between events — not
     * inline, so the pending map is never mutated mid-iteration), and
     * arm the reconnect backoff.
     */
    void
    markBackendDead(BackendConn &b)
    {
        if (b.connState == ConnState::Down)
            return;
        if (b.fd >= 0) {
            ::epoll_ctl(epfd, EPOLL_CTL_DEL, b.fd, nullptr);
            ::close(b.fd);
        }
        b.outq = WriteQueue();
        b.stage.clear();
        b.preConnect.clear();
        b.inbuf.clear();
        b.parsed = 0;
        b.wantWrite = false;
        b.draining = false;
        scheduleRetry(b);
        deadQueue.push_back(b.idx);
    }

    void
    drainDeadBackends()
    {
        while (!deadQueue.empty()) {
            const std::size_t dead = deadQueue.front();
            deadQueue.pop_front();
            std::vector<std::uint64_t> rids;
            for (const auto &[rid, p] : pending)
                if (p.backendIdx == dead)
                    rids.push_back(rid);
            for (std::uint64_t rid : rids) {
                auto it = pending.find(rid);
                if (it == pending.end() || it->second.backendIdx != dead)
                    continue; // already failed over by a nested death
                Pending &p = it->second;
                const std::size_t next = pool.pick(p.key, dead);
                if (next == BackendPool::npos) {
                    // Nothing left to replay onto: surface retryable
                    // backpressure — ResilientClient backs off and
                    // re-sends, so callers still see zero failures
                    // once a backend returns.
                    std::vector<std::uint8_t> reply;
                    appendStatusResponse(reply, p.origId, Op::Predict,
                                         Status::Overloaded);
                    writeClient(*p.conn, reply.data(), reply.size());
                    pending.erase(it);
                    continue;
                }
                p.backendIdx = next;
                backendFailovers.fetch_add(1, std::memory_order_relaxed);
                sendToBackend(next, p.frame.data(), p.frame.size());
            }
            flushStagedBackends();
        }
    }

    /** Queue @p data on backend @p i, whatever its connection state. */
    void
    sendToBackend(std::size_t i, const std::uint8_t *data,
                  std::size_t len)
    {
        BackendConn &b = *backends[i];
        if (b.connState == ConnState::Connecting) {
            b.preConnect.insert(b.preConnect.end(), data, data + len);
            return;
        }
        if (b.connState == ConnState::Down)
            return; // its pendings are already queued for failover
        // Stage, don't write: every frame a single event batch routes
        // here rides out in ONE gathered sendmsg (flushStagedBackends)
        // instead of a ~30-byte syscall per frame — and the backend's
        // reader then sees the whole burst at once, so its admission
        // batches stay large.
        b.stage.insert(b.stage.end(), data, data + len);
    }

    void
    flushBackend(BackendConn &b)
    {
        if (b.connState != ConnState::Up || b.stage.empty())
            return;
        // writeGather copies any unsent tail into the outq, so the
        // stage can be dropped whatever the outcome.
        iovec iov{b.stage.data(), b.stage.size()};
        const auto r = b.outq.writeGather(b.fd, &iov, 1);
        b.stage.clear();
        switch (r) {
          case WriteQueue::Result::Drained:
            if (b.wantWrite) {
                setBackendEvents(b, EPOLLIN, /*add=*/false);
                b.wantWrite = false;
            }
            return;
          case WriteQueue::Result::Blocked:
            if (!b.wantWrite) {
                setBackendEvents(b, EPOLLIN | EPOLLOUT, /*add=*/false);
                b.wantWrite = true;
            }
            return;
          case WriteQueue::Result::PeerGone:
            markBackendDead(b);
            return;
        }
    }

    void
    flushStagedBackends()
    {
        for (auto &bp : backends)
            flushBackend(*bp);
    }

    void
    writeBackend(BackendConn &b, const std::uint8_t *data,
                 std::size_t len)
    {
        iovec iov{const_cast<std::uint8_t *>(data), len};
        switch (b.outq.writeGather(b.fd, &iov, 1)) {
          case WriteQueue::Result::Drained:
            if (b.wantWrite) {
                setBackendEvents(b, EPOLLIN, /*add=*/false);
                b.wantWrite = false;
            }
            return;
          case WriteQueue::Result::Blocked:
            if (!b.wantWrite) {
                setBackendEvents(b, EPOLLIN | EPOLLOUT, /*add=*/false);
                b.wantWrite = true;
            }
            return;
          case WriteQueue::Result::PeerGone:
            markBackendDead(b);
            return;
        }
    }

    void
    sendProbe(BackendConn &b)
    {
        if (b.connState != ConnState::Up)
            return;
        std::vector<std::uint8_t> frame;
        appendControlRequest(frame, nextProbeId++, Op::Health);
        b.probeOutstanding = true;
        writeBackend(b, frame.data(), frame.size());
    }

    // ---- backend responses -------------------------------------------------

    void
    backendReadable(BackendConn &b, std::vector<std::uint8_t> &chunk)
    {
        for (;;) {
            const ssize_t n = ::read(b.fd, chunk.data(), chunk.size());
            if (n > 0) {
                b.inbuf.insert(b.inbuf.end(), chunk.data(),
                               chunk.data() + n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            markBackendDead(b); // EOF or hard error
            return;
        }
        std::vector<ClientConn *> touched;
        while (b.inbuf.size() - b.parsed >= kResponseHeaderSize) {
            const ResponseHeader h =
                parseResponseHeader(b.inbuf.data() + b.parsed);
            if (b.inbuf.size() - b.parsed < kResponseHeaderSize + h.len)
                break;
            const std::uint8_t *payload =
                b.inbuf.data() + b.parsed + kResponseHeaderSize;
            b.parsed += kResponseHeaderSize + h.len;
            if (h.id & kProbeIdBit) {
                handleProbeResponse(b, h, payload);
                continue;
            }
            auto it = pending.find(h.id);
            if (it == pending.end())
                continue; // replayed elsewhere, or stale after failover
            Pending p = std::move(it->second);
            pending.erase(it);
            ClientConn &cc = *p.conn;
            if (!cc.open)
                continue; // caller hung up; drop the answer
            // Rewrite the router id back to the client's own id; the
            // rest of the frame is forwarded byte-exactly. Staged per
            // client so a burst of responses flushes in one sendmsg.
            if (cc.stage.empty())
                touched.push_back(&cc);
            const std::size_t off = cc.stage.size();
            cc.stage.resize(off + kResponseHeaderSize + h.len);
            std::memcpy(cc.stage.data() + off,
                        b.inbuf.data() + b.parsed - kResponseHeaderSize -
                            h.len,
                        kResponseHeaderSize + h.len);
            std::memcpy(cc.stage.data() + off, &p.origId,
                        sizeof p.origId);
        }
        for (ClientConn *cc : touched)
            flushClientStage(*cc);
        if (b.parsed == b.inbuf.size()) {
            b.inbuf.clear();
            b.parsed = 0;
        } else if (b.parsed > 64 * 1024) {
            b.inbuf.erase(b.inbuf.begin(),
                          b.inbuf.begin() +
                              static_cast<std::ptrdiff_t>(b.parsed));
            b.parsed = 0;
        }
    }

    void
    handleProbeResponse(BackendConn &b, const ResponseHeader &h,
                        const std::uint8_t *payload)
    {
        b.probeOutstanding = false;
        b.missedProbes = 0;
        if (h.status != static_cast<std::uint8_t>(Status::Ok) ||
            h.op != static_cast<std::uint8_t>(Op::Health))
            return;
        const auto state = decodeHealthPayload(payload, h.len);
        const bool draining =
            state && *state == HealthState::Draining;
        if (draining != b.draining) {
            b.draining = draining;
            refreshPoolState(b);
        }
    }

    // ---- client side -------------------------------------------------------

    void
    setClientEvents(ClientConn &c, std::uint32_t events, bool add)
    {
        epoll_event ev{};
        ev.events = events;
        ev.data.ptr = static_cast<EvSource *>(&c);
        ::epoll_ctl(epfd, add ? EPOLL_CTL_ADD : EPOLL_CTL_MOD, c.fd,
                    &ev);
    }

    void
    closeClient(ClientConn &c)
    {
        if (!c.open)
            return;
        c.open = false;
        ::epoll_ctl(epfd, EPOLL_CTL_DEL, c.fd, nullptr);
        ::close(c.fd);
        c.fd = -1;
        connectionsOpen.fetch_sub(1, std::memory_order_relaxed);
        // Pendings it owns stay in the map: the backend will still
        // answer, and the response is matched then dropped — erasing
        // here would let a later request reuse the router id while the
        // old answer is still in flight.
    }

    void
    flushClientStage(ClientConn &c)
    {
        if (c.stage.empty())
            return;
        if (!c.open) {
            c.stage.clear();
            return;
        }
        iovec iov{c.stage.data(), c.stage.size()};
        const auto r = c.outq.writeGather(c.fd, &iov, 1);
        c.stage.clear();
        switch (r) {
          case WriteQueue::Result::Drained:
            if (c.wantWrite) {
                setClientEvents(c, EPOLLIN, /*add=*/false);
                c.wantWrite = false;
            }
            return;
          case WriteQueue::Result::Blocked:
            if (!c.wantWrite) {
                setClientEvents(c, EPOLLIN | EPOLLOUT, /*add=*/false);
                c.wantWrite = true;
            }
            return;
          case WriteQueue::Result::PeerGone:
            closeClient(c);
            return;
        }
    }

    void
    writeClient(ClientConn &c, const std::uint8_t *data, std::size_t len)
    {
        if (!c.open)
            return;
        iovec iov{const_cast<std::uint8_t *>(data), len};
        switch (c.outq.writeGather(c.fd, &iov, 1)) {
          case WriteQueue::Result::Drained:
            if (c.wantWrite) {
                setClientEvents(c, EPOLLIN, /*add=*/false);
                c.wantWrite = false;
            }
            return;
          case WriteQueue::Result::Blocked:
            if (!c.wantWrite) {
                setClientEvents(c, EPOLLIN | EPOLLOUT, /*add=*/false);
                c.wantWrite = true;
            }
            return;
          case WriteQueue::Result::PeerGone:
            closeClient(c);
            return;
        }
    }

    void
    acceptReady(int listenFd, bool tcp)
    {
        for (;;) {
            const int fd = ::accept4(listenFd, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
                if (errno == EINTR || errno == ECONNABORTED)
                    continue;
                break;
            }
            if (tcp) {
                int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof one);
            }
            auto conn = std::make_shared<ClientConn>();
            conn->fd = fd;
            conn->parser = FrameParser({opts.maxBufferedPerConn});
            connectionsAccepted.fetch_add(1, std::memory_order_relaxed);
            connectionsOpen.fetch_add(1, std::memory_order_relaxed);
            setClientEvents(*conn, EPOLLIN, /*add=*/true);
            clients.push_back(std::move(conn));
        }
    }

    void
    clientReadable(const std::shared_ptr<ClientConn> &conn,
                   std::vector<std::uint8_t> &chunk)
    {
        ClientConn &c = *conn;
        for (;;) {
            const ssize_t n = ::read(c.fd, chunk.data(), chunk.size());
            if (n > 0) {
                if (!c.parser.feed(chunk.data(),
                                   static_cast<std::size_t>(n))) {
                    closeClient(c); // oversize backlog: protocol abuse
                    return;
                }
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            closeClient(c); // EOF or hard error
            return;
        }
        std::vector<std::uint8_t> reply;
        FrameView f;
        while (c.open && c.parser.next(f))
            handleClientFrame(conn, f.header, f.payload, reply);
        if (!reply.empty())
            writeClient(c, reply.data(), reply.size());
        flushStagedBackends();
    }

    void
    handleClientFrame(const std::shared_ptr<ClientConn> &conn,
                      const RequestHeader &h,
                      const std::uint8_t *payload,
                      std::vector<std::uint8_t> &reply)
    {
        requestCount.fetch_add(1, std::memory_order_relaxed);
        switch (static_cast<Op>(h.op)) {
          case Op::Ping:
            appendStatusResponse(reply, h.id, Op::Ping, Status::Ok);
            return;
          case Op::Stats:
            appendStatsResponse(reply, h.id, snapshotStats());
            return;
          case Op::Health:
            appendHealthResponse(reply, h.id, HealthState::Ready);
            return;
          case Op::Snapshot:
            // Snapshot administration (save, fetch-bootstrap) targets
            // ONE replica; through a hashing router "which one" is
            // meaningless, so the op is refused rather than forwarded
            // somewhere arbitrary.
            appendStatusResponse(reply, h.id, Op::Snapshot,
                                 Status::BadRequest);
            return;
          case Op::Predict: {
            if (h.arch >= uarch::allUArchs().size() ||
                h.len > kMaxBlockBytes) {
                appendStatusResponse(reply, h.id, Op::Predict,
                                     Status::BadRequest);
                return;
            }
            const std::uint64_t key = routeKey(h.arch, payload, h.len);
            const std::size_t idx = pool.pick(key);
            if (idx == BackendPool::npos) {
                noBackendSheds.fetch_add(1, std::memory_order_relaxed);
                appendStatusResponse(reply, h.id, Op::Predict,
                                     Status::Overloaded);
                return;
            }
            const std::uint64_t rid = nextId++;
            Pending p;
            p.conn = conn;
            p.origId = h.id;
            p.key = key;
            p.backendIdx = idx;
            // The client's frame bytes are contiguous in the parser
            // buffer (header immediately before payload): copy them
            // and rewrite the id in place.
            p.frame.assign(payload - kRequestHeaderSize,
                           payload + h.len);
            std::memcpy(p.frame.data(), &rid, sizeof rid);
            const auto [it, inserted] = pending.emplace(rid, std::move(p));
            (void)inserted;
            routedPredicts.fetch_add(1, std::memory_order_relaxed);
            sendToBackend(idx, it->second.frame.data(),
                          it->second.frame.size());
            return;
          }
          default:
            appendStatusResponse(reply, h.id, static_cast<Op>(h.op),
                                 Status::BadRequest);
            return;
        }
    }

    // ---- stats -------------------------------------------------------------

    server::ServerStats
    snapshotStats() const
    {
        server::ServerStats s;
        s.requests = requestCount.load(std::memory_order_relaxed);
        s.routedPredicts =
            routedPredicts.load(std::memory_order_relaxed);
        s.backendFailovers =
            backendFailovers.load(std::memory_order_relaxed);
        // No-backend sheds reuse the admission-overload counter: the
        // router's "queue" is its backend set, and both answer the
        // same OVERLOADED status.
        s.overloadedQueue =
            noBackendSheds.load(std::memory_order_relaxed);
        s.connectionsAccepted =
            connectionsAccepted.load(std::memory_order_relaxed);
        s.connectionsOpen =
            connectionsOpen.load(std::memory_order_relaxed);
        s.uptimeMs = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - startTime)
                .count());
        return s;
    }

    // ---- io loop -----------------------------------------------------------

    void
    ioLoop()
    {
        constexpr int kMaxEvents = 64;
        epoll_event evs[kMaxEvents];
        std::vector<std::uint8_t> chunk(64 * 1024);
        auto nextProbeAt =
            Clock::now() +
            std::chrono::milliseconds(opts.healthIntervalMs);

        while (!stopping.load(std::memory_order_acquire)) {
            const auto now = Clock::now();
            int timeout = msUntil(nextProbeAt, now, 1000);
            for (const auto &b : backends)
                if (b->connState == ConnState::Down)
                    timeout = std::min(
                        timeout, msUntil(b->reconnectAt, now, 1000));
            const int n = ::epoll_wait(epfd, evs, kMaxEvents, timeout);
            if (n < 0 && errno != EINTR)
                break;
            if (stopping.load(std::memory_order_acquire))
                break;
            for (int i = 0; i < std::max(n, 0); ++i) {
                auto *src = static_cast<EvSource *>(evs[i].data.ptr);
                switch (src->kind) {
                  case EvSource::Kind::TcpListen:
                    acceptReady(tcpFd, true);
                    break;
                  case EvSource::Kind::UnixListen:
                    acceptReady(unixFd, false);
                    break;
                  case EvSource::Kind::Wake:
                    drainWakeFd(wakeFd);
                    break;
                  case EvSource::Kind::Client: {
                    auto &c = *static_cast<ClientConn *>(src);
                    if (!c.open)
                        break; // closed earlier in this batch
                    if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                        closeClient(c);
                        break;
                    }
                    if (evs[i].events & EPOLLOUT) {
                        const auto r = c.outq.flush(c.fd);
                        if (r == WriteQueue::Result::PeerGone)
                            closeClient(c);
                        else if (r == WriteQueue::Result::Drained &&
                                 c.wantWrite) {
                            setClientEvents(c, EPOLLIN, false);
                            c.wantWrite = false;
                        }
                    }
                    if (c.open && (evs[i].events & EPOLLIN))
                        clientReadable(clientPtr(c), chunk);
                    break;
                  }
                  case EvSource::Kind::Backend: {
                    auto &b = *static_cast<BackendConn *>(src);
                    if (b.connState == ConnState::Down || b.fd < 0)
                        break; // died earlier in this batch
                    if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                        markBackendDead(b);
                        break;
                    }
                    if (evs[i].events & EPOLLOUT)
                        backendWritable(b);
                    if (b.connState != ConnState::Down &&
                        (evs[i].events & EPOLLIN))
                        backendReadable(b, chunk);
                    break;
                  }
                }
                drainDeadBackends();
            }
            const auto after = Clock::now();
            if (after >= nextProbeAt) {
                healthTick();
                drainDeadBackends();
                sweepClients();
                nextProbeAt =
                    after +
                    std::chrono::milliseconds(opts.healthIntervalMs);
            }
            for (std::size_t i = 0; i < backends.size(); ++i)
                if (backends[i]->connState == ConnState::Down &&
                    backends[i]->reconnectAt <= after)
                    dialBackend(i);
        }
    }

    void
    backendWritable(BackendConn &b)
    {
        if (b.connState == ConnState::Connecting) {
            int err = 0;
            socklen_t elen = sizeof err;
            ::getsockopt(b.fd, SOL_SOCKET, SO_ERROR, &err, &elen);
            if (err != 0) {
                markBackendDead(b);
                return;
            }
            setBackendEvents(b, EPOLLIN, /*add=*/false);
            onBackendConnected(b);
            return;
        }
        const auto r = b.outq.flush(b.fd);
        if (r == WriteQueue::Result::PeerGone) {
            markBackendDead(b);
        } else if (r == WriteQueue::Result::Drained && b.wantWrite) {
            setBackendEvents(b, EPOLLIN, /*add=*/false);
            b.wantWrite = false;
        }
    }

    void
    healthTick()
    {
        for (auto &bp : backends) {
            BackendConn &b = *bp;
            if (b.connState != ConnState::Up)
                continue;
            if (b.probeOutstanding &&
                ++b.missedProbes >= opts.healthMissLimit) {
                // A peer that stopped answering probes is as dead as
                // one whose socket reset — SIGSTOP, livelock, or a
                // half-open connection all land here.
                markBackendDead(b);
                continue;
            }
            sendProbe(b);
        }
    }

    /** Reap closed client connections (kept alive through the event
     *  batch that closed them — see closeClient). */
    void
    sweepClients()
    {
        clients.erase(std::remove_if(clients.begin(), clients.end(),
                                     [](const auto &c) {
                                         return !c->open;
                                     }),
                      clients.end());
    }

    const std::shared_ptr<ClientConn> &
    clientPtr(ClientConn &c) const
    {
        for (const auto &p : clients)
            if (p.get() == &c)
                return p;
        throw std::logic_error("client not registered");
    }

    // ---- lifecycle ---------------------------------------------------------

    void
    start()
    {
        if (running.load())
            throw std::runtime_error("router already running");
        stopping.store(false);
        startTime = Clock::now();
        epfd = ::epoll_create1(EPOLL_CLOEXEC);
        if (epfd < 0)
            throwErrno("epoll_create1");
        wakeFd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        if (wakeFd < 0)
            throwErrno("eventfd");
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.ptr = &wakeTag;
        ::epoll_ctl(epfd, EPOLL_CTL_ADD, wakeFd, &ev);
        if (opts.tcpPort >= 0) {
            tcpFd = listenTcp();
            ev.data.ptr = &tcpTag;
            ::epoll_ctl(epfd, EPOLL_CTL_ADD, tcpFd, &ev);
        }
        if (!opts.unixPath.empty()) {
            unixFd = listenUnix();
            ev.data.ptr = &unixTag;
            ::epoll_ctl(epfd, EPOLL_CTL_ADD, unixFd, &ev);
        }
        for (std::size_t i = 0; i < backends.size(); ++i)
            dialBackend(i);
        running.store(true);
        thr = std::thread([this] { ioLoop(); });
    }

    void
    stop()
    {
        if (!running.exchange(false))
            return;
        stopping.store(true, std::memory_order_release);
        signalWakeFd(wakeFd);
        if (thr.joinable())
            thr.join();
        for (auto &c : clients)
            if (c->open) {
                ::close(c->fd);
                c->open = false;
            }
        clients.clear();
        pending.clear();
        for (auto &b : backends) {
            if (b->fd >= 0)
                ::close(b->fd);
            b->fd = -1;
            b->connState = ConnState::Down;
            b->outq = WriteQueue();
            b->preConnect.clear();
            b->inbuf.clear();
            b->parsed = 0;
        }
        if (tcpFd >= 0)
            ::close(tcpFd);
        if (unixFd >= 0) {
            ::close(unixFd);
            ::unlink(opts.unixPath.c_str());
        }
        if (wakeFd >= 0)
            ::close(wakeFd);
        if (epfd >= 0)
            ::close(epfd);
        tcpFd = unixFd = wakeFd = epfd = -1;
    }
};

Router::Router(RouterOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{}

Router::~Router()
{
    impl_->stop();
}

void
Router::start()
{
    impl_->start();
}

void
Router::stop()
{
    impl_->stop();
}

int
Router::tcpPort() const
{
    return impl_->boundTcpPort;
}

const std::string &
Router::unixPath() const
{
    return impl_->opts.unixPath;
}

server::ServerStats
Router::stats() const
{
    return impl_->snapshotStats();
}

} // namespace facile::cluster
