#include "cluster/membership.h"

#include <cstring>
#include <stdexcept>

#include "corpus/sections.h"

namespace facile::cluster {

std::string
Endpoint::label() const
{
    if (isUnix())
        return "unix:" + path;
    return host + ":" + std::to_string(port);
}

Endpoint
parseEndpoint(const std::string &spec)
{
    Endpoint ep;
    if (spec.rfind("unix:", 0) == 0) {
        ep.path = spec.substr(5);
        if (ep.path.empty())
            throw std::invalid_argument("empty unix socket path in '" +
                                        spec + "'");
        return ep;
    }
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size())
        throw std::invalid_argument(
            "endpoint '" + spec + "' is neither unix:PATH nor HOST:PORT");
    ep.host = spec.substr(0, colon);
    try {
        std::size_t used = 0;
        ep.port = std::stoi(spec.substr(colon + 1), &used);
        if (used != spec.size() - colon - 1)
            throw std::invalid_argument("");
    } catch (const std::exception &) {
        throw std::invalid_argument("bad port in endpoint '" + spec +
                                    "'");
    }
    if (ep.port < 0 || ep.port > 65535)
        throw std::invalid_argument("port out of range in endpoint '" +
                                    spec + "'");
    return ep;
}

std::uint64_t
routeKey(std::uint8_t arch, const std::uint8_t *data, std::size_t len)
{
    std::uint8_t tuple[9];
    tuple[0] = arch;
    const std::uint64_t content = corpus::xxh64(data, len);
    std::memcpy(tuple + 1, &content, sizeof content);
    return corpus::xxh64(tuple, sizeof tuple);
}

BackendPool::BackendPool(std::vector<Endpoint> endpoints)
{
    entries_.reserve(endpoints.size());
    for (Endpoint &ep : endpoints) {
        Entry e;
        const std::string label = ep.label();
        e.seed = corpus::xxh64(label.data(), label.size());
        e.ep = std::move(ep);
        entries_.push_back(std::move(e));
    }
}

std::size_t
BackendPool::pick(std::uint64_t key, std::size_t exclude) const
{
    std::size_t best = npos;
    std::uint64_t bestScore = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (i == exclude || entries_[i].state != BackendState::Up)
            continue;
        const std::uint64_t score =
            corpus::xxh64(&key, sizeof key, entries_[i].seed);
        if (best == npos || score > bestScore) {
            best = i;
            bestScore = score;
        }
    }
    return best;
}

} // namespace facile::cluster
