/**
 * @file
 * Deterministic fault injection for syscall/IO boundaries.
 *
 * Every wrapped boundary is a named *site* ("server.recv",
 * "snapshot.rename", ...). The boundary calls faultPoint(site, len)
 * once per syscall attempt; the returned FaultAction tells it to
 * either proceed (err == 0), fail with an injected errno, or clamp
 * the number of bytes it may move (short read / short write / torn
 * file write). Tests drive the hooks two ways:
 *
 *   - armFault(site, spec): inject at exactly the Nth hit of a site
 *     (and the next `count - 1` hits after it) — fully deterministic,
 *     used by the per-site unit tests in tests/test_fault.cc;
 *   - armChaos(seed, oneIn): a seeded splitmix64 stream decides, per
 *     (site, hit) pair, whether to inject a *universally safe* fault
 *     (EINTR, or a short read/write) with probability 1/oneIn. The
 *     same seed always injects at the same points, so chaos failures
 *     reproduce. Also armable via the environment
 *     (FACILE_FAULT_SEED / FACILE_FAULT_ONE_IN) for child processes.
 *
 * The whole machinery is compiled only when the FACILE_FAULT_INJECT
 * CMake option is ON. When off, faultPoint() is an inline constant
 * no-op and every call site folds away — production builds pay
 * nothing, not even a branch.
 */
#ifndef FACILE_TESTING_FAULT_H
#define FACILE_TESTING_FAULT_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace facile::testing {

/** What a wrapped boundary must do for this attempt. */
struct FaultAction {
    /** errno to fail with instead of performing the call; 0 = none. */
    int err = 0;
    /** Max bytes the call may move (short/torn IO); SIZE_MAX = all. */
    std::size_t clamp = static_cast<std::size_t>(-1);

    bool injected() const { return err != 0 || clamp != static_cast<std::size_t>(-1); }
};

/** Deterministic injection window for one site. */
struct FaultSpec {
    /** 0-based hit index at which injection starts. */
    std::uint64_t firstHit = 0;
    /** Consecutive hits injected from firstHit on (UINT64_MAX = forever). */
    std::uint64_t count = 1;
    /** errno to inject; 0 with a clamp = short IO without an error. */
    int err = 0;
    /** Byte clamp while injecting; SIZE_MAX = no clamp. */
    std::size_t clampBytes = static_cast<std::size_t>(-1);
};

#ifdef FACILE_FAULT_INJECT

inline constexpr bool kFaultInjection = true;

/**
 * One hit of a named site. Counts the hit, consults the armed spec
 * and the chaos stream, and returns the action to apply. @p len is
 * the number of bytes the caller is about to move (0 for pure
 * syscalls like epoll_wait) — chaos uses it to pick short-IO clamps.
 */
FaultAction faultPoint(const char *site, std::size_t len);

/** Arm deterministic injection on @p site (replaces any prior spec). */
void armFault(const std::string &site, const FaultSpec &spec);
/** Disarm @p site (hit counters are kept). */
void disarmFault(const std::string &site);
/** Disarm everything, zero all counters, and disable chaos. */
void resetFaults();
/** Enable seeded random EINTR/short-IO on every site, 1-in-@p oneIn. */
void armChaos(std::uint64_t seed, std::uint32_t oneIn);
/** Total faultPoint() calls observed on @p site since resetFaults(). */
std::uint64_t faultHits(const std::string &site);
/** Number of those hits that actually injected a fault. */
std::uint64_t faultsFired(const std::string &site);

#else // !FACILE_FAULT_INJECT — every hook folds to a constant no-op.

inline constexpr bool kFaultInjection = false;

inline FaultAction faultPoint(const char *, std::size_t) { return {}; }
inline void armFault(const std::string &, const FaultSpec &) {}
inline void disarmFault(const std::string &) {}
inline void resetFaults() {}
inline void armChaos(std::uint64_t, std::uint32_t) {}
inline std::uint64_t faultHits(const std::string &) { return 0; }
inline std::uint64_t faultsFired(const std::string &) { return 0; }

#endif // FACILE_FAULT_INJECT

} // namespace facile::testing

#endif // FACILE_TESTING_FAULT_H
